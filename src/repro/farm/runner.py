"""The work-queue runner: shard picklable tasks across a process pool.

``run_tasks`` is deliberately tiny and completely deterministic from the
caller's point of view:

* ``workers=1`` executes the tasks in order, in-process — the *exact*
  serial path, no pool, no pickling;
* ``workers>1`` submits every task to a
  :class:`concurrent.futures.ProcessPoolExecutor` and collects results
  **in submission order**, not completion order — so the merged output of
  a campaign is bit-identical for any worker count (every ``task.run()``
  is a pure function of the task description);
* a task that raises is re-raised in the caller as
  :class:`FarmTaskError` carrying the task's id and description — the
  pool is shut down cleanly rather than left hanging, and the error tells
  you *which* shard to replay (for fuzz chunks, including its seed).

Worker processes rebuild compiled-core and decoded-image caches lazily
from the task descriptions (see :mod:`repro.farm.tasks`); nothing
exec-compiled ever crosses the process boundary.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Protocol

from .. import obs


class FarmTask(Protocol):
    """What the runner needs from a task: identity, description, run.

    The concrete tasks (:mod:`repro.farm.tasks`) are frozen dataclasses
    that satisfy this structurally — the runner never imports them."""

    @property
    def task_id(self) -> str: ...

    def describe(self) -> str: ...

    def run(self) -> object: ...


class FarmTaskError(RuntimeError):
    """A farm task failed; carries the task identity for replay.

    Raised in the worker and re-raised in the parent (the message — task
    id, task description, original exception — survives pickling; the
    original traceback object does not, which is why the description is
    embedded rather than chained).
    """

    def __init__(self, message: str, task_id: str = "",
                 description: str = ""):
        super().__init__(message)
        self.task_id = task_id
        self.description = description

    def __reduce__(self) -> tuple:
        return (type(self), (self.args[0], self.task_id, self.description))


def execute_task(task: FarmTask) -> object:
    """Run one task, wrapping any failure with its description.

    Top-level so it is picklable as the pool's callable; also used
    verbatim by the serial path so both paths raise identical errors.
    """
    try:
        return task.run()
    except FarmTaskError:
        raise
    except Exception as exc:
        raise FarmTaskError(
            f"farm task {task.task_id!r} failed with "
            f"{type(exc).__name__}: {exc} [{task.describe()}]",
            task.task_id, task.describe()) from exc


def execute_task_telemetry(task: FarmTask,
                           submitted_wall: float
                           ) -> tuple[object, dict]:
    """Run one task under a fresh worker-local telemetry session.

    Top-level so it is picklable as the pool's callable.  Returns
    ``(result, snapshot)`` where the snapshot is a plain dict — task id,
    worker pid, queue wait (worker pickup wall-time minus submission
    wall-time: the one duration that genuinely spans two processes, so
    it is the one wall-clock measurement), monotonic-clock run time, and
    the task's counters.  The serial path runs the same wrapper (the
    session nests under the parent's), so a ``workers=1`` snapshot has
    exactly the same shape as a pool snapshot.
    """
    started_wall = time.time()
    with obs.session() as telemetry:
        started = time.perf_counter()
        result = execute_task(task)
        run_sec = time.perf_counter() - started
    return result, {
        "task_id": task.task_id,
        "pid": os.getpid(),
        "start_wall": started_wall,
        "queue_wait_sec": max(0.0, started_wall - submitted_wall),
        "run_sec": run_sec,
        "counters": dict(telemetry.counters),
    }


def run_tasks(tasks: Iterable[FarmTask],
              workers: int = 1) -> list:
    """Execute tasks; returns their results in task order.

    ``workers`` caps the process count (never more processes than tasks);
    ``workers <= 1`` is the serial in-process path.

    With a :mod:`repro.obs` session active in the caller, every task runs
    under :func:`execute_task_telemetry` instead and its snapshot is
    merged into the caller's session **in submission order** — the same
    order results merge in — so telemetry structure is bit-identical for
    any worker count.  Results themselves are unaffected.
    """
    tasks = list(tasks)
    parent = obs.get()
    if workers <= 1 or not tasks:
        # Serial only when *asked* for serial (or there is nothing to
        # run).  A single task with workers > 1 still goes through the
        # pool: a one-task campaign must exercise pickling and the
        # worker-side cache rebuild, or an unpicklable task hides until
        # the campaign grows.
        if parent is None:
            return [execute_task(task) for task in tasks]
        pairs = [execute_task_telemetry(task, time.time())
                 for task in tasks]
        return _merge_snapshots(parent, pairs)
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        if parent is None:
            futures = [pool.submit(execute_task, task) for task in tasks]
        else:
            futures = [pool.submit(execute_task_telemetry, task,
                                   time.time()) for task in tasks]
        try:
            results = [future.result() for future in futures]
        except BaseException:
            # Drop queued tasks so the first failure surfaces immediately
            # instead of after the rest of the campaign drains.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
    if parent is None:
        return results
    return _merge_snapshots(parent, results)


def _merge_snapshots(parent: obs.Telemetry,
                     pairs: Iterable[tuple[object, dict]]) -> list:
    """Fold task snapshots into the parent session (submission order)."""
    results = []
    for result, snapshot in pairs:
        parent.counters["farm.tasks"] += 1
        parent.add_task(snapshot)
        results.append(result)
    return results
