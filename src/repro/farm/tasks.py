"""Pure, picklable task descriptions for the simulation farm.

The campaigns this farm shards — cosimulation, the mutant kill matrix,
riscof compliance — were written around live objects that cannot cross a
process boundary: ``Module`` expression DAGs wired into exec-compiled
closures, ``RisspSim``/``GoldenSim`` instances holding memories and
generated code.  A farm task therefore carries only *descriptions*:

* the core as a :class:`CoreSpec` — its instruction subset plus the
  :func:`~repro.rtl.compiled.stable_fingerprint` of the structure the
  task was enumerated against,
* the program as the linked :class:`~repro.isa.program.Program` image
  (plain words/bytes/symbols — picklable), or, for fuzz chunks, just the
  chunk seed the generator re-expands worker-side,
* the backend *name*, instruction budget, optional
  :class:`~repro.soc.SocSpec` platform, and provenance (task id, seed).

Worker-cache-rebuild contract: a worker materializes the core with
:meth:`CoreSpec.build` — an in-process memo keyed on the spec — and the
compiled-core / decoded-image caches repopulate transparently the first
time a simulator runs on it (the exec-compiled functions themselves never
travel).  The rebuilt structure is verified against the spec's
fingerprint, so a worker can never silently compute a verdict for a
different core than the one the campaign enumerated.

Every ``run()`` is a pure function of the task description (plus the
deterministic simulators), which is what makes the farm's merge step
trivially bit-identical to the serial path for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import Program
from ..obs import telemetry as _obs
from ..rtl.compiled import stable_fingerprint
from ..rtl.ir import Module
from ..soc import SocSpec


class CoreMaterializeError(RuntimeError):
    """A worker could not rebuild the core a task describes."""


@dataclass(frozen=True)
class CoreSpec:
    """Rebuildable description of a stitched RISSP core.

    ``fingerprint`` (when non-empty) is the stable structural hash the
    rebuilt module must match; it travels with every task so cross-process
    rebuild divergence is an error, never a wrong verdict.
    """

    mnemonics: tuple[str, ...]
    name: str = "rissp"
    reset_pc: int = 0
    trap_unit: bool = False
    fingerprint: str = ""

    @classmethod
    def of(cls, core: Module) -> "CoreSpec":
        """Describe a live core so a worker can rebuild it.

        Requires a core produced by :func:`~repro.rtl.rissp.build_rissp`
        (subset recorded in ``meta['mnemonics']``); anything else cannot
        be re-expressed as a task description and raises.
        """
        mnemonics = core.meta.get("mnemonics")
        if not mnemonics or "pc" not in core.registers:
            raise CoreMaterializeError(
                f"core {core.name!r} is not rebuildable from a subset "
                f"description (no meta['mnemonics']); the farm can only "
                f"ship stitched RISSPs across process boundaries")
        return cls(mnemonics=tuple(mnemonics), name=core.name,
                   reset_pc=core.registers["pc"].reset_value,
                   trap_unit=bool(core.meta.get("trap_unit")),
                   fingerprint=stable_fingerprint(core))

    def build(self) -> Module:
        """Materialize (worker-side, memoized per process)."""
        return _materialize(self)


#: Worker-side core memo: one rebuild per (spec, process), shared by every
#: task in the shard that names the same core.
_CORE_CACHE: dict[CoreSpec, Module] = {}


def _materialize(spec: CoreSpec) -> Module:
    core = _CORE_CACHE.get(spec)
    if core is not None:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["farm.core_rebuild.memo_hit"] += 1
        return core
    if _obs._ACTIVE is not None:
        _obs._ACTIVE.counters["farm.core_rebuild.build"] += 1
    from ..rtl.rissp import build_rissp

    core = build_rissp(list(spec.mnemonics), name=spec.name,
                       reset_pc=spec.reset_pc,
                       with_traps=spec.trap_unit or None)
    if spec.fingerprint:
        rebuilt = stable_fingerprint(core)
        if rebuilt != spec.fingerprint:
            raise CoreMaterializeError(
                f"rebuilt core {spec.name!r} fingerprint {rebuilt[:16]} "
                f"does not match task description "
                f"{spec.fingerprint[:16]} — worker and campaign disagree "
                f"about the core structure")
    _CORE_CACHE[spec] = core
    return core


# ---------------------------------------------------------------- tasks

@dataclass(frozen=True)
class CosimTask:
    """Lock-step cosimulation of one linked image on one backend.

    ``run()`` returns the comparable verdict of
    :func:`~repro.verify.mutation.cosim_verdict`: ``None`` for a clean
    match through halt, ``"mismatch:<field>"`` / ``"refused:<Exc>"``
    otherwise.
    """

    task_id: str
    core: CoreSpec
    program: Program
    backend: str | None = "fused"
    max_instructions: int = 2_000_000
    soc: SocSpec | None = None

    def describe(self) -> str:
        return (f"cosim {self.task_id}: core={self.core.name} "
                f"backend={self.backend} "
                f"max_instructions={self.max_instructions}")

    def run(self) -> str | None:
        from ..verify.mutation import cosim_verdict

        return cosim_verdict(self.core.build(), self.program, self.backend,
                             self.max_instructions, soc=self.soc)


@dataclass(frozen=True)
class FuzzCosimTask:
    """One chunk of the randomized differential fuzz campaign.

    Carries only the chunk *seed* — the worker re-expands it through
    :func:`repro.verify.fuzz.random_program` (or the trap-firmware
    generator), so the task description stays a few hundred bytes and the
    failure report's ``(task-id, seed)`` pair is sufficient to replay the
    chunk anywhere.
    """

    task_id: str
    core: CoreSpec
    seed: int
    backend: str | None = "fused"
    max_instructions: int = 20_000
    trap: bool = False

    def describe(self) -> str:
        return (f"fuzz {self.task_id}: seed={self.seed:#x} "
                f"core={self.core.name} backend={self.backend} "
                f"trap={self.trap}")

    def run(self) -> str | None:
        from ..isa.assembler import assemble
        from ..verify.fuzz import random_program, random_trap_program
        from ..verify.mutation import cosim_verdict

        source = random_trap_program(self.seed) if self.trap \
            else random_program(self.seed)
        return cosim_verdict(self.core.build(), assemble(source),
                             self.backend, self.max_instructions)


@dataclass(frozen=True)
class MutantTask:
    """One kill-matrix row: mutant ``index`` of the deterministic
    enumeration over the pristine core, judged under every backend.

    ``run()`` returns ``(description, {backend: verdict})`` — the exact
    row the serial :func:`~repro.verify.mutation.rtl_mutant_kill_matrix`
    loop computes, because mutant enumeration is a pure function of the
    (fingerprint-checked) core structure.
    """

    task_id: str
    core: CoreSpec
    program: Program
    index: int
    limit: int
    backends: tuple[str, ...]
    max_instructions: int = 2_000

    def describe(self) -> str:
        return (f"mutant {self.task_id}: core={self.core.name} "
                f"index={self.index}/{self.limit} "
                f"backends={','.join(self.backends)}")

    def run(self) -> tuple[str, dict[str, str | None]]:
        from ..verify.mutation import mutant_verdict_row

        return mutant_verdict_row(self.core.build(), self.program,
                                  self.index, self.limit, self.backends,
                                  self.max_instructions)


@dataclass(frozen=True)
class FleetShardTask:
    """One contiguous lane range of a batched fleet campaign.

    The shard builds a :class:`~repro.rtl.fleet.FleetSim` over its lanes
    only, differentiates each lane by poking ``id_register`` with a value
    derived from the lane's *global* index (so results are a pure
    function of the lane index, not of how the campaign was sharded), and
    returns one ``(lane, exit_code, instructions, halted_by)`` row per
    lane in lane order — the merge step concatenates shard results in
    shard order, which restores the serial row order exactly.
    """

    task_id: str
    core: CoreSpec
    program: Program
    lane_lo: int
    lane_hi: int
    id_register: int = 12
    id_base: int = 12
    id_spread: int = 5
    max_instructions: int = 100_000
    quantum: int = 256
    mem_size: int = 0x10000

    def lane_id_value(self, lane: int) -> int:
        """Per-lane workload parameter: pure function of the global lane
        index (``id_spread`` staggers halt times across the batch)."""
        return self.id_base + (lane % self.id_spread
                               if self.id_spread else 0)

    def describe(self) -> str:
        return (f"fleet {self.task_id}: core={self.core.name} "
                f"lanes=[{self.lane_lo},{self.lane_hi}) "
                f"quantum={self.quantum}")

    def run(self) -> list[tuple[int, int, int, str]]:
        from ..rtl.fleet import FleetSim

        fleet = FleetSim(self.core.build(), self.program,
                         self.lane_hi - self.lane_lo,
                         mem_size=self.mem_size)
        for slot, lane in enumerate(range(self.lane_lo, self.lane_hi)):
            fleet.poke_regfile(slot, self.id_register,
                               self.lane_id_value(lane))
        results = fleet.run(max_instructions=self.max_instructions,
                            quantum=self.quantum)
        return [(lane, result.exit_code, result.instructions,
                 result.halted_by)
                for lane, result in zip(range(self.lane_lo, self.lane_hi),
                                        results)]


@dataclass(frozen=True)
class ScenarioShardTask:
    """One contiguous scenario range of a coverage-guided campaign.

    Scenarios are pure picklable descriptions (see
    :mod:`repro.scenario.gen`); the worker assembles and runs each one
    and returns its plain outcome row.  ``checks`` marks, per scenario,
    whether the worker must also replay it on the golden ISS — the flag
    is a pure function of the scenario's *global* campaign index, so the
    checked subset is identical at any worker count.  The merge step
    concatenates shard outcome lists in shard order, restoring the
    serial row order exactly.
    """

    task_id: str
    core: CoreSpec
    scenarios: tuple
    checks: tuple

    def describe(self) -> str:
        first = self.scenarios[0].scenario_id if self.scenarios else "-"
        return (f"scenario {self.task_id}: core={self.core.name} "
                f"n={len(self.scenarios)} first={first}")

    def run(self) -> list[dict]:
        from ..scenario.run import run_scenario

        core = self.core.build()
        return [run_scenario(core, scenario, check_backends=check)
                for scenario, check in zip(self.scenarios, self.checks)]


@dataclass(frozen=True)
class ComplianceTask:
    """One shard of the riscof-analog compliance target list.

    ``run()`` returns the concatenated mismatch strings of its mnemonics,
    in target order; the merge step concatenates shard results in shard
    order, reproducing the serial report exactly.  Workers sharing a
    ``$REPRO_CACHE_DIR`` also share golden reference signatures through
    the atomic on-disk cache (see :mod:`repro.verify.riscof`).
    """

    task_id: str
    core: CoreSpec
    mnemonics: tuple[str, ...]

    def describe(self) -> str:
        return (f"compliance {self.task_id}: core={self.core.name} "
                f"mnemonics={','.join(self.mnemonics)}")

    def run(self) -> list[str]:
        from ..verify.riscof import check_compliance_mnemonic

        core = self.core.build()
        mismatches: list[str] = []
        for mnemonic in self.mnemonics:
            mismatches.extend(check_compliance_mnemonic(core, mnemonic))
        return mismatches


@dataclass(frozen=True)
class LintTask:
    """One shard of the static RTL lint sweep (PR 10).

    Lints a set of library blocks (``blocks``) and/or one subset-lattice
    core (``core``, rebuilt worker-side through the fingerprint-checked
    :meth:`CoreSpec.build` memo).  ``run()`` returns the sorted, deduped
    pre-waiver finding records — a pure function of the target structure,
    so the merged sweep is bit-identical at any worker count.
    """

    task_id: str
    blocks: tuple[str, ...] = ()
    core: CoreSpec | None = None

    def describe(self) -> str:
        target = f"core={self.core.name}" if self.core is not None \
            else f"blocks={','.join(self.blocks)}"
        return f"lint {self.task_id}: {target}"

    def run(self) -> list:
        from ..analysis import lint_module
        from ..rtl.library import default_library

        findings = []
        if self.blocks:
            library = default_library()
            for mnemonic in self.blocks:
                findings.extend(lint_module(library.entry(mnemonic).module))
        if self.core is not None:
            findings.extend(lint_module(self.core.build()))
        return sorted(set(findings))
