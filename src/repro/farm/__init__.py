"""repro.farm — the multi-process simulation farm (PR 6).

Shards the embarrassingly parallel verification campaigns — cosimulation,
the RTL mutant kill matrix, riscof-analog compliance, seeded differential
fuzz — across cores on a :class:`concurrent.futures.ProcessPoolExecutor`
work queue, behind the single ``python -m repro`` CLI.

Design rules (see the module docstrings for the fine print):

* tasks are **pure, picklable descriptions** (:mod:`repro.farm.tasks`) —
  subset + structural fingerprint, program image or chunk seed, backend
  *name*; never live ``Module``/simulator objects;
* workers **rebuild** compiled-core and decoded-image caches from the
  description and fingerprint-check the result;
* results merge **in task order** (:mod:`repro.farm.runner`), so every
  campaign is bit-identical at any worker count and ``workers=1`` is the
  exact serial path;
* failures carry their task description — and for fuzz chunks the
  ``(task-id, seed)`` pair — instead of hanging the pool.
"""

from .campaigns import (
    FLEET_EXERCISE_PROGRAM,
    MUTATION_EXERCISE_PROGRAM,
    MUTATION_EXERCISE_SUBSET,
    cosim_campaign,
    farm_scaling_metrics,
    fleet_campaign,
    fleet_exercise_target,
    fleet_lane_value,
    fleet_throughput_metrics,
    lint_campaign,
    lint_targets,
    mutation_exercise_target,
    sharded_compliance_mismatches,
    sharded_mutant_kill_matrix,
    telemetry_probe,
    workload_target,
)
from .runner import (
    FarmTaskError,
    execute_task,
    execute_task_telemetry,
    run_tasks,
)
from .tasks import (
    ComplianceTask,
    CoreMaterializeError,
    CoreSpec,
    CosimTask,
    FleetShardTask,
    FuzzCosimTask,
    LintTask,
    MutantTask,
)

__all__ = [
    "ComplianceTask", "CoreMaterializeError", "CoreSpec", "CosimTask",
    "FLEET_EXERCISE_PROGRAM", "FarmTaskError", "FleetShardTask",
    "FuzzCosimTask", "LintTask", "MUTATION_EXERCISE_PROGRAM",
    "MUTATION_EXERCISE_SUBSET", "MutantTask", "cosim_campaign",
    "execute_task", "execute_task_telemetry", "farm_scaling_metrics",
    "fleet_campaign", "fleet_exercise_target", "fleet_lane_value",
    "fleet_throughput_metrics", "lint_campaign", "lint_targets",
    "mutation_exercise_target", "run_tasks",
    "sharded_compliance_mismatches", "sharded_mutant_kill_matrix",
    "telemetry_probe", "workload_target",
]
