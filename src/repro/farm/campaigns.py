"""Sharded campaign front-ends: enumerate tasks, run, merge deterministically.

Each campaign here follows one shape:

1. **enumerate** the work as picklable task descriptions
   (:mod:`repro.farm.tasks`) in a deterministic order,
2. **run** them through :func:`repro.farm.runner.run_tasks` (serial at
   ``workers=1``, process pool otherwise),
3. **merge** the results *in task order* into exactly the structure the
   serial code path produces — so every campaign is bit-identical for any
   worker count, which the farm tests assert by diffing merged results.

The kill-matrix and compliance campaigns are the farm backends of
:func:`repro.verify.mutation.rtl_mutant_kill_matrix` and
:func:`repro.verify.riscof.run_compliance`; the cosim campaign is the
``repro`` CLI's cosim stage (real workloads on their own generated cores,
plus seeded fuzz chunks).
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Sequence

from ..isa.program import Program
from ..rtl.ir import Module
from ..verify.fuzz import FUZZ_BASE_SEED, derive_seed
from .runner import run_tasks
from .tasks import (
    ComplianceTask,
    CoreSpec,
    CosimTask,
    FleetShardTask,
    FuzzCosimTask,
    LintTask,
    MutantTask,
)

# ------------------------------------------------------------- mutation

def sharded_mutant_kill_matrix(core: Module, program: Program,
                               backends: Sequence[str],
                               limit: int = 24,
                               max_instructions: int = 2_000,
                               workers: int = 1
                               ) -> dict[str, dict[str, str | None]]:
    """Farm path of :func:`repro.verify.mutation.rtl_mutant_kill_matrix`:
    one task per mutant, merged in enumeration order."""
    from ..verify.mutation import enumerate_rtl_mutations

    spec = CoreSpec.of(core)
    count = len(enumerate_rtl_mutations(core, limit=limit))
    tasks = [MutantTask(task_id=f"mutant[{index:03d}]", core=spec,
                        program=program, index=index, limit=limit,
                        backends=tuple(backends),
                        max_instructions=max_instructions)
             for index in range(count)]
    return dict(run_tasks(tasks, workers=workers))


# ----------------------------------------------------------- compliance

def sharded_compliance_mismatches(core: Module, targets: Iterable[str],
                                  workers: int = 1,
                                  shards: int = 0) -> list[str]:
    """Farm path of :func:`repro.verify.riscof.run_compliance`: the
    target list split into ``shards`` contiguous groups (0 = one group
    per worker), mismatches concatenated in target order."""
    spec = CoreSpec.of(core)
    targets = list(targets)
    shards = shards or workers
    shards = max(1, min(shards, len(targets)))
    groups: list[list[str]] = [[] for _ in range(shards)]
    for index, mnemonic in enumerate(targets):
        groups[index % shards].append(mnemonic)
    tasks = [ComplianceTask(task_id=f"compliance[{index:02d}]", core=spec,
                            mnemonics=tuple(group))
             for index, group in enumerate(groups) if group]
    results = run_tasks(tasks, workers=workers)
    # Round-robin sharding + per-shard target order means re-interleaving
    # by original target position restores the serial mismatch order.
    by_mnemonic: dict[str, list[str]] = {}
    for task, mismatches in zip(tasks, results):
        remaining = list(mismatches)
        for mnemonic in task.mnemonics:
            mine = [m for m in remaining if m.startswith(f"{mnemonic}:")]
            by_mnemonic[mnemonic] = mine
            remaining = [m for m in remaining if m not in mine]
    merged: list[str] = []
    for mnemonic in targets:
        merged.extend(by_mnemonic.get(mnemonic, []))
    return merged


# ----------------------------------------------------------------- lint

#: Blocks linted per task in the sweep (small groups keep the pool busy).
LINT_BLOCK_GROUP = 8


def lint_targets(subsets: Sequence[str] | None = None) -> list[LintTask]:
    """Deterministic lint target enumeration: every block in the shipped
    library (grouped), then one stitched core per named subset-lattice
    entry (Table 3 order) plus the full-ISA ``rv32e`` baseline.

    ``subsets`` restricts the lattice portion to the named entries (the
    CI leg lints a sample; the default is the whole lattice).  Cores ship
    as fingerprint-free :class:`CoreSpec` descriptions — the subset *is*
    the target definition, so the parent never builds them.
    """
    from ..core.subset_analysis import ALWAYS_INCLUDED
    from ..data.paper import TABLE3_SUBSETS
    from ..isa.instructions import INSTRUCTIONS
    from ..rtl.library import default_library

    tasks: list[LintTask] = []
    mnemonics = sorted(default_library().mnemonics)
    for start in range(0, len(mnemonics), LINT_BLOCK_GROUP):
        group = tuple(mnemonics[start:start + LINT_BLOCK_GROUP])
        tasks.append(LintTask(
            task_id=f"lint-blocks[{start // LINT_BLOCK_GROUP:02d}]",
            blocks=group))
    lattice = dict(TABLE3_SUBSETS)
    lattice["rv32e"] = tuple(d.mnemonic for d in INSTRUCTIONS)
    chosen = list(lattice) if subsets is None else list(subsets)
    for name in chosen:
        subset = tuple(sorted(set(lattice[name]) | set(ALWAYS_INCLUDED)))
        tasks.append(LintTask(
            task_id=f"lint-core[{name}]",
            core=CoreSpec(mnemonics=subset, name=f"rissp_{name}")))
    return tasks


def lint_campaign(subsets: Sequence[str] | None = None,
                  workers: int = 1) -> dict:
    """Farm-sharded static-analysis sweep: RTL lint over blocks + the
    subset lattice, the generated-source audit of all three codegen
    paths, and the repo-contract scan — merged in task order, then
    deduplicated and waived (both order-insensitive), so the result is
    bit-identical at any worker count."""
    from ..analysis import (apply_waivers, audit_compiled, dedup_findings,
                            lint_contracts)
    from ..rtl.compiled import compile_core, compile_fleet, compile_module

    tasks = lint_targets(subsets)
    findings = []
    for task_findings in run_tasks(tasks, workers=workers):
        findings.extend(task_findings)

    # The generated-source audit runs in-parent on one representative
    # core (the mutation exercise target): compile all three ways, audit
    # each against its own exec namespace.
    core, _ = mutation_exercise_target()
    gen_sources = 0
    for kind, compiled in (("module", compile_module(core)),
                           ("core", compile_core(core)),
                           ("fleet", compile_fleet(core))):
        findings.extend(audit_compiled(compiled, kind, label=kind))
        gen_sources += 1

    contract_findings = lint_contracts()
    findings.extend(contract_findings)

    kept, waived = apply_waivers(dedup_findings(findings))
    blocks = sum(len(t.blocks) for t in tasks)
    cores = sum(1 for t in tasks if t.core is not None)
    return {
        "findings": kept,
        "waived": waived,
        "targets": {"blocks": blocks, "cores": cores,
                    "gen_sources": gen_sources,
                    "contract_scan": 1},
        "tasks": len(tasks),
    }


# ---------------------------------------------------------------- cosim

def workload_target(name: str) -> tuple[Module, Program, object]:
    """Build one workload's (core, program, soc_spec) the same way the
    end-to-end flow does — compile, profile the binary, stitch the RISSP
    for its subset — minus synthesis, which cosimulation never needs."""
    from ..core.subset_analysis import profile_program
    from ..rtl.rissp import build_rissp
    from ..workloads import WORKLOADS, build_program

    workload = WORKLOADS[name]
    program = build_program(workload)
    profile = profile_program(name, program,
                              "-" if workload.lang == "asm" else "O2")
    core = build_rissp(profile.core_subset(), name=f"rissp_{name}",
                       reset_pc=program.entry)
    return core, program, workload.soc_spec


def cosim_campaign(workloads: Sequence[str] = (), fuzz_chunks: int = 0,
                   fuzz_seed: int = FUZZ_BASE_SEED,
                   backend: str | None = "fused",
                   max_instructions: int = 2_000_000,
                   fuzz_max_instructions: int = 20_000,
                   workers: int = 1) -> dict[str, str | None]:
    """Cosimulation verdicts for named workloads plus seeded fuzz chunks.

    Returns ``{task id: verdict}`` in task order — workloads first (each
    on its own generated core, with its SoC platform when it has one),
    then fuzz chunk ``i`` with seed ``derive_seed(fuzz_seed, i)`` on the
    full-ISA core.  ``None`` verdicts are clean lock-step matches through
    halt; the task ids of fuzz chunks embed their seeds, so any failure
    is reported as a replayable ``(task-id, seed)`` pair.
    """
    tasks: list = []
    for name in workloads:
        core, program, soc_spec = workload_target(name)
        tasks.append(CosimTask(task_id=f"cosim:{name}",
                               core=CoreSpec.of(core), program=program,
                               backend=backend,
                               max_instructions=max_instructions,
                               soc=soc_spec))
    if fuzz_chunks:
        from ..isa.instructions import INSTRUCTIONS
        from ..rtl.rissp import build_rissp

        full = build_rissp([d.mnemonic for d in INSTRUCTIONS])
        full_spec = CoreSpec.of(full)
        for index in range(fuzz_chunks):
            seed = derive_seed(fuzz_seed, index)
            tasks.append(FuzzCosimTask(
                task_id=f"fuzz[{index:03d}]:seed={seed:#018x}",
                core=full_spec, seed=seed, backend=backend,
                max_instructions=fuzz_max_instructions))
    results = run_tasks(tasks, workers=workers)
    return {task.task_id: verdict
            for task, verdict in zip(tasks, results)}


# ---------------------------------------------------------------- fleet

#: Exercise program for fleet campaigns: an arithmetic/memory loop whose
#: iteration count and result are driven by the per-lane parameter poked
#: into ``a2`` — every lane computes a distinct value and halts at a
#: distinct retirement count, so batched-vs-single divergence anywhere in
#: the datapath, the store/load path or the halt sequencing is visible in
#: the per-lane rows.
FLEET_EXERCISE_PROGRAM = """.text
start:
    li a0, 0
    li t0, 0
loop:
    add a0, a0, t0
    addi t0, t0, 1
    xor a1, a0, t0
    sw a1, 128(zero)
    lw a3, 128(zero)
    add a0, a0, a3
    blt t0, a2, loop
    ecall
"""

#: Per-lane differentiation: ``a2`` (x12) gets ``BASE + lane % SPREAD``
#: — a pure function of the global lane index, so sharding can never
#: change a lane's workload.
FLEET_ID_REGISTER = 12
FLEET_ID_BASE = 12
FLEET_ID_SPREAD = 5

#: Fleet lanes only need the 64 KiB that reaches the halt-sentinel stub —
#: a quarter of the default image keeps a 1k-lane fleet cache-friendly.
FLEET_MEM_SIZE = 0x10000


def fleet_lane_value(lane: int) -> int:
    """The ``a2`` parameter of one (globally indexed) fleet lane."""
    return FLEET_ID_BASE + lane % FLEET_ID_SPREAD


def fleet_exercise_target() -> tuple[Module, Program]:
    """The (core, program) pair fleet campaigns batch: the full-table
    RISSP (same rebuildable core the fuzz campaign ships) running
    :data:`FLEET_EXERCISE_PROGRAM`."""
    from ..isa.assembler import assemble
    from ..isa.instructions import INSTRUCTIONS
    from ..rtl.rissp import build_rissp

    return (build_rissp([d.mnemonic for d in INSTRUCTIONS]),
            assemble(FLEET_EXERCISE_PROGRAM))


def fleet_campaign(instances: int, workers: int = 1, shards: int = 0,
                   max_instructions: int = 1_000, quantum: int = 256
                   ) -> list[tuple[int, int, int, str]]:
    """Per-lane ``(lane, exit_code, instructions, halted_by)`` rows for
    ``instances`` fleet lanes, sharded as contiguous lane ranges across
    the process pool (0 shards = one range per worker).  Rows concatenate
    in shard order — lane order — so the merged output is bit-identical
    for any worker/shard split."""
    core, program = fleet_exercise_target()
    spec = CoreSpec.of(core)
    shards = shards or workers
    shards = max(1, min(shards, instances))
    bounds = [instances * index // shards for index in range(shards + 1)]
    tasks = [FleetShardTask(
        task_id=f"fleet[{index:02d}]", core=spec, program=program,
        lane_lo=lo, lane_hi=hi, id_register=FLEET_ID_REGISTER,
        id_base=FLEET_ID_BASE, id_spread=FLEET_ID_SPREAD,
        max_instructions=max_instructions, quantum=quantum,
        mem_size=FLEET_MEM_SIZE)
        for index, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        if hi > lo]
    rows: list[tuple[int, int, int, str]] = []
    for shard_rows in run_tasks(tasks, workers=workers):
        rows.extend(shard_rows)
    return rows


def fleet_throughput_metrics(instances: int = 1024, workers: int = 1,
                             quantum: int = 256, sample: int = 8,
                             baseline_sample: int = 128,
                             max_instructions: int = 1_000) -> dict:
    """Batched-fleet throughput vs the single-core fused loop, for
    ``BENCH_fleet_throughput``.

    Order matters: **equivalence before timing**.  ``sample`` lanes
    spread across the fleet are first replayed on a per-instance
    single-core fused :class:`~repro.rtl.core_sim.RisspSim` and compared
    on the result row *and every RVFI column*; any divergence raises
    ``RuntimeError`` and no timing is reported — a speedup over wrong
    results is not a speedup.  Then the batched fleet is timed end to end
    (construction, pokes, run) against a Python loop constructing and
    running single-core sims over ``baseline_sample`` of the same lanes.
    With ``workers > 1`` the sharded campaign is also timed and its
    merged rows checked bit-identical to the serial rows.
    """
    from ..rtl.core_sim import RisspSim, RunResult
    from ..rtl.fleet import FleetSim
    from ..sim.tracing import RvfiTrace

    core, program = fleet_exercise_target()

    def single_run(lane: int,
                   trace: bool) -> tuple[RisspSim, RunResult]:
        sim = RisspSim(core, program, mem_size=FLEET_MEM_SIZE,
                       backend="fused", trace=trace)
        sim.rtl.regfile_data[FLEET_ID_REGISTER] = fleet_lane_value(lane)
        return sim, sim.run(max_instructions=max_instructions)

    # -- equivalence: sampled lanes, full RVFI columns, before any timing
    sample = max(1, min(sample, instances))
    sampled = sorted({lane * (instances - 1) // max(1, sample - 1)
                      for lane in range(sample)})
    probe = FleetSim(core, program, instances, mem_size=FLEET_MEM_SIZE,
                     trace_lanes=sampled)
    for lane in range(instances):
        probe.poke_regfile(lane, FLEET_ID_REGISTER, fleet_lane_value(lane))
    probe_rows = probe.run(max_instructions=max_instructions,
                           quantum=quantum)
    for lane in sampled:
        sim, reference = single_run(lane, trace=True)
        got = probe_rows[lane]
        if (got.exit_code, got.instructions, got.halted_by) != \
                (reference.exit_code, reference.instructions,
                 reference.halted_by):
            raise RuntimeError(
                f"fleet lane {lane} result diverged from single-core "
                f"fused: {got} vs {reference}")
        fleet_trace = probe.trace(lane)
        for field in RvfiTrace.FIELDS:
            if fleet_trace.column(field) != reference.trace.column(field):
                raise RuntimeError(
                    f"fleet lane {lane} RVFI column {field!r} diverged "
                    f"from single-core fused")

    # -- timed batched fleet (construction + pokes + run, no tracing)
    started = time.perf_counter()
    fleet = FleetSim(core, program, instances, mem_size=FLEET_MEM_SIZE)
    for lane in range(instances):
        fleet.poke_regfile(lane, FLEET_ID_REGISTER, fleet_lane_value(lane))
    results = fleet.run(max_instructions=max_instructions, quantum=quantum)
    fleet_seconds = time.perf_counter() - started
    retirements = sum(result.instructions for result in results)

    # -- baseline: single-core fused sims in a Python loop, same lanes
    baseline_sample = max(1, min(baseline_sample, instances))
    started = time.perf_counter()
    baseline_retirements = 0
    for lane in range(baseline_sample):
        _, reference = single_run(lane, trace=False)
        baseline_retirements += reference.instructions
    single_seconds = time.perf_counter() - started

    fleet_cps = retirements / fleet_seconds
    single_cps = baseline_retirements / single_seconds
    wallclock = {"fleet_batched": fleet_seconds,
                 "single_core_sampled": single_seconds}
    metrics: dict = {
        "campaign": "fleet_throughput",
        "instances": instances,
        "retirements": retirements,
        "quantum": quantum,
        "cpu_count": os.cpu_count() or 1,
        "equivalence_sampled_lanes": len(sampled),
        "single_sampled_instances": baseline_sample,
        "fleet_cycles_per_sec": fleet_cps,
        "single_cycles_per_sec": single_cps,
        "speedup_vs_single": fleet_cps / single_cps,
        "wallclock_sec": wallclock,
    }
    if workers > 1:
        serial_rows = [(lane, result.exit_code, result.instructions,
                        result.halted_by)
                       for lane, result in enumerate(results)]
        started = time.perf_counter()
        sharded_rows = fleet_campaign(
            instances, workers=workers,
            max_instructions=max_instructions, quantum=quantum)
        wallclock[f"fleet_sharded_workers_{workers}"] = \
            time.perf_counter() - started
        # Not an assert: must survive ``python -O``.
        if sharded_rows != serial_rows:
            raise RuntimeError(
                f"sharded fleet campaign at workers={workers} diverged "
                f"from the serial batched run")
        metrics["sharded_workers"] = workers
    return metrics


# ------------------------------------------------------ telemetry probe

#: Per-cause fleet lane programs for :func:`telemetry_probe`: each lane's
#: *first* batched instruction is one the batch must hand over, so every
#: lane produces exactly one divergence of a known cause.  Lanes marked
#: ``True`` need a trap handler (mtvec is poked to the halt-sentinel
#: ecall stub, so the adopted lane spins handler->trap until its tiny
#: budget runs out instead of raising a refusal).
_PROBE_LANES: tuple[tuple[str, str, bool], ...] = (
    ("emulated", ".text\nstart:\n    csrrs t0, mscratch, zero\n"
                 "    ecall\n", False),
    ("mret", ".text\nstart:\n    mret\n", False),
    ("trap", ".text\nstart:\n    ecall\n", True),
    # add x16, x0, x0 — decodable, register field past the RV32E bound
    ("rv32e_bound", ".text\nstart:\n    .word 0x00000833\n", True),
    ("illegal", ".text\nstart:\n    .word 0xFFFFFFFF\n", True),
)


def telemetry_probe() -> None:
    """Exercise every instrumented subsystem once, for the run manifest.

    A ``--telemetry`` run should produce a manifest whose counter
    families are populated regardless of which stages it happened to
    run — that is what makes manifests comparable across runs.  The
    probe is tiny and runs **only** when a telemetry session is active
    (the CLI calls it under its own span, never inside anything timed):

    * a 5-lane :class:`~repro.rtl.fleet.FleetSim` whose lanes each
      diverge for a distinct classified cause (emulated Zicsr, ``mret``,
      trapping ecall, RV32E register-bound word, illegal word);
    * one riscof golden-signature lookup resolved cold plus one resolved
      from the in-process memo, populating the ``riscof.sig_*`` tiers;
    * one tiny golden-checked SoC scenario (``scenario.runs`` /
      ``scenario.replays`` — an SoC scenario, so the fleet lane counts
      above stay exact).

    The fleet probe also exercises the fused fallback path (halt,
    emulated, mret, illegal, hw-trap exits) and the compile caches.
    """
    from ..isa.assembler import assemble
    from ..isa.instructions import INSTRUCTIONS
    from ..rtl.fleet import FleetSim
    from ..rtl.rissp import build_rissp
    from ..scenario.gen import mutate_toward
    from ..scenario.run import run_scenario
    from ..sim.golden import _HALT_SENTINEL
    from ..verify.fuzz import FUZZ_BASE_SEED
    from ..verify.riscof import _reference_signature

    # Trap-capable full-ISA core: the mret/trap/illegal lanes need the
    # hardware trap unit (the plain fleet exercise core has none).
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS] + ["mret"])
    programs = [assemble(source) for _, source, _ in _PROBE_LANES]
    fleet = FleetSim(core, programs=programs, mem_size=FLEET_MEM_SIZE)
    for lane, (_, _, needs_handler) in enumerate(_PROBE_LANES):
        if needs_handler:
            fleet.poke_register(lane, "mtvec", _HALT_SENTINEL)
    fleet.run(max_instructions=32, quantum=16)
    _reference_signature("addi")   # cold: disk hit or golden recompute
    _reference_signature("addi")   # warm: in-process memo hit
    # halt.wfi is the cheapest directed scenario: nothing armed, the
    # first wfi ends the run deterministically on both backends.
    probe_scenario = mutate_toward("halt.wfi", FUZZ_BASE_SEED,
                                   budget=256,
                                   scenario_id="probe:halt.wfi")
    run_scenario(core, probe_scenario, check_backends=True)


# -------------------------------------------------- scaling measurement

#: Compact subset + exercise program for the mutation scaling campaign —
#: the proven pairing from the mutation tests: every mutated datapath
#: (ALU, shifts, compares, upper-imm, memory, branches, jumps) is
#: exercised, so most mutants are distinguishable and no verdict is a
#: trivial early-out.
MUTATION_EXERCISE_SUBSET = (
    "add", "addi", "sub", "and", "or", "xor", "slt", "sll", "srl",
    "lui", "lw", "sw", "beq", "bne", "jal", "jalr", "ecall")

MUTATION_EXERCISE_PROGRAM = """.text
main:
    li a1, 21
    li a2, 2
    li tp, 40
outer:
    add a0, a1, a2
    sub a3, a1, a2
    and a4, a1, a2
    or a5, a1, a2
    xor t0, a1, a2
    slt t1, a2, a1
    sll t2, a1, a2
    srl s0, a1, a2
    lui gp, 0x12345
    add a0, a0, t0
    add a0, a0, t1
    add a0, a0, t2
    add a0, a0, s0
    sw a0, -32(sp)
    lw s1, -32(sp)
    beq a0, s1, good
    li a0, 0x0BAD
good:
    bne a0, zero, next
    li a0, 0x0BAD
next:
    jal s1, leaf
    add a0, a0, a3
    addi tp, tp, -1
    bne tp, zero, outer
    ret
leaf:
    addi a0, a0, 1
    jalr zero, s1, 0
"""


def mutation_exercise_target() -> tuple[Module, Program]:
    """The (core, program) pair the CLI mutation stage and the farm
    scaling benchmark shard."""
    from ..isa.assembler import assemble
    from ..rtl.rissp import build_rissp

    return (build_rissp(list(MUTATION_EXERCISE_SUBSET)),
            assemble(MUTATION_EXERCISE_PROGRAM))


def farm_scaling_metrics(worker_counts: Sequence[int] = (1, 2, 4),
                         limit: int = 32,
                         backends: Sequence[str] = ("fused",),
                         max_instructions: int = 4_000) -> dict:
    """Campaign wall-clock vs worker count, for ``BENCH_farm_scaling``.

    Runs the mutant-kill-matrix campaign once per worker count (the
    embarrassingly parallel shape the farm exists for: every mutant costs
    a fresh compile plus a cosim run) and asserts the merged matrices are
    bit-identical before reporting any timing — a speedup over a wrong
    answer is not a speedup.
    """
    from ..verify.mutation import rtl_mutant_kill_matrix

    core, program = mutation_exercise_target()
    wallclock: dict[str, float] = {}
    matrices = []
    for workers in worker_counts:
        started = time.perf_counter()
        matrix = rtl_mutant_kill_matrix(
            core, program, backends=tuple(backends), limit=limit,
            max_instructions=max_instructions, workers=workers)
        wallclock[f"workers_{workers}"] = time.perf_counter() - started
        matrices.append(matrix)
    reference = matrices[0]
    for workers, matrix in zip(worker_counts, matrices):
        # Not an assert: this guard must survive ``python -O`` — a speedup
        # over a diverged matrix must never be reported.
        if list(matrix.items()) != list(reference.items()):
            raise RuntimeError(
                f"kill matrix at workers={workers} diverged from serial")
    serial = wallclock[f"workers_{worker_counts[0]}"]
    metrics: dict = {
        "campaign": "rtl_mutant_kill_matrix",
        "mutants": len(reference),
        "backend": ",".join(backends),
        "cpu_count": os.cpu_count() or 1,
        "wallclock_sec": wallclock,
    }
    for workers in worker_counts[1:]:
        metrics[f"speedup_workers_{workers}"] = \
            serial / wallclock[f"workers_{workers}"]
    return metrics
