"""Sharded campaign front-ends: enumerate tasks, run, merge deterministically.

Each campaign here follows one shape:

1. **enumerate** the work as picklable task descriptions
   (:mod:`repro.farm.tasks`) in a deterministic order,
2. **run** them through :func:`repro.farm.runner.run_tasks` (serial at
   ``workers=1``, process pool otherwise),
3. **merge** the results *in task order* into exactly the structure the
   serial code path produces — so every campaign is bit-identical for any
   worker count, which the farm tests assert by diffing merged results.

The kill-matrix and compliance campaigns are the farm backends of
:func:`repro.verify.mutation.rtl_mutant_kill_matrix` and
:func:`repro.verify.riscof.run_compliance`; the cosim campaign is the
``repro`` CLI's cosim stage (real workloads on their own generated cores,
plus seeded fuzz chunks).
"""

from __future__ import annotations

import os
import time

from ..isa.program import Program
from ..rtl.ir import Module
from ..verify.fuzz import FUZZ_BASE_SEED, derive_seed
from .runner import run_tasks
from .tasks import ComplianceTask, CoreSpec, CosimTask, FuzzCosimTask, MutantTask

# ------------------------------------------------------------- mutation

def sharded_mutant_kill_matrix(core: Module, program: Program, backends,
                               limit: int = 24,
                               max_instructions: int = 2_000,
                               workers: int = 1
                               ) -> dict[str, dict[str, str | None]]:
    """Farm path of :func:`repro.verify.mutation.rtl_mutant_kill_matrix`:
    one task per mutant, merged in enumeration order."""
    from ..verify.mutation import enumerate_rtl_mutations

    spec = CoreSpec.of(core)
    count = len(enumerate_rtl_mutations(core, limit=limit))
    tasks = [MutantTask(task_id=f"mutant[{index:03d}]", core=spec,
                        program=program, index=index, limit=limit,
                        backends=tuple(backends),
                        max_instructions=max_instructions)
             for index in range(count)]
    return dict(run_tasks(tasks, workers=workers))


# ----------------------------------------------------------- compliance

def sharded_compliance_mismatches(core: Module, targets, workers: int = 1,
                                  shards: int = 0) -> list[str]:
    """Farm path of :func:`repro.verify.riscof.run_compliance`: the
    target list split into ``shards`` contiguous groups (0 = one group
    per worker), mismatches concatenated in target order."""
    spec = CoreSpec.of(core)
    targets = list(targets)
    shards = shards or workers
    shards = max(1, min(shards, len(targets)))
    groups: list[list[str]] = [[] for _ in range(shards)]
    for index, mnemonic in enumerate(targets):
        groups[index % shards].append(mnemonic)
    tasks = [ComplianceTask(task_id=f"compliance[{index:02d}]", core=spec,
                            mnemonics=tuple(group))
             for index, group in enumerate(groups) if group]
    results = run_tasks(tasks, workers=workers)
    # Round-robin sharding + per-shard target order means re-interleaving
    # by original target position restores the serial mismatch order.
    by_mnemonic: dict[str, list[str]] = {}
    for task, mismatches in zip(tasks, results):
        remaining = list(mismatches)
        for mnemonic in task.mnemonics:
            mine = [m for m in remaining if m.startswith(f"{mnemonic}:")]
            by_mnemonic[mnemonic] = mine
            remaining = [m for m in remaining if m not in mine]
    merged: list[str] = []
    for mnemonic in targets:
        merged.extend(by_mnemonic.get(mnemonic, []))
    return merged


# ---------------------------------------------------------------- cosim

def workload_target(name: str) -> tuple[Module, Program, object]:
    """Build one workload's (core, program, soc_spec) the same way the
    end-to-end flow does — compile, profile the binary, stitch the RISSP
    for its subset — minus synthesis, which cosimulation never needs."""
    from ..core.subset_analysis import profile_program
    from ..rtl.rissp import build_rissp
    from ..workloads import WORKLOADS, build_program

    workload = WORKLOADS[name]
    program = build_program(workload)
    profile = profile_program(name, program,
                              "-" if workload.lang == "asm" else "O2")
    core = build_rissp(profile.core_subset(), name=f"rissp_{name}",
                       reset_pc=program.entry)
    return core, program, workload.soc_spec


def cosim_campaign(workloads=(), fuzz_chunks: int = 0,
                   fuzz_seed: int = FUZZ_BASE_SEED,
                   backend: str | None = "fused",
                   max_instructions: int = 2_000_000,
                   fuzz_max_instructions: int = 20_000,
                   workers: int = 1) -> dict[str, str | None]:
    """Cosimulation verdicts for named workloads plus seeded fuzz chunks.

    Returns ``{task id: verdict}`` in task order — workloads first (each
    on its own generated core, with its SoC platform when it has one),
    then fuzz chunk ``i`` with seed ``derive_seed(fuzz_seed, i)`` on the
    full-ISA core.  ``None`` verdicts are clean lock-step matches through
    halt; the task ids of fuzz chunks embed their seeds, so any failure
    is reported as a replayable ``(task-id, seed)`` pair.
    """
    tasks: list = []
    for name in workloads:
        core, program, soc_spec = workload_target(name)
        tasks.append(CosimTask(task_id=f"cosim:{name}",
                               core=CoreSpec.of(core), program=program,
                               backend=backend,
                               max_instructions=max_instructions,
                               soc=soc_spec))
    if fuzz_chunks:
        from ..isa.instructions import INSTRUCTIONS
        from ..rtl.rissp import build_rissp

        full = build_rissp([d.mnemonic for d in INSTRUCTIONS])
        full_spec = CoreSpec.of(full)
        for index in range(fuzz_chunks):
            seed = derive_seed(fuzz_seed, index)
            tasks.append(FuzzCosimTask(
                task_id=f"fuzz[{index:03d}]:seed={seed:#018x}",
                core=full_spec, seed=seed, backend=backend,
                max_instructions=fuzz_max_instructions))
    results = run_tasks(tasks, workers=workers)
    return {task.task_id: verdict
            for task, verdict in zip(tasks, results)}


# -------------------------------------------------- scaling measurement

#: Compact subset + exercise program for the mutation scaling campaign —
#: the proven pairing from the mutation tests: every mutated datapath
#: (ALU, shifts, compares, upper-imm, memory, branches, jumps) is
#: exercised, so most mutants are distinguishable and no verdict is a
#: trivial early-out.
MUTATION_EXERCISE_SUBSET = (
    "add", "addi", "sub", "and", "or", "xor", "slt", "sll", "srl",
    "lui", "lw", "sw", "beq", "bne", "jal", "jalr", "ecall")

MUTATION_EXERCISE_PROGRAM = """.text
main:
    li a1, 21
    li a2, 2
    li tp, 40
outer:
    add a0, a1, a2
    sub a3, a1, a2
    and a4, a1, a2
    or a5, a1, a2
    xor t0, a1, a2
    slt t1, a2, a1
    sll t2, a1, a2
    srl s0, a1, a2
    lui gp, 0x12345
    add a0, a0, t0
    add a0, a0, t1
    add a0, a0, t2
    add a0, a0, s0
    sw a0, -32(sp)
    lw s1, -32(sp)
    beq a0, s1, good
    li a0, 0x0BAD
good:
    bne a0, zero, next
    li a0, 0x0BAD
next:
    jal s1, leaf
    add a0, a0, a3
    addi tp, tp, -1
    bne tp, zero, outer
    ret
leaf:
    addi a0, a0, 1
    jalr zero, s1, 0
"""


def mutation_exercise_target() -> tuple[Module, Program]:
    """The (core, program) pair the CLI mutation stage and the farm
    scaling benchmark shard."""
    from ..isa.assembler import assemble
    from ..rtl.rissp import build_rissp

    return (build_rissp(list(MUTATION_EXERCISE_SUBSET)),
            assemble(MUTATION_EXERCISE_PROGRAM))


def farm_scaling_metrics(worker_counts=(1, 2, 4), limit: int = 32,
                         backends=("fused",),
                         max_instructions: int = 4_000) -> dict:
    """Campaign wall-clock vs worker count, for ``BENCH_farm_scaling``.

    Runs the mutant-kill-matrix campaign once per worker count (the
    embarrassingly parallel shape the farm exists for: every mutant costs
    a fresh compile plus a cosim run) and asserts the merged matrices are
    bit-identical before reporting any timing — a speedup over a wrong
    answer is not a speedup.
    """
    from ..verify.mutation import rtl_mutant_kill_matrix

    core, program = mutation_exercise_target()
    wallclock: dict[str, float] = {}
    matrices = []
    for workers in worker_counts:
        started = time.perf_counter()
        matrix = rtl_mutant_kill_matrix(
            core, program, backends=tuple(backends), limit=limit,
            max_instructions=max_instructions, workers=workers)
        wallclock[f"workers_{workers}"] = time.perf_counter() - started
        matrices.append(matrix)
    reference = matrices[0]
    for workers, matrix in zip(worker_counts, matrices):
        # Not an assert: this guard must survive ``python -O`` — a speedup
        # over a diverged matrix must never be reported.
        if list(matrix.items()) != list(reference.items()):
            raise RuntimeError(
                f"kill matrix at workers={workers} diverged from serial")
    serial = wallclock[f"workers_{worker_counts[0]}"]
    metrics: dict = {
        "campaign": "rtl_mutant_kill_matrix",
        "mutants": len(reference),
        "backend": ",".join(backends),
        "cpu_count": os.cpu_count() or 1,
        "wallclock_sec": wallclock,
    }
    for workers in worker_counts[1:]:
        metrics[f"speedup_workers_{workers}"] = \
            serial / wallclock[f"workers_{workers}"]
    return metrics
