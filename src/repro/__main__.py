"""``python -m repro`` — the repro CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
