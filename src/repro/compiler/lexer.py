"""Lexer for MicroC, the C subset the workload kernels are written in."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "unsigned", "char", "short", "void", "if", "else", "while",
    "for", "do", "return", "break", "continue", "const", "static",
    # PR 5 system extension: qualifier marking a function as an ISR
    # (codegen saves all caller-saved state and returns with mret).
    "__interrupt",
}

_PUNCT = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str        # "num" | "ident" | "kw" | "punct" | "str" | "char" | "eof"
    text: str
    value: int = 0
    line: int = 0


def tokenize(source: str) -> list[Token]:
    """Tokenize MicroC source; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos], 10)
            if pos < length and source[pos] in "uUlL":
                pos += 1  # accept single integer suffix
            tokens.append(Token("num", source[start:pos], value, line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            continue
        if ch == "'":
            end = pos + 1
            if end < length and source[end] == "\\":
                end += 1
            end += 1
            if end >= length or source[end] != "'":
                raise LexError("bad character literal", line)
            inner = source[pos + 1:end].encode().decode("unicode_escape")
            tokens.append(Token("char", source[pos:end + 1],
                                ord(inner), line))
            pos = end + 1
            continue
        if ch == '"':
            end = pos + 1
            while end < length and source[end] != '"':
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise LexError("unterminated string literal", line)
            raw = source[pos + 1:end].encode().decode("unicode_escape")
            tokens.append(Token("str", raw, 0, line))
            pos = end + 1
            continue
        for punct in _PUNCT:
            if source.startswith(punct, pos):
                tokens.append(Token("punct", punct, 0, line))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", 0, line))
    return tokens
