"""Recursive-descent parser for MicroC."""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.unit = ast.TranslationUnit()
        self._str_count = 0

    # ---------------------------------------------------------- token utils

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token.kind in ("punct", "kw") and token.text == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if not self.accept(text):
            raise ParseError(f"expected {text!r}", token)
        return token

    def expect_ident(self) -> str:
        token = self.next()
        if token.kind != "ident":
            raise ParseError("expected identifier", token)
        return token.text

    # -------------------------------------------------------------- types

    def at_type(self) -> bool:
        token = self.peek()
        if token.kind != "kw":
            return False
        return token.text in ("int", "unsigned", "char", "short", "void",
                              "const", "static")

    def parse_type(self) -> ast.CType:
        while self.accept("const") or self.accept("static"):
            pass
        unsigned = self.accept("unsigned")
        token = self.peek()
        base = "int"
        if token.kind == "kw" and token.text in ("int", "char", "short",
                                                 "void"):
            self.next()
            base = token.text
        elif not unsigned:
            raise ParseError("expected type name", token)
        if unsigned:
            base = {"int": "uint", "char": "uchar", "short": "ushort",
                    "void": "uint"}.get(base, "uint")
        ctype = ast.CType(base)
        while self.accept("*"):
            ctype = ctype.ptr()
        while self.accept("const"):
            pass
        return ctype

    # ---------------------------------------------------------- top level

    def parse(self) -> ast.TranslationUnit:
        while self.peek().kind != "eof":
            self.parse_top_level()
        return self.unit

    def parse_top_level(self) -> None:
        interrupt = self.accept("__interrupt")
        ctype = self.parse_type()
        name = self.expect_ident()
        if self.peek().text == "(":
            func = self.parse_function(ctype, name)
            if func is not None:
                func.interrupt = interrupt
                self.unit.functions.append(func)
            return
        if interrupt:
            raise ParseError("__interrupt qualifies functions only",
                             self.peek())
        # global variable(s)
        while True:
            array = None
            if self.accept("["):
                array = self.parse_const_expr()
                self.expect("]")
            init = None
            init_list = None
            init_str = None
            if self.accept("="):
                if self.peek().kind == "str":
                    init_str = self.next().text
                    if array is None:
                        array = len(init_str) + 1
                elif self.accept("{"):
                    init_list = []
                    while not self.accept("}"):
                        init_list.append(ast.Num(self.parse_const_expr()))
                        if not self.accept(","):
                            self.expect("}")
                            break
                    if array is None:
                        array = len(init_list)
                else:
                    init = ast.Num(self.parse_const_expr())
            self.unit.globals.append(
                ast.Global(name, ctype, array, init, init_list, init_str))
            if self.accept(","):
                name = self.expect_ident()
                continue
            self.expect(";")
            break

    def parse_function(self, return_type: ast.CType,
                       name: str) -> ast.Function:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            if self.peek().text == "void" and self.peek(1).text == ")":
                self.next()
                self.expect(")")
            else:
                while True:
                    ptype = self.parse_type()
                    pname = self.expect_ident()
                    if self.accept("["):
                        self.expect("]")
                        ptype = ptype.ptr()   # array param decays
                    params.append(ast.Param(pname, ptype))
                    if not self.accept(","):
                        break
                self.expect(")")
        if self.accept(";"):
            return None    # forward declaration (prototype)
        body = self.parse_block()
        return ast.Function(name, return_type, params, body)

    # ------------------------------------------------------- const exprs

    def parse_const_expr(self) -> int:
        expr = self.parse_ternary()
        value = const_eval(expr)
        if value is None:
            raise ParseError("constant expression required", self.peek())
        return value

    # --------------------------------------------------------- statements

    def parse_block(self) -> ast.Block:
        self.expect("{")
        statements = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return ast.Block(statements)

    def parse_statement(self):
        token = self.peek()
        if token.text == "{":
            return self.parse_block()
        if self.accept(";"):
            return ast.Block([])
        if self.at_type():
            return self.parse_decl()
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_statement()
            other = self.parse_statement() if self.accept("else") else None
            return ast.If(cond, then, other)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            return ast.While(cond, self.parse_statement())
        if self.accept("do"):
            body = self.parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.While(cond, body, do_while=True)
        if self.accept("for"):
            self.expect("(")
            init = None
            if not self.accept(";"):
                init = self.parse_decl() if self.at_type() else \
                    ast.ExprStmt(self.parse_expr())
                if isinstance(init, ast.ExprStmt):
                    self.expect(";")
            cond = None
            if not self.accept(";"):
                cond = self.parse_expr()
                self.expect(";")
            step = None
            if self.peek().text != ")":
                step = self.parse_expr()
            self.expect(")")
            return ast.For(init, cond, step, self.parse_statement())
        if self.accept("return"):
            value = None
            if self.peek().text != ";":
                value = self.parse_expr()
            self.expect(";")
            return ast.Return(value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break()
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue()
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(expr)

    def parse_decl(self) -> ast.Decl:
        ctype = self.parse_type()
        name = self.expect_ident()
        array = None
        if self.accept("["):
            array = self.parse_const_expr()
            self.expect("]")
        init = None
        init_list = None
        if self.accept("="):
            if self.accept("{"):
                init_list = []
                while not self.accept("}"):
                    init_list.append(ast.Num(self.parse_const_expr()))
                    if not self.accept(","):
                        self.expect("}")
                        break
            else:
                init = self.parse_assignment()
        self.expect(";")
        return ast.Decl(name, ctype, array, init, init_list)

    # ------------------------------------------------------- expressions

    def parse_expr(self):
        expr = self.parse_assignment()
        while self.accept(","):
            expr = ast.Binary(",", expr, self.parse_assignment())
        return expr

    _ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>=")

    def parse_assignment(self):
        left = self.parse_ternary()
        token = self.peek()
        if token.kind == "punct" and token.text in self._ASSIGN_OPS:
            self.next()
            return ast.Assign(token.text, left, self.parse_assignment())
        return left

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_assignment()
            self.expect(":")
            return ast.Ternary(cond, then, self.parse_ternary())
        return cond

    _PRECEDENCE = [
        ("||",), ("&&",), ("|",), ("^",), ("&",), ("==", "!="),
        ("<", "<=", ">", ">="), ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def parse_binary(self, level: int):
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.kind == "punct" and token.text in self._PRECEDENCE[level]:
                self.next()
                right = self.parse_binary(level + 1)
                left = ast.Binary(token.text, left, right)
            else:
                return left

    def parse_unary(self):
        token = self.peek()
        if token.kind == "punct" and token.text in ("-", "~", "!", "*", "&"):
            self.next()
            return ast.Unary(token.text, self.parse_unary())
        if token.kind == "punct" and token.text in ("++", "--"):
            self.next()
            return ast.IncDec(token.text, self.parse_unary(), prefix=True)
        if token.text == "(" and self.peek(1).kind == "kw" \
                and self.peek(1).text in ("int", "unsigned", "char", "short",
                                          "void", "const"):
            self.next()
            ctype = self.parse_type()
            self.expect(")")
            return ast.Cast(ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(expr, index)
            elif self.peek().text in ("++", "--") \
                    and self.peek().kind == "punct":
                op = self.next().text
                expr = ast.IncDec(op, expr, prefix=False)
            else:
                return expr

    def parse_primary(self):
        token = self.next()
        if token.kind in ("num", "char"):
            return ast.Num(token.value)
        if token.kind == "str":
            label = f".str{self._str_count}"
            self._str_count += 1
            lit = ast.StrLit(token.text, label)
            self.unit.strings.append(lit)
            return lit
        if token.kind == "ident":
            if self.peek().text == "(" and self.peek().kind == "punct":
                self.next()
                args = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return ast.Call(token.text, args)
            return ast.Var(token.text)
        if token.kind == "punct" and token.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError("expected expression", token)


def const_eval(expr):
    """Fold a constant AST expression to an int, or None.

    Public: the parser uses it for array bounds and initializers, and
    irgen folds the CSR-id operands of the system intrinsics with it."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Unary):
        inner = const_eval(expr.operand)
        if inner is None:
            return None
        return {"-": -inner, "~": ~inner,
                "!": int(not inner)}.get(expr.op)
    if isinstance(expr, ast.Binary):
        left = const_eval(expr.left)
        right = const_eval(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else None,
                "%": left % right if right else None,
                "<<": left << right, ">>": left >> right,
                "&": left & right, "|": left | right, "^": left ^ right,
            }.get(expr.op)
        except (ValueError, ZeroDivisionError):
            return None
    return None


def parse(source: str) -> ast.TranslationUnit:
    return Parser(source).parse()
