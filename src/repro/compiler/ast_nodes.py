"""AST node definitions for MicroC."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CType:
    """A MicroC type: base width/signedness plus optional pointer level."""

    base: str            # "int" | "uint" | "char" | "uchar" | "short"
    #                      | "ushort" | "void"
    pointer: int = 0     # levels of indirection

    @property
    def size(self) -> int:
        if self.pointer:
            return 4
        return {"int": 4, "uint": 4, "short": 2, "ushort": 2,
                "char": 1, "uchar": 1, "void": 0}[self.base]

    @property
    def signed(self) -> bool:
        if self.pointer:
            return False
        return self.base in ("int", "short", "char")

    def deref(self) -> "CType":
        if not self.pointer:
            raise TypeError("dereference of non-pointer")
        return CType(self.base, self.pointer - 1)

    def ptr(self) -> "CType":
        return CType(self.base, self.pointer + 1)


INT = CType("int")
UINT = CType("uint")


# ---------------------------------------------------------------- expressions

@dataclass
class Num:
    value: int
    type: CType = INT


@dataclass
class StrLit:
    value: str     # raw bytes, NUL appended at layout time
    label: str = ""


@dataclass
class Var:
    name: str


@dataclass
class Unary:
    op: str        # "-" "~" "!" "*" "&"
    operand: object


@dataclass
class Binary:
    op: str
    left: object
    right: object


@dataclass
class Assign:
    op: str        # "=" "+=" ...
    target: object
    value: object


@dataclass
class IncDec:
    op: str        # "++" or "--"
    target: object
    prefix: bool


@dataclass
class Ternary:
    cond: object
    then: object
    other: object


@dataclass
class Call:
    name: str
    args: list


@dataclass
class Index:
    base: object
    index: object


@dataclass
class Cast:
    type: CType
    operand: object


# ---------------------------------------------------------------- statements

@dataclass
class ExprStmt:
    expr: object


@dataclass
class Decl:
    name: str
    type: CType
    array: int | None          # element count, None for scalars
    init: object | None
    init_list: list | None = None


@dataclass
class If:
    cond: object
    then: object
    other: object | None


@dataclass
class While:
    cond: object
    body: object
    do_while: bool = False


@dataclass
class For:
    init: object | None
    cond: object | None
    step: object | None
    body: object


@dataclass
class Return:
    value: object | None


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class Block:
    statements: list


# ----------------------------------------------------------------- top level

@dataclass
class Param:
    name: str
    type: CType


@dataclass
class Function:
    name: str
    return_type: CType
    params: list[Param]
    body: Block
    #: ``__interrupt``-qualified: emitted as an ISR (all caller-saved
    #: registers preserved, returns with ``mret``).
    interrupt: bool = False


@dataclass
class Global:
    name: str
    type: CType
    array: int | None
    init: object | None                 # Num for scalars
    init_list: list | None = None       # [Num...] for arrays
    init_str: str | None = None         # for char arrays


@dataclass
class TranslationUnit:
    globals: list[Global] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    strings: list[StrLit] = field(default_factory=list)
