"""RV32E assembly emission from optimized IR."""

from __future__ import annotations

from .ir import GlobalData, IrFunction, IrInstr, IrModule, VReg
from .regalloc import (
    ARG_REGS,
    Assignment,
    LinearScanAllocator,
    SCRATCH,
    SpillAllAllocator,
)

_BRANCH = {"eq": "beq", "ne": "bne", "lt": "blt", "ge": "bge",
           "ltu": "bltu", "geu": "bgeu"}

_BIN_ASM = {"add": "add", "sub": "sub", "and": "and", "or": "or",
            "xor": "xor", "shl": "sll", "shr": "sra", "ushr": "srl",
            "slt": "slt", "sltu": "sltu"}

_BINI_ASM = {"add": "addi", "and": "andi", "or": "ori", "xor": "xori",
             "slt": "slti", "sltu": "sltiu", "shl": "slli", "shr": "srai",
             "ushr": "srli"}

_LOAD_ASM = {(1, True): "lb", (1, False): "lbu", (2, True): "lh",
             (2, False): "lhu", (4, True): "lw", (4, False): "lw"}

_STORE_ASM = {1: "sb", 2: "sh", 4: "sw"}

_BUILTIN = {"mul": "__mulsi3", "div": "__divsi3", "udiv": "__udivsi3",
            "rem": "__modsi3", "urem": "__umodsi3"}

#: Assembler pseudo-instruction per CSR IR op (rd-less write forms).
_CSR_ASM = {"csrw": "csrw", "csrs": "csrs", "csrc": "csrc"}

#: Registers an ISR must preserve besides the used callee-saved set:
#: everything the ABI lets ordinary code clobber freely — the return
#: address, both spill-scratch registers and all temporaries/arguments.
_ISR_CLOBBERED = ("ra", "gp", "tp", "t0", "t1", "t2",
                  "a0", "a1", "a2", "a3", "a4", "a5")


class CodegenError(ValueError):
    pass


class FunctionEmitter:
    def __init__(self, fn: IrFunction, assignment: Assignment,
                 module: IrModule):
        self.fn = fn
        self.assign = assignment
        self.module = module
        self.lines: list[str] = []
        self._scratch_turn = 0
        self.has_call = any(
            instr.op == "call"
            or (instr.op == "bin" and instr.subop in _BUILTIN)
            for instr in fn.instrs)
        self._layout_frame()

    # ----------------------------------------------------------- frame

    def _layout_frame(self) -> None:
        offset = 0
        self.spill_base = offset
        offset += 4 * self.assign.num_spill_slots
        self.slot_offsets: dict[str, int] = {}
        for slot in self.fn.slots:
            self.slot_offsets[slot.name] = offset
            offset += slot.size
        self.save_offsets: dict[str, int] = {}
        if self.fn.is_interrupt:
            # ISR prologue: the interrupted code did not expect a call,
            # so every caller-saved register the handler touches must be
            # preserved across entry/mret.  A handler that calls out can
            # clobber the full set through its callees; a leaf handler
            # only clobbers the registers the allocator actually handed
            # out (plus gp/tp, the spill scratch, when anything spills).
            if self.has_call:
                clobbered = set(_ISR_CLOBBERED)
            else:
                clobbered = set(self.assign.regs.values())
                if self.assign.num_spill_slots:
                    clobbered.update(SCRATCH)
            saved = [name for name in _ISR_CLOBBERED if name in clobbered]
            saved += list(self.assign.used_callee_saved)
        else:
            saved = (["ra"] if self.has_call else []) \
                + list(self.assign.used_callee_saved)
        for name in saved:
            self.save_offsets[name] = offset
            offset += 4
        self.frame_size = (offset + 15) & ~15

    # ------------------------------------------------------------ helpers

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def _scratch(self) -> str:
        name = SCRATCH[self._scratch_turn % len(SCRATCH)]
        self._scratch_turn += 1
        return name

    def src(self, reg: VReg) -> str:
        """Materialize a vreg for reading; may emit a reload."""
        loc = self.assign.location(reg)
        if isinstance(loc, str):
            return loc
        scratch = self._scratch()
        offset = self.spill_base + 4 * loc
        if offset <= 2047:
            self.emit(f"lw {scratch}, {offset}(sp)")
        else:
            self.emit(f"li {scratch}, {offset}")
            self.emit(f"add {scratch}, {scratch}, sp")
            self.emit(f"lw {scratch}, 0({scratch})")
        return scratch

    def dst(self, reg: VReg) -> tuple[str, int | None]:
        """Destination register and (if spilled) the slot to store back."""
        loc = self.assign.location(reg)
        if isinstance(loc, str):
            return loc, None
        return self._scratch(), loc

    def store_back(self, name: str, slot: int | None) -> None:
        if slot is None:
            return
        offset = self.spill_base + 4 * slot
        if offset <= 2047:
            self.emit(f"sw {name}, {offset}(sp)")
        else:
            other = SCRATCH[1] if name == SCRATCH[0] else SCRATCH[0]
            self.emit(f"li {other}, {offset}")
            self.emit(f"add {other}, {other}, sp")
            self.emit(f"sw {name}, 0({other})")


    def _sp_load(self, dst: str, offset: int) -> None:
        if offset <= 2047:
            self.emit(f"lw {dst}, {offset}(sp)")
        else:
            self.emit(f"li {dst}, {offset}")
            self.emit(f"add {dst}, {dst}, sp")
            self.emit(f"lw {dst}, 0({dst})")

    def _sp_store(self, src: str, offset: int, scratch: str = "gp") -> None:
        if offset <= 2047:
            self.emit(f"sw {src}, {offset}(sp)")
        else:
            if scratch == src:
                scratch = "tp"
            self.emit(f"li {scratch}, {offset}")
            self.emit(f"add {scratch}, {scratch}, sp")
            self.emit(f"sw {src}, 0({scratch})")

    def _parallel_move(self, moves: list[tuple[str, str]]) -> None:
        """Resolve register-to-register parallel moves (cycles via gp)."""
        pending = [(dst, src) for dst, src in moves if dst != src]
        while pending:
            progressed = False
            blocked_sources = {src for _, src in pending}
            for move in list(pending):
                dst, src = move
                if dst not in blocked_sources:
                    self.emit(f"mv {dst}, {src}")
                    pending.remove(move)
                    progressed = True
                    blocked_sources = {s for _, s in pending}
            if pending and not progressed:
                dst, src = pending.pop(0)
                self.emit(f"mv gp, {src}")
                pending = [(d, "gp" if s == src else s) for d, s in pending]
                pending.append((dst, "gp"))

    # -------------------------------------------------------------- emit

    def run(self) -> list[str]:
        self.label(self.fn.name)
        if self.fn.is_interrupt and self.frame_size > 2047:
            # The large-frame paths spill through gp outside the
            # save/restore window (li gp in the prologue before gp is
            # saved, and in the epilogue after it is restored), which
            # would corrupt the interrupted code's state across mret.
            # 2047 is the bound because the epilogue's addi tops out
            # there; refuse anything that would take the gp path.
            raise CodegenError(f"{self.fn.name}: __interrupt frame of "
                               f"{self.frame_size} bytes exceeds 2047")
        if self.frame_size:
            if self.frame_size <= 2048:
                self.emit(f"addi sp, sp, -{self.frame_size}")
            else:
                self.emit(f"li gp, {self.frame_size}")
                self.emit("sub sp, sp, gp")
        for name, offset in self.save_offsets.items():
            self._sp_store(name, offset)
        self._bind_params()
        self.epilogue_label = f".Lret_{self.fn.name}"
        used_epilogue = False
        instrs = self.fn.instrs
        for index, instr in enumerate(instrs):
            is_last = index == len(instrs) - 1
            if instr.op == "ret":
                if instr.a is not None:
                    value = self.src(instr.a)
                    if value != "a0":
                        self.emit(f"mv a0, {value}")
                if not is_last:
                    self.emit(f"j {self.epilogue_label}")
                    used_epilogue = True
                continue
            self._instr(instr, instrs, index)
        if used_epilogue:
            self.label(self.epilogue_label)
        for name, offset in self.save_offsets.items():
            self._sp_load(name, offset)
        if self.frame_size:
            if self.frame_size <= 2047:
                self.emit(f"addi sp, sp, {self.frame_size}")
            else:
                self.emit(f"li gp, {self.frame_size}")
                self.emit("add sp, sp, gp")
        self.emit("mret" if self.fn.is_interrupt else "ret")
        return self.lines

    def _bind_params(self) -> None:
        reg_moves: list[tuple[str, str]] = []
        for index, param in enumerate(self.fn.params):
            loc = self.assign.location(param)
            if isinstance(loc, str):
                reg_moves.append((loc, ARG_REGS[index]))
            else:
                self._sp_store(ARG_REGS[index],
                               self.spill_base + 4 * loc)
        self._parallel_move(reg_moves)

    def _emit_call(self, target: str, args: list[VReg],
                   dest: VReg | None) -> None:
        reg_moves: list[tuple[str, str]] = []
        spill_loads: list[tuple[str, int]] = []
        for index, arg in enumerate(args):
            loc = self.assign.location(arg)
            if isinstance(loc, str):
                reg_moves.append((ARG_REGS[index], loc))
            else:
                spill_loads.append((ARG_REGS[index],
                                    self.spill_base + 4 * loc))
        # Register moves first: a spilled reload into aX would clobber a
        # register-resident argument still waiting to be moved out of aX.
        self._parallel_move(reg_moves)
        for reg, offset in spill_loads:
            self._sp_load(reg, offset)
        self.emit(f"call {target}")
        if dest is not None:
            name, slot = self.dst(dest)
            if slot is not None:
                self.store_back("a0", slot)
            elif name != "a0":
                self.emit(f"mv {name}, a0")

    def _instr(self, instr: IrInstr, instrs: list[IrInstr],
               index: int) -> None:
        op = instr.op
        if op == "label":
            self.label(instr.symbol)
            return
        if op == "jmp":
            if not self._falls_through(instrs, index, instr.target):
                self.emit(f"j {instr.target}")
            return
        if op == "const":
            name, slot = self.dst(instr.dest)
            value = instr.value
            if value & 0x80000000:
                value -= 0x100000000
            self.emit(f"li {name}, {value}")
            self.store_back(name, slot)
            return
        if op == "mov":
            src = self.src(instr.a)
            name, slot = self.dst(instr.dest)
            if slot is not None:
                self.store_back(src, slot)
            elif name != src:
                self.emit(f"mv {name}, {src}")
            return
        if op == "la":
            name, slot = self.dst(instr.dest)
            self.emit(f"la {name}, {instr.symbol}")
            self.store_back(name, slot)
            return
        if op == "localaddr":
            offset = self.slot_offsets[instr.symbol]
            name, slot = self.dst(instr.dest)
            if offset <= 2047:
                self.emit(f"addi {name}, sp, {offset}")
            else:
                self.emit(f"li {name}, {offset}")
                self.emit(f"add {name}, {name}, sp")
            self.store_back(name, slot)
            return
        if op == "bin":
            if instr.subop in _BUILTIN:
                self.module.builtins_used.add(_BUILTIN[instr.subop])
                self._emit_call(_BUILTIN[instr.subop],
                                [instr.a, instr.b], instr.dest)
                return
            a = self.src(instr.a)
            b = self.src(instr.b)
            name, slot = self.dst(instr.dest)
            self.emit(f"{_BIN_ASM[instr.subop]} {name}, {a}, {b}")
            self.store_back(name, slot)
            return
        if op == "bini":
            a = self.src(instr.a)
            name, slot = self.dst(instr.dest)
            self.emit(f"{_BINI_ASM[instr.subop]} {name}, {a}, "
                      f"{instr.value}")
            self.store_back(name, slot)
            return
        if op == "load":
            addr = self.src(instr.a)
            name, slot = self.dst(instr.dest)
            mnemonic = _LOAD_ASM[(instr.width, instr.signed)]
            self.emit(f"{mnemonic} {name}, 0({addr})")
            self.store_back(name, slot)
            return
        if op == "store":
            addr = self.src(instr.a)
            value = self.src(instr.b)
            self.emit(f"{_STORE_ASM[instr.width]} {value}, 0({addr})")
            return
        if op == "call":
            self._emit_call(instr.symbol, instr.args, instr.dest)
            return
        if op == "csrr":
            name, slot = self.dst(instr.dest)
            self.emit(f"csrr {name}, {instr.value:#x}")
            self.store_back(name, slot)
            return
        if op in _CSR_ASM:
            value = self.src(instr.a)
            self.emit(f"{_CSR_ASM[op]} {instr.value:#x}, {value}")
            return
        if op == "wfi":
            self.emit("wfi")
            return
        if op == "cbr":
            a = self.src(instr.a)
            b = self.src(instr.b)
            self.emit(f"{_BRANCH[instr.subop]} {a}, {b}, {instr.target}")
            if not self._falls_through(instrs, index, instr.target2):
                self.emit(f"j {instr.target2}")
            return
        if op == "br":
            value = self.src(instr.a)
            self.emit(f"bnez {value}, {instr.target}")
            if not self._falls_through(instrs, index, instr.target2):
                self.emit(f"j {instr.target2}")
            return
        raise CodegenError(f"cannot emit IR op {op!r}")

    @staticmethod
    def _falls_through(instrs: list[IrInstr], index: int,
                       target: str) -> bool:
        follow = index + 1
        while follow < len(instrs) and instrs[follow].op == "label":
            if instrs[follow].symbol == target:
                return True
            follow += 1
        return False


def emit_data(data: list[GlobalData]) -> list[str]:
    lines = [".data"]
    for glob in data:
        lines.append(f"{glob.name}:")
        if glob.raw is not None:
            blob = glob.raw
            for start in range(0, len(blob), 12):
                chunk = ", ".join(str(b) for b in blob[start:start + 12])
                lines.append(f"    .byte {chunk}")
            if len(blob) % 4:
                lines.append(f"    .space {4 - len(blob) % 4}")
        elif glob.words is not None:
            words = glob.words
            for start in range(0, len(words), 8):
                chunk = ", ".join(
                    str(w & 0xFFFFFFFF) for w in words[start:start + 8])
                lines.append(f"    .word {chunk}")
        else:
            lines.append(f"    .space {glob.size}")
    return lines


def emit_module(module: IrModule, opt_level: str) -> str:
    """Emit the whole module as assembly text (entry function first)."""
    lines: list[str] = emit_data(module.data)
    lines.append(".text")
    allocator = SpillAllAllocator() if opt_level == "O0" \
        else LinearScanAllocator()
    order = sorted(module.functions,
                   key=lambda name: (name != "main", name))
    for name in order:
        fn = module.functions[name]
        assignment = allocator.allocate(fn)
        lines.extend(FunctionEmitter(fn, assignment, module).run())
    from .builtins import BUILTIN_ASM
    emitted = set()
    # builtins may reference each other (__divsi3 calls __udivsi3)
    queue = sorted(module.builtins_used)
    while queue:
        builtin = queue.pop(0)
        if builtin in emitted:
            continue
        emitted.add(builtin)
        text, deps = BUILTIN_ASM[builtin]
        lines.append(text)
        queue.extend(d for d in deps if d not in emitted)
    return "\n".join(lines) + "\n"
