"""AST -> IR lowering with type checking for MicroC."""

from __future__ import annotations

from dataclasses import dataclass

from . import ast_nodes as ast
from .ir import FrameSlot, GlobalData, IrFunction, IrInstr, IrModule, VReg


class SemaError(ValueError):
    pass


@dataclass
class _Local:
    """A scalar local bound to a vreg, or an array bound to a frame slot."""

    ctype: ast.CType
    vreg: VReg | None = None
    slot: FrameSlot | None = None
    element: ast.CType | None = None     # array element type


@dataclass
class _GlobalInfo:
    ctype: ast.CType
    is_array: bool
    element: ast.CType


class IrGen:
    """Lower one translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.module = IrModule()
        self.globals: dict[str, _GlobalInfo] = {}
        self.func_types: dict[str, ast.CType] = {}
        self.interrupt_functions: set[str] = set()
        self._label_count = 0
        #: -O2/-O3 loop-header copying: the condition is emitted twice
        #: (guard + latch), trading codesize for one jump per iteration.
        self.rotate_loops = False

    # ------------------------------------------------------------ plumbing

    def new_label(self, hint: str) -> str:
        self._label_count += 1
        return f".L{hint}{self._label_count}"

    def run(self) -> IrModule:
        for glob in self.unit.globals:
            self._layout_global(glob)
        for lit in self.unit.strings:
            self.module.data.append(GlobalData(
                lit.label, len(lit.value) + 1,
                raw=lit.value.encode("latin1") + b"\x00", element_size=1))
            self.globals[lit.label] = _GlobalInfo(
                ast.CType("char", 1), True, ast.CType("char"))
        for func in self.unit.functions:
            self.func_types[func.name] = func.return_type
            if func.interrupt:
                self.interrupt_functions.add(func.name)
        for func in self.unit.functions:
            self.module.functions[func.name] = self._lower_function(func)
        return self.module

    def _layout_global(self, glob: ast.Global) -> None:
        element = glob.type
        is_array = glob.array is not None
        size = element.size * (glob.array or 1)
        data = GlobalData(glob.name, size, element_size=element.size)
        if glob.init_str is not None:
            raw = glob.init_str.encode("latin1") + b"\x00"
            raw += b"\x00" * (size - len(raw))
            data.raw = raw
        elif glob.init_list is not None:
            values = [n.value for n in glob.init_list]
            values += [0] * ((glob.array or len(values)) - len(values))
            if element.size == 4:
                data.words = values
            else:
                raw = bytearray()
                for value in values:
                    raw += (value & ((1 << (8 * element.size)) - 1)
                            ).to_bytes(element.size, "little")
                data.raw = bytes(raw)
        elif glob.init is not None:
            data.words = [glob.init.value]
        else:
            data.words = [0] * ((size + 3) // 4)
        self.module.data.append(data)
        self.globals[glob.name] = _GlobalInfo(
            element.ptr() if is_array else element, is_array, element)

    # ----------------------------------------------------------- functions

    def _lower_function(self, func: ast.Function) -> IrFunction:
        self.fn = IrFunction(func.name, [],
                             returns_value=func.return_type.base != "void"
                             or func.return_type.pointer > 0,
                             is_interrupt=func.interrupt)
        self.scopes: list[dict[str, _Local]] = [{}]
        self.loop_stack: list[tuple[str, str]] = []   # (continue, break)
        if func.interrupt:
            if func.params:
                raise SemaError(f"{func.name}: __interrupt functions take "
                                f"no parameters")
            if func.return_type.base != "void" or func.return_type.pointer:
                raise SemaError(f"{func.name}: __interrupt functions must "
                                f"return void")
        if len(func.params) > 6:
            raise SemaError(f"{func.name}: more than 6 parameters")
        for param in func.params:
            vreg = self.fn.new_vreg()
            self.fn.params.append(vreg)
            self.scopes[0][param.name] = _Local(param.type, vreg=vreg)
        self._stmt(func.body)
        self._emit(IrInstr("ret"))
        return self.fn

    def _emit(self, instr: IrInstr) -> IrInstr:
        self.fn.instrs.append(instr)
        return instr

    def _lookup(self, name: str) -> _Local | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------- statements

    def _stmt(self, node) -> None:
        if isinstance(node, ast.Block):
            self.scopes.append({})
            for statement in node.statements:
                self._stmt(statement)
            self.scopes.pop()
        elif isinstance(node, ast.Decl):
            self._decl(node)
        elif isinstance(node, ast.ExprStmt):
            self._rvalue(node.expr)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value, _ = self._rvalue(node.value)
                self._emit(IrInstr("ret", a=value))
            else:
                self._emit(IrInstr("ret"))
        elif isinstance(node, ast.Break):
            if not self.loop_stack:
                raise SemaError("break outside loop")
            self._emit(IrInstr("jmp", target=self.loop_stack[-1][1]))
        elif isinstance(node, ast.Continue):
            if not self.loop_stack:
                raise SemaError("continue outside loop")
            self._emit(IrInstr("jmp", target=self.loop_stack[-1][0]))
        else:
            raise SemaError(f"unsupported statement {type(node).__name__}")

    def _decl(self, node: ast.Decl) -> None:
        if node.array is not None:
            slot = self.fn.add_slot(node.name, node.type.size * node.array)
            local = _Local(node.type.ptr(), slot=slot, element=node.type)
            self.scopes[-1][node.name] = local
            if node.init_list:
                base = self.fn.new_vreg()
                self._emit(IrInstr("localaddr", dest=base,
                                   symbol=slot.name, value=id(slot)))
                for index, num in enumerate(node.init_list):
                    value = self._const(num.value)
                    addr = self.fn.new_vreg()
                    off = self._const(index * node.type.size)
                    self._emit(IrInstr("bin", subop="add", dest=addr,
                                       a=base, b=off))
                    self._emit(IrInstr("store", a=addr, b=value,
                                       width=node.type.size))
            return
        vreg = self.fn.new_vreg()
        self.scopes[-1][node.name] = _Local(node.type, vreg=vreg)
        if node.init is not None:
            value, _ = self._rvalue(node.init)
            self._emit(IrInstr("mov", dest=vreg, a=value))
        else:
            self._emit(IrInstr("const", dest=vreg, value=0))

    def _if(self, node: ast.If) -> None:
        then_label = self.new_label("then")
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if node.other else else_label
        self._branch(node.cond, then_label, else_label)
        self._emit(IrInstr("label", symbol=then_label))
        self._stmt(node.then)
        if node.other is not None:
            self._emit(IrInstr("jmp", target=end_label))
            self._emit(IrInstr("label", symbol=else_label))
            self._stmt(node.other)
        self._emit(IrInstr("label", symbol=end_label))

    def _while(self, node: ast.While) -> None:
        head = self.new_label("loop")
        body = self.new_label("body")
        done = self.new_label("done")
        if node.do_while:
            self._emit(IrInstr("label", symbol=body))
            self.loop_stack.append((head, done))
            self._stmt(node.body)
            self.loop_stack.pop()
            self._emit(IrInstr("label", symbol=head))
            self._branch(node.cond, body, done)
        elif self.rotate_loops:
            # Loop-header copying: guard + bottom-tested latch.
            self._branch(node.cond, body, done)
            self._emit(IrInstr("label", symbol=body))
            self.loop_stack.append((head, done))
            self._stmt(node.body)
            self.loop_stack.pop()
            self._emit(IrInstr("label", symbol=head))
            self._branch(node.cond, body, done)
        else:
            self._emit(IrInstr("label", symbol=head))
            self._branch(node.cond, body, done)
            self._emit(IrInstr("label", symbol=body))
            self.loop_stack.append((head, done))
            self._stmt(node.body)
            self.loop_stack.pop()
            self._emit(IrInstr("jmp", target=head))
        self._emit(IrInstr("label", symbol=done))

    def _for(self, node: ast.For) -> None:
        self.scopes.append({})
        if node.init is not None:
            self._stmt(node.init)
        head = self.new_label("for")
        body = self.new_label("fbody")
        step = self.new_label("fstep")
        done = self.new_label("fdone")
        if self.rotate_loops and node.cond is not None:
            # Loop-header copying (see _while).
            self._branch(node.cond, body, done)
            self._emit(IrInstr("label", symbol=body))
            self.loop_stack.append((step, done))
            self._stmt(node.body)
            self.loop_stack.pop()
            self._emit(IrInstr("label", symbol=step))
            if node.step is not None:
                self._rvalue(node.step)
            self._branch(node.cond, body, done)
        else:
            self._emit(IrInstr("label", symbol=head))
            if node.cond is not None:
                self._branch(node.cond, body, done)
            self._emit(IrInstr("label", symbol=body))
            self.loop_stack.append((step, done))
            self._stmt(node.body)
            self.loop_stack.pop()
            self._emit(IrInstr("label", symbol=step))
            if node.step is not None:
                self._rvalue(node.step)
            self._emit(IrInstr("jmp", target=head))
        self._emit(IrInstr("label", symbol=done))
        self.scopes.pop()

    # ------------------------------------------------------------ branching

    _CMP_TO_CBR = {"==": "eq", "!=": "ne", "<": "lt", ">=": "ge",
                   ">": "lt", "<=": "ge"}

    def _branch(self, cond, true_label: str, false_label: str) -> None:
        """Lower a condition with fused compare-and-branch when possible."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch(cond.operand, false_label, true_label)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            middle = self.new_label("and")
            self._branch(cond.left, middle, false_label)
            self._emit(IrInstr("label", symbol=middle))
            self._branch(cond.right, true_label, false_label)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            middle = self.new_label("or")
            self._branch(cond.left, true_label, middle)
            self._emit(IrInstr("label", symbol=middle))
            self._branch(cond.right, true_label, false_label)
            return
        if isinstance(cond, ast.Binary) \
                and cond.op in self._CMP_TO_CBR:
            left, lt = self._rvalue(cond.left)
            right, rt = self._rvalue(cond.right)
            unsigned = not (lt.signed and rt.signed)
            subop = self._CMP_TO_CBR[cond.op]
            if cond.op in (">", "<="):
                left, right = right, left
            if subop in ("lt", "ge") and unsigned:
                subop += "u"
            self._emit(IrInstr("cbr", subop=subop, a=left, b=right,
                               target=true_label, target2=false_label))
            return
        value, _ = self._rvalue(cond)
        self._emit(IrInstr("br", a=value, target=true_label,
                           target2=false_label))

    # ----------------------------------------------------------- expressions

    def _const(self, value: int) -> VReg:
        dest = self.fn.new_vreg()
        self._emit(IrInstr("const", dest=dest, value=value & 0xFFFFFFFF))
        return dest

    def _rvalue(self, node) -> tuple[VReg, ast.CType]:
        """Lower an expression; returns (value vreg, static type)."""
        if isinstance(node, ast.Num):
            return self._const(node.value), ast.INT
        if isinstance(node, ast.StrLit):
            dest = self.fn.new_vreg()
            self._emit(IrInstr("la", dest=dest, symbol=node.label))
            return dest, ast.CType("char", 1)
        if isinstance(node, ast.Var):
            return self._load_var(node.name)
        if isinstance(node, ast.Cast):
            value, vtype = self._rvalue(node.operand)
            return self._narrow(value, vtype, node.type), node.type
        if isinstance(node, ast.Unary):
            return self._unary(node)
        if isinstance(node, ast.Binary):
            return self._binary(node)
        if isinstance(node, ast.Assign):
            return self._assign(node)
        if isinstance(node, ast.IncDec):
            return self._incdec(node)
        if isinstance(node, ast.Ternary):
            return self._ternary(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Index):
            addr, element = self._index_addr(node)
            dest = self.fn.new_vreg()
            self._emit(IrInstr("load", dest=dest, a=addr,
                               width=element.size, signed=element.signed))
            return dest, element
        raise SemaError(f"unsupported expression {type(node).__name__}")

    def _load_var(self, name: str) -> tuple[VReg, ast.CType]:
        local = self._lookup(name)
        if local is not None:
            if local.slot is not None:      # local array decays to pointer
                dest = self.fn.new_vreg()
                self._emit(IrInstr("localaddr", dest=dest,
                                   symbol=local.slot.name,
                                   value=id(local.slot)))
                return dest, local.ctype
            return local.vreg, local.ctype
        if name in self.globals:
            info = self.globals[name]
            addr = self.fn.new_vreg()
            self._emit(IrInstr("la", dest=addr, symbol=name))
            if info.is_array:
                return addr, info.ctype
            dest = self.fn.new_vreg()
            self._emit(IrInstr("load", dest=dest, a=addr,
                               width=info.ctype.size,
                               signed=info.ctype.signed))
            return dest, info.ctype
        if name in self.func_types:
            # A bare function name evaluates to its link-time address —
            # how firmware installs an __interrupt handler into mtvec.
            dest = self.fn.new_vreg()
            self._emit(IrInstr("la", dest=dest, symbol=name))
            return dest, ast.UINT
        raise SemaError(f"undefined variable {name!r}")

    def _narrow(self, value: VReg, src: ast.CType,
                dst: ast.CType) -> VReg:
        """Integer conversion: truncate + extend for sub-word targets."""
        if dst.pointer or dst.size == 4:
            return value
        if src.size == dst.size and src.signed == dst.signed \
                and not src.pointer:
            return value
        bits = 8 * dst.size
        shifted = self.fn.new_vreg()
        amount = self._const(32 - bits)
        self._emit(IrInstr("bin", subop="shl", dest=shifted, a=value,
                           b=amount))
        dest = self.fn.new_vreg()
        amount2 = self._const(32 - bits)
        self._emit(IrInstr("bin", subop="shr" if dst.signed else "ushr",
                           dest=dest, a=shifted, b=amount2))
        return dest

    def _unary(self, node: ast.Unary) -> tuple[VReg, ast.CType]:
        if node.op == "&":
            if isinstance(node.operand, ast.Var):
                local = self._lookup(node.operand.name)
                if local is not None and local.slot is not None:
                    dest = self.fn.new_vreg()
                    self._emit(IrInstr("localaddr", dest=dest,
                                       symbol=local.slot.name,
                                       value=id(local.slot)))
                    return dest, local.ctype
                if node.operand.name in self.globals:
                    info = self.globals[node.operand.name]
                    dest = self.fn.new_vreg()
                    self._emit(IrInstr("la", dest=dest,
                                       symbol=node.operand.name))
                    return dest, info.element.ptr()
                raise SemaError("cannot take address of register variable")
            if isinstance(node.operand, ast.Index):
                addr, element = self._index_addr(node.operand)
                return addr, element.ptr()
            raise SemaError("unsupported address-of operand")
        if node.op == "*":
            ptr, ptype = self._rvalue(node.operand)
            element = ptype.deref()
            dest = self.fn.new_vreg()
            self._emit(IrInstr("load", dest=dest, a=ptr,
                               width=element.size, signed=element.signed))
            return dest, element
        value, vtype = self._rvalue(node.operand)
        dest = self.fn.new_vreg()
        if node.op == "-":
            zero = self._const(0)
            self._emit(IrInstr("bin", subop="sub", dest=dest, a=zero,
                               b=value))
        elif node.op == "~":
            ones = self._const(0xFFFFFFFF)
            self._emit(IrInstr("bin", subop="xor", dest=dest, a=value,
                               b=ones))
        elif node.op == "!":
            one = self._const(1)
            self._emit(IrInstr("bin", subop="sltu", dest=dest, a=value,
                               b=one))
            return dest, ast.INT
        else:
            raise SemaError(f"unsupported unary {node.op}")
        return dest, vtype

    _BIN_TO_IR = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", "*": "mul"}

    def _binary(self, node: ast.Binary) -> tuple[VReg, ast.CType]:
        op = node.op
        if op == ",":
            self._rvalue(node.left)
            return self._rvalue(node.right)
        if op in ("&&", "||"):
            return self._short_circuit(node)
        left, lt = self._rvalue(node.left)
        right, rt = self._rvalue(node.right)
        unsigned = not (lt.signed and rt.signed) or lt.pointer or rt.pointer
        dest = self.fn.new_vreg()
        if op in self._BIN_TO_IR:
            subop = self._BIN_TO_IR[op]
            # pointer arithmetic scales by element size
            if op in ("+", "-") and lt.pointer and not rt.pointer:
                right = self._scale(right, lt.deref().size)
            elif op == "+" and rt.pointer and not lt.pointer:
                left = self._scale(left, rt.deref().size)
                lt = rt
            self._emit(IrInstr("bin", subop=subop, dest=dest, a=left,
                               b=right))
            return dest, lt if lt.pointer else (
                ast.UINT if unsigned else ast.INT)
        if op == ">>":
            subop = "ushr" if not lt.signed or lt.pointer else "shr"
            self._emit(IrInstr("bin", subop=subop, dest=dest, a=left,
                               b=right))
            return dest, lt
        if op in ("/", "%"):
            subop = {"/": "udiv" if unsigned else "div",
                     "%": "urem" if unsigned else "rem"}[op]
            self._emit(IrInstr("bin", subop=subop, dest=dest, a=left,
                               b=right))
            return dest, ast.UINT if unsigned else ast.INT
        if op in ("<", ">", "<=", ">=", "==", "!="):
            return self._compare(op, left, right, unsigned), ast.INT
        raise SemaError(f"unsupported binary {op}")

    def _scale(self, value: VReg, size: int) -> VReg:
        if size == 1:
            return value
        shift = {2: 1, 4: 2}[size]
        amount = self._const(shift)
        dest = self.fn.new_vreg()
        self._emit(IrInstr("bin", subop="shl", dest=dest, a=value, b=amount))
        return dest

    def _compare(self, op: str, left: VReg, right: VReg,
                 unsigned: bool) -> VReg:
        slt = "sltu" if unsigned else "slt"
        dest = self.fn.new_vreg()
        if op == "<":
            self._emit(IrInstr("bin", subop=slt, dest=dest, a=left, b=right))
            return dest
        if op == ">":
            self._emit(IrInstr("bin", subop=slt, dest=dest, a=right, b=left))
            return dest
        if op in (">=", "<="):
            inner = self.fn.new_vreg()
            a, b = (left, right) if op == ">=" else (right, left)
            self._emit(IrInstr("bin", subop=slt, dest=inner, a=a, b=b))
            one = self._const(1)
            self._emit(IrInstr("bin", subop="xor", dest=dest, a=inner,
                               b=one))
            return dest
        diff = self.fn.new_vreg()
        self._emit(IrInstr("bin", subop="xor", dest=diff, a=left, b=right))
        if op == "==":
            one = self._const(1)
            self._emit(IrInstr("bin", subop="sltu", dest=dest, a=diff,
                               b=one))
        else:
            zero = self._const(0)
            self._emit(IrInstr("bin", subop="sltu", dest=dest, a=zero,
                               b=diff))
        return dest

    def _short_circuit(self, node: ast.Binary) -> tuple[VReg, ast.CType]:
        result = self.fn.new_vreg()
        true_label = self.new_label("sct")
        false_label = self.new_label("scf")
        end_label = self.new_label("sce")
        self._branch(node, true_label, false_label)
        self._emit(IrInstr("label", symbol=true_label))
        self._emit(IrInstr("const", dest=result, value=1))
        self._emit(IrInstr("jmp", target=end_label))
        self._emit(IrInstr("label", symbol=false_label))
        self._emit(IrInstr("const", dest=result, value=0))
        self._emit(IrInstr("label", symbol=end_label))
        return result, ast.INT

    def _ternary(self, node: ast.Ternary) -> tuple[VReg, ast.CType]:
        result = self.fn.new_vreg()
        true_label = self.new_label("tt")
        false_label = self.new_label("tf")
        end_label = self.new_label("te")
        self._branch(node.cond, true_label, false_label)
        self._emit(IrInstr("label", symbol=true_label))
        value, vtype = self._rvalue(node.then)
        self._emit(IrInstr("mov", dest=result, a=value))
        self._emit(IrInstr("jmp", target=end_label))
        self._emit(IrInstr("label", symbol=false_label))
        other, _ = self._rvalue(node.other)
        self._emit(IrInstr("mov", dest=result, a=other))
        self._emit(IrInstr("label", symbol=end_label))
        return result, vtype

    #: System intrinsics (PR 5): name -> (IR op, takes a value operand).
    _CSR_INTRINSICS = {"__csrr": ("csrr", False), "__csrw": ("csrw", True),
                       "__csrs": ("csrs", True), "__csrc": ("csrc", True)}

    def _csr_id(self, node: ast.Call) -> int:
        """Fold the intrinsic's CSR-id argument to a 12-bit constant."""
        from .parser import const_eval
        value = const_eval(node.args[0]) if node.args else None
        if value is None:
            raise SemaError(f"{node.name}: CSR id must be a constant "
                            f"expression")
        if not 0 <= value < (1 << 12):
            raise SemaError(f"{node.name}: CSR id {value:#x} out of range")
        return value

    def _call(self, node: ast.Call) -> tuple[VReg, ast.CType]:
        if node.name in self._CSR_INTRINSICS:
            op, takes_value = self._CSR_INTRINSICS[node.name]
            want_args = 2 if takes_value else 1
            if len(node.args) != want_args:
                raise SemaError(f"{node.name} takes {want_args} "
                                f"argument(s)")
            csr_id = self._csr_id(node)
            if takes_value:
                value, _ = self._rvalue(node.args[1])
                self._emit(IrInstr(op, a=value, value=csr_id))
                return self._const(0), ast.CType("void")
            dest = self.fn.new_vreg()
            self._emit(IrInstr(op, dest=dest, value=csr_id))
            return dest, ast.UINT
        if node.name == "__wfi":
            if node.args:
                raise SemaError("__wfi takes no arguments")
            self._emit(IrInstr("wfi"))
            return self._const(0), ast.CType("void")
        if len(node.args) > 6:
            raise SemaError(f"call to {node.name}: more than 6 arguments")
        if node.name in self.interrupt_functions:
            raise SemaError(f"{node.name} is an __interrupt handler; "
                            f"install it via mtvec, do not call it")
        args = [self._rvalue(arg)[0] for arg in node.args]
        rtype = self.func_types.get(node.name, ast.INT)
        dest = self.fn.new_vreg()
        self._emit(IrInstr("call", dest=dest, symbol=node.name, args=args))
        return dest, rtype

    # ------------------------------------------------------------- lvalues

    def _index_addr(self, node: ast.Index) -> tuple[VReg, ast.CType]:
        base, btype = self._rvalue(node.base)
        if not btype.pointer:
            raise SemaError("indexing a non-pointer")
        element = btype.deref()
        index, _ = self._rvalue(node.index)
        scaled = self._scale(index, element.size)
        addr = self.fn.new_vreg()
        self._emit(IrInstr("bin", subop="add", dest=addr, a=base, b=scaled))
        return addr, element

    def _assign(self, node: ast.Assign) -> tuple[VReg, ast.CType]:
        target = node.target
        if node.op != "=":
            # compound assignment: rewrite a op= b as a = a op b
            binop = node.op[:-1]
            node = ast.Assign("=", target,
                              ast.Binary(binop, target, node.value))
        value, vtype = self._rvalue(node.value)
        if isinstance(target, ast.Var):
            local = self._lookup(target.name)
            if local is not None and local.vreg is not None:
                narrowed = self._narrow(value, vtype, local.ctype)
                self._emit(IrInstr("mov", dest=local.vreg, a=narrowed))
                return local.vreg, local.ctype
            if target.name in self.globals:
                info = self.globals[target.name]
                if info.is_array:
                    raise SemaError(f"cannot assign to array "
                                    f"{target.name!r}")
                addr = self.fn.new_vreg()
                self._emit(IrInstr("la", dest=addr, symbol=target.name))
                self._emit(IrInstr("store", a=addr, b=value,
                                   width=info.ctype.size))
                return value, info.ctype
            raise SemaError(f"undefined variable {target.name!r}")
        if isinstance(target, ast.Index):
            addr, element = self._index_addr(target)
            self._emit(IrInstr("store", a=addr, b=value,
                               width=element.size))
            return value, element
        if isinstance(target, ast.Unary) and target.op == "*":
            ptr, ptype = self._rvalue(target.operand)
            element = ptype.deref()
            self._emit(IrInstr("store", a=ptr, b=value, width=element.size))
            return value, element
        raise SemaError("unsupported assignment target")

    def _incdec(self, node: ast.IncDec) -> tuple[VReg, ast.CType]:
        delta = 1
        target = node.target
        if isinstance(target, ast.Var):
            local = self._lookup(target.name)
            if local is not None and local.ctype.pointer:
                delta = local.ctype.deref().size
        binop = "+" if node.op == "++" else "-"
        if node.prefix:
            return self._assign(ast.Assign(
                "=", target, ast.Binary(binop, target, ast.Num(delta))))
        old, vtype = self._rvalue(target)
        saved = self.fn.new_vreg()
        self._emit(IrInstr("mov", dest=saved, a=old))
        self._assign(ast.Assign(
            "=", target, ast.Binary(binop, target, ast.Num(delta))))
        return saved, vtype


def lower(unit: ast.TranslationUnit) -> IrModule:
    return IrGen(unit).run()
