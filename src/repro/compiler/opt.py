"""IR optimization passes.

The five optimization pipelines (`-O0/-O1/-O2/-O3/-Oz`) are assembled in
:mod:`repro.compiler.driver` from these passes:

  * :func:`const_fold` — fold operations over known constants
  * :func:`fold_immediates` — use I-format immediates where they fit
  * :func:`strength_reduce` — multiply/divide by powers of two -> shifts
  * :func:`copy_propagate` — intra-block copy forwarding
  * :func:`cse_local` — intra-block common-subexpression elimination
    (loads participate; stores and calls invalidate)
  * :func:`dead_code` — remove unused pure definitions
  * :func:`simplify_branches` — drop jumps-to-next and unused labels
  * :func:`inline_calls` — bottom-up inlining under a size threshold
"""

from __future__ import annotations

from .ir import IrFunction, IrInstr, IrModule, VReg

_PURE_OPS = ("const", "mov", "bin", "bini", "la", "localaddr", "load")
_BLOCK_ENDERS = ("label", "jmp", "br", "cbr", "ret", "call")


def _def_counts(fn: IrFunction) -> dict[VReg, int]:
    counts: dict[VReg, int] = {}
    for instr in fn.instrs:
        if instr.dest is not None:
            counts[instr.dest] = counts.get(instr.dest, 0) + 1
    return counts


def _known_constants(fn: IrFunction) -> dict[VReg, int]:
    """vregs defined exactly once, by a const instruction."""
    counts = _def_counts(fn)
    known: dict[VReg, int] = {}
    for instr in fn.instrs:
        if instr.op == "const" and counts.get(instr.dest) == 1:
            known[instr.dest] = instr.value
    return known


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _eval_bin(subop: str, a: int, b: int) -> int | None:
    a &= 0xFFFFFFFF
    b &= 0xFFFFFFFF
    if subop == "add":
        return a + b
    if subop == "sub":
        return a - b
    if subop == "and":
        return a & b
    if subop == "or":
        return a | b
    if subop == "xor":
        return a ^ b
    if subop == "shl":
        return a << (b & 31)
    if subop == "ushr":
        return a >> (b & 31)
    if subop == "shr":
        return _s32(a) >> (b & 31)
    if subop == "slt":
        return int(_s32(a) < _s32(b))
    if subop == "sltu":
        return int(a < b)
    if subop == "mul":
        return a * b
    if subop == "udiv":
        return a // b if b else 0xFFFFFFFF
    if subop == "urem":
        return a % b if b else a
    if subop == "div":
        if b == 0:
            return 0xFFFFFFFF
        q = abs(_s32(a)) // abs(_s32(b))
        return q if (_s32(a) < 0) == (_s32(b) < 0) else -q
    if subop == "rem":
        if b == 0:
            return a
        r = abs(_s32(a)) % abs(_s32(b))
        return r if _s32(a) >= 0 else -r
    return None


_CBR_EVAL = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: _s32(a) < _s32(b),
    "ge": lambda a, b: _s32(a) >= _s32(b),
    "ltu": lambda a, b: a < b,
    "geu": lambda a, b: a >= b,
}


def const_fold(fn: IrFunction) -> None:
    known = _known_constants(fn)
    out: list[IrInstr] = []
    for instr in fn.instrs:
        if instr.op == "bin" and instr.a in known and instr.b in known:
            value = _eval_bin(instr.subop, known[instr.a], known[instr.b])
            if value is not None:
                out.append(IrInstr("const", dest=instr.dest,
                                   value=value & 0xFFFFFFFF))
                continue
        if instr.op == "cbr" and instr.a in known and instr.b in known:
            taken = _CBR_EVAL[instr.subop](known[instr.a] & 0xFFFFFFFF,
                                           known[instr.b] & 0xFFFFFFFF)
            out.append(IrInstr("jmp",
                               target=instr.target if taken
                               else instr.target2))
            continue
        if instr.op == "br" and instr.a in known:
            out.append(IrInstr("jmp",
                               target=instr.target if known[instr.a]
                               else instr.target2))
            continue
        out.append(instr)
    fn.instrs = out


_IMM_OPS = {"add": "add", "and": "and", "or": "or", "xor": "xor",
            "slt": "slt", "sltu": "sltu", "shl": "shl", "shr": "shr",
            "ushr": "ushr"}


def fold_immediates(fn: IrFunction) -> None:
    """bin(op, a, const) -> bini with an I-format immediate when legal."""
    known = _known_constants(fn)
    out: list[IrInstr] = []
    for instr in fn.instrs:
        if instr.op == "bin" and instr.subop in _IMM_OPS \
                and instr.b in known:
            imm = _s32(known[instr.b])
            if instr.subop in ("shl", "shr", "ushr"):
                if 0 <= imm < 32:
                    out.append(IrInstr("bini", subop=instr.subop,
                                       dest=instr.dest, a=instr.a,
                                       value=imm))
                    continue
            elif -2048 <= imm <= 2047:
                out.append(IrInstr("bini", subop=instr.subop,
                                   dest=instr.dest, a=instr.a, value=imm))
                continue
        if instr.op == "bin" and instr.subop == "sub" and instr.b in known:
            imm = -_s32(known[instr.b])
            if -2048 <= imm <= 2047:
                out.append(IrInstr("bini", subop="add", dest=instr.dest,
                                   a=instr.a, value=imm))
                continue
        if instr.op == "bin" and instr.subop == "add" and instr.a in known \
                and instr.b not in known:
            imm = _s32(known[instr.a])
            if -2048 <= imm <= 2047:
                out.append(IrInstr("bini", subop="add", dest=instr.dest,
                                   a=instr.b, value=imm))
                continue
        out.append(instr)
    fn.instrs = out


def strength_reduce(fn: IrFunction) -> None:
    """mul/div/rem by powers of two -> shifts and masks."""
    known = _known_constants(fn)
    out: list[IrInstr] = []
    for instr in fn.instrs:
        if instr.op == "bin" and instr.subop in ("mul", "udiv", "urem",
                                                 "div"):
            const_operand = None
            other = None
            if instr.b in known:
                const_operand = known[instr.b] & 0xFFFFFFFF
                other = instr.a
            elif instr.subop == "mul" and instr.a in known:
                const_operand = known[instr.a] & 0xFFFFFFFF
                other = instr.b
            if const_operand is not None and const_operand > 0 \
                    and (const_operand & (const_operand - 1)) == 0:
                shift = const_operand.bit_length() - 1
                if instr.subop == "mul":
                    out.append(IrInstr("bini", subop="shl",
                                       dest=instr.dest, a=other,
                                       value=shift))
                    continue
                if instr.subop == "udiv":
                    out.append(IrInstr("bini", subop="ushr",
                                       dest=instr.dest, a=other,
                                       value=shift))
                    continue
                if instr.subop == "urem" and const_operand <= 2048:
                    out.append(IrInstr("bini", subop="and",
                                       dest=instr.dest, a=other,
                                       value=const_operand - 1))
                    continue
                if instr.subop == "div" and shift > 0:
                    # round-toward-zero: bias negative dividends
                    sign = fn.new_vreg()
                    out.append(IrInstr("bini", subop="shr", dest=sign,
                                       a=other, value=31))
                    bias = fn.new_vreg()
                    if const_operand - 1 <= 2047:
                        out.append(IrInstr("bini", subop="and", dest=bias,
                                           a=sign,
                                           value=const_operand - 1))
                    else:
                        mask = fn.new_vreg()
                        out.append(IrInstr("const", dest=mask,
                                           value=const_operand - 1))
                        out.append(IrInstr("bin", subop="and", dest=bias,
                                           a=sign, b=mask))
                    biased = fn.new_vreg()
                    out.append(IrInstr("bin", subop="add", dest=biased,
                                       a=other, b=bias))
                    out.append(IrInstr("bini", subop="shr",
                                       dest=instr.dest, a=biased,
                                       value=shift))
                    continue
        out.append(instr)
    fn.instrs = out


def copy_propagate(fn: IrFunction) -> None:
    """Forward mov sources within basic blocks."""
    out: list[IrInstr] = []
    copies: dict[VReg, VReg] = {}

    def resolve(reg: VReg | None) -> VReg | None:
        seen = set()
        while reg in copies and reg not in seen:
            seen.add(reg)
            reg = copies[reg]
        return reg

    def kill(reg: VReg) -> None:
        copies.pop(reg, None)
        for key in [k for k, v in copies.items() if v == reg]:
            copies.pop(key)

    for instr in fn.instrs:
        if instr.op == "label":
            copies.clear()
            out.append(instr)
            continue
        instr.a = resolve(instr.a)
        instr.b = resolve(instr.b)
        instr.args = [resolve(arg) for arg in instr.args]
        if instr.dest is not None:
            kill(instr.dest)
        if instr.op == "mov" and instr.a is not None \
                and instr.dest != instr.a:
            copies[instr.dest] = instr.a
        out.append(instr)
    fn.instrs = out


def cse_local(fn: IrFunction) -> None:
    """Intra-block value numbering over pure ops and loads."""
    out: list[IrInstr] = []
    table: dict[tuple, VReg] = {}
    loads: dict[tuple, VReg] = {}
    multi_def = {reg for reg, count in _def_counts(fn).items() if count > 1}

    def invalidate(dest: VReg) -> None:
        for cache in (table, loads):
            for key in [k for k, v in cache.items()
                        if v == dest or dest in k]:
                cache.pop(key)

    for instr in fn.instrs:
        if instr.op == "label":
            table.clear()
            loads.clear()
            out.append(instr)
            continue
        if instr.op in ("call",):
            loads.clear()
        if instr.op == "store":
            loads.clear()
        if instr.op in ("wfi", "csrw", "csrs", "csrc"):
            # Compiler barriers: a wfi sleeps through ISR activity, and a
            # CSR write can enable interrupts (mstatus/mie), after which
            # an ISR may mutate memory at any retirement — value-numbered
            # loads of ISR-shared globals must not survive either.
            loads.clear()
        replaced = False
        if instr.dest is not None and instr.dest not in multi_def:
            key = None
            cache = table
            if instr.op == "bin":
                key = ("bin", instr.subop, instr.a, instr.b)
            elif instr.op == "bini":
                key = ("bini", instr.subop, instr.a, instr.value)
            elif instr.op == "la":
                key = ("la", instr.symbol)
            elif instr.op == "localaddr":
                key = ("localaddr", instr.symbol)
            elif instr.op == "const":
                key = ("const", instr.value)
            elif instr.op == "load":
                key = ("load", instr.a, instr.width, instr.signed)
                cache = loads
            if key is not None:
                prior = cache.get(key)
                if prior is not None and prior not in multi_def:
                    out.append(IrInstr("mov", dest=instr.dest, a=prior))
                    replaced = True
                else:
                    cache[key] = instr.dest
        if not replaced:
            out.append(instr)
        if instr.dest is not None and instr.dest in multi_def:
            invalidate(instr.dest)
    fn.instrs = out


def dead_code(fn: IrFunction) -> None:
    """Iteratively drop pure definitions whose results are never used."""
    changed = True
    while changed:
        changed = False
        used: set[VReg] = set()
        for instr in fn.instrs:
            for reg in (instr.a, instr.b):
                if reg is not None:
                    used.add(reg)
            used.update(instr.args)
        out = []
        for instr in fn.instrs:
            if instr.op in _PURE_OPS and instr.dest is not None \
                    and instr.dest not in used:
                changed = True
                continue
            out.append(instr)
        fn.instrs = out


def simplify_branches(fn: IrFunction) -> None:
    """Remove jumps to the next label and labels nothing refers to."""
    changed = True
    while changed:
        changed = False
        out: list[IrInstr] = []
        instrs = fn.instrs
        for index, instr in enumerate(instrs):
            if instr.op == "jmp":
                follow = index + 1
                while follow < len(instrs) \
                        and instrs[follow].op == "label":
                    if instrs[follow].symbol == instr.target:
                        break
                    follow += 1
                if follow < len(instrs) and instrs[follow].op == "label" \
                        and instrs[follow].symbol == instr.target:
                    changed = True
                    continue
            out.append(instr)
        referenced = set()
        for instr in out:
            if instr.target:
                referenced.add(instr.target)
            if instr.target2:
                referenced.add(instr.target2)
        final = [i for i in out
                 if not (i.op == "label" and i.symbol not in referenced)]
        if len(final) != len(out):
            changed = True
        fn.instrs = final
        # Dead code after unconditional jumps (until next label).
        trimmed: list[IrInstr] = []
        skipping = False
        for instr in fn.instrs:
            if instr.op == "label":
                skipping = False
            if skipping:
                changed = True
                continue
            trimmed.append(instr)
            if instr.op in ("jmp", "ret"):
                skipping = True
        fn.instrs = trimmed


def inline_calls(module: IrModule, threshold: int) -> None:
    """Bottom-up inlining of small non-recursive callees."""
    if threshold <= 0:
        return
    sizes = {name: len(fn.instrs) for name, fn in module.functions.items()}

    def is_candidate(name: str, caller: str) -> bool:
        callee = module.functions.get(name)
        if callee is None or name == caller:
            return False
        if sizes.get(name, 1 << 30) > threshold:
            return False
        return all(i.op != "call" or i.symbol in module.functions
                   and i.symbol != name
                   for i in callee.instrs) and not any(
                       i.op == "call" and i.symbol == name
                       for i in callee.instrs)

    for caller_name in list(module.functions):
        caller = module.functions[caller_name]
        out: list[IrInstr] = []
        budget = 4  # bounded inlining rounds per caller
        for instr in caller.instrs:
            if instr.op != "call" or budget == 0 \
                    or not is_candidate(instr.symbol, caller_name):
                out.append(instr)
                continue
            budget -= 1
            callee = module.functions[instr.symbol]
            mapping: dict[VReg, VReg] = {}

            def fresh(reg: VReg | None) -> VReg | None:
                if reg is None:
                    return None
                if reg not in mapping:
                    mapping[reg] = caller.new_vreg()
                return mapping[reg]

            slot_map: dict[str, str] = {}
            for slot in callee.slots:
                clone = caller.add_slot(f"inl_{slot.name}", slot.size)
                slot_map[slot.name] = clone.name
            suffix = f"_inl{len(out)}"
            end_label = f".Linl_end{caller_name}{len(out)}"
            for param, arg in zip(callee.params, instr.args):
                out.append(IrInstr("mov", dest=fresh(param), a=arg))
            for inner in callee.instrs:
                if inner.op == "ret":
                    if inner.a is not None and instr.dest is not None:
                        out.append(IrInstr("mov", dest=instr.dest,
                                           a=fresh(inner.a)))
                    out.append(IrInstr("jmp", target=end_label))
                    continue
                clone = IrInstr(
                    inner.op, dest=fresh(inner.dest), a=fresh(inner.a),
                    b=fresh(inner.b), value=inner.value,
                    symbol=slot_map.get(inner.symbol,
                                        inner.symbol + suffix
                                        if inner.op == "label"
                                        else inner.symbol),
                    subop=inner.subop, width=inner.width,
                    signed=inner.signed,
                    args=[fresh(arg) for arg in inner.args],
                    target=inner.target + suffix if inner.target else "",
                    target2=inner.target2 + suffix if inner.target2 else "")
                out.append(clone)
            out.append(IrInstr("label", symbol=end_label))
        caller.instrs = out


def run_pipeline(module: IrModule, level: str) -> None:
    """Apply the optimization pipeline for one ``-O`` level."""
    if level == "O0":
        return
    inline_threshold = {"O1": 0, "O2": 12, "O3": 48, "Oz": 0}[level]
    inline_calls(module, inline_threshold)
    for fn in module.functions.values():
        for _ in range(2):   # two rounds let folds expose more folds
            const_fold(fn)
            copy_propagate(fn)
            if level in ("O2", "O3", "Oz"):
                strength_reduce(fn)
            fold_immediates(fn)
            cse_local(fn)
            dead_code(fn)
            simplify_branches(fn)
