"""Compiler driver: MicroC source -> RV32E assembly/binary at an -O level.

This is the toolflow entry point Step 1 of the RISSP methodology consumes:
``compile_to_program`` produces the linked binary whose distinct-instruction
profile defines the RISSP subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import assemble
from ..isa.program import Program
from .codegen import emit_module
from .irgen import IrGen
from .opt import run_pipeline
from .parser import parse

OPT_LEVELS = ("O0", "O1", "O2", "O3", "Oz")

#: Levels that enable loop-header copying (loop rotation) in irgen — a
#: speed optimization that duplicates the loop condition, which is why -O2
#: code is slightly *larger* than -O1 in Figure 5's averages.
_ROTATE_LEVELS = ("O2", "O3")


@dataclass
class CompileResult:
    assembly: str
    program: Program
    opt_level: str

    @property
    def code_size_bytes(self) -> int:
        return self.program.code_size_bytes


def normalize_level(level: str) -> str:
    cleaned = level.lstrip("-").capitalize() if level.lower().startswith(
        ("-o", "o")) else level
    cleaned = cleaned.replace("O0", "O0")
    candidate = "O" + cleaned[-1] if cleaned[-1] in "0123z" else cleaned
    if candidate == "OZ":
        candidate = "Oz"
    if candidate not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    return candidate


def compile_to_assembly(source: str, opt_level: str = "O2") -> str:
    """Compile MicroC source to RV32E assembly text."""
    level = normalize_level(opt_level)
    unit = parse(source)
    gen = IrGen(unit)
    gen.rotate_loops = level in _ROTATE_LEVELS
    module = gen.run()
    run_pipeline(module, level)
    return emit_module(module, level)


def compile_to_program(source: str, opt_level: str = "O2") -> CompileResult:
    """Compile and assemble MicroC source into a linked flat binary."""
    level = normalize_level(opt_level)
    assembly = compile_to_assembly(source, level)
    program = assemble(assembly, isa="rv32e")
    return CompileResult(assembly=assembly, program=program,
                         opt_level=level)
