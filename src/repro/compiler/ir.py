"""Three-address intermediate representation for the MicroC compiler.

A function body is a flat list of :class:`IrInstr` with symbolic labels.
Virtual registers (:class:`VReg`) are produced once and consumed freely;
the register allocator maps them onto the RV32E register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: IR binary operators (RISC-V-shaped; *ushr* is logical shift right).
BIN_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "ushr",
           "slt", "sltu", "mul", "div", "udiv", "rem", "urem")

#: Fused compare-and-branch conditions (map 1:1 onto B-type instructions).
CBR_OPS = ("eq", "ne", "lt", "ge", "ltu", "geu")


@dataclass(frozen=True)
class VReg:
    id: int

    def __repr__(self) -> str:
        return f"%{self.id}"


@dataclass
class IrInstr:
    """One IR operation.

    op is one of: const, la, localaddr, mov, bin, bini, load, store, call,
    ret, br (conditional on a value), cbr (fused compare+branch), jmp,
    label — plus the PR 5 system ops csrr (dest <- CSR ``value``),
    csrw/csrs/csrc (write/set/clear CSR ``value`` from ``a``) and wfi.
    System ops are never folded, value-numbered or dead-code-eliminated
    (they are not in the optimizer's pure-op set).
    """

    op: str
    dest: VReg | None = None
    a: VReg | None = None
    b: VReg | None = None
    value: int = 0                 # const value / immediate / width
    symbol: str = ""               # global name / call target / label name
    subop: str = ""                # bin operator or cbr condition
    width: int = 4                 # load/store width
    signed: bool = True            # load extension
    args: list[VReg] = field(default_factory=list)   # call arguments
    target: str = ""               # branch target label
    target2: str = ""              # cbr false-target / fall-through

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op, self.subop, str(self.dest or ""),
                 str(self.a or ""), str(self.b or ""),
                 self.symbol or self.target]
        return " ".join(p for p in parts if p)


@dataclass
class FrameSlot:
    """A stack-frame object: local array or spill slot."""

    name: str
    size: int
    offset: int = -1      # assigned at frame layout


@dataclass
class IrFunction:
    name: str
    params: list[VReg]
    instrs: list[IrInstr] = field(default_factory=list)
    slots: list[FrameSlot] = field(default_factory=list)
    next_vreg: int = 0
    returns_value: bool = True
    #: ``__interrupt``-qualified: codegen emits the ISR prologue/epilogue
    #: (all caller-saved registers preserved) and returns with ``mret``.
    is_interrupt: bool = False

    def new_vreg(self) -> VReg:
        reg = VReg(self.next_vreg)
        self.next_vreg += 1
        return reg

    def add_slot(self, name: str, size: int) -> FrameSlot:
        slot = FrameSlot(f"{name}.{len(self.slots)}", (size + 3) & ~3)
        self.slots.append(slot)
        return slot


@dataclass
class GlobalData:
    """A global object laid out in .data."""

    name: str
    size: int
    words: list[int] | None = None      # word initializer (ints)
    raw: bytes | None = None            # byte initializer (strings/chars)
    element_size: int = 4


@dataclass
class IrModule:
    functions: dict[str, IrFunction] = field(default_factory=dict)
    data: list[GlobalData] = field(default_factory=list)
    #: runtime builtins referenced (emitted as assembly when used).
    builtins_used: set[str] = field(default_factory=set)
