"""Register allocation for RV32E.

Two allocators implement the paper's compiler-flag spectrum:

  * :class:`SpillAllAllocator` (-O0): every virtual register lives on the
    stack; operands are reloaded around each use — the classic unoptimized
    code GCC emits at -O0, and the source of the large -O0 codesizes in
    Figure 5.
  * :class:`LinearScanAllocator` (-O1 and up): block-level liveness + linear
    scan over live intervals.  Intervals that cross a call are restricted to
    the callee-saved registers (s0/s1) or spilled, so call sites need no
    caller-save spills.

RV32E register budget: t0-t2, a0-a5, s0, s1 are allocatable; gp/tp are
reserved as spill scratch (baremetal, no global pointer / thread pointer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import IrFunction, IrInstr, VReg

ALLOCATABLE = ("t0", "t1", "t2", "a0", "a1", "a2", "a3", "a4", "a5",
               "s0", "s1")
CALLEE_SAVED = ("s0", "s1")
SCRATCH = ("gp", "tp")
ARG_REGS = ("a0", "a1", "a2", "a3", "a4", "a5")

_CALL_OPS = {"call"}
_CALL_SUBOPS = {"mul", "div", "udiv", "rem", "urem"}   # lowered to calls


def _is_call_site(instr: IrInstr) -> bool:
    if instr.op in _CALL_OPS:
        return True
    return instr.op == "bin" and instr.subop in _CALL_SUBOPS


@dataclass
class Assignment:
    """Result of allocation: vreg -> register name or spill slot index."""

    regs: dict[VReg, str] = field(default_factory=dict)
    spills: dict[VReg, int] = field(default_factory=dict)
    num_spill_slots: int = 0
    used_callee_saved: list[str] = field(default_factory=list)

    def location(self, reg: VReg) -> str | int:
        if reg in self.regs:
            return self.regs[reg]
        return self.spills[reg]


class SpillAllAllocator:
    """-O0: every vreg gets a stack slot."""

    def allocate(self, fn: IrFunction) -> Assignment:
        assignment = Assignment()
        slot = 0
        seen: set[VReg] = set()
        for instr in fn.instrs:
            for reg in [instr.dest, instr.a, instr.b, *instr.args]:
                if reg is not None and reg not in seen:
                    seen.add(reg)
                    assignment.spills[reg] = slot
                    slot += 1
        for param in fn.params:
            if param not in seen:
                assignment.spills[param] = slot
                slot += 1
        assignment.num_spill_slots = slot
        return assignment


@dataclass
class _Interval:
    reg: VReg
    start: int
    end: int
    crosses_call: bool = False


def _block_boundaries(fn: IrFunction) -> list[tuple[int, int]]:
    """(start, end) index pairs of basic blocks in the flat list."""
    starts = [0]
    for index, instr in enumerate(fn.instrs):
        if instr.op == "label" and index != 0:
            starts.append(index)
        elif instr.op in ("jmp", "br", "cbr", "ret") \
                and index + 1 < len(fn.instrs):
            starts.append(index + 1)
    starts = sorted(set(starts))
    blocks = []
    for pos, start in enumerate(starts):
        end = starts[pos + 1] if pos + 1 < len(starts) else len(fn.instrs)
        if start < end:
            blocks.append((start, end))
    return blocks


def _liveness(fn: IrFunction) -> tuple[list[tuple[int, int]],
                                       list[set[VReg]], list[set[VReg]]]:
    """Block live-in/live-out via iterative backward dataflow."""
    blocks = _block_boundaries(fn)
    label_block = {}
    for block_id, (start, _) in enumerate(blocks):
        if fn.instrs[start].op == "label":
            label_block[fn.instrs[start].symbol] = block_id

    successors: list[list[int]] = []
    for block_id, (start, end) in enumerate(blocks):
        last = fn.instrs[end - 1]
        succ: list[int] = []
        if last.op == "jmp":
            succ.append(label_block[last.target])
        elif last.op in ("br", "cbr"):
            succ.append(label_block[last.target])
            succ.append(label_block[last.target2])
        elif last.op == "ret":
            pass
        elif block_id + 1 < len(blocks):
            succ.append(block_id + 1)
        successors.append(succ)

    uses: list[set[VReg]] = []
    defs: list[set[VReg]] = []
    for start, end in blocks:
        use: set[VReg] = set()
        define: set[VReg] = set()
        for instr in fn.instrs[start:end]:
            for reg in [instr.a, instr.b, *instr.args]:
                if reg is not None and reg not in define:
                    use.add(reg)
            if instr.dest is not None:
                define.add(instr.dest)
        uses.append(use)
        defs.append(define)

    live_in = [set() for _ in blocks]
    live_out = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for block_id in reversed(range(len(blocks))):
            out: set[VReg] = set()
            for succ in successors[block_id]:
                out |= live_in[succ]
            inn = uses[block_id] | (out - defs[block_id])
            if out != live_out[block_id] or inn != live_in[block_id]:
                live_out[block_id] = out
                live_in[block_id] = inn
                changed = True
    return blocks, live_in, live_out


class LinearScanAllocator:
    """-O1+: classic linear scan over liveness-derived intervals."""

    def allocate(self, fn: IrFunction) -> Assignment:
        blocks, live_in, live_out = _liveness(fn)
        start: dict[VReg, int] = {}
        end: dict[VReg, int] = {}
        crosses: dict[VReg, bool] = {}

        def touch(reg: VReg, index: int) -> None:
            start.setdefault(reg, index)
            start[reg] = min(start[reg], index)
            end[reg] = max(end.get(reg, index), index)

        for param in fn.params:
            touch(param, 0)
        for block_id, (bstart, bend) in enumerate(blocks):
            for reg in live_in[block_id]:
                touch(reg, bstart)
            for reg in live_out[block_id]:
                touch(reg, bend - 1)
        for index, instr in enumerate(fn.instrs):
            for reg in [instr.dest, instr.a, instr.b, *instr.args]:
                if reg is not None:
                    touch(reg, index)

        call_sites = [index for index, instr in enumerate(fn.instrs)
                      if _is_call_site(instr)]
        for reg in start:
            crosses[reg] = any(start[reg] < site < end[reg]
                               for site in call_sites)

        intervals = sorted(
            (_Interval(reg, start[reg], end[reg], crosses[reg])
             for reg in start),
            key=lambda iv: (iv.start, iv.end))

        assignment = Assignment()
        active: list[tuple[int, str, VReg]] = []   # (end, reg name, vreg)
        free_caller = [r for r in ALLOCATABLE if r not in CALLEE_SAVED]
        free_callee = list(CALLEE_SAVED)

        def expire(now: int) -> None:
            for entry in list(active):
                if entry[0] < now:
                    active.remove(entry)
                    name = entry[1]
                    if name in CALLEE_SAVED:
                        free_callee.append(name)
                    else:
                        free_caller.append(name)

        for interval in intervals:
            expire(interval.start)
            pool = free_callee if interval.crosses_call else free_caller
            alt = free_callee if not interval.crosses_call else []
            if pool:
                name = pool.pop(0)
            elif alt:
                name = alt.pop(0)
            else:
                assignment.spills[interval.reg] = \
                    assignment.num_spill_slots
                assignment.num_spill_slots += 1
                continue
            assignment.regs[interval.reg] = name
            active.append((interval.end, name, interval.reg))
        assignment.used_callee_saved = sorted(
            {name for name in assignment.regs.values()
             if name in CALLEE_SAVED})
        return assignment
