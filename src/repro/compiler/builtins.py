"""Baremetal runtime helpers (libgcc-analog, emitted only when used).

RV32E base has no hardware multiply/divide; GCC would emit calls to libgcc
(`__mulsi3` etc.).  The paper compiles baremetal *without* libgcc, so these
routines are part of the program image — exactly why multiply-heavy
workloads show larger instruction subsets in Table 3.

Each entry maps the symbol to (assembly text, dependencies).
"""

_MULSI3 = """__mulsi3:
    mv a2, a0
    li a0, 0
.Lmul_loop:
    beqz a1, .Lmul_done
    andi a3, a1, 1
    beqz a3, .Lmul_skip
    add a0, a0, a2
.Lmul_skip:
    slli a2, a2, 1
    srli a1, a1, 1
    j .Lmul_loop
.Lmul_done:
    ret"""

_UDIVSI3 = """__udivsi3:
    li a2, 0
    li a3, 0
    li a4, 32
.Ludiv_loop:
    beqz a4, .Ludiv_done
    slli a3, a3, 1
    srli a5, a0, 31
    or a3, a3, a5
    slli a0, a0, 1
    slli a2, a2, 1
    bltu a3, a1, .Ludiv_skip
    sub a3, a3, a1
    ori a2, a2, 1
.Ludiv_skip:
    addi a4, a4, -1
    j .Ludiv_loop
.Ludiv_done:
    mv a0, a2
    ret"""

_UMODSI3 = """__umodsi3:
    li a2, 0
    li a3, 0
    li a4, 32
.Lumod_loop:
    beqz a4, .Lumod_done
    slli a3, a3, 1
    srli a5, a0, 31
    or a3, a3, a5
    slli a0, a0, 1
    bltu a3, a1, .Lumod_skip
    sub a3, a3, a1
.Lumod_skip:
    addi a4, a4, -1
    j .Lumod_loop
.Lumod_done:
    mv a0, a3
    ret"""

_DIVSI3 = """__divsi3:
    addi sp, sp, -16
    sw ra, 12(sp)
    xor t0, a0, a1
    sw t0, 8(sp)
    bgez a0, .Ldiv_absb
    neg a0, a0
.Ldiv_absb:
    bgez a1, .Ldiv_go
    neg a1, a1
.Ldiv_go:
    call __udivsi3
    lw t0, 8(sp)
    bgez t0, .Ldiv_done
    neg a0, a0
.Ldiv_done:
    lw ra, 12(sp)
    addi sp, sp, 16
    ret"""

_MODSI3 = """__modsi3:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    bgez a0, .Lmod_absb
    neg a0, a0
.Lmod_absb:
    bgez a1, .Lmod_go
    neg a1, a1
.Lmod_go:
    call __umodsi3
    lw t0, 8(sp)
    bgez t0, .Lmod_done
    neg a0, a0
.Lmod_done:
    lw ra, 12(sp)
    addi sp, sp, 16
    ret"""

#: symbol -> (assembly text, dependency symbols)
BUILTIN_ASM: dict[str, tuple[str, tuple[str, ...]]] = {
    "__mulsi3": (_MULSI3, ()),
    "__udivsi3": (_UDIVSI3, ()),
    "__umodsi3": (_UMODSI3, ()),
    "__divsi3": (_DIVSI3, ("__udivsi3",)),
    "__modsi3": (_MODSI3, ("__umodsi3",)),
}
