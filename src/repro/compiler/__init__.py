"""MicroC compiler: the riscv32-gcc stand-in for the RISSP toolflow."""

from .codegen import CodegenError
from .driver import (
    CompileResult,
    OPT_LEVELS,
    compile_to_assembly,
    compile_to_program,
    normalize_level,
)
from .irgen import SemaError
from .lexer import LexError, tokenize
from .parser import ParseError, parse

__all__ = [
    "CodegenError", "CompileResult", "LexError", "OPT_LEVELS", "ParseError",
    "SemaError", "compile_to_assembly", "compile_to_program",
    "normalize_level", "parse", "tokenize",
]
