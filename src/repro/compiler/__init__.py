"""MicroC compiler: the riscv32-gcc stand-in for the RISSP toolflow.

System intrinsics (PR 5)
------------------------

MicroC can express a complete machine-mode firmware image — trap setup,
ISRs, CSR traffic and duty-cycled sleep — without a hand-written assembly
runtime.  Five builtins lower straight to the Zicsr/``wfi`` encodings
(the CSR id must be a compile-time constant expression; it is folded at
parse time and emitted as the instruction's immediate):

=======================  =================================================
intrinsic                emitted instruction
=======================  =================================================
``__csrr(id)``           ``csrr rd, id`` — read, returns the CSR value
``__csrw(id, v)``        ``csrw id, rs`` — write
``__csrs(id, v)``        ``csrs id, rs`` — set the bits of ``v``
``__csrc(id, v)``        ``csrc id, rs`` — clear the bits of ``v``
``__wfi()``              ``wfi`` — sleep until an enabled interrupt
                         source becomes pending
=======================  =================================================

A function declared with the ``__interrupt`` qualifier::

    __interrupt void isr(void) { ... }

becomes an interrupt service routine: codegen preserves every
caller-saved register the handler can clobber — the full set (ra, gp,
tp, t0-t2, a0-a5) when it calls out, just the registers it actually
touches when it is a leaf — restores them in the epilogue, and returns
with ``mret`` instead of ``ret``.  ISRs take no parameters, return
``void`` and must not be called directly; install one by writing its
address (a bare function name evaluates to its link-time address) to
``mtvec``::

    __csrw(0x305, isr);      /* mtvec = &isr */

Memory-ordering note: ``__wfi()`` is a compiler barrier — locally
value-numbered loads are invalidated across it, so ISR-written globals
re-read after a wake-up observe fresh values.
"""

from .codegen import CodegenError
from .driver import (
    CompileResult,
    OPT_LEVELS,
    compile_to_assembly,
    compile_to_program,
    normalize_level,
)
from .irgen import SemaError
from .lexer import LexError, tokenize
from .parser import ParseError, parse

__all__ = [
    "CodegenError", "CompileResult", "LexError", "OPT_LEVELS", "ParseError",
    "SemaError", "compile_to_assembly", "compile_to_program",
    "normalize_level", "parse", "tokenize",
]
