"""Program execution harness for generated RISSP modules.

Drives the RTL evaluator cycle-by-cycle against a flat memory (or, with a
:class:`~repro.soc.SocSpec` attached, against the MMIO bus), mirroring the
testbench the paper uses for integration-level verification: the DUT is
the stitched RISSP RTL, the memory plays imem/dmem, and every retired
instruction can be captured as an RVFI record for the riscv-formal-analog
checker.

RVFI records follow the shared read-effect convention of
:mod:`repro.sim.tracing`: sub-word loads report the true byte address, the
``(1 << width) - 1`` lane mask and the extended sub-word value — the same
fields the golden ISS emits — so :func:`cosimulate` can compare the *read*
side of the memory interface bit-for-bit, not just the write side.
Instruction words are decoded through the memoized
:func:`repro.isa.encoding.decode`, so classifying loads and halt causes
costs one dict probe per retirement.

Machine-mode division of labour (PR 3, multi-source in PR 5): a
trap-capable core (built with ``mret`` in its subset, see
:func:`repro.rtl.rissp.build_rissp`) performs ``ecall``/``ebreak`` trap
entry to ``mtvec`` and ``mret`` return *in hardware* — the
mtvec/mepc/mcause CSR registers live in the RTL module and the compiled
backend commits them like any other register.  The Zicsr register
instructions and ``wfi`` have no hardware block; this harness retires
them testbench-side through the same :func:`repro.isa.spec.step`
semantics the golden ISS uses (the CSR state *is* the hardware registers,
via :class:`_HwCsrFile`), and injects interrupts between retirements
through the identical :meth:`~repro.sim.csr.CsrFile.pending_cause`
arbiter over the SoC's packed pending word — which is what keeps
lock-step cosimulation of multi-source trap/interrupt timing exact, down
to the arbitrated cause code in the RVFI ``intr`` column.

The harness also enforces the RV32E register bound (PR 5 conformance
fix): a decodable word whose register fields reach x16+ traps as illegal
(mtval = the word) instead of reaching a datapath that would silently
truncate the 5-bit field to the 16-entry file.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.bits import to_u32
from ..isa.csrs import CAUSE_ILLEGAL_INSTRUCTION, MCAUSE, MEPC, MTVEC
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import CSR_OPS
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.spec import _LOAD_WIDTH, step
from ..obs import telemetry as _obs
from ..sim.csr import CsrError, CsrFile
from ..sim.golden import RunResult, SimulationError
from ..sim.memory import Memory, MemoryError_
from ..sim.tracing import RvfiRecord, RvfiTrace, load_read_fields
from ..soc import NEVER
from ..soc.bus import PowerOffSignal
from .compiled import WSTRB_WIDTH as _WSTRB_WIDTH
from .ir import Module
from .sim import RtlSim

#: RVFI fields compared in lock-step by :func:`cosimulate` — the full
#: retirement contract: instruction, pc chain, writeback, both sides of
#: the memory interface, and the trap/interrupt flags.
COSIM_FIELDS = ("insn", "pc_rdata", "pc_wdata", "rd_addr", "rd_wdata",
                "mem_addr", "mem_rmask", "mem_rdata",
                "mem_wmask", "mem_wdata", "trap", "intr")

#: System instructions the harness retires for the core (no RTL block).
_EMULATED = set(CSR_OPS) | {"wfi"}

#: RV32E register-file size every generated RISSP shares.
_RV32E_REGS = 16

#: word -> fused-loop class (0 = hardware, 1 = harness-emulated Zicsr/wfi,
#: 2 = mret, 3 = decodable word whose register fields violate the RV32E
#: bound — the hardware would silently truncate the 5-bit field to the
#: 4-bit file, so the harness must trap it before it reaches the
#: datapath, exactly as the golden ISS does).  Global like the decode
#: memo: classification depends only on the instruction word, never on
#: the core.
_WORD_CLASS: dict[int, int] = {}


def _classify_word(word: int) -> int:
    """Classify (and memoize) one instruction word for the cycle loops."""
    try:
        instr = decode(word)
    except DecodeError:
        cls = 0
    else:
        # Same register-bound rule as repro.sim.decoded.DecodedImage: the
        # Zicsr immediate forms carry a uimm in the rs1 field, exempt
        # from the bound.
        if instr.rd >= _RV32E_REGS or instr.rs2 >= _RV32E_REGS \
                or (not instr.definition.csr_uimm
                    and instr.rs1 >= _RV32E_REGS):
            cls = 3
        elif instr.mnemonic in _EMULATED:
            cls = 1
        elif instr.mnemonic == "mret":
            cls = 2
        else:
            cls = 0
    _WORD_CLASS[word] = cls
    return cls


def _halt_reason(word: int) -> str:
    """Halt cause of a halting retirement, same decode as the per-cycle
    harness."""
    return "ebreak" if decode(word).mnemonic == "ebreak" else "ecall"


def _trace_load_fields(word: int, addr: int,
                       mem_word: int) -> tuple[int, int, int]:
    """RVFI read-effect triple for a traced load (fused-loop callback)."""
    width, signed = _LOAD_WIDTH[decode(word).mnemonic]
    return load_read_fields(addr, mem_word, width, signed)


class _HwCsrFile(CsrFile):
    """CSR file whose mtvec/mepc/mcause are the RTL core's registers.

    The trap-slice state lives in exactly one place — the hardware
    register environment — so harness-emulated Zicsr instructions, the
    hardware trap unit and the interrupt injector can never disagree about
    it.  mstatus/mie/mip/mscratch/mtval stay harness-side (plain slots).
    """

    __slots__ = ("_env",)

    def __init__(self, env: dict):
        self._env = env
        super().__init__()

    @property
    def mtvec(self) -> int:
        return self._env["mtvec"]

    @mtvec.setter
    def mtvec(self, value: int) -> None:
        self._env["mtvec"] = value & 0xFFFFFFFF

    @property
    def mepc(self) -> int:
        return self._env["mepc"]

    @mepc.setter
    def mepc(self, value: int) -> None:
        self._env["mepc"] = value & 0xFFFFFFFF

    @property
    def mcause(self) -> int:
        return self._env["mcause"]

    @mcause.setter
    def mcause(self, value: int) -> None:
        self._env["mcause"] = value & 0xFFFFFFFF


class RisspSim:
    """Run programs on a RISSP RTL module (cycle-accurate, single cycle/instr)."""

    def __init__(self, core: Module, program: Program,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False,
                 trace_capacity: int | None = None,
                 backend: str | None = None,
                 soc: "object | None" = None):
        self.core = core
        self.memory = Memory.from_program(program, mem_size)
        from ..soc import attach_soc
        self.soc = attach_soc(soc, self.memory)
        if self.soc is not None:
            self.memory = self.soc.bus
        self.rtl = RtlSim(core, backend=backend)
        self.rtl.env["pc"] = to_u32(program.entry)
        self._trap_hw = "mtvec" in core.registers
        self.csr = _HwCsrFile(self.rtl.env) if self._trap_hw else CsrFile()
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        self._poweroff_code = 0
        self._fused = None
        self._fused_ctx = None
        self._fused_sink: RvfiTrace | None = None
        if self.rtl.backend == "fused":
            from .compiled import compile_core, core_fusable
            if core_fusable(core):
                self._fused = compile_core(core)
        # ABI setup mirrors the golden ISS: sp at top, ra at the halt stub.
        from ..isa.encoding import Instruction, encode
        from ..sim.golden import _HALT_SENTINEL, abi_initial_regs
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)
        if self.rtl.regfile_data is not None:
            for index, value in abi_initial_regs(mem_size).items():
                self.rtl.regfile_data[index] = value

    def _cycle(self, order: int,
               sink: RvfiTrace | None = None) -> tuple[bool, str]:
        """Advance one cycle; returns (halted, halt_reason).

        When ``sink`` is given (requires ``trace=True`` construction), the
        retirement's RVFI fields are appended to it as one columnar row.
        """
        rtl = self.rtl
        csr = self.csr
        soc = self.soc
        intr = 0
        pc = rtl.get("pc")
        if soc is not None:
            csr.set_pending(soc.irq_lines(order))
            cause = csr.pending_cause()
            if cause is not None:
                # Arbitrated interrupt entry between retirements,
                # identical to the golden ISS: redirect to the handler,
                # latch mepc/mcause (the hardware CSR registers, via the
                # shared CsrFile).  The intr column carries the
                # arbitrated exception code.
                pc = csr.take_interrupt(cause, pc)
                rtl.env["pc"] = pc
                intr = cause & 0x3F
        word = self.memory.fetch(pc)

        cls = _WORD_CLASS.get(word)
        if cls is None:
            cls = _classify_word(word)
        if cls == 3:
            # RV32E register-bound violation: the datapath would truncate
            # the register field, so trap/refuse harness-side (PR 5 fix).
            return self._retire_illegal(order, sink, pc, word, intr)
        if self._trap_hw and cls == 1:
            return self._retire_emulated(order, sink, pc, word, intr)

        rtl.set_inputs(imem_rdata=word, dmem_rdata=0)
        rtl.eval_comb()
        if rtl.get("illegal"):
            return self._retire_illegal(order, sink, pc, word, intr)
        reading = bool(rtl.get("dmem_re"))
        load_addr = mem_word = 0
        if reading:
            load_addr = rtl.get("dmem_addr")
            mem_word = self.memory.load(load_addr & ~0x3, 4, signed=False)
            rtl.set_inputs(dmem_rdata=mem_word)
            rtl.eval_comb()

        wstrb = rtl.get("dmem_wstrb")
        mem_addr = mem_wmask = mem_wdata = 0
        halted = False
        reason = ""
        if wstrb:
            addr = rtl.get("dmem_addr")
            base = addr & ~0x3
            wdata = rtl.get("dmem_wdata")
            width = _WSTRB_WIDTH.get(wstrb)
            if width is None:
                raise SimulationError(f"malformed dmem_wstrb {wstrb:#06b}")
            offset = (wstrb & -wstrb).bit_length() - 1
            mem_addr = base + offset
            mem_wmask = (1 << width) - 1
            mem_wdata = (wdata >> (8 * offset)) & ((1 << (8 * width)) - 1)
            try:
                self.memory.store(mem_addr, mem_wdata, width)
            except PowerOffSignal as sig:
                self._poweroff_code = sig.exit_code
                halted, reason = True, "poweroff"
            if soc is not None:
                soc.rebase(order)   # honour firmware writes to MTIME

        trapped = 0
        if self._trap_hw and rtl.get("trap"):
            # Hardware ecall/ebreak trap entry: mepc/mcause latch at the
            # tick below; mirror the mstatus/mtval side in the shadow.
            csr.stack_interrupt_enable()
            csr.mtval = 0
            trapped = 1
        elif self._trap_hw and cls == 2:
            csr.unstack_interrupt_enable()

        if not halted and bool(rtl.get("halt")):
            halted = True
            reason = _halt_reason(word)
        if sink is not None:
            mem_rmask = mem_rdata = 0
            if reading:
                width, signed = _LOAD_WIDTH[decode(word).mnemonic]
                mem_addr, mem_rmask, mem_rdata = load_read_fields(
                    load_addr, mem_word, width, signed)
            we = rtl.get("rf_we")
            waddr = rtl.get("rf_waddr") if we else 0
            rs1_addr = rtl.get("rf_rs1_addr")
            rs2_addr = rtl.get("rf_rs2_addr")
            sink.append_row(
                order, word, pc, rtl.get("next_pc"), rs1_addr, rs2_addr,
                self._read_rf(rs1_addr), self._read_rf(rs2_addr), waddr,
                rtl.get("rf_wdata") if we and waddr else 0,
                mem_addr, mem_rmask, mem_wmask, mem_rdata, mem_wdata,
                trapped, intr)
        rtl.tick()
        return halted, reason

    def _wfi_resume(self, order: int) -> bool:
        """Shared ``wfi`` wake rule (see ``GoldenSim._wfi_resume``):
        fast-forward to the next *enabled* source edge regardless of
        ``mstatus.MIE``; False = nothing armed, end the run cleanly."""
        wake = self.csr.wfi_wake_mask()
        if self.soc is None or not wake:
            return False
        return self.soc.skip_to_event(order + 1, wake)

    def _retire_emulated(self, order: int, sink: RvfiTrace | None, pc: int,
                         word: int, intr: int) -> tuple[bool, str]:
        """Testbench-side retirement of a Zicsr/wfi instruction: same
        :func:`repro.isa.spec.step` semantics as the golden ISS, operating
        on the hardware CSR registers.  The RTL datapath is not clocked —
        architecturally the instruction retires in one cycle like any
        other."""
        instr = decode(word)
        rs1_is_reg = not instr.definition.csr_uimm
        rs1 = self._read_rf(instr.rs1) if rs1_is_reg else 0
        try:
            effects = step(instr, pc, rs1, 0, csr=self.csr.read)
            if effects.csr_write is not None:
                # Inside the try: a write to a read-only CSR traps as
                # illegal with no architectural side effects.
                self.csr.write(*effects.csr_write)
        except CsrError:
            if self.csr.traps_enabled:
                return self._retire_trap(order, sink, pc, word, intr)
            raise SimulationError(
                f"{instr.mnemonic} at {pc:#x}: illegal CSR access "
                f"(csr {instr.imm:#x})") from None
        halted = effects.is_wfi and not self._wfi_resume(order)
        if effects.rd is not None and self.rtl.regfile_data is not None:
            self.rtl.regfile_data[effects.rd] = effects.rd_data
        self.rtl.env["pc"] = effects.next_pc
        if sink is not None:
            sink.append_row(
                order, word, pc, effects.next_pc,
                instr.rs1 if rs1_is_reg else 0, 0, rs1, 0,
                effects.rd or 0, effects.rd_data if effects.rd else 0,
                0, 0, 0, 0, 0, 0, intr)
        return halted, "wfi" if halted else ""

    def _retire_illegal(self, order: int, sink: RvfiTrace | None, pc: int,
                        word: int, intr: int) -> tuple[bool, str]:
        """Retire an instruction the RTL flags illegal: trap entry when a
        handler is installed, simulator refusal otherwise (shared by the
        per-cycle and fused paths so messages and timing agree)."""
        if self._trap_hw and self.csr.traps_enabled:
            return self._retire_trap(order, sink, pc, word, intr)
        raise SimulationError(
            f"unsupported instruction {word:#010x} at {pc:#x} "
            f"(subset: {self.core.meta.get('mnemonics')})")

    def _retire_trap(self, order: int, sink: RvfiTrace | None, pc: int,
                     word: int, intr: int) -> tuple[bool, str]:
        """Illegal-instruction trap entry (harness-side: the RTL slice
        only traps ecall/ebreak in hardware)."""
        target = self.csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc, word)
        self.rtl.env["pc"] = target
        if sink is not None:
            sink.append_row(order, word, pc, target, 0, 0, 0, 0, 0, 0,
                            trap=1, intr=intr)
        return False, ""

    def _read_rf(self, index: int) -> int:
        if self.rtl.regfile_data is None or index == 0:
            return 0
        return self.rtl.regfile_data[index]

    # ------------------------------------------------------ fused fast path
    #
    # The callbacks below are the only Python the generated run_cycles loop
    # calls back into: MMIO/device traffic, traps/interrupts, emulated
    # system instructions and halt classification.  Each one replicates the
    # corresponding _cycle branch exactly (same CSR syncing, same
    # exceptions); the generated code flushes loop-carried register locals
    # into rtl.env before any callback that can read or write CSR state
    # through _HwCsrFile, and reloads them after.

    def _fused_context(self) -> dict:
        ctx = self._fused_ctx
        if ctx is None:
            memory = self.memory
            ctx = self._fused_ctx = {
                "env": self.rtl.env,
                "regfile": self.rtl.regfile_data,
                "mem": memory.raw,
                "ram_size": memory.direct_size,
                "fetch": memory.fetch,
                "load_mmio": self._fused_load_slow,
                "store_mmio": self._fused_store_slow,
                "illegal": self._fused_illegal,
                "halt_reason": _halt_reason,
                "trace_load": _trace_load_fields,
                "wclass": _WORD_CLASS,
                "classify": _classify_word,
                "emulated": self._fused_emulated,
                "mret": self._fused_mret,
                "hw_trap": self._fused_hw_trap,
                "fire_index": self._fused_fire_index,
                "take_interrupt": self._fused_take_interrupt,
            }
        return ctx

    def _fused_fire_index(self) -> int:
        """Retirement index of the next arbitrated interrupt (NEVER when
        no SoC is attached or no source can fire) — the fused loop's
        entire per-cycle interrupt cost is one compare against this."""
        if self.soc is None:
            return NEVER
        return self.soc.fire_index(self.csr)

    def _fused_take_interrupt(self, order: int, pc: int) -> tuple[int, int]:
        """Arbitrated interrupt entry; returns ``(handler_pc, intr_code)``
        — the generated loop stamps the code into the RVFI intr column."""
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.interrupt"] += 1
        csr = self.csr
        csr.set_pending(self.soc.irq_lines(order))
        cause = csr.pending_cause()
        return csr.take_interrupt(cause, pc), cause & 0x3F

    def _fused_mret(self) -> None:
        """Harness side of an ``mret`` retirement (interrupt-enable
        unstack; the pc redirect happens in the generated loop)."""
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.mret"] += 1
        self.csr.unstack_interrupt_enable()

    def _fused_emulated(self, order: int, pc: int, word: int,
                        intr: int) -> tuple[bool, str]:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.emulated"] += 1
        if self.soc is not None:
            # The per-cycle path syncs the clock and the mip levels at the
            # top of every cycle; the fused loop only needs them fresh
            # where they are observable — a csrr of mip, wfi fast-forward.
            self.csr.set_pending(self.soc.irq_lines(order))
        return self._retire_emulated(order, self._fused_sink, pc, word,
                                     intr)

    def _fused_illegal(self, order: int, pc: int, word: int,
                       intr: int) -> None:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.illegal"] += 1
        self._retire_illegal(order, self._fused_sink, pc, word, intr)

    def _fused_hw_trap(self) -> None:
        """Harness side of a hardware ecall/ebreak trap entry (mepc/mcause
        latch in the generated tick)."""
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.hw_trap"] += 1
        self.csr.stack_interrupt_enable()
        self.csr.mtval = 0

    def _fused_load_slow(self, order: int, addr: int) -> int:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.mmio_load"] += 1
        if self.soc is not None:
            self.soc.sync(order)
        return self.memory.load(addr, 4, signed=False)

    def _fused_store_slow(self, order: int, addr: int, value: int,
                          width: int) -> bool:
        """Out-of-RAM store (device window or fault); True ends the run
        as a poweroff."""
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["fused.exit.mmio_store"] += 1
        soc = self.soc
        if soc is not None:
            soc.sync(order)
        try:
            self.memory.store(addr, value, width)
        except PowerOffSignal as sig:
            self._poweroff_code = sig.exit_code
            return True
        if soc is not None:
            soc.rebase(order)   # honour firmware writes to MTIME
        return False

    def _fused_run(self, count: int, limit: int,
                   trace: RvfiTrace | None) -> tuple[bool, str, int]:
        """Drive the fused loop from retirement ``count`` up to ``limit``.

        State persists in ``rtl.env``/``regfile_data`` between calls, so
        runs are resumable (the chunked cosimulation uses this) and
        peek/poke fault injection between calls behaves exactly like the
        per-cycle backends.  The trailing ``eval_comb`` re-settles every
        combinational signal so ``get()`` stays coherent after the run.
        """
        self._fused_sink = trace
        sink = trace.append_row if trace is not None else None
        active = _obs._ACTIVE
        if active is None:
            try:
                return self._fused.run_cycles(self._fused_context(), count,
                                              limit, sink)
            finally:
                self._fused_sink = None
                self.rtl.eval_comb()
        # Telemetry path: decode-cache stats from the shared per-word
        # cache's growth (misses are exact; lookups are approximated by
        # retirements — every retirement probes the cache once, though
        # emulated/illegal words re-decode via the ISA memo instead, so
        # the derived hit rate is a lower bound).  Nothing is injected
        # into the generated loop itself.
        dcache = self._fused.namespace.get("_DCACHE")
        words_before = len(dcache) if dcache is not None else 0
        try:
            halted, reason, retired = self._fused.run_cycles(
                self._fused_context(), count, limit, sink)
        finally:
            self._fused_sink = None
            self.rtl.eval_comb()
        counters = active.counters
        counters["fused.runs"] += 1
        counters["fused.retired"] += retired - count
        counters["decode_cache.lookups"] += retired - count
        if dcache is not None:
            counters["decode_cache.misses"] += len(dcache) - words_before
        if halted:
            counters["fused.exit.halt"] += 1
        return halted, reason, retired

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Run to halt; single-cycle core, so cycles == instructions."""
        trace = RvfiTrace(capacity=self._trace_capacity) \
            if self._trace_enabled else None
        if self._fused is not None:
            halted, reason, count = self._fused_run(0, max_instructions,
                                                    trace)
            halted_by = (reason or "ecall") if halted else "limit"
        else:
            count = 0
            halted_by = "limit"
            while count < max_instructions:
                halted, reason = self._cycle(count, trace)
                count += 1
                if halted:
                    halted_by = reason or "ecall"
                    break
        exit_code = self._poweroff_code if halted_by == "poweroff" \
            else self._read_rf(10)
        return RunResult(exit_code=exit_code, instructions=count,
                         cycles=count, halted_by=halted_by,
                         trace=trace if trace is not None else [])


@dataclass
class CosimMismatch:
    """First divergence between RISSP RTL and the golden ISS."""

    index: int
    field: str
    rtl_value: int
    golden_value: int


def cosimulate(core: Module, program: Program,
               max_instructions: int = 2_000_000,
               golden_trace_out: "RvfiTrace | list[RvfiRecord] | None" = None,
               backend: str | None = None,
               soc: "object | None" = None) -> CosimMismatch | None:
    """Lock-step compare RISSP RTL execution against the golden ISS.

    Returns None only when the run matches *through the halting
    instruction*; exhausting ``max_instructions`` without a halt is
    reported as a ``"limit"`` pseudo-mismatch so a matching prefix is never
    mistaken for full verification.  Every retired instruction's PC,
    writeback, memory effect (read *and* write side) and trap/interrupt
    flags must agree.

    Both sides retire into columnar :class:`RvfiTrace` sinks and the
    comparison reads field columns directly — no per-retirement record
    allocation.  On the per-cycle backends the RTL side keeps only the
    newest row (ring capacity 1); the fused path buffers at most
    :data:`COSIM_CHUNK` rows per chunk.

    ``golden_trace_out``, when given, receives the golden reference's RVFI
    retirements as they happen — callers wanting to additionally spec-check
    the reference (see :func:`repro.verify.rvfi.check_trace`) reuse this
    trace instead of paying for a second traced golden run.  Pass an
    :class:`RvfiTrace` to record columnar rows in place; a plain list
    receives materialized :class:`RvfiRecord` objects for back-compat.

    ``backend`` forces the RTL evaluator backend (``"fused"`` /
    ``"compiled"`` / ``"interpreter"``); the default follows
    :class:`RtlSim`.  With the fused backend the RTL side executes in
    chunks of :data:`COSIM_CHUNK` retirements through the fused loop and
    the golden reference replays each chunk's rows in lock-step — same
    first-divergence verdicts as the per-cycle walk (an RTL exception is
    only re-raised after the rows retired before it compared clean), at a
    fraction of the cycle cost.  ``soc`` attaches a
    :class:`~repro.soc.SocSpec` — each side instantiates its own device
    set from it, so lock-step covers MMIO and interrupt timing.
    """
    from ..sim.golden import GoldenSim

    rtl = RisspSim(core, program, trace=True, backend=backend, soc=soc)
    gold = GoldenSim(program, trace=True, soc=soc)
    if isinstance(golden_trace_out, RvfiTrace):
        gold_trace = golden_trace_out
        emit_records = None
    else:
        gold_trace = RvfiTrace(capacity=None if golden_trace_out is not None
                               else 1)
        emit_records = golden_trace_out
    field_slots = [RvfiTrace.FIELDS.index(name) for name in COSIM_FIELDS]
    try:
        if rtl._fused is not None:
            return _cosimulate_fused(rtl, gold, gold_trace, field_slots,
                                     max_instructions)
        rtl_trace = RvfiTrace(capacity=1)
        for index in range(max_instructions):
            rtl_halt, _ = rtl._cycle(index, rtl_trace)
            gold_halt, _ = gold.retire_one(index, gold_trace)
            mismatch = _retirement_mismatch(index, rtl_trace.row(-1),
                                            gold_trace.row(-1), rtl_halt,
                                            gold_halt, field_slots)
            if mismatch is not None:
                return mismatch
            if rtl_halt:
                return None
        return CosimMismatch(max_instructions, "limit", 0, 0)
    finally:
        if emit_records is not None:
            emit_records.extend(gold_trace)


def _retirement_mismatch(order: int, rtl_row: tuple, gold_row: tuple,
                         rtl_halt: bool, gold_halt: bool,
                         field_slots: list[int]) -> CosimMismatch | None:
    """First-divergence verdict for one retirement — the single compare
    both the per-cycle walk and the chunked fused path go through, so
    their verdicts cannot drift apart."""
    if rtl_row != gold_row:
        for slot, field_name in zip(field_slots, COSIM_FIELDS):
            if rtl_row[slot] != gold_row[slot]:
                return CosimMismatch(order, field_name, rtl_row[slot],
                                     gold_row[slot])
    if rtl_halt != gold_halt:
        return CosimMismatch(order, "halt", int(rtl_halt), int(gold_halt))
    return None


#: Retirements per fused-cosimulation chunk: bounds the RTL-side trace
#: buffer (and how far the RTL can run past a divergence before the
#: chunk's rows are compared).
COSIM_CHUNK = 4096


def _cosimulate_fused(rtl: RisspSim, gold, gold_trace: RvfiTrace,
                      field_slots: list[int],
                      max_instructions: int) -> CosimMismatch | None:
    """Chunked lock-step: fused RTL execution vs per-retirement golden.

    Verdict-equivalent to the per-cycle walk: rows are compared in
    retirement order, halt divergence is checked per row, and an RTL-side
    refusal (SimulationError/MemoryError_) propagates only if every row
    retired before it matched — exactly the information order the
    cycle-by-cycle loop observes.
    """
    order = 0
    while order < max_instructions:
        chunk = RvfiTrace()
        refusal = None
        rtl_halted = False
        try:
            rtl_halted, _, _ = rtl._fused_run(
                order, min(order + COSIM_CHUNK, max_instructions), chunk)
        except (SimulationError, MemoryError_) as exc:
            refusal = exc
        rows = len(chunk)
        for index in range(rows):
            gold_halt, _ = gold.retire_one(order + index, gold_trace)
            rtl_halt = rtl_halted and index == rows - 1
            mismatch = _retirement_mismatch(order + index, chunk.row(index),
                                            gold_trace.row(-1), rtl_halt,
                                            gold_halt, field_slots)
            if mismatch is not None:
                return mismatch
            if rtl_halt:
                return None
        if refusal is not None:
            raise refusal
        order += rows
    return CosimMismatch(max_instructions, "limit", 0, 0)
