"""Program execution harness for generated RISSP modules.

Drives the RTL evaluator cycle-by-cycle against a flat memory (or, with a
:class:`~repro.soc.SocSpec` attached, against the MMIO bus), mirroring the
testbench the paper uses for integration-level verification: the DUT is
the stitched RISSP RTL, the memory plays imem/dmem, and every retired
instruction can be captured as an RVFI record for the riscv-formal-analog
checker.

RVFI records follow the shared read-effect convention of
:mod:`repro.sim.tracing`: sub-word loads report the true byte address, the
``(1 << width) - 1`` lane mask and the extended sub-word value — the same
fields the golden ISS emits — so :func:`cosimulate` can compare the *read*
side of the memory interface bit-for-bit, not just the write side.
Instruction words are decoded through the memoized
:func:`repro.isa.encoding.decode`, so classifying loads and halt causes
costs one dict probe per retirement.

Machine-mode division of labour (PR 3): a trap-capable core (built with
``mret`` in its subset, see :func:`repro.rtl.rissp.build_rissp`) performs
``ecall``/``ebreak`` trap entry to ``mtvec`` and ``mret`` return *in
hardware* — the mtvec/mepc/mcause CSR registers live in the RTL module and
the compiled backend commits them like any other register.  The Zicsr
register instructions and ``wfi`` have no hardware block; this harness
retires them testbench-side through the same :func:`repro.isa.spec.step`
semantics the golden ISS uses (the CSR state *is* the hardware registers,
via :class:`_HwCsrFile`), and injects timer interrupts between retirements
with the identical :class:`~repro.sim.csr.CsrFile` gating — which is what
keeps lock-step cosimulation of trap/interrupt timing exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.bits import to_u32
from ..isa.csrs import CAUSE_ILLEGAL_INSTRUCTION, MCAUSE, MEPC, MTVEC
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import CSR_OPS
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.spec import _LOAD_WIDTH, step
from ..sim.csr import CsrError, CsrFile
from ..sim.golden import RunResult, SimulationError
from ..sim.memory import Memory
from ..sim.tracing import RvfiRecord, RvfiTrace, load_read_fields
from ..soc.bus import PowerOffSignal
from .ir import Module
from .sim import RtlSim

_WSTRB_WIDTH = {0b0001: 1, 0b0010: 1, 0b0100: 1, 0b1000: 1,
                0b0011: 2, 0b1100: 2, 0b1111: 4}

#: RVFI fields compared in lock-step by :func:`cosimulate` — the full
#: retirement contract: instruction, pc chain, writeback, both sides of
#: the memory interface, and the trap/interrupt flags.
COSIM_FIELDS = ("insn", "pc_rdata", "pc_wdata", "rd_addr", "rd_wdata",
                "mem_addr", "mem_rmask", "mem_rdata",
                "mem_wmask", "mem_wdata", "trap", "intr")

#: System instructions the harness retires for the core (no RTL block).
_EMULATED = set(CSR_OPS) | {"wfi"}


class _HwCsrFile(CsrFile):
    """CSR file whose mtvec/mepc/mcause are the RTL core's registers.

    The trap-slice state lives in exactly one place — the hardware
    register environment — so harness-emulated Zicsr instructions, the
    hardware trap unit and the interrupt injector can never disagree about
    it.  mstatus/mie/mip/mscratch/mtval stay harness-side (plain slots).
    """

    __slots__ = ("_env",)

    def __init__(self, env: dict):
        self._env = env
        super().__init__()

    @property
    def mtvec(self) -> int:
        return self._env["mtvec"]

    @mtvec.setter
    def mtvec(self, value: int) -> None:
        self._env["mtvec"] = value & 0xFFFFFFFF

    @property
    def mepc(self) -> int:
        return self._env["mepc"]

    @mepc.setter
    def mepc(self, value: int) -> None:
        self._env["mepc"] = value & 0xFFFFFFFF

    @property
    def mcause(self) -> int:
        return self._env["mcause"]

    @mcause.setter
    def mcause(self, value: int) -> None:
        self._env["mcause"] = value & 0xFFFFFFFF


class RisspSim:
    """Run programs on a RISSP RTL module (cycle-accurate, single cycle/instr)."""

    def __init__(self, core: Module, program: Program,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False,
                 trace_capacity: int | None = None,
                 backend: str | None = None,
                 soc: "object | None" = None):
        self.core = core
        self.memory = Memory.from_program(program, mem_size)
        from ..soc import attach_soc
        self.soc = attach_soc(soc, self.memory)
        if self.soc is not None:
            self.memory = self.soc.bus
        self.rtl = RtlSim(core, backend=backend)
        self.rtl.env["pc"] = to_u32(program.entry)
        self._trap_hw = "mtvec" in core.registers
        self.csr = _HwCsrFile(self.rtl.env) if self._trap_hw else CsrFile()
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        self._poweroff_code = 0
        # ABI setup mirrors the golden ISS: sp at top, ra at the halt stub.
        from ..isa.encoding import Instruction, encode
        from ..sim.golden import _HALT_SENTINEL, abi_initial_regs
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)
        if self.rtl.regfile_data is not None:
            for index, value in abi_initial_regs(mem_size).items():
                self.rtl.regfile_data[index] = value

    def _cycle(self, order: int,
               sink: RvfiTrace | None = None) -> tuple[bool, str]:
        """Advance one cycle; returns (halted, halt_reason).

        When ``sink`` is given (requires ``trace=True`` construction), the
        retirement's RVFI fields are appended to it as one columnar row.
        """
        rtl = self.rtl
        csr = self.csr
        soc = self.soc
        intr = 0
        pc = rtl.get("pc")
        if soc is not None:
            soc.sync(order)
            csr.set_timer_pending(soc.timer_pending(order))
            if self._trap_hw and csr.timer_interrupt_armed \
                    and soc.timer_pending(order):
                # Interrupt entry between retirements, identical to the
                # golden ISS: redirect to the handler, latch mepc/mcause
                # (the hardware CSR registers, via the shared CsrFile).
                pc = csr.take_timer_interrupt(pc)
                rtl.env["pc"] = pc
                intr = 1
        word = self.memory.fetch(pc)

        if self._trap_hw:
            try:
                mnemonic = decode(word).mnemonic
            except DecodeError:
                mnemonic = None
            if mnemonic in _EMULATED:
                return self._retire_emulated(order, sink, pc, word, intr)
        else:
            mnemonic = None

        rtl.set_inputs(imem_rdata=word, dmem_rdata=0)
        rtl.eval_comb()
        if rtl.get("illegal"):
            if self._trap_hw and csr.traps_enabled:
                return self._retire_trap(order, sink, pc, word, intr)
            raise SimulationError(
                f"unsupported instruction {word:#010x} at {pc:#x} "
                f"(subset: {self.core.meta.get('mnemonics')})")
        reading = bool(rtl.get("dmem_re"))
        load_addr = mem_word = 0
        if reading:
            load_addr = rtl.get("dmem_addr")
            mem_word = self.memory.load(load_addr & ~0x3, 4, signed=False)
            rtl.set_inputs(dmem_rdata=mem_word)
            rtl.eval_comb()

        wstrb = rtl.get("dmem_wstrb")
        mem_addr = mem_wmask = mem_wdata = 0
        halted = False
        reason = ""
        if wstrb:
            addr = rtl.get("dmem_addr")
            base = addr & ~0x3
            wdata = rtl.get("dmem_wdata")
            width = _WSTRB_WIDTH.get(wstrb)
            if width is None:
                raise SimulationError(f"malformed dmem_wstrb {wstrb:#06b}")
            offset = (wstrb & -wstrb).bit_length() - 1
            mem_addr = base + offset
            mem_wmask = (1 << width) - 1
            mem_wdata = (wdata >> (8 * offset)) & ((1 << (8 * width)) - 1)
            try:
                self.memory.store(mem_addr, mem_wdata, width)
            except PowerOffSignal as sig:
                self._poweroff_code = sig.exit_code
                halted, reason = True, "poweroff"
            if soc is not None:
                soc.rebase(order)   # honour firmware writes to MTIME

        trapped = 0
        if self._trap_hw and rtl.get("trap"):
            # Hardware ecall/ebreak trap entry: mepc/mcause latch at the
            # tick below; mirror the mstatus/mtval side in the shadow.
            csr.stack_interrupt_enable()
            csr.mtval = 0
            trapped = 1
        elif mnemonic == "mret":
            csr.unstack_interrupt_enable()

        if not halted and bool(rtl.get("halt")):
            halted = True
            reason = "ebreak" if decode(word).mnemonic == "ebreak" else "ecall"
        if sink is not None:
            mem_rmask = mem_rdata = 0
            if reading:
                width, signed = _LOAD_WIDTH[decode(word).mnemonic]
                mem_addr, mem_rmask, mem_rdata = load_read_fields(
                    load_addr, mem_word, width, signed)
            we = rtl.get("rf_we")
            waddr = rtl.get("rf_waddr") if we else 0
            rs1_addr = rtl.get("rf_rs1_addr")
            rs2_addr = rtl.get("rf_rs2_addr")
            sink.append_row(
                order, word, pc, rtl.get("next_pc"), rs1_addr, rs2_addr,
                self._read_rf(rs1_addr), self._read_rf(rs2_addr), waddr,
                rtl.get("rf_wdata") if we and waddr else 0,
                mem_addr, mem_rmask, mem_wmask, mem_rdata, mem_wdata,
                trapped, intr)
        rtl.tick()
        return halted, reason

    def _retire_emulated(self, order: int, sink: RvfiTrace | None, pc: int,
                         word: int, intr: int) -> tuple[bool, str]:
        """Testbench-side retirement of a Zicsr/wfi instruction: same
        :func:`repro.isa.spec.step` semantics as the golden ISS, operating
        on the hardware CSR registers.  The RTL datapath is not clocked —
        architecturally the instruction retires in one cycle like any
        other."""
        instr = decode(word)
        rs1_is_reg = not instr.definition.csr_uimm
        rs1 = self._read_rf(instr.rs1) if rs1_is_reg else 0
        try:
            effects = step(instr, pc, rs1, 0, csr=self.csr.read)
        except CsrError:
            if self.csr.traps_enabled:
                return self._retire_trap(order, sink, pc, word, intr)
            raise SimulationError(
                f"{instr.mnemonic} at {pc:#x}: unimplemented CSR "
                f"{instr.imm:#x}") from None
        if effects.csr_write is not None:
            self.csr.write(*effects.csr_write)
        if effects.is_wfi and self.soc is not None \
                and self.csr.timer_interrupt_armed:
            self.soc.skip_to_timer(order + 1)
        if effects.rd is not None and self.rtl.regfile_data is not None:
            self.rtl.regfile_data[effects.rd] = effects.rd_data
        self.rtl.env["pc"] = effects.next_pc
        if sink is not None:
            sink.append_row(
                order, word, pc, effects.next_pc,
                instr.rs1 if rs1_is_reg else 0, 0, rs1, 0,
                effects.rd or 0, effects.rd_data if effects.rd else 0,
                0, 0, 0, 0, 0, 0, intr)
        return False, ""

    def _retire_trap(self, order: int, sink: RvfiTrace | None, pc: int,
                     word: int, intr: int) -> tuple[bool, str]:
        """Illegal-instruction trap entry (harness-side: the RTL slice
        only traps ecall/ebreak in hardware)."""
        target = self.csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc, word)
        self.rtl.env["pc"] = target
        if sink is not None:
            sink.append_row(order, word, pc, target, 0, 0, 0, 0, 0, 0,
                            trap=1, intr=intr)
        return False, ""

    def _read_rf(self, index: int) -> int:
        if self.rtl.regfile_data is None or index == 0:
            return 0
        return self.rtl.regfile_data[index]

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Run to halt; single-cycle core, so cycles == instructions."""
        trace = RvfiTrace(capacity=self._trace_capacity) \
            if self._trace_enabled else None
        count = 0
        halted_by = "limit"
        while count < max_instructions:
            halted, reason = self._cycle(count, trace)
            count += 1
            if halted:
                halted_by = reason or "ecall"
                break
        exit_code = self._poweroff_code if halted_by == "poweroff" \
            else self._read_rf(10)
        return RunResult(exit_code=exit_code, instructions=count,
                         cycles=count, halted_by=halted_by,
                         trace=trace if trace is not None else [])


@dataclass
class CosimMismatch:
    """First divergence between RISSP RTL and the golden ISS."""

    index: int
    field: str
    rtl_value: int
    golden_value: int


def cosimulate(core: Module, program: Program,
               max_instructions: int = 2_000_000,
               golden_trace_out: "RvfiTrace | list[RvfiRecord] | None" = None,
               backend: str | None = None,
               soc: "object | None" = None) -> CosimMismatch | None:
    """Lock-step compare RISSP RTL execution against the golden ISS.

    Returns None only when the run matches *through the halting
    instruction*; exhausting ``max_instructions`` without a halt is
    reported as a ``"limit"`` pseudo-mismatch so a matching prefix is never
    mistaken for full verification.  Every retired instruction's PC,
    writeback, memory effect (read *and* write side) and trap/interrupt
    flags must agree.

    Both sides retire into columnar :class:`RvfiTrace` sinks and the
    comparison reads field columns directly — no per-retirement record
    allocation.  The RTL side keeps only the newest row (ring capacity 1).

    ``golden_trace_out``, when given, receives the golden reference's RVFI
    retirements as they happen — callers wanting to additionally spec-check
    the reference (see :func:`repro.verify.rvfi.check_trace`) reuse this
    trace instead of paying for a second traced golden run.  Pass an
    :class:`RvfiTrace` to record columnar rows in place; a plain list
    receives materialized :class:`RvfiRecord` objects for back-compat.

    ``backend`` forces the RTL evaluator backend (``"compiled"`` /
    ``"interpreter"``); the default follows :class:`RtlSim`.  ``soc``
    attaches a :class:`~repro.soc.SocSpec` — each side instantiates its
    own device set from it, so lock-step covers MMIO and interrupt timing.
    """
    from ..sim.golden import GoldenSim

    rtl = RisspSim(core, program, trace=True, backend=backend, soc=soc)
    gold = GoldenSim(program, trace=True, soc=soc)
    rtl_trace = RvfiTrace(capacity=1)
    if isinstance(golden_trace_out, RvfiTrace):
        gold_trace = golden_trace_out
        emit_records = None
    else:
        gold_trace = RvfiTrace(capacity=None if golden_trace_out is not None
                               else 1)
        emit_records = golden_trace_out
    field_slots = [RvfiTrace.FIELDS.index(name) for name in COSIM_FIELDS]
    try:
        for index in range(max_instructions):
            rtl_halt, _ = rtl._cycle(index, rtl_trace)
            gold_halt, _ = gold.retire_one(index, gold_trace)
            rtl_row = rtl_trace.row(-1)
            gold_row = gold_trace.row(-1)
            if rtl_row != gold_row:
                for slot, field_name in zip(field_slots, COSIM_FIELDS):
                    if rtl_row[slot] != gold_row[slot]:
                        return CosimMismatch(index, field_name,
                                             rtl_row[slot], gold_row[slot])
            if rtl_halt != gold_halt:
                return CosimMismatch(index, "halt", int(rtl_halt),
                                     int(gold_halt))
            if rtl_halt:
                return None
        return CosimMismatch(max_instructions, "limit", 0, 0)
    finally:
        if emit_records is not None:
            emit_records.extend(gold_trace)
