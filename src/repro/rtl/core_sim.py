"""Program execution harness for generated RISSP modules.

Drives the RTL evaluator cycle-by-cycle against a flat memory, mirroring the
testbench the paper uses for integration-level verification: the DUT is the
stitched RISSP RTL, the memory plays imem/dmem, and every retired
instruction can be captured as an RVFI record for the riscv-formal-analog
checker.

RVFI records follow the shared read-effect convention of
:mod:`repro.sim.tracing`: sub-word loads report the true byte address, the
``(1 << width) - 1`` lane mask and the extended sub-word value — the same
fields the golden ISS emits — so :func:`cosimulate` can compare the *read*
side of the memory interface bit-for-bit, not just the write side.
Instruction words are decoded through the memoized
:func:`repro.isa.encoding.decode`, so classifying loads and halt causes
costs one dict probe per retirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.bits import to_u32
from ..isa.encoding import decode
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.spec import _LOAD_WIDTH
from ..sim.golden import RunResult, SimulationError
from ..sim.memory import Memory
from ..sim.tracing import RvfiRecord, RvfiTrace, load_read_fields
from .ir import Module
from .sim import RtlSim

#: Number of byte lanes in the data-memory interface.
_LANES = 4

_WSTRB_WIDTH = {0b0001: 1, 0b0010: 1, 0b0100: 1, 0b1000: 1,
                0b0011: 2, 0b1100: 2, 0b1111: 4}

#: RVFI fields compared in lock-step by :func:`cosimulate` — the full
#: retirement contract: instruction, pc chain, writeback, and both the
#: read and write sides of the memory interface.
COSIM_FIELDS = ("insn", "pc_rdata", "pc_wdata", "rd_addr", "rd_wdata",
                "mem_addr", "mem_rmask", "mem_rdata",
                "mem_wmask", "mem_wdata")


class RisspSim:
    """Run programs on a RISSP RTL module (cycle-accurate, single cycle/instr)."""

    def __init__(self, core: Module, program: Program,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False,
                 trace_capacity: int | None = None,
                 backend: str | None = None):
        self.core = core
        self.memory = Memory.from_program(program, mem_size)
        self.rtl = RtlSim(core, backend=backend)
        self.rtl.env["pc"] = to_u32(program.entry)
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        # ABI setup mirrors the golden ISS: sp at top, ra at the halt stub.
        from ..isa.encoding import Instruction, encode
        from ..sim.golden import _HALT_SENTINEL, abi_initial_regs
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)
        if self.rtl.regfile_data is not None:
            for index, value in abi_initial_regs(mem_size).items():
                self.rtl.regfile_data[index] = value

    def _cycle(self, order: int,
               sink: RvfiTrace | None = None) -> tuple[bool, str]:
        """Advance one cycle; returns (halted, halt_reason).

        When ``sink`` is given (requires ``trace=True`` construction), the
        retirement's RVFI fields are appended to it as one columnar row.
        """
        rtl = self.rtl
        pc = rtl.get("pc")
        word = self.memory.fetch(pc)
        rtl.set_inputs(imem_rdata=word, dmem_rdata=0)
        rtl.eval_comb()
        if rtl.get("illegal"):
            raise SimulationError(
                f"unsupported instruction {word:#010x} at {pc:#x} "
                f"(subset: {self.core.meta.get('mnemonics')})")
        reading = bool(rtl.get("dmem_re"))
        load_addr = mem_word = 0
        if reading:
            load_addr = rtl.get("dmem_addr")
            mem_word = self.memory.load(load_addr & ~0x3, 4, signed=False)
            rtl.set_inputs(dmem_rdata=mem_word)
            rtl.eval_comb()

        wstrb = rtl.get("dmem_wstrb")
        mem_addr = mem_wmask = mem_wdata = 0
        if wstrb:
            addr = rtl.get("dmem_addr")
            base = addr & ~0x3
            wdata = rtl.get("dmem_wdata")
            for lane in range(_LANES):
                if wstrb & (1 << lane):
                    self.memory.store(base + lane,
                                      (wdata >> (8 * lane)) & 0xFF, 1)
            width = _WSTRB_WIDTH.get(wstrb)
            if width is None:
                raise SimulationError(f"malformed dmem_wstrb {wstrb:#06b}")
            offset = (wstrb & -wstrb).bit_length() - 1
            mem_addr = base + offset
            mem_wmask = (1 << width) - 1
            mem_wdata = (wdata >> (8 * offset)) & ((1 << (8 * width)) - 1)

        halted = bool(rtl.get("halt"))
        reason = ""
        if halted:
            reason = "ebreak" if decode(word).mnemonic == "ebreak" else "ecall"
        if sink is not None:
            mem_rmask = mem_rdata = 0
            if reading:
                width, signed = _LOAD_WIDTH[decode(word).mnemonic]
                mem_addr, mem_rmask, mem_rdata = load_read_fields(
                    load_addr, mem_word, width, signed)
            we = rtl.get("rf_we")
            waddr = rtl.get("rf_waddr") if we else 0
            rs1_addr = rtl.get("rf_rs1_addr")
            rs2_addr = rtl.get("rf_rs2_addr")
            sink.append_row(
                order, word, pc, rtl.get("next_pc"), rs1_addr, rs2_addr,
                self._read_rf(rs1_addr), self._read_rf(rs2_addr), waddr,
                rtl.get("rf_wdata") if we and waddr else 0,
                mem_addr, mem_rmask, mem_wmask, mem_rdata, mem_wdata)
        rtl.tick()
        return halted, reason

    def _read_rf(self, index: int) -> int:
        if self.rtl.regfile_data is None or index == 0:
            return 0
        return self.rtl.regfile_data[index]

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Run to halt; single-cycle core, so cycles == instructions."""
        trace = RvfiTrace(capacity=self._trace_capacity) \
            if self._trace_enabled else None
        count = 0
        halted_by = "limit"
        while count < max_instructions:
            halted, reason = self._cycle(count, trace)
            count += 1
            if halted:
                halted_by = reason or "ecall"
                break
        return RunResult(exit_code=self._read_rf(10), instructions=count,
                         cycles=count, halted_by=halted_by,
                         trace=trace if trace is not None else [])


@dataclass
class CosimMismatch:
    """First divergence between RISSP RTL and the golden ISS."""

    index: int
    field: str
    rtl_value: int
    golden_value: int


def cosimulate(core: Module, program: Program,
               max_instructions: int = 2_000_000,
               golden_trace_out: "RvfiTrace | list[RvfiRecord] | None" = None,
               backend: str | None = None) -> CosimMismatch | None:
    """Lock-step compare RISSP RTL execution against the golden ISS.

    Returns None only when the run matches *through the halting
    instruction*; exhausting ``max_instructions`` without a halt is
    reported as a ``"limit"`` pseudo-mismatch so a matching prefix is never
    mistaken for full verification.  Every retired instruction's PC,
    writeback and memory effect (read *and* write side: ``mem_addr``,
    ``mem_rmask``, ``mem_rdata``, ``mem_wmask``, ``mem_wdata``) must agree.

    Both sides retire into columnar :class:`RvfiTrace` sinks and the
    comparison reads field columns directly — no per-retirement record
    allocation.  The RTL side keeps only the newest row (ring capacity 1).

    ``golden_trace_out``, when given, receives the golden reference's RVFI
    retirements as they happen — callers wanting to additionally spec-check
    the reference (see :func:`repro.verify.rvfi.check_trace`) reuse this
    trace instead of paying for a second traced golden run.  Pass an
    :class:`RvfiTrace` to record columnar rows in place; a plain list
    receives materialized :class:`RvfiRecord` objects for back-compat.

    ``backend`` forces the RTL evaluator backend (``"compiled"`` /
    ``"interpreter"``); the default follows :class:`RtlSim`.
    """
    from ..sim.golden import GoldenSim

    rtl = RisspSim(core, program, trace=True, backend=backend)
    gold = GoldenSim(program, trace=True)
    rtl_trace = RvfiTrace(capacity=1)
    if isinstance(golden_trace_out, RvfiTrace):
        gold_trace = golden_trace_out
        emit_records = None
    else:
        gold_trace = RvfiTrace(capacity=None if golden_trace_out is not None
                               else 1)
        emit_records = golden_trace_out
    field_slots = [RvfiTrace.FIELDS.index(name) for name in COSIM_FIELDS]
    try:
        for index in range(max_instructions):
            rtl_halt, _ = rtl._cycle(index, rtl_trace)
            gold_halt, _ = gold.retire_one(index, gold_trace)
            rtl_row = rtl_trace.row(-1)
            gold_row = gold_trace.row(-1)
            if rtl_row != gold_row:
                for slot, field_name in zip(field_slots, COSIM_FIELDS):
                    if rtl_row[slot] != gold_row[slot]:
                        return CosimMismatch(index, field_name,
                                             rtl_row[slot], gold_row[slot])
            if rtl_halt != gold_halt:
                return CosimMismatch(index, "halt", int(rtl_halt),
                                     int(gold_halt))
            if rtl_halt:
                return None
        return CosimMismatch(max_instructions, "limit", 0, 0)
    finally:
        if emit_records is not None:
            emit_records.extend(gold_trace)
