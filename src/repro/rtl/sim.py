"""Cycle-accurate evaluation of RTL IR modules.

This is the repo's RTL simulator.  Three backends share the exact same
public interface and bit-identical semantics:

* ``"fused"`` (the default): the per-cycle entry points below are the
  ``exec``-compiled pair from :mod:`repro.rtl.compiled`, and — for
  RISSP-shaped cores driven through :class:`repro.rtl.core_sim.RisspSim`
  — whole-program execution additionally rides the fused cycle loop
  (:func:`repro.rtl.compiled.compile_core`), which keeps fetch, the
  combinational settle, memory traffic and the register commit inside one
  generated function (see ``benchmarks/test_bench_rtl_throughput.py``).
* ``"compiled"``: the PR 2 per-cycle compiled backend — same two
  ``exec``-compiled functions, but every cycle crosses the
  Python/:class:`RtlSim` boundary (``set_inputs``/``eval_comb``/``get``/
  ``tick``).  Kept as the mid-level oracle for the fused loop.
* ``"interpreter"``: the original tree-walking evaluator built on
  :func:`eval_expr`, which walks every expression node each cycle.  It is
  the reference oracle; the differential harnesses in
  ``tests/test_rtl_compiled_diff.py`` and ``tests/test_rtl_fused_diff.py``
  check the fast backends against it on randomized DAGs, randomized
  programs and whole-core lock-step runs.

Force a backend per instance with ``RtlSim(module, backend="interpreter")``
or process-wide with the ``REPRO_RTL_BACKEND`` environment variable (the
constructor argument wins).  The RISCOF-analog compliance flow, RVFI
cosimulation and the fmax/serv benchmark harnesses all run whole programs
through :class:`RtlSim`/:class:`~repro.rtl.core_sim.RisspSim` and
therefore ride the fused backend by default.
"""

from __future__ import annotations

import os

from .ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    IrError,
    Module,
    Mux,
    Not,
    Op,
    Sig,
    Slice,
    topo_order,
)


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(value: int, width: int) -> int:
    value &= _mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def eval_expr(expr: Expr, env: dict[str, int]) -> int:
    """Evaluate ``expr`` over signal values in ``env`` (all unsigned ints)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sig):
        try:
            return env[expr.name] & _mask(expr.width)
        except KeyError:
            raise IrError(f"signal {expr.name} has no value") from None
    if isinstance(expr, Not):
        return ~eval_expr(expr.a, env) & _mask(expr.width)
    if isinstance(expr, Binary):
        a = eval_expr(expr.a, env)
        b = eval_expr(expr.b, env)
        w = expr.a.width
        op = expr.op
        if op is Op.ADD:
            return (a + b) & _mask(w)
        if op is Op.SUB:
            return (a - b) & _mask(w)
        if op is Op.AND:
            return a & b
        if op is Op.OR:
            return a | b
        if op is Op.XOR:
            return a ^ b
        if op is Op.SHL:
            return (a << (b % (1 << expr.b.width))) & _mask(w) \
                if b < w else 0
        if op is Op.LSHR:
            return a >> b if b < w else 0
        if op is Op.ASHR:
            shift = min(b, w - 1)
            return _signed(a, w) >> shift & _mask(w)
        if op is Op.EQ:
            return 1 if a == b else 0
        if op is Op.NE:
            return 1 if a != b else 0
        if op is Op.ULT:
            return 1 if a < b else 0
        if op is Op.UGE:
            return 1 if a >= b else 0
        if op is Op.SLT:
            return 1 if _signed(a, w) < _signed(b, w) else 0
        if op is Op.SGE:
            return 1 if _signed(a, w) >= _signed(b, w) else 0
        raise IrError(f"unhandled op {op}")
    if isinstance(expr, Mux):
        return eval_expr(expr.a if eval_expr(expr.sel, env) else expr.b, env)
    if isinstance(expr, Cat):
        value = 0
        for part in expr.parts:
            value = (value << part.width) | eval_expr(part, env)
        return value
    if isinstance(expr, Slice):
        return (eval_expr(expr.a, env) >> expr.lo) & _mask(expr.width)
    if isinstance(expr, Ext):
        inner = eval_expr(expr.a, env)
        if expr.signed:
            return _signed(inner, expr.a.width) & _mask(expr.out_width)
        return inner
    raise IrError(f"unknown expression node {type(expr).__name__}")


class RtlSim:
    """Simulate one :class:`Module` cycle by cycle.

    Usage::

        sim = RtlSim(module)
        sim.set_inputs(pc=0, insn=0x00000013, ...)
        sim.eval_comb()
        value = sim.get("next_pc")
        sim.tick()           # commit registers
    """

    def __init__(self, module: Module, backend: str | None = None):
        module.check()
        self.module = module
        if backend is None:
            backend = os.environ.get("REPRO_RTL_BACKEND", "fused")
        if backend not in ("fused", "compiled", "interpreter"):
            raise IrError(f"unknown RTL backend {backend!r}")
        self.backend = backend
        self._compiled = None
        if backend in ("fused", "compiled"):
            # topo_order already ran inside check(); the compiled code has
            # the evaluation order baked in, so _order is interpreter-only.
            self._order = None
            from .compiled import compile_module
            self._compiled = compile_module(module)
        else:
            self._order = topo_order(module)
        self.env: dict[str, int] = {}
        self.regfile_data: list[int] | None = None
        if module.regfile is not None:
            self.regfile_data = [0] * module.regfile.num_regs
        self.reset()

    def reset(self) -> None:
        """Reset registers to their reset values and clear inputs to 0."""
        for port in self.module.inputs():
            self.env[port.name] = 0
        for reg in self.module.registers.values():
            self.env[reg.name] = reg.reset_value & _mask(reg.width)
        if self.regfile_data is not None:
            for index in range(len(self.regfile_data)):
                self.regfile_data[index] = 0

    def set_inputs(self, **values: int) -> None:
        for name, value in values.items():
            port = self.module.ports.get(name)
            if port is None or port.direction != "in":
                raise IrError(f"{name} is not an input port")
            self.env[name] = value & _mask(port.width)

    def eval_comb(self) -> None:
        """Evaluate all combinational assigns (registers hold state)."""
        if self._compiled is not None:
            self._compiled.eval_comb(self.env, self.regfile_data)
            return
        spec = self.module.regfile
        legacy_ports = []
        if spec is not None:
            # Storage-exposed style: each register's value drives a source
            # wire; the read muxes are ordinary combinational logic.
            for index, name in enumerate(spec.storage_signals, start=1):
                self.env[name] = self.regfile_data[index]
            legacy_ports = [(a, d) for a, d in spec.read_ports
                            if d not in self.module.assigns]
            for _, data_sig in legacy_ports:
                self.env.setdefault(data_sig, 0)
        for name in self._order:
            self.env[name] = eval_expr(self.module.assigns[name], self.env)
            for addr_sig, data_sig in legacy_ports:
                if name == addr_sig:
                    addr = self.env[addr_sig] % spec.num_regs
                    self.env[data_sig] = (
                        0 if addr == 0 else self.regfile_data[addr])
        if legacy_ports:
            # Data injected mid-walk may feed earlier-ordered signals; one
            # more pass settles the DAG.
            for name in self._order:
                self.env[name] = eval_expr(self.module.assigns[name],
                                           self.env)

    def tick(self) -> None:
        """Commit registers and the register-file write port."""
        if self._compiled is not None:
            self._compiled.tick(self.env, self.regfile_data)
            return
        updates: dict[str, int] = {}
        for reg in self.module.registers.values():
            if reg.next is None:
                continue
            if reg.enable is not None and not eval_expr(reg.enable, self.env):
                continue
            updates[reg.name] = eval_expr(reg.next, self.env) & _mask(reg.width)
        spec = self.module.regfile
        if spec is not None and spec.write_port is not None:
            we_sig, addr_sig, data_sig = spec.write_port
            if self.env.get(we_sig, 0):
                addr = self.env[addr_sig] % spec.num_regs
                if addr != 0:
                    self.regfile_data[addr] = self.env[data_sig] & _mask(
                        spec.width)
        self.env.update(updates)

    def get(self, name: str) -> int:
        return self.env[name] & _mask(self.module.signal_width(name))
