"""Compiled RTL backend: lower a :class:`Module` to straight-line Python.

The tree-walking evaluator in :mod:`repro.rtl.sim` pays an isinstance
dispatch, a dict probe and a Python call per expression node on every
cycle.  This module compiles each module's static structure exactly once —
mirroring the decoded-op cache the ISS grew in PR 1 — into two
``exec``-compiled functions:

* ``eval_comb(env, regfile)`` — every combinational assign emitted as one
  straight-line statement in topological order, with width masks and
  constant subtrees folded at codegen time, ``Mux``/``Slice``/``Ext``/
  ``Cat`` inlined as Python expressions, and structurally shared
  subexpressions computed once (the IR's dataclasses hash structurally, so
  common-subexpression elimination is a dict lookup).
* ``tick(env, regfile)`` — register next/enable evaluation and the
  register-file write port, committing exactly like the interpreter.

Semantics are bit-identical to :func:`repro.rtl.sim.eval_expr` — the
interpreter stays the reference oracle and the randomized differential
harness in ``tests/test_rtl_compiled_diff.py`` locks the two together.
The legacy read-port injection double-pass is only emitted for modules
that actually have legacy read ports (a read port whose data signal is not
combinationally assigned); ordinary modules get the single-pass fast path.
As in the interpreter, a legacy port's injection happens when its *address
signal* is assigned, so legacy address signals must be combinational
signals, not raw input ports.

Compiled functions are cached per :class:`Module` object, keyed by a
structural fingerprint so mutating a module's assigns (as the failure
-injection tests do) transparently recompiles.
"""

from __future__ import annotations

import re
import weakref
from dataclasses import dataclass

from .ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    IrError,
    Module,
    Mux,
    Not,
    Op,
    Sig,
    Slice,
    expr_signals,
    topo_order,
)

#: Inline expressions longer than this get hoisted into a temp, bounding
#: statement size (and parser nesting depth) for pathological DAGs.
_MAX_INLINE = 400

_IDENT = re.compile(r"^[A-Za-z_]\w*$|^-?\d+$")


@dataclass
class CompiledModule:
    """The two exec-compiled entry points plus their generated source."""

    eval_comb: object   # callable(env: dict, regfile: list | None) -> None
    tick: object        # callable(env: dict, regfile: list | None) -> None
    source: str         # generated Python, kept for inspection/debugging


def _mask(width: int) -> int:
    return (1 << width) - 1


class _Emitter:
    """Emits masked-value Python expressions for one statement block.

    Invariant: the code string produced for any node evaluates to that
    node's value already masked to its width (matching what ``eval_expr``
    returns), so parents never re-mask operands.
    """

    def __init__(self, lines: list[str], indent: str, refs: dict,
                 sig_var, temp_prefix: str,
                 volatile: frozenset[str] = frozenset()):
        self.lines = lines
        self.indent = indent
        self.refs = refs
        self.sig_var = sig_var
        self.temp_prefix = temp_prefix
        #: Signal names whose locals are rebound mid-sweep (legacy read
        #: data during the injection pass).  Subtrees reading them must be
        #: re-emitted inline at every use — caching one in a temp would
        #: freeze a pre-injection value the interpreter never sees.
        self.volatile = volatile
        self.volatile_cache: dict[Expr, bool] = {}
        self.cache: dict[Expr, str] = {}
        self.const_cache: dict[Expr, bool] = {}
        self.count = 0

    # ------------------------------------------------------------- helpers

    def line(self, text: str) -> None:
        self.lines.append(self.indent + text)

    def temp(self, code: str) -> str:
        name = f"{self.temp_prefix}{self.count}"
        self.count += 1
        self.line(f"{name} = {code}")
        return name

    def materialize(self, code: str) -> str:
        """Force ``code`` into an atom so it can be referenced repeatedly."""
        if _IDENT.match(code):
            return code
        return self.temp(code)

    def is_const(self, expr: Expr) -> bool:
        """True when the subtree references no signals (foldable)."""
        cached = self.const_cache.get(expr)
        if cached is not None:
            return cached
        result = not expr_signals(expr)
        self.const_cache[expr] = result
        return result

    def is_volatile(self, expr: Expr) -> bool:
        """True when the subtree reads a mid-sweep-rebound signal."""
        if not self.volatile:
            return False
        cached = self.volatile_cache.get(expr)
        if cached is None:
            cached = bool(expr_signals(expr) & self.volatile)
            self.volatile_cache[expr] = cached
        return cached

    # ------------------------------------------------------------ emission

    def ref(self, expr: Expr) -> str:
        if self.is_volatile(expr):
            # Per-use temps from materialize() are still fine (they sit
            # immediately before the statement that uses them); only
            # cross-statement caching/hoisting is forbidden.
            return self.build(expr)
        code = self.cache.get(expr)
        if code is not None:
            return code
        if self.is_const(expr):
            from .sim import eval_expr
            code = repr(eval_expr(expr, {}))
        else:
            code = self.build(expr)
            if code is not None and not _IDENT.match(code) and (
                    self.refs.get(expr, 0) > 1 or len(code) > _MAX_INLINE):
                code = self.temp(code)
        self.cache[expr] = code
        return code

    def build(self, expr: Expr) -> str:
        if isinstance(expr, Sig):
            return self.sig_var(expr.name)
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Not):
            return f"(~{self.ref(expr.a)} & {_mask(expr.width)})"
        if isinstance(expr, Binary):
            return self.build_binary(expr)
        if isinstance(expr, Mux):
            sel = self.ref(expr.sel)
            a = self.ref(expr.a)
            b = self.ref(expr.b)
            return f"({a} if {sel} else {b})"
        if isinstance(expr, Cat):
            shift = expr.width
            parts = []
            for part in expr.parts:
                shift -= part.width
                code = self.ref(part)
                parts.append(f"({code} << {shift})" if shift else code)
            return "(" + " | ".join(parts) + ")"
        if isinstance(expr, Slice):
            a = self.ref(expr.a)
            if expr.lo == 0:
                if expr.width == expr.a.width:
                    return a
                return f"({a} & {_mask(expr.width)})"
            return f"(({a} >> {expr.lo}) & {_mask(expr.width)})"
        if isinstance(expr, Ext):
            if not expr.signed or expr.out_width == expr.a.width:
                return self.ref(expr.a)
            a = self.materialize(self.ref(expr.a))
            aw = expr.a.width
            high = _mask(expr.out_width) ^ _mask(aw)
            return f"(({a} | {high}) if ({a} >> {aw - 1}) else {a})"
        raise IrError(f"unknown expression node {type(expr).__name__}")

    def signed(self, code: str, width: int) -> str:
        code = self.materialize(code)
        return (f"(({code} | {-(1 << width)}) "
                f"if ({code} >> {width - 1}) else {code})")

    def build_binary(self, expr: Binary) -> str:
        op = expr.op
        w = expr.a.width
        mask = _mask(w)
        if op in (Op.SHL, Op.LSHR, Op.ASHR):
            return self.build_shift(expr, op, w, mask)
        a = self.ref(expr.a)
        b = self.ref(expr.b)
        if op is Op.ADD:
            return f"(({a} + {b}) & {mask})"
        if op is Op.SUB:
            return f"(({a} - {b}) & {mask})"
        if op is Op.AND:
            return f"({a} & {b})"
        if op is Op.OR:
            return f"({a} | {b})"
        if op is Op.XOR:
            return f"({a} ^ {b})"
        if op is Op.EQ:
            return f"(1 if {a} == {b} else 0)"
        if op is Op.NE:
            return f"(1 if {a} != {b} else 0)"
        if op is Op.ULT:
            return f"(1 if {a} < {b} else 0)"
        if op is Op.UGE:
            return f"(1 if {a} >= {b} else 0)"
        if op is Op.SLT:
            return (f"(1 if {self.signed(a, w)} < {self.signed(b, w)} "
                    f"else 0)")
        if op is Op.SGE:
            return (f"(1 if {self.signed(a, w)} >= {self.signed(b, w)} "
                    f"else 0)")
        raise IrError(f"unhandled op {op}")

    def build_shift(self, expr: Binary, op: Op, w: int, mask: int) -> str:
        a = self.ref(expr.a)
        b = self.ref(expr.b)
        b_val = None
        if self.is_const(expr.b):
            from .sim import eval_expr
            b_val = eval_expr(expr.b, {})
        if op is Op.SHL:
            if b_val is not None:
                return "0" if b_val >= w else (
                    a if b_val == 0 else f"(({a} << {b_val}) & {mask})")
            b = self.materialize(b)
            return f"((({a} << {b}) & {mask}) if {b} < {w} else 0)"
        if op is Op.LSHR:
            if b_val is not None:
                return "0" if b_val >= w else (
                    a if b_val == 0 else f"({a} >> {b_val})")
            b = self.materialize(b)
            return f"(({a} >> {b}) if {b} < {w} else 0)"
        # ASHR: shift saturates at w-1 so the sign bit fills.
        if b_val is not None:
            shift = min(b_val, w - 1)
            if shift == 0:
                return self.ref(expr.a)
            return f"(({self.signed(a, w)} >> {shift}) & {mask})"
        b = self.materialize(b)
        return (f"(({self.signed(a, w)} >> "
                f"({b} if {b} < {w} else {w - 1})) & {mask})")


def _count_refs(roots: list[Expr]) -> dict[Expr, int]:
    """Edge counts over the structurally deduplicated DAG."""
    refs: dict[Expr, int] = {}
    seen: set[Expr] = set()

    def walk(node: Expr) -> None:
        refs[node] = refs.get(node, 0) + 1
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, Not):
            walk(node.a)
        elif isinstance(node, Binary):
            walk(node.a)
            walk(node.b)
        elif isinstance(node, Mux):
            walk(node.sel)
            walk(node.a)
            walk(node.b)
        elif isinstance(node, Cat):
            for part in node.parts:
                walk(part)
        elif isinstance(node, (Slice, Ext)):
            walk(node.a)

    for root in roots:
        walk(root)
    return refs


def _make_sig_namer(module: Module):
    """Map signal names to unique, valid Python local identifiers."""
    table: dict[str, str] = {}
    used: set[str] = set()

    def namer(name: str) -> str:
        var = table.get(name)
        if var is None:
            var = "v_" + re.sub(r"\W", "_", name)
            while var in used:
                var += "_"
            used.add(var)
            table[name] = var
        return var

    return namer


def _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                    referenced, temp_prefix: str, inject: bool) -> None:
    """One topological sweep of the assign DAG as straight-line statements.

    ``inject`` replays the interpreter's legacy read-port injection (data
    fetched from the register array right after the address signal is
    assigned); the settle pass runs with ``inject=False``.
    """
    spec = module.regfile
    emitter = _Emitter(lines, "    ", _count_refs(
        [module.assigns[name] for name in order]), sig_var, temp_prefix,
        volatile=frozenset(data for _, data in legacy_ports)
        if inject else frozenset())
    for name in order:
        code = emitter.ref(module.assigns[name])
        if name in referenced:
            lines.append(f"    {sig_var(name)} = env[{name!r}] = {code}")
        else:
            lines.append(f"    env[{name!r}] = {code}")
        if inject:
            for addr_sig, data_sig in legacy_ports:
                if name == addr_sig:
                    lines.append(
                        f"    _la = {sig_var(addr_sig)} % {spec.num_regs}")
                    lines.append(
                        "    _ld = regfile[_la] if _la else 0")
                    lines.append(f"    env[{data_sig!r}] = _ld")
                    lines.append(f"    {sig_var(data_sig)} = "
                                 f"_ld & {_mask(spec.width)}")


def _generate_source(module: Module) -> str:
    order = topo_order(module)
    sig_var = _make_sig_namer(module)
    spec = module.regfile
    legacy_ports = []
    if spec is not None:
        legacy_ports = [(a, d) for a, d in spec.read_ports
                        if d not in module.assigns]

    # Signals whose value some expression actually reads.  Legacy port
    # signals always get locals: the injection statements read the address
    # and (re)bind the data local even when no expression consumes them.
    referenced: set[str] = set()
    for addr_sig, data_sig in legacy_ports:
        referenced.add(addr_sig)
        referenced.add(data_sig)
    for expr in module.assigns.values():
        referenced |= expr_signals(expr)
    for reg in module.registers.values():
        if reg.next is not None:
            referenced |= expr_signals(reg.next)
        if reg.enable is not None:
            referenced |= expr_signals(reg.enable)

    lines = ["def eval_comb(env, regfile):"]
    # Entry loads: inputs, registers and legacy read data come from env
    # (masked exactly like a Sig lookup in the interpreter); register-file
    # storage wires are driven from the array every evaluation.
    for port in module.inputs():
        if port.name in referenced:
            lines.append(f"    {sig_var(port.name)} = "
                         f"env[{port.name!r}] & {_mask(port.width)}")
    for reg in module.registers.values():
        if reg.name in referenced:
            lines.append(f"    {sig_var(reg.name)} = "
                         f"env[{reg.name!r}] & {_mask(reg.width)}")
    if spec is not None:
        for index, name in enumerate(spec.storage_signals, start=1):
            lines.append(f"    env[{name!r}] = _sq = regfile[{index}]")
            if name in referenced:
                lines.append(f"    {sig_var(name)} = _sq & "
                             f"{_mask(spec.width)}")
        for _, data_sig in legacy_ports:
            if data_sig in referenced:
                lines.append(f"    {sig_var(data_sig)} = "
                             f"env.setdefault({data_sig!r}, 0) & "
                             f"{_mask(module.signal_width(data_sig))}")
            else:
                lines.append(f"    env.setdefault({data_sig!r}, 0)")

    _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                    referenced, "t", inject=bool(legacy_ports))
    if legacy_ports:
        # Data injected mid-walk may feed earlier-ordered signals; one more
        # full sweep settles the DAG (mirrors the interpreter's second pass).
        _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                        referenced, "u", inject=False)
    if len(lines) == 1:
        lines.append("    pass")

    lines.append("")
    lines.append("def tick(env, regfile):")
    tick_start = len(lines)
    tick_roots = []
    for reg in module.registers.values():
        if reg.next is not None:
            tick_roots.append(reg.next)
            if reg.enable is not None:
                tick_roots.append(reg.enable)
    needed: set[str] = set()
    for root in tick_roots:
        needed |= expr_signals(root)
    for name in sorted(needed):
        lines.append(f"    {sig_var(name)} = env[{name!r}] & "
                     f"{_mask(module.signal_width(name))}")
    emitter = _Emitter(lines, "    ", _count_refs(tick_roots), sig_var, "k")
    commits = []
    for reg in module.registers.values():
        if reg.next is None:
            continue
        update = emitter.materialize(emitter.ref(reg.next))
        if reg.enable is not None:
            gate = emitter.materialize(emitter.ref(reg.enable))
            commits.append(f"    if {gate}:\n"
                           f"        env[{reg.name!r}] = {update}")
        else:
            commits.append(f"    env[{reg.name!r}] = {update}")
    if spec is not None and spec.write_port is not None:
        we_sig, addr_sig, data_sig = spec.write_port
        # Raw env reads, mirroring the interpreter's commit exactly.
        lines.append(f"    if env.get({we_sig!r}, 0):")
        lines.append(f"        _wa = env[{addr_sig!r}] % {spec.num_regs}")
        lines.append("        if _wa:")
        lines.append(f"            regfile[_wa] = env[{data_sig!r}] & "
                     f"{_mask(spec.width)}")
    lines.extend(commits)
    if len(lines) == tick_start:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def _fingerprint(module: Module) -> int:
    """Structural hash of everything the generated code depends on."""
    regs = tuple((r.name, r.width, r.next, r.enable, r.reset_value)
                 for r in module.registers.values())
    spec = module.regfile
    rf = None
    if spec is not None:
        rf = (spec.num_regs, spec.width, tuple(spec.read_ports),
              spec.write_port, tuple(spec.storage_signals))
    ports = tuple(sorted((p.name, p.width, p.direction)
                         for p in module.ports.values()))
    return hash((tuple(sorted(module.assigns.items())), regs, rf, ports,
                 tuple(sorted(module.wires.items()))))


_cache: "weakref.WeakKeyDictionary[Module, tuple[int, CompiledModule]]" = \
    weakref.WeakKeyDictionary()


def compile_module(module: Module) -> CompiledModule:
    """Compile (or fetch the cached compilation of) ``module``.

    The cache is keyed on the module object *and* a structural fingerprint,
    so rebuilding an :class:`RtlSim` after mutating ``module.assigns``
    (failure-injection style) recompiles instead of running stale code.
    """
    key = _fingerprint(module)
    hit = _cache.get(module)
    if hit is not None and hit[0] == key:
        return hit[1]
    source = _generate_source(module)
    namespace: dict[str, object] = {}
    exec(compile(source, f"<rtl:{module.name}>", "exec"), namespace)
    compiled = CompiledModule(eval_comb=namespace["eval_comb"],
                              tick=namespace["tick"], source=source)
    _cache[module] = (key, compiled)
    return compiled
