"""Compiled RTL backend: lower a :class:`Module` to straight-line Python.

The tree-walking evaluator in :mod:`repro.rtl.sim` pays an isinstance
dispatch, a dict probe and a Python call per expression node on every
cycle.  This module compiles each module's static structure exactly once —
mirroring the decoded-op cache the ISS grew in PR 1 — into two
``exec``-compiled functions:

* ``eval_comb(env, regfile)`` — every combinational assign emitted as one
  straight-line statement in topological order, with width masks and
  constant subtrees folded at codegen time, ``Mux``/``Slice``/``Ext``/
  ``Cat`` inlined as Python expressions, and structurally shared
  subexpressions computed once (the IR's dataclasses hash structurally, so
  common-subexpression elimination is a dict lookup).
* ``tick(env, regfile)`` — register next/enable evaluation and the
  register-file write port, committing exactly like the interpreter.

Semantics are bit-identical to :func:`repro.rtl.sim.eval_expr` — the
interpreter stays the reference oracle and the randomized differential
harness in ``tests/test_rtl_compiled_diff.py`` locks the two together.
The legacy read-port injection double-pass is only emitted for modules
that actually have legacy read ports (a read port whose data signal is not
combinationally assigned); ordinary modules get the single-pass fast path.
As in the interpreter, a legacy port's injection happens when its *address
signal* is assigned, so legacy address signals must be combinational
signals, not raw input ports.

On top of the per-cycle pair, :func:`compile_core` fuses the *whole RTL
cycle loop* of a RISSP-shaped core (PR 4) into a single generated
``run_cycles(ctx, count, limit, sink)`` function: instruction fetch reads
the RAM bytearray directly, every combinational assign lives in a Python
local (no ``env`` dict traffic inside the loop), a data-memory read
re-evaluates only the dependency cone of ``dmem_rdata`` instead of the
whole DAG, the store-strobe decode and the register/register-file commit
are inlined, and the RVFI columns are written straight from the signal
locals.  The loop calls back into Python only for the rare events the
harness owns: MMIO/device-window accesses, traps and interrupts (one
integer compare of the retirement counter against a precomputed fire
index, exactly like the ISS fast path), harness-emulated Zicsr/``wfi``
retirement, and halt classification.  Loop-carried register state is
refreshed from ``env`` on entry and flushed back on exit (also on
exceptions), so ``RtlSim.reset`` and peek/poke fault injection between
``run_cycles`` calls observe exactly the per-cycle backends' register and
register-file state; combinational ``env`` entries are re-settled by the
harness from that flushed state (probes should drive
``set_inputs``/``eval_comb``, as the state tests do).

Compiled functions are cached per :class:`Module` object, keyed by a
structural fingerprint so mutating a module's assigns (as the failure
-injection tests do) transparently recompiles.
"""

from __future__ import annotations

import re
import weakref
from dataclasses import dataclass

from ..obs import telemetry as _obs
from .ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    IrError,
    Module,
    Mux,
    Not,
    Op,
    Sig,
    Slice,
    expr_signals,
    map_children,
    topo_order,
)

#: Inline expressions longer than this get hoisted into a temp, bounding
#: statement size (and parser nesting depth) for pathological DAGs.
_MAX_INLINE = 400

_IDENT = re.compile(r"^[A-Za-z_]\w*$|^-?\d+$")


@dataclass
class CompiledModule:
    """The two exec-compiled entry points plus their generated source."""

    eval_comb: object   # callable(env: dict, regfile: list | None) -> None
    tick: object        # callable(env: dict, regfile: list | None) -> None
    source: str         # generated Python, kept for inspection/debugging


def _mask(width: int) -> int:
    return (1 << width) - 1


class _Emitter:
    """Emits masked-value Python expressions for one statement block.

    Invariant: the code string produced for any node evaluates to that
    node's value already masked to its width (matching what ``eval_expr``
    returns), so parents never re-mask operands.
    """

    def __init__(self, lines: list[str], indent: str, refs: dict,
                 sig_var, temp_prefix: str,
                 volatile: frozenset[str] = frozenset(),
                 max_inline: int = _MAX_INLINE):
        self.lines = lines
        self.indent = indent
        self.refs = refs
        self.sig_var = sig_var
        self.temp_prefix = temp_prefix
        self.max_inline = max_inline
        #: Signal names whose locals are rebound mid-sweep (legacy read
        #: data during the injection pass).  Subtrees reading them must be
        #: re-emitted inline at every use — caching one in a temp would
        #: freeze a pre-injection value the interpreter never sees.
        self.volatile = volatile
        self.volatile_cache: dict[Expr, bool] = {}
        self.cache: dict[Expr, str] = {}
        self.const_cache: dict[Expr, bool] = {}
        self.count = 0

    # ------------------------------------------------------------- helpers

    def line(self, text: str) -> None:
        self.lines.append(self.indent + text)

    def temp(self, code: str) -> str:
        name = f"{self.temp_prefix}{self.count}"
        self.count += 1
        self.line(f"{name} = {code}")
        return name

    def materialize(self, code: str) -> str:
        """Force ``code`` into an atom so it can be referenced repeatedly."""
        if _IDENT.match(code):
            return code
        return self.temp(code)

    def is_const(self, expr: Expr) -> bool:
        """True when the subtree references no signals (foldable)."""
        cached = self.const_cache.get(expr)
        if cached is not None:
            return cached
        result = not expr_signals(expr)
        self.const_cache[expr] = result
        return result

    def is_volatile(self, expr: Expr) -> bool:
        """True when the subtree reads a mid-sweep-rebound signal."""
        if not self.volatile:
            return False
        cached = self.volatile_cache.get(expr)
        if cached is None:
            cached = bool(expr_signals(expr) & self.volatile)
            self.volatile_cache[expr] = cached
        return cached

    # ------------------------------------------------------------ emission

    def ref(self, expr: Expr) -> str:
        if self.is_volatile(expr):
            # Per-use temps from materialize() are still fine (they sit
            # immediately before the statement that uses them); only
            # cross-statement caching/hoisting is forbidden.
            return self.build(expr)
        code = self.cache.get(expr)
        if code is not None:
            return code
        if self.is_const(expr):
            from .sim import eval_expr
            code = repr(eval_expr(expr, {}))
        else:
            code = self.build(expr)
            if code is not None and not _IDENT.match(code) and (
                    self.refs.get(expr, 0) > 1 or
                    len(code) > self.max_inline):
                code = self.temp(code)
        self.cache[expr] = code
        return code

    def build(self, expr: Expr) -> str:
        if isinstance(expr, Sig):
            return self.sig_var(expr.name)
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Not):
            return f"(~{self.ref(expr.a)} & {_mask(expr.width)})"
        if isinstance(expr, Binary):
            return self.build_binary(expr)
        if isinstance(expr, Mux):
            sel = self.ref(expr.sel)
            a = self.ref(expr.a)
            b = self.ref(expr.b)
            return f"({a} if {sel} else {b})"
        if isinstance(expr, Cat):
            shift = expr.width
            parts = []
            for part in expr.parts:
                shift -= part.width
                code = self.ref(part)
                parts.append(f"({code} << {shift})" if shift else code)
            return "(" + " | ".join(parts) + ")"
        if isinstance(expr, Slice):
            a = self.ref(expr.a)
            if expr.lo == 0:
                if expr.width == expr.a.width:
                    return a
                return f"({a} & {_mask(expr.width)})"
            return f"(({a} >> {expr.lo}) & {_mask(expr.width)})"
        if isinstance(expr, Ext):
            if not expr.signed or expr.out_width == expr.a.width:
                return self.ref(expr.a)
            a = self.materialize(self.ref(expr.a))
            aw = expr.a.width
            high = _mask(expr.out_width) ^ _mask(aw)
            return f"(({a} | {high}) if ({a} >> {aw - 1}) else {a})"
        raise IrError(f"unknown expression node {type(expr).__name__}")

    def signed(self, code: str, width: int) -> str:
        code = self.materialize(code)
        return (f"(({code} | {-(1 << width)}) "
                f"if ({code} >> {width - 1}) else {code})")

    def build_binary(self, expr: Binary) -> str:
        op = expr.op
        w = expr.a.width
        mask = _mask(w)
        if op in (Op.SHL, Op.LSHR, Op.ASHR):
            return self.build_shift(expr, op, w, mask)
        a = self.ref(expr.a)
        b = self.ref(expr.b)
        if op is Op.ADD:
            return f"(({a} + {b}) & {mask})"
        if op is Op.SUB:
            return f"(({a} - {b}) & {mask})"
        if op is Op.AND:
            return f"({a} & {b})"
        if op is Op.OR:
            return f"({a} | {b})"
        if op is Op.XOR:
            return f"({a} ^ {b})"
        if op is Op.EQ:
            return f"(1 if {a} == {b} else 0)"
        if op is Op.NE:
            return f"(1 if {a} != {b} else 0)"
        if op is Op.ULT:
            return f"(1 if {a} < {b} else 0)"
        if op is Op.UGE:
            return f"(1 if {a} >= {b} else 0)"
        if op is Op.SLT:
            return (f"(1 if {self.signed(a, w)} < {self.signed(b, w)} "
                    f"else 0)")
        if op is Op.SGE:
            return (f"(1 if {self.signed(a, w)} >= {self.signed(b, w)} "
                    f"else 0)")
        raise IrError(f"unhandled op {op}")

    def build_shift(self, expr: Binary, op: Op, w: int, mask: int) -> str:
        a = self.ref(expr.a)
        b = self.ref(expr.b)
        b_val = None
        if self.is_const(expr.b):
            from .sim import eval_expr
            b_val = eval_expr(expr.b, {})
        if op is Op.SHL:
            if b_val is not None:
                return "0" if b_val >= w else (
                    a if b_val == 0 else f"(({a} << {b_val}) & {mask})")
            b = self.materialize(b)
            return f"((({a} << {b}) & {mask}) if {b} < {w} else 0)"
        if op is Op.LSHR:
            if b_val is not None:
                return "0" if b_val >= w else (
                    a if b_val == 0 else f"({a} >> {b_val})")
            b = self.materialize(b)
            return f"(({a} >> {b}) if {b} < {w} else 0)"
        # ASHR: shift saturates at w-1 so the sign bit fills.
        if b_val is not None:
            shift = min(b_val, w - 1)
            if shift == 0:
                return self.ref(expr.a)
            return f"(({self.signed(a, w)} >> {shift}) & {mask})"
        b = self.materialize(b)
        return (f"(({self.signed(a, w)} >> "
                f"({b} if {b} < {w} else {w - 1})) & {mask})")


def _count_refs(roots: list[Expr]) -> dict[Expr, int]:
    """Edge counts over the structurally deduplicated DAG."""
    refs: dict[Expr, int] = {}
    seen: set[Expr] = set()

    def walk(node: Expr) -> None:
        refs[node] = refs.get(node, 0) + 1
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, Not):
            walk(node.a)
        elif isinstance(node, Binary):
            walk(node.a)
            walk(node.b)
        elif isinstance(node, Mux):
            walk(node.sel)
            walk(node.a)
            walk(node.b)
        elif isinstance(node, Cat):
            for part in node.parts:
                walk(part)
        elif isinstance(node, (Slice, Ext)):
            walk(node.a)

    for root in roots:
        walk(root)
    return refs


def _make_sig_namer(module: Module):
    """Map signal names to unique, valid Python local identifiers."""
    table: dict[str, str] = {}
    used: set[str] = set()

    def namer(name: str) -> str:
        var = table.get(name)
        if var is None:
            var = "v_" + re.sub(r"\W", "_", name)
            while var in used:
                var += "_"
            used.add(var)
            table[name] = var
        return var

    return namer


def _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                    referenced, temp_prefix: str, inject: bool) -> None:
    """One topological sweep of the assign DAG as straight-line statements.

    ``inject`` replays the interpreter's legacy read-port injection (data
    fetched from the register array right after the address signal is
    assigned); the settle pass runs with ``inject=False``.
    """
    spec = module.regfile
    emitter = _Emitter(lines, "    ", _count_refs(
        [module.assigns[name] for name in order]), sig_var, temp_prefix,
        volatile=frozenset(data for _, data in legacy_ports)
        if inject else frozenset())
    for name in order:
        code = emitter.ref(module.assigns[name])
        if name in referenced:
            lines.append(f"    {sig_var(name)} = env[{name!r}] = {code}")
        else:
            lines.append(f"    env[{name!r}] = {code}")
        if inject:
            for addr_sig, data_sig in legacy_ports:
                if name == addr_sig:
                    lines.append(
                        f"    _la = {sig_var(addr_sig)} % {spec.num_regs}")
                    lines.append(
                        "    _ld = regfile[_la] if _la else 0")
                    lines.append(f"    env[{data_sig!r}] = _ld")
                    lines.append(f"    {sig_var(data_sig)} = "
                                 f"_ld & {_mask(spec.width)}")


def _generate_source(module: Module) -> str:
    order = topo_order(module)
    sig_var = _make_sig_namer(module)
    spec = module.regfile
    legacy_ports = []
    if spec is not None:
        legacy_ports = [(a, d) for a, d in spec.read_ports
                        if d not in module.assigns]

    # Signals whose value some expression actually reads.  Legacy port
    # signals always get locals: the injection statements read the address
    # and (re)bind the data local even when no expression consumes them.
    referenced: set[str] = set()
    for addr_sig, data_sig in legacy_ports:
        referenced.add(addr_sig)
        referenced.add(data_sig)
    for expr in module.assigns.values():
        referenced |= expr_signals(expr)
    for reg in module.registers.values():
        if reg.next is not None:
            referenced |= expr_signals(reg.next)
        if reg.enable is not None:
            referenced |= expr_signals(reg.enable)

    lines = ["def eval_comb(env, regfile):"]
    # Entry loads: inputs, registers and legacy read data come from env
    # (masked exactly like a Sig lookup in the interpreter); register-file
    # storage wires are driven from the array every evaluation.
    for port in module.inputs():
        if port.name in referenced:
            lines.append(f"    {sig_var(port.name)} = "
                         f"env[{port.name!r}] & {_mask(port.width)}")
    for reg in module.registers.values():
        if reg.name in referenced:
            lines.append(f"    {sig_var(reg.name)} = "
                         f"env[{reg.name!r}] & {_mask(reg.width)}")
    if spec is not None:
        for index, name in enumerate(spec.storage_signals, start=1):
            lines.append(f"    env[{name!r}] = _sq = regfile[{index}]")
            if name in referenced:
                lines.append(f"    {sig_var(name)} = _sq & "
                             f"{_mask(spec.width)}")
        for _, data_sig in legacy_ports:
            if data_sig in referenced:
                lines.append(f"    {sig_var(data_sig)} = "
                             f"env.setdefault({data_sig!r}, 0) & "
                             f"{_mask(module.signal_width(data_sig))}")
            else:
                lines.append(f"    env.setdefault({data_sig!r}, 0)")

    _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                    referenced, "t", inject=bool(legacy_ports))
    if legacy_ports:
        # Data injected mid-walk may feed earlier-ordered signals; one more
        # full sweep settles the DAG (mirrors the interpreter's second pass).
        _emit_comb_pass(lines, module, order, legacy_ports, sig_var,
                        referenced, "u", inject=False)
    if len(lines) == 1:
        lines.append("    pass")

    lines.append("")
    lines.append("def tick(env, regfile):")
    tick_start = len(lines)
    tick_roots = []
    for reg in module.registers.values():
        if reg.next is not None:
            tick_roots.append(reg.next)
            if reg.enable is not None:
                tick_roots.append(reg.enable)
    needed: set[str] = set()
    for root in tick_roots:
        needed |= expr_signals(root)
    for name in sorted(needed):
        lines.append(f"    {sig_var(name)} = env[{name!r}] & "
                     f"{_mask(module.signal_width(name))}")
    emitter = _Emitter(lines, "    ", _count_refs(tick_roots), sig_var, "k")
    commits = []
    for reg in module.registers.values():
        if reg.next is None:
            continue
        update = emitter.materialize(emitter.ref(reg.next))
        if reg.enable is not None:
            gate = emitter.materialize(emitter.ref(reg.enable))
            commits.append(f"    if {gate}:\n"
                           f"        env[{reg.name!r}] = {update}")
        else:
            commits.append(f"    env[{reg.name!r}] = {update}")
    if spec is not None and spec.write_port is not None:
        we_sig, addr_sig, data_sig = spec.write_port
        # Raw env reads, mirroring the interpreter's commit exactly.
        lines.append(f"    if env.get({we_sig!r}, 0):")
        lines.append(f"        _wa = env[{addr_sig!r}] % {spec.num_regs}")
        lines.append("        if _wa:")
        lines.append(f"            regfile[_wa] = env[{data_sig!r}] & "
                     f"{_mask(spec.width)}")
    lines.extend(commits)
    if len(lines) == tick_start:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def _fingerprint(module: Module) -> int:
    """Structural hash of everything the generated code depends on."""
    regs = tuple((r.name, r.width, r.next, r.enable, r.reset_value)
                 for r in module.registers.values())
    spec = module.regfile
    rf = None
    if spec is not None:
        rf = (spec.num_regs, spec.width, tuple(spec.read_ports),
              spec.write_port, tuple(spec.storage_signals))
    ports = tuple(sorted((p.name, p.width, p.direction)
                         for p in module.ports.values()))
    return hash((tuple(sorted(module.assigns.items())), regs, rf, ports,
                 tuple(sorted(module.wires.items()))))


def stable_fingerprint(module: Module) -> str:
    """Process-independent structural hash of a module (hex digest).

    :func:`_fingerprint` keys the in-process compile caches with Python's
    built-in ``hash`` — salted per interpreter, so it can never cross a
    process boundary.  The simulation farm instead ships this sha256 over
    the canonical ``repr`` of the same structures (every IR node is a
    frozen dataclass with a deterministic repr), and each worker asserts
    that the core it rebuilt from a task's subset description has the
    fingerprint the task was enumerated against.
    """
    import hashlib

    regs = tuple((r.name, r.width, repr(r.next), repr(r.enable),
                  r.reset_value) for r in module.registers.values())
    spec = module.regfile
    rf = None
    if spec is not None:
        rf = (spec.num_regs, spec.width, tuple(spec.read_ports),
              spec.write_port, tuple(spec.storage_signals))
    ports = tuple(sorted((p.name, p.width, p.direction)
                         for p in module.ports.values()))
    assigns = tuple((name, repr(module.assigns[name]))
                    for name in sorted(module.assigns))
    payload = repr((assigns, regs, rf, ports,
                    tuple(sorted(module.wires.items()))))
    return hashlib.sha256(payload.encode()).hexdigest()


_cache: "weakref.WeakKeyDictionary[Module, tuple[int, CompiledModule]]" = \
    weakref.WeakKeyDictionary()


def compile_module(module: Module) -> CompiledModule:
    """Compile (or fetch the cached compilation of) ``module``.

    The cache is keyed on the module object *and* a structural fingerprint,
    so rebuilding an :class:`RtlSim` after mutating ``module.assigns``
    (failure-injection style) recompiles instead of running stale code.
    """
    key = _fingerprint(module)
    hit = _cache.get(module)
    if hit is not None and hit[0] == key:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["compile_cache.module.hit"] += 1
        return hit[1]
    if _obs._ACTIVE is not None:
        _obs._ACTIVE.counters["compile_cache.module.miss"] += 1
    source = _generate_source(module)
    namespace: dict[str, object] = {}
    exec(compile(source, f"<rtl:{module.name}>", "exec"), namespace)
    compiled = CompiledModule(eval_comb=namespace["eval_comb"],
                              tick=namespace["tick"], source=source)
    _cache[module] = (key, compiled)
    return compiled


# ---------------------------------------------------------------------------
# Fused whole-cycle loop (PR 4)

#: dmem byte-strobe -> store width; shared by the per-cycle harness and the
#: generated fused loop so both reject malformed strobes identically.
WSTRB_WIDTH = {0b0001: 1, 0b0010: 1, 0b0100: 1, 0b1000: 1,
               0b0011: 2, 0b1100: 2, 0b1111: 4}

#: Combinational outputs the fused loop consumes from the core; everything
#: the harness interface needs beyond the register-file port signals.
CORE_INTERFACE = ("dmem_re", "dmem_addr", "dmem_wstrb", "dmem_wdata",
                  "illegal", "halt", "next_pc")


@dataclass
class CompiledCore:
    """The fused whole-cycle entry point plus its generated source."""

    run_cycles: object  # callable(ctx, count, limit, sink) ->
    #                     (halted: bool, reason: str, count: int)
    source: str
    #: The exec namespace the loop runs in — :func:`compile_fleet` grafts
    #: the per-word decode cache (``_DCACHE``/``decode_comb``) out of it so
    #: the batched loop and the per-instance loop share one decode memo.
    namespace: dict = None


def core_fusable(module: Module, facts=None) -> bool:
    """True when ``module`` exposes the RISSP harness interface the fused
    loop is generated against: a storage-exposed register file with two
    combinationally-assigned read ports and a write port, the imem/dmem
    input ports, the :data:`CORE_INTERFACE` outputs and a committed ``pc``
    register.  Anything else (legacy read ports included) falls back to
    the per-cycle harness.

    ``facts`` is an optional ``repro.analysis.StructuralFacts`` for the
    same module (``build_rissp`` derives it once for its build-time lint
    gate): when given, the acyclic combinational order must already have
    been proven and the driver map replaces re-probing ``module.assigns``.
    """
    if facts is not None and facts.cycle:
        return False
    comb_driven = facts.comb_driven if facts is not None \
        else frozenset(module.assigns)
    spec = module.regfile
    if spec is None or spec.write_port is None or len(spec.read_ports) != 2:
        return False
    if not spec.storage_signals:
        return False
    if any(data not in comb_driven for _, data in spec.read_ports):
        return False
    names = CORE_INTERFACE + tuple(spec.write_port) \
        + tuple(addr for addr, _ in spec.read_ports)
    if any(name not in comb_driven for name in names):
        return False
    for port_name in ("imem_rdata", "dmem_rdata"):
        port = module.ports.get(port_name)
        if port is None or port.direction != "in":
            return False
    pc = module.registers.get("pc")
    if pc is None or pc.next is None:
        return False
    # The trap slice must be all-or-nothing: the generated loop wires the
    # mtvec register, the ``trap`` output, the mret word class and the
    # interrupt fire check together.
    if ("mtvec" in module.registers) != ("trap" in comb_driven):
        return False
    return True


def _seed_storage(emitter: _Emitter, module: Module) -> None:
    """Make register-file storage wires read ``regfile`` lazily in place.

    Pre-seeding the emitter cache with an indexing expression (instead of
    loading all ``num_regs - 1`` storage wires into locals each cycle)
    keeps the read-mux trees lazy: a nested conditional expression only
    evaluates the one leaf the address selects, so a cycle touches two
    register-file slots, not thirty."""
    spec = module.regfile
    mask = _mask(spec.width)
    for index, name in enumerate(spec.storage_signals, start=1):
        sig = Sig(name, module.signal_width(name))
        emitter.cache[sig] = f"(regfile[{index}] & {mask})"


#: The fused loop keeps lazily-evaluated conditional expressions intact
#: instead of hoisting long code into (eagerly evaluated) temps; CPython
#: compiles the resulting statements fine well past this bound.
_FUSED_MAX_INLINE = 1 << 20


def _core_emitter(lines: list[str], indent: str, roots: list[Expr],
                  sig_var, temp_prefix: str, module: Module) -> _Emitter:
    emitter = _Emitter(lines, indent, _count_refs(roots), sig_var,
                       temp_prefix, max_inline=_FUSED_MAX_INLINE)
    _seed_storage(emitter, module)
    return emitter


def _substitute_memo(expr: Expr, mapping: dict[str, Expr],
                     memo: dict[Expr, Expr]) -> Expr:
    """Structure-sharing :func:`repro.rtl.ir.substitute` (linear on DAGs)."""
    done = memo.get(expr)
    if done is not None:
        return done
    if isinstance(expr, Sig):
        result = mapping.get(expr.name, expr)
    else:
        result = map_children(
            expr, lambda child: _substitute_memo(child, mapping, memo))
    memo[expr] = result
    return result


@dataclass
class _CoreAnalysis:
    """Dataflow analysis shared by the fused-loop generators.

    Everything :func:`_generate_core_source` (one instance per call) and
    :func:`_generate_fleet_source` (N instances per pass) need to know
    about a fusable core's DAG: the needed-set closure, the single-use
    inlining rewrite, the ``dmem_rdata`` dependency cone, the word-only
    decode extraction and the tick roots.  The analysis is a deterministic
    function of the module, so the ``decode_out`` tuple layout — the value
    format of the shared per-word decode cache — is identical across both
    generators, which is what lets :func:`compile_fleet` graft the fused
    loop's ``_DCACHE`` dict into the batched loop's namespace.
    """

    module: Module
    sig_var: object                      # signal name -> Python local
    trap_core: bool
    registers: list                      # module registers, commit order
    effective: dict                      # post-inline/extract assigns
    cycle_names: list                    # eager per-cycle statements
    cone_names: list                     # dmem_rdata dependency cone
    decode_names: list                   # word-only signals (decode_comb)
    synth_order: list                    # synthesized word-only subtrees
    decode_out: list                     # decode_comb return layout
    tick_next: dict
    tick_enable: dict
    we_sig: str
    waddr_sig: str
    wdata_sig: str
    rs1_addr_sig: str
    rs2_addr_sig: str


def _analyze_core(module: Module) -> _CoreAnalysis:
    """Run the shared fused-loop dataflow analysis over a fusable core."""
    spec = module.regfile
    order = topo_order(module)
    sig_var = _make_sig_namer(module)
    trap_core = "mtvec" in module.registers
    has_trap_out = "trap" in module.assigns
    we_sig, waddr_sig, wdata_sig = spec.write_port
    (rs1_addr_sig, _), (rs2_addr_sig, _) = spec.read_ports

    # Needed-set closure: only assigns feeding the harness interface, the
    # register commits or the RVFI row are emitted inside the loop (e.g.
    # the ``imem_addr`` echo of pc is dead in the loop); the exit
    # ``eval_comb`` re-settles every signal for get()/peek coherency.
    control = list(CORE_INTERFACE) + [we_sig, waddr_sig, wdata_sig,
                                      rs1_addr_sig, rs2_addr_sig]
    if has_trap_out:
        control.append("trap")
    needed = set(control)
    registers = list(module.registers.values())
    tick_exprs = [root for reg in registers
                  for root in (reg.next, reg.enable) if root is not None]
    for root in tick_exprs:
        needed |= expr_signals(root)
    for name in reversed(order):
        if name in needed:
            needed |= expr_signals(module.assigns[name])
    emit_names = [name for name in order if name in needed]

    # Single-use inlining: a wire consumed by exactly one expression (the
    # stitched ``ex_*`` block outputs, mostly) is folded into its consumer
    # instead of being evaluated eagerly as a statement.  Because ``Mux``
    # lowers to a Python conditional expression, this makes whole
    # unselected datapath arms lazy — the dominant fused-loop speedup.
    # Harness-consumed controls always stay eager statements.
    refs_all = _count_refs([module.assigns[name] for name in emit_names]
                           + tick_exprs)
    inline_map: dict[str, Expr] = {}
    effective: dict[str, Expr] = {}
    memo: dict[Expr, Expr] = {}
    for name in emit_names:
        expr = _substitute_memo(module.assigns[name], inline_map, memo)
        effective[name] = expr
        # Growing the mapping mid-walk is safe for the shared memo: in
        # topological order every signal a memoized node references was
        # already mapped (or ruled out) when that node was first rewritten.
        if name not in control and \
                refs_all.get(Sig(name, module.signal_width(name)), 0) == 1:
            inline_map[name] = expr
    eager_names = [name for name in emit_names if name not in inline_map]
    tick_memo: dict[Expr, Expr] = {}
    tick_next = {reg.name: _substitute_memo(reg.next, inline_map, tick_memo)
                 for reg in registers if reg.next is not None}
    tick_enable = {reg.name:
                   _substitute_memo(reg.enable, inline_map, tick_memo)
                   for reg in registers
                   if reg.next is not None and reg.enable is not None}

    # Dependency cone of dmem_rdata: the only assigns re-evaluated after a
    # data-memory read lands (the per-cycle harness re-runs the whole DAG).
    cone: set[str] = set()
    for name in eager_names:
        deps = expr_signals(effective[name])
        if "dmem_rdata" in deps or deps & cone:
            cone.add(name)
    cone_names = [name for name in eager_names if name in cone]

    # Decode cache (the RTL analog of the ISS decoded-op cache): every
    # signal — and every maximal subexpression of the remaining datapath —
    # that depends only on the fetched instruction word is evaluated in a
    # separate generated decode_comb(w), memoized per word in the compiled
    # namespace.  Steady-state cycles replace the whole decode half of the
    # DAG (~40 per-instruction select comparators plus their shared field
    # slices on a full RV32E core) with one dict probe and a tuple unpack.
    word_only: set[str] = set()
    for name in eager_names:
        if expr_signals(effective[name]) <= ({"imem_rdata"} | word_only):
            word_only.add(name)
    decode_names = [name for name in eager_names if name in word_only]
    cycle_names = [name for name in eager_names if name not in word_only]

    wo_universe = {"imem_rdata"} | word_only
    wo_memo: dict[Expr, bool] = {}

    def word_only_expr(expr: Expr) -> bool:
        cached = wo_memo.get(expr)
        if cached is None:
            cached = expr_signals(expr) <= wo_universe
            wo_memo[expr] = cached
        return cached

    synth: dict[Expr, Sig] = {}
    synth_order: list[tuple[Sig, Expr]] = []
    extract_memo: dict[Expr, Expr] = {}

    def extract(expr: Expr) -> Expr:
        """Hoist maximal word-only subtrees into decode_comb outputs."""
        if isinstance(expr, (Const, Sig)):
            return expr
        done = extract_memo.get(expr)
        if done is not None:
            return done
        if word_only_expr(expr):
            sig = synth.get(expr)
            if sig is None:
                sig = Sig(f"_dec{len(synth)}", expr.width)
                synth[expr] = sig
                synth_order.append((sig, expr))
            result: Expr = sig
        else:
            result = map_children(expr, extract)
        extract_memo[expr] = result
        return result

    for name in cycle_names:
        effective[name] = extract(effective[name])
    tick_next = {name: extract(expr) for name, expr in tick_next.items()}
    tick_enable = {name: extract(expr) for name, expr in tick_enable.items()}

    # Decode values the cycle body consumes: word-only *signals* the loop
    # template or a datapath expression reads, plus every synthesized
    # subtree.  Anything else word-only stays private to decode_comb.
    used_by_cycle = set(control)
    for name in cycle_names:
        used_by_cycle |= expr_signals(effective[name])
    for expr in list(tick_next.values()) + list(tick_enable.values()):
        used_by_cycle |= expr_signals(expr)
    decode_out = [name for name in decode_names if name in used_by_cycle]
    decode_out += [sig.name for sig, _ in synth_order]

    return _CoreAnalysis(
        module=module, sig_var=sig_var, trap_core=trap_core,
        registers=registers, effective=effective, cycle_names=cycle_names,
        cone_names=cone_names, decode_names=decode_names,
        synth_order=synth_order, decode_out=decode_out,
        tick_next=tick_next, tick_enable=tick_enable, we_sig=we_sig,
        waddr_sig=waddr_sig, wdata_sig=wdata_sig,
        rs1_addr_sig=rs1_addr_sig, rs2_addr_sig=rs2_addr_sig)


def _generate_core_source(module: Module) -> str:
    """Generate the fused ``run_cycles`` source for a fusable core.

    The loop mirrors :meth:`repro.rtl.core_sim.RisspSim._cycle` statement
    for statement — same evaluation order, same error messages, same RVFI
    row fields — with the per-cycle ``env`` traffic replaced by locals and
    the full-DAG second evaluation replaced by the ``dmem_rdata``
    dependency cone.
    """
    a = _analyze_core(module)
    module = a.module
    spec = module.regfile
    sig_var = a.sig_var
    trap_core = a.trap_core
    registers = a.registers
    effective = a.effective
    cycle_names = a.cycle_names
    cone_names = a.cone_names
    decode_names = a.decode_names
    synth_order = a.synth_order
    decode_out = a.decode_out
    tick_next = a.tick_next
    tick_enable = a.tick_enable
    we_sig, waddr_sig, wdata_sig = a.we_sig, a.waddr_sig, a.wdata_sig
    rs1_addr_sig, rs2_addr_sig = a.rs1_addr_sig, a.rs2_addr_sig
    intr = "intr" if trap_core else "0"

    lines: list[str] = []
    emit = lines.append
    if decode_out:
        emit("_DCACHE = {}")
        emit("")
        emit("def decode_comb(w):")
        emit(f"    {sig_var('imem_rdata')} = w")
        decode_emitter = _Emitter(
            lines, "    ",
            _count_refs([effective[name] for name in decode_names]
                        + [expr for _, expr in synth_order]),
            sig_var, "d", max_inline=_FUSED_MAX_INLINE)
        for name in decode_names:
            code = decode_emitter.ref(effective[name])
            emit(f"    {sig_var(name)} = {code}")
        for sig, expr in synth_order:
            emit(f"    {sig_var(sig.name)} = {decode_emitter.ref(expr)}")
        returned = "".join(sig_var(name) + ", " for name in decode_out)
        emit(f"    return ({returned})")
        emit("")
    emit("def run_cycles(ctx, count, limit, sink):")
    for key, local in (("env", "env"), ("regfile", "regfile"),
                       ("mem", "mem"), ("ram_size", "ram_size"),
                       ("fetch", "fetch_slow"), ("load_mmio", "load_mmio"),
                       ("store_mmio", "store_mmio"),
                       ("illegal", "retire_illegal"),
                       ("halt_reason", "halt_reason"),
                       ("trace_load", "trace_load")):
        emit(f"    {local} = ctx[{key!r}]")
    emit("    wclass_get = ctx['wclass'].get")
    emit("    classify = ctx['classify']")
    if trap_core:
        emit("    retire_emulated = ctx['emulated']")
        emit("    retire_mret = ctx['mret']")
        emit("    enter_hw_trap = ctx['hw_trap']")
        emit("    fire_index = ctx['fire_index']")
        emit("    take_interrupt = ctx['take_interrupt']")
    if decode_out:
        emit("    dcache_get = _DCACHE.get")
    for port in module.inputs():
        if port.name not in ("imem_rdata", "dmem_rdata"):
            emit(f"    {sig_var(port.name)} = env[{port.name!r}]"
                 f" & {_mask(port.width)}")

    def flush_registers(indent: str) -> None:
        for reg in registers:
            emit(f"{indent}env[{reg.name!r}] = {sig_var(reg.name)}")

    def reload_registers(indent: str) -> None:
        for reg in registers:
            emit(f"{indent}{sig_var(reg.name)} = env[{reg.name!r}]"
                 f" & {_mask(reg.width)}")

    reload_registers("    ")
    emit("    halted = False")
    emit("    reason = ''")
    emit("    w = env.get('imem_rdata', 0)")
    emit(f"    {sig_var('imem_rdata')} = w")
    emit(f"    {sig_var('dmem_rdata')} = env.get('dmem_rdata', 0)")
    if trap_core:
        emit("    fire_at = fire_index()")
    emit("    try:")
    emit("        while count < limit:")
    if trap_core:
        # Interrupt entry between retirements: one integer compare per
        # cycle against the precomputed fire index over every enabled
        # source (ISS fast-path idiom); the callback arbitrates and
        # returns the handler pc plus the RVFI intr cause code.
        emit("            if count >= fire_at:")
        flush_registers("                ")
        emit(f"                env['pc'], intr = take_interrupt(count, "
             f"{sig_var('pc')})")
        reload_registers("                ")
        emit("                fire_at = fire_index()")
        emit("            else:")
        emit("                intr = 0")
    emit(f"            pc = {sig_var('pc')}")
    emit("            if pc & 3 or pc + 4 > ram_size:")
    emit("                w = fetch_slow(pc)")
    emit("            else:")
    emit("                w = int.from_bytes(mem[pc:pc + 4], 'little')")
    emit("            cls = wclass_get(w)")
    emit("            if cls is None:")
    emit("                cls = classify(w)")
    emit("            if cls == 3:")
    # RV32E register-bound violation: trap/refuse harness-side before
    # the datapath truncates the register field (PR 5 conformance fix).
    flush_registers("                ")
    emit(f"                retire_illegal(count, pc, w, {intr})")
    reload_registers("                ")
    if trap_core:
        emit("                fire_at = fire_index()")
    emit("                count += 1")
    emit("                continue")
    if trap_core:
        emit("            if cls == 1:")
        flush_registers("                ")
        emit("                halted, reason = retire_emulated(count, pc, "
             "w, intr)")
        reload_registers("                ")
        emit("                fire_at = fire_index()")
        emit("                count += 1")
        emit("                if halted:")
        emit("                    break")
        emit("                continue")
    emit(f"            {sig_var('imem_rdata')} = w")
    emit(f"            {sig_var('dmem_rdata')} = 0")
    if decode_out:
        unpacked = "".join(sig_var(name) + ", " for name in decode_out)
        emit("            _dv = dcache_get(w)")
        emit("            if _dv is None:")
        emit("                _dv = _DCACHE[w] = decode_comb(w)")
        emit(f"            ({unpacked}) = _dv")
    body = _core_emitter(lines, "            ",
                         [effective[name] for name in cycle_names],
                         sig_var, "t", module)
    for name in cycle_names:
        code = body.ref(effective[name])
        emit(f"            {sig_var(name)} = {code}")
    emit(f"            if {sig_var('illegal')}:")
    flush_registers("                ")
    emit(f"                retire_illegal(count, pc, w, {intr})")
    reload_registers("                ")
    if trap_core:
        emit("                fire_at = fire_index()")
    emit("                count += 1")
    emit("                continue")
    emit(f"            reading = {sig_var('dmem_re')}")
    emit("            load_addr = mem_word = 0")
    emit("            if reading:")
    emit(f"                load_addr = {sig_var('dmem_addr')}")
    emit("                _ba = load_addr & 4294967292")
    emit("                if _ba + 4 <= ram_size:")
    emit("                    mem_word = int.from_bytes("
         "mem[_ba:_ba + 4], 'little')")
    emit("                else:")
    emit("                    mem_word = load_mmio(count, _ba)")
    if trap_core:
        emit("                    fire_at = fire_index()")
    emit(f"                {sig_var('dmem_rdata')} = mem_word")
    cone_emitter = _core_emitter(
        lines, "                ",
        [effective[name] for name in cone_names], sig_var, "c", module)
    for name in cone_names:
        code = cone_emitter.ref(effective[name])
        emit(f"                {sig_var(name)} = {code}")
    emit("            mem_addr = mem_wmask = mem_wdata = 0")
    emit(f"            _wstrb = {sig_var('dmem_wstrb')}")
    emit("            if _wstrb:")
    emit("                _width = WSTRB_WIDTH.get(_wstrb)")
    emit("                if _width is None:")
    emit("                    raise SimulationError("
         "'malformed dmem_wstrb ' + format(_wstrb, '#06b'))")
    emit("                _off = (_wstrb & -_wstrb).bit_length() - 1")
    emit(f"                mem_addr = ({sig_var('dmem_addr')}"
         " & 4294967292) + _off")
    emit("                mem_wmask = (1 << _width) - 1")
    emit(f"                mem_wdata = ({sig_var('dmem_wdata')}"
         " >> (8 * _off)) & ((1 << (8 * _width)) - 1)")
    emit("                if mem_addr + _width <= ram_size:")
    emit("                    mem[mem_addr:mem_addr + _width] = "
         "mem_wdata.to_bytes(_width, 'little')")
    emit("                else:")
    emit("                    if store_mmio(count, mem_addr, mem_wdata, "
         "_width):")
    emit("                        halted = True")
    emit("                        reason = 'poweroff'")
    if trap_core:
        emit("                    fire_at = fire_index()")
    trapped = "0"
    if trap_core:
        # core_fusable guarantees trap_core == has_trap_out, so the trap
        # output, the mret class and the fire-index plumbing come and go
        # together.
        trapped = "trapped"
        emit("            trapped = 0")
        emit(f"            if {sig_var('trap')}:")
        emit("                enter_hw_trap()")
        emit("                trapped = 1")
        emit("                fire_at = fire_index()")
        emit("            elif cls == 2:")
        emit("                retire_mret()")
        emit("                fire_at = fire_index()")
    emit(f"            if not halted and {sig_var('halt')}:")
    emit("                halted = True")
    emit("                reason = halt_reason(w)")
    emit("            if sink is not None:")
    emit("                mem_rmask = mem_rdata = 0")
    emit("                if reading:")
    emit("                    mem_addr, mem_rmask, mem_rdata = "
         "trace_load(w, load_addr, mem_word)")
    emit(f"                _rs1a = {sig_var(rs1_addr_sig)}")
    emit(f"                _rs2a = {sig_var(rs2_addr_sig)}")
    emit(f"                _we = {sig_var(we_sig)}")
    emit(f"                _wa = {sig_var(waddr_sig)} if _we else 0")
    emit(f"                sink(count, w, pc, {sig_var('next_pc')}, "
         "_rs1a, _rs2a,")
    emit("                     regfile[_rs1a] if _rs1a else 0,")
    emit("                     regfile[_rs2a] if _rs2a else 0,")
    emit(f"                     _wa, {sig_var(wdata_sig)} if _we and _wa "
         "else 0,")
    emit("                     mem_addr, mem_rmask, mem_wmask, mem_rdata, "
         "mem_wdata,")
    emit(f"                     {trapped}, {intr})")
    # Tick: all next/enable values are latched into temporaries before any
    # register local is reassigned — commits must observe pre-tick state
    # even when one register's next is another register's current value.
    tick_roots = list(tick_next.values()) + list(tick_enable.values())
    tick = _core_emitter(lines, "            ", tick_roots, sig_var, "k",
                         module)
    commits: list[str] = []
    for index, reg in enumerate(registers):
        if reg.next is None:
            continue
        emit(f"            _nx{index} = {tick.ref(tick_next[reg.name])}")
        if reg.enable is not None:
            emit(f"            _en{index} = "
                 f"{tick.ref(tick_enable[reg.name])}")
            commits.append(f"            if _en{index}:\n"
                           f"                {sig_var(reg.name)} = "
                           f"_nx{index}")
        else:
            commits.append(f"            {sig_var(reg.name)} = _nx{index}")
    emit(f"            if {sig_var(we_sig)}:")
    emit(f"                _wa = {sig_var(waddr_sig)} % {spec.num_regs}")
    emit("                if _wa:")
    emit(f"                    regfile[_wa] = {sig_var(wdata_sig)}"
         f" & {_mask(spec.width)}")
    lines.extend(commits)
    emit("            count += 1")
    emit("            if halted:")
    emit("                break")
    emit("    finally:")
    flush_registers("        ")
    # Flush the last word the *hardware datapath* evaluated, not the raw
    # fetch: an emulated Zicsr/wfi retirement never drives the RTL inputs
    # on the per-cycle oracles either, so a paused probe must not see the
    # emulated word settle through the combinational logic.
    emit(f"        env['imem_rdata'] = {sig_var('imem_rdata')}")
    emit(f"        env['dmem_rdata'] = {sig_var('dmem_rdata')}")
    emit("    return halted, reason, count")
    return "\n".join(lines) + "\n"


_core_cache: "weakref.WeakKeyDictionary[Module, tuple[int, CompiledCore]]" \
    = weakref.WeakKeyDictionary()


def compile_core(module: Module) -> CompiledCore:
    """Compile (or fetch the cached compilation of) the fused cycle loop.

    Same caching contract as :func:`compile_module`: keyed on the module
    object plus the structural fingerprint, so failure-injection mutants
    recompile transparently.  Callers must check :func:`core_fusable`
    first."""
    if not core_fusable(module):
        raise IrError(f"module {module.name} does not expose the fused "
                      f"harness interface")
    key = _fingerprint(module)
    hit = _core_cache.get(module)
    if hit is not None and hit[0] == key:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["compile_cache.core.hit"] += 1
        return hit[1]
    if _obs._ACTIVE is not None:
        _obs._ACTIVE.counters["compile_cache.core.miss"] += 1
    from ..sim.decoded import SimulationError
    source = _generate_core_source(module)
    namespace: dict[str, object] = {"WSTRB_WIDTH": WSTRB_WIDTH,
                                    "SimulationError": SimulationError}
    exec(compile(source, f"<rtl-fused:{module.name}>", "exec"), namespace)
    compiled = CompiledCore(run_cycles=namespace["run_cycles"],
                            source=source, namespace=namespace)
    _core_cache[module] = (key, compiled)
    return compiled


# ---------------------------------------------------------------------------
# Batched fleet loop (PR 7)

@dataclass
class CompiledFleet:
    """The batched fleet entry point plus its generated source."""

    run_fleet: object   # callable(ctx, lanes, quantum) ->
    #                     (halted: list[(lane, reason)], diverged: list[lane])
    #: Per-lane register-bank layout: bank slot ``i`` holds the register
    #: named ``registers[i]`` — the adoption contract between the batched
    #: arrays and a per-instance ``RisspSim``'s ``env``.
    registers: tuple
    source: str
    #: The exec namespace the batched loop runs in (grafted decode memo
    #: included) — the generated-source auditor whitelists exactly these
    #: bindings as the loop's legal global loads.
    namespace: dict = None


def _generate_fleet_source(a: _CoreAnalysis) -> str:
    """Generate the batched ``run_fleet(ctx, lanes, quantum)`` source.

    One call advances every listed lane (instance) by up to ``quantum``
    retirements over per-instance state arrays: ``mems[lane]`` (RAM
    bytearray), ``regfiles[lane]`` (register-file list), ``regs[lane]``
    (module-register bank laid out per :attr:`CompiledFleet.registers`),
    ``counts[lane]`` and ``sinks[lane]`` (RVFI row sink or None).  The
    cycle body is the same emission as the fused single-instance loop —
    same comb statements, same decode cache (grafted from the fused
    namespace by :func:`compile_fleet`), same RVFI row fields, same tick.

    Divergence rule: any retirement the batched template cannot complete
    bit-identically in place — misaligned/out-of-range fetch, a word the
    harness owns (emulated Zicsr/wfi, mret, RV32E bound), an illegal or
    trapping instruction, an out-of-RAM (MMIO) load or store, a malformed
    store strobe — stops the lane *before* that instruction applies any
    state and reports it in the ``diverged`` list.  The caller re-runs the
    instruction on the per-instance fused path, which owns every one of
    those events, so a diverged lane's trajectory (including error
    surfaces) is bit-identical to a single-core run.  Divergence is
    checked strictly pre-commit: a diverging instruction has written
    neither memory (``trap`` can only assert for ecall/ebreak, which never
    store) nor registers when the lane exits the batch.

    Halting retirements (ecall/ebreak with no handler installed) complete
    in-batch exactly like the fused loop and land in ``halted``.
    """
    module = a.module
    spec = module.regfile
    sig_var = a.sig_var
    lines: list[str] = []
    emit = lines.append
    emit("def run_fleet(ctx, lanes, quantum):")
    for key, local in (("mems", "mems"), ("regfiles", "regfiles"),
                       ("regs", "regbanks"), ("counts", "counts"),
                       ("sinks", "sinks"), ("ram_size", "ram_size"),
                       ("halt_reason", "halt_reason"),
                       ("trace_load", "trace_load")):
        emit(f"    {local} = ctx[{key!r}]")
    emit("    wclass_get = ctx['wclass'].get")
    emit("    classify = ctx['classify']")
    if a.decode_out:
        emit("    dcache_get = _DCACHE.get")
    # Non-memory input ports hold their reset value (0) for every batched
    # lane, exactly like a fresh RtlSim the harness never drives.
    for port in module.inputs():
        if port.name not in ("imem_rdata", "dmem_rdata"):
            emit(f"    {sig_var(port.name)} = 0")
    emit("    halted_lanes = []")
    emit("    diverged = []")
    emit("    for lane in lanes:")
    emit("        regfile = regfiles[lane]")
    emit("        mem = mems[lane]")
    emit("        _rb = regbanks[lane]")
    for index, reg in enumerate(a.registers):
        emit(f"        {sig_var(reg.name)} = _rb[{index}]"
             f" & {_mask(reg.width)}")
    emit("        sink = sinks[lane]")
    emit("        count = counts[lane]")
    emit("        limit = count + quantum")
    emit("        stop = 0")
    emit("        reason = ''")
    emit("        while count < limit:")
    emit(f"            pc = {sig_var('pc')}")
    emit("            if pc & 3 or pc + 4 > ram_size:")
    emit("                stop = 2")
    emit("                break")
    emit("            w = int.from_bytes(mem[pc:pc + 4], 'little')")
    emit("            cls = wclass_get(w)")
    emit("            if cls is None:")
    emit("                cls = classify(w)")
    emit("            if cls:")
    emit("                stop = 2")
    emit("                break")
    emit(f"            {sig_var('imem_rdata')} = w")
    emit(f"            {sig_var('dmem_rdata')} = 0")
    if a.decode_out:
        unpacked = "".join(sig_var(name) + ", " for name in a.decode_out)
        emit("            _dv = dcache_get(w)")
        emit("            if _dv is None:")
        emit("                _dv = _DCACHE[w] = decode_comb(w)")
        emit(f"            ({unpacked}) = _dv")
    body = _core_emitter(lines, "            ",
                         [a.effective[name] for name in a.cycle_names],
                         sig_var, "t", module)
    for name in a.cycle_names:
        code = body.ref(a.effective[name])
        emit(f"            {sig_var(name)} = {code}")
    emit(f"            if {sig_var('illegal')}:")
    emit("                stop = 2")
    emit("                break")
    if a.trap_core:
        # Hardware trap entry (ecall/ebreak with mtvec installed) diverges
        # pre-instruction: the trap unit guarantees no load/store/halt
        # asserts with it, so nothing has been applied yet.
        emit(f"            if {sig_var('trap')}:")
        emit("                stop = 2")
        emit("                break")
    emit(f"            reading = {sig_var('dmem_re')}")
    emit("            load_addr = mem_word = 0")
    emit("            if reading:")
    emit(f"                load_addr = {sig_var('dmem_addr')}")
    emit("                _ba = load_addr & 4294967292")
    emit("                if _ba + 4 > ram_size:")
    emit("                    stop = 2")
    emit("                    break")
    emit("                mem_word = int.from_bytes("
         "mem[_ba:_ba + 4], 'little')")
    emit(f"                {sig_var('dmem_rdata')} = mem_word")
    cone_emitter = _core_emitter(
        lines, "                ",
        [a.effective[name] for name in a.cone_names], sig_var, "c", module)
    for name in a.cone_names:
        code = cone_emitter.ref(a.effective[name])
        emit(f"                {sig_var(name)} = {code}")
    emit("            mem_addr = mem_wmask = mem_wdata = 0")
    emit(f"            _wstrb = {sig_var('dmem_wstrb')}")
    emit("            if _wstrb:")
    emit("                _width = WSTRB_WIDTH.get(_wstrb)")
    emit("                if _width is None:")
    # Malformed strobe: diverge; the per-instance path raises the
    # SimulationError with the canonical message.
    emit("                    stop = 2")
    emit("                    break")
    emit("                _off = (_wstrb & -_wstrb).bit_length() - 1")
    emit(f"                mem_addr = ({sig_var('dmem_addr')}"
         " & 4294967292) + _off")
    emit("                if mem_addr + _width > ram_size:")
    emit("                    stop = 2")
    emit("                    break")
    emit("                mem_wmask = (1 << _width) - 1")
    emit(f"                mem_wdata = ({sig_var('dmem_wdata')}"
         " >> (8 * _off)) & ((1 << (8 * _width)) - 1)")
    emit("                mem[mem_addr:mem_addr + _width] = "
         "mem_wdata.to_bytes(_width, 'little')")
    emit(f"            if {sig_var('halt')}:")
    emit("                stop = 1")
    emit("                reason = halt_reason(w)")
    emit("            if sink is not None:")
    emit("                mem_rmask = mem_rdata = 0")
    emit("                if reading:")
    emit("                    mem_addr, mem_rmask, mem_rdata = "
         "trace_load(w, load_addr, mem_word)")
    emit(f"                _rs1a = {sig_var(a.rs1_addr_sig)}")
    emit(f"                _rs2a = {sig_var(a.rs2_addr_sig)}")
    emit(f"                _we = {sig_var(a.we_sig)}")
    emit(f"                _wa = {sig_var(a.waddr_sig)} if _we else 0")
    emit(f"                sink(count, w, pc, {sig_var('next_pc')}, "
         "_rs1a, _rs2a,")
    emit("                     regfile[_rs1a] if _rs1a else 0,")
    emit("                     regfile[_rs2a] if _rs2a else 0,")
    emit(f"                     _wa, {sig_var(a.wdata_sig)} if _we and _wa "
         "else 0,")
    emit("                     mem_addr, mem_rmask, mem_wmask, mem_rdata, "
         "mem_wdata,")
    emit("                     0, 0)")
    tick_roots = list(a.tick_next.values()) + list(a.tick_enable.values())
    tick = _core_emitter(lines, "            ", tick_roots, sig_var, "k",
                         module)
    commits: list[str] = []
    for index, reg in enumerate(a.registers):
        if reg.next is None:
            continue
        emit(f"            _nx{index} = {tick.ref(a.tick_next[reg.name])}")
        if reg.enable is not None:
            emit(f"            _en{index} = "
                 f"{tick.ref(a.tick_enable[reg.name])}")
            commits.append(f"            if _en{index}:\n"
                           f"                {sig_var(reg.name)} = "
                           f"_nx{index}")
        else:
            commits.append(f"            {sig_var(reg.name)} = _nx{index}")
    emit(f"            if {sig_var(a.we_sig)}:")
    emit(f"                _wa = {sig_var(a.waddr_sig)} % {spec.num_regs}")
    emit("                if _wa:")
    emit(f"                    regfile[_wa] = {sig_var(a.wdata_sig)}"
         f" & {_mask(spec.width)}")
    lines.extend(commits)
    emit("            count += 1")
    emit("            if stop:")
    emit("                break")
    for index, reg in enumerate(a.registers):
        emit(f"        _rb[{index}] = {sig_var(reg.name)}")
    emit("        counts[lane] = count")
    emit("        if stop == 1:")
    emit("            halted_lanes.append((lane, reason))")
    emit("        elif stop == 2:")
    emit("            diverged.append(lane)")
    emit("    return halted_lanes, diverged")
    return "\n".join(lines) + "\n"


_fleet_cache: "weakref.WeakKeyDictionary[Module, tuple[int, CompiledFleet]]" \
    = weakref.WeakKeyDictionary()


def compile_fleet(module: Module) -> CompiledFleet:
    """Compile (or fetch the cached compilation of) the batched fleet loop.

    Compiles the single-instance fused loop first and grafts its per-word
    decode cache (``_DCACHE`` dict plus the ``decode_comb`` function) into
    the batched loop's namespace: every instance of every
    :class:`~repro.rtl.fleet.FleetSim` sharing this module — and the
    per-instance fused path diverged lanes fall back to — decodes each
    distinct instruction word exactly once per process.  Same caching
    contract as :func:`compile_core`."""
    core = compile_core(module)
    key = _fingerprint(module)
    hit = _fleet_cache.get(module)
    if hit is not None and hit[0] == key:
        if _obs._ACTIVE is not None:
            _obs._ACTIVE.counters["compile_cache.fleet.hit"] += 1
        return hit[1]
    if _obs._ACTIVE is not None:
        _obs._ACTIVE.counters["compile_cache.fleet.miss"] += 1
    source = _generate_fleet_source(_analyze_core(module))
    namespace: dict[str, object] = {
        "WSTRB_WIDTH": WSTRB_WIDTH,
        "_DCACHE": core.namespace.get("_DCACHE"),
        "decode_comb": core.namespace.get("decode_comb"),
    }
    exec(compile(source, f"<rtl-fleet:{module.name}>", "exec"), namespace)
    compiled = CompiledFleet(run_fleet=namespace["run_fleet"],
                             registers=tuple(module.registers),
                             source=source, namespace=namespace)
    _fleet_cache[module] = (key, compiled)
    return compiled
