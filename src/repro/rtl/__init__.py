"""RTL substrate: IR, instruction hardware blocks, library, ModularEX, RISSP."""

from .blocks import BlockBuildError, build_block, match_key
from .compiled import (
    CompiledCore,
    CompiledModule,
    compile_core,
    compile_module,
    core_fusable,
)
from .core_sim import CosimMismatch, RisspSim, cosimulate
from .ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    IrError,
    Module,
    Mux,
    Not,
    Op,
    Port,
    RegFileSpec,
    Register,
    Sig,
    Slice,
    cat,
    const,
    expr_signals,
    inline,
    mux,
    substitute,
    topo_order,
)
from .library import IsaHardwareLibrary, LibraryEntry, LibraryError, default_library
from .modularex import build_modularex
from .rissp import build_rissp
from .sim import RtlSim, eval_expr
from .verilog import emit_module

__all__ = [
    "Binary", "BlockBuildError", "Cat", "CompiledCore", "CompiledModule",
    "Const", "CosimMismatch", "Expr", "Ext", "IrError", "IsaHardwareLibrary",
    "LibraryEntry", "LibraryError", "Module", "Mux", "Not", "Op", "Port",
    "RegFileSpec", "Register", "RisspSim", "RtlSim", "Sig", "Slice",
    "build_block", "build_modularex", "build_rissp", "cat", "compile_core",
    "compile_module", "const", "core_fusable", "cosimulate",
    "default_library", "emit_module", "eval_expr", "expr_signals", "inline",
    "match_key", "mux", "substitute", "topo_order",
]
