"""Instruction hardware blocks — the paper's core concept (Table 2).

Every RV32I/E instruction becomes a discrete, fully functional RTL module
with the standard port contract of its format family:

===========  =========================================================
port         meaning
===========  =========================================================
pc           current program counter (input, 32)
insn         fetched instruction word (input, 32)
rs1_data     register-file read data (input, 32) — if the block reads rs1
rs2_data     register-file read data (input, 32) — if the block reads rs2
dmem_rdata   aligned 32-bit word at ``dmem_addr & ~3`` (input) — loads only
next_pc      next program counter (output, 32)
rs1_addr     register file read address (output, 4) — decoded inside
rs2_addr     register file read address (output, 4)
rdest_addr   destination register (output, 4) — writing blocks only
rdest_data   writeback value (output, 32)
rdest_we     writeback strobe (output, 1, constant 1 inside the block)
dmem_addr    data memory address (output, 32) — loads and stores
dmem_re      read enable (output, 1) — loads
dmem_wdata   lane-replicated store data (output, 32) — stores
dmem_wstrb   byte strobes (output, 4) — stores
halt         simulation-stop strobe — ecall/ebreak
===========  =========================================================

The *full decode of the instruction happens inside each block* (the
ModularEX switch is only a partial decoder), exactly as §3.3 describes.
Semantics here are written **structurally** — shifters, adders, lane muxes —
independently of :mod:`repro.isa.spec`, so that verifying block against
spec is a meaningful check and not a tautology.
"""

from __future__ import annotations

from ..isa.instructions import BY_MNEMONIC, Format, InstrDef, lookup
from .ir import Const, Expr, Module, Sig, cat, const, mux

REG_ADDR_BITS = 4  # RV32E: 16 registers


class BlockBuildError(ValueError):
    """Raised when a block cannot be constructed for a mnemonic."""


def _imm_i(insn: Expr) -> Expr:
    return insn.slice(31, 20).sext(32)


def _imm_s(insn: Expr) -> Expr:
    return cat(insn.slice(31, 25), insn.slice(11, 7)).sext(32)


def _imm_b(insn: Expr) -> Expr:
    return cat(insn.bit(31), insn.bit(7), insn.slice(30, 25),
               insn.slice(11, 8), const(0, 1)).sext(32)


def _imm_u(insn: Expr) -> Expr:
    return cat(insn.slice(31, 12), const(0, 12))


def _imm_j(insn: Expr) -> Expr:
    return cat(insn.bit(31), insn.slice(19, 12), insn.bit(20),
               insn.slice(30, 21), const(0, 1)).sext(32)


def _alu_expr(mnemonic: str, a: Expr, b: Expr) -> Expr:
    """Structural datapath for one ALU operation (b may be reg or imm)."""
    shamt = b.slice(4, 0)
    table = {
        "add": lambda: a + b,
        "sub": lambda: a - b,
        "and": lambda: a & b,
        "or": lambda: a | b,
        "xor": lambda: a ^ b,
        "sll": lambda: a.shl(shamt),
        "srl": lambda: a.lshr(shamt),
        "sra": lambda: a.ashr(shamt),
        "slt": lambda: a.slt(b).zext(32),
        "sltu": lambda: a.ult(b).zext(32),
    }
    return table[mnemonic]()


_BRANCH_COND = {
    "beq": lambda a, b: a.eq(b),
    "bne": lambda a, b: a.ne(b),
    "blt": lambda a, b: a.slt(b),
    "bge": lambda a, b: a.sge(b),
    "bltu": lambda a, b: a.ult(b),
    "bgeu": lambda a, b: a.uge(b),
}

_IMM_ALU = {"addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
            "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
            "srai": "sra"}

_LOAD_EXT = {"lb": (8, True), "lbu": (8, False), "lh": (16, True),
             "lhu": (16, False), "lw": (32, True)}


def match_key(mnemonic: str) -> tuple[int, int | None, int | None, int | None]:
    """Partial-decode key ``(opcode, funct3, funct7, imm12)`` for the switch.

    ``None`` fields are don't-cares.  ``imm12`` distinguishes the SYSTEM
    instructions sharing opcode/funct3 (ecall=0, ebreak=1, mret=0x302).
    """
    d = lookup(mnemonic)
    funct7 = d.funct7 if (d.fmt is Format.R or d.is_shift_imm) else None
    return (d.opcode, d.funct3, funct7, d.imm12)


def build_block(mnemonic: str) -> Module:
    """Construct the instruction hardware block for ``mnemonic``.

    The returned module is self-contained and carries metadata used by the
    library and the ModularEX switch: ``meta['mnemonic']``,
    ``meta['block_type']``, ``meta['reads_rs1']`` etc.
    """
    d = BY_MNEMONIC.get(mnemonic.lower())
    if d is None:
        raise BlockBuildError(f"no such instruction {mnemonic!r}")
    m = Module(f"instr_{d.mnemonic}")
    pc = m.input("pc", 32)
    insn = m.input("insn", 32)
    next_pc = m.output("next_pc", 32)
    seq_pc = pc + const(4, 32)

    reads_rs1 = d.fmt in (Format.R, Format.S, Format.B) or (
        d.fmt is Format.I)
    reads_rs2 = d.fmt in (Format.R, Format.S, Format.B)
    writes_rd = d.fmt in (Format.R, Format.I, Format.U, Format.J)

    rs1_data = rs2_data = None
    if reads_rs1:
        m.assign(m.output("rs1_addr", REG_ADDR_BITS),
                 insn.slice(15 + REG_ADDR_BITS - 1, 15))
        rs1_data = m.input("rs1_data", 32)
    if reads_rs2:
        m.assign(m.output("rs2_addr", REG_ADDR_BITS),
                 insn.slice(20 + REG_ADDR_BITS - 1, 20))
        rs2_data = m.input("rs2_data", 32)
    if writes_rd:
        m.assign(m.output("rdest_addr", REG_ADDR_BITS),
                 insn.slice(7 + REG_ADDR_BITS - 1, 7))
        rdest_data = m.output("rdest_data", 32)
        m.assign(m.output("rdest_we", 1), const(1, 1))

    name = d.mnemonic
    if name in _ALU_EXPR_NAMES:
        m.assign(rdest_data, _alu_expr(name, rs1_data, rs2_data))
        m.assign(next_pc, seq_pc)
    elif name in _IMM_ALU:
        m.assign(rdest_data,
                 _alu_expr(_IMM_ALU[name], rs1_data, _imm_i(insn)))
        m.assign(next_pc, seq_pc)
    elif name in _BRANCH_COND:
        taken = m.wire("taken", 1)
        m.assign(taken, _BRANCH_COND[name](rs1_data, rs2_data))
        m.assign(next_pc, mux(m.sig("taken"), pc + _imm_b(insn), seq_pc))
    elif name in _LOAD_EXT:
        addr = m.wire("eff_addr", 32)
        m.assign(addr, rs1_data + _imm_i(insn))
        m.assign(m.output("dmem_addr", 32), m.sig("eff_addr"))
        m.assign(m.output("dmem_re", 1), const(1, 1))
        rdata = m.input("dmem_rdata", 32)
        width, signed = _LOAD_EXT[name]
        if width == 32:
            loaded = rdata
        elif width == 16:
            half = mux(m.sig("eff_addr").bit(1),
                       rdata.slice(31, 16), rdata.slice(15, 0))
            loaded = half.sext(32) if signed else half.zext(32)
        else:
            lane = m.sig("eff_addr").slice(1, 0)
            byte_hi = mux(lane.bit(0), rdata.slice(31, 24),
                          rdata.slice(23, 16))
            byte_lo = mux(lane.bit(0), rdata.slice(15, 8), rdata.slice(7, 0))
            byte = mux(lane.bit(1), byte_hi, byte_lo)
            loaded = byte.sext(32) if signed else byte.zext(32)
        m.assign(rdest_data, loaded)
        m.assign(next_pc, seq_pc)
    elif d.fmt is Format.S:
        addr = m.wire("eff_addr", 32)
        m.assign(addr, rs1_data + _imm_s(insn))
        m.assign(m.output("dmem_addr", 32), m.sig("eff_addr"))
        lane = m.sig("eff_addr").slice(1, 0)
        if name == "sw":
            wdata: Expr = rs2_data
            wstrb: Expr = const(0b1111, 4)
        elif name == "sh":
            half = rs2_data.slice(15, 0)
            wdata = cat(half, half)
            wstrb = mux(lane.bit(1), const(0b1100, 4), const(0b0011, 4))
        else:  # sb
            byte = rs2_data.slice(7, 0)
            wdata = cat(byte, byte, byte, byte)
            # Shift amount stays at the lane's natural 2 bits: a wider
            # amount could encode shifts >= 4 that silently truncate the
            # strobe to zero (RTL003).
            one = const(1, 4)
            wstrb = one.shl(lane)
        m.assign(m.output("dmem_wdata", 32), wdata)
        m.assign(m.output("dmem_wstrb", 4), wstrb)
        m.assign(next_pc, seq_pc)
    elif name == "lui":
        m.assign(rdest_data, _imm_u(insn))
        m.assign(next_pc, seq_pc)
    elif name == "auipc":
        m.assign(rdest_data, pc + _imm_u(insn))
        m.assign(next_pc, seq_pc)
    elif name == "jal":
        m.assign(rdest_data, seq_pc)
        m.assign(next_pc, pc + _imm_j(insn))
    elif name == "jalr":
        m.assign(rdest_data, seq_pc)
        target = rs1_data + _imm_i(insn)
        m.assign(next_pc, target & const(0xFFFF_FFFE, 32))
    elif name == "fence":
        m.assign(next_pc, seq_pc)
    elif name in ("ecall", "ebreak"):
        m.assign(m.output("halt", 1), const(1, 1))
        m.assign(next_pc, seq_pc)
    elif name == "mret":
        # Trap return (PR 3 slice): the stitched core feeds its mepc CSR
        # register in; the block redirects the pc to it.
        mepc = m.input("mepc", 32)
        m.assign(next_pc, mepc & const(0xFFFF_FFFC, 32))
    else:  # pragma: no cover - catalog and builders kept in lockstep
        raise BlockBuildError(f"no datapath builder for {name}")

    m.meta.update({
        "mnemonic": name,
        "block_type": d.block_type,
        "reads_rs1": reads_rs1,
        "reads_rs2": reads_rs2,
        "writes_rd": writes_rd,
        "is_load": name in _LOAD_EXT,
        "is_store": d.fmt is Format.S,
        "reads_mepc": name == "mret",
        "match": match_key(name),
    })
    m.check()
    return m


_ALU_EXPR_NAMES = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
                   "slt", "sltu")
