"""RISSP construction (Step 3, §3.3, Figure 3).

A RISSP is the single-cycle stitch of:
  * the **fetch unit** — the 32-bit PC register driving the instruction
    memory interface,
  * **ModularEX** — the pre-verified modular execution unit,
  * the **register file** — an architectural primitive (the paper
    synthesizes RISSPs *without* the RF, so it stays a primitive here and is
    excluded from gate lowering),
  * the **memory interfaces** — imem read port, dmem read/write port.

The produced module is fully self-contained: the evaluator in
:mod:`repro.rtl.sim` can execute programs on it, the emitter can print its
SystemVerilog, and :mod:`repro.synth` can lower it to gates.
"""

from __future__ import annotations

from .ir import Expr, IrError, Module, RegFileSpec, cat, const, inline, mux
from .library import IsaHardwareLibrary, default_library
from .modularex import build_modularex

REG_ADDR_BITS = 4


def _read_mux_tree(entries: list[Expr], addr: Expr) -> Expr:
    """Balanced binary mux tree selecting ``entries[addr]`` (addr LSB first).

    This is the register-file read port as synthesis sees it: 15 MUX2 cells
    per bit for a 16-entry RV32E file.
    """
    level = list(entries)
    bit = 0
    while len(level) > 1:
        sel = addr.bit(bit)
        level = [mux(sel, level[i + 1], level[i])
                 for i in range(0, len(level), 2)]
        bit += 1
    return level[0]


def build_rissp(mnemonics: list[str],
                library: IsaHardwareLibrary | None = None,
                name: str = "rissp",
                reset_pc: int = 0,
                require_verified: bool = True,
                with_traps: bool | None = None,
                lint: bool = True) -> Module:
    """Build a complete single-cycle RISSP for an instruction subset.

    Args:
        mnemonics: the domain-specific instruction subset (Step 1 output).
        library: pre-verified block library; defaults to the cached one.
        name: module name (e.g. ``rissp_armpit``).
        reset_pc: PC reset value (program entry point).
        require_verified: enforce the pre-verification contract.
        with_traps: instantiate the machine-mode trap unit (PR 3 slice:
            mtvec/mepc/mcause CSR registers, ecall/ebreak trap entry,
            mret return).  Defaults to auto: on iff ``mret`` is in the
            subset, so the paper's trap-free RISSPs synthesize exactly as
            before.
        lint: run the structural lint gate (``repro.analysis``) on the
            stitched core — a combinational loop, driver conflict or
            undriven signal fails the build with the finding list instead
            of surfacing later in cosim.  The derived facts are handed to
            ``core_fusable`` so the fuse check does not re-derive them.

    Returns the stitched :class:`Module` with ``meta['mnemonics']`` set.
    """
    library = library or default_library()
    subset = sorted(dict.fromkeys(m.lower() for m in mnemonics))
    trap_unit = bool(with_traps) or "mret" in subset
    core = Module(name)
    pc = core.register("pc", 32, reset_value=reset_pc)

    imem_rdata = core.input("imem_rdata", 32)
    core.assign(core.output("imem_addr", 32), pc)
    dmem_rdata = core.input("dmem_rdata", 32)

    rf_rs1_data = core.wire("rf_rs1_data", 32)
    rf_rs2_data = core.wire("rf_rs2_data", 32)

    mtvec = mepc = None
    if trap_unit:
        # CSR registers of the trap slice.  Only the trap unit itself
        # writes them in hardware; the Zicsr *instructions* are emulated
        # by the simulation harness, which pokes the register state
        # directly (see repro.rtl.core_sim).
        mtvec = core.register("mtvec", 32)
        mepc = core.register("mepc", 32)
        core.register("mcause", 32)

    ex = build_modularex(subset, library,
                         name=f"{name}_modularex",
                         require_verified=require_verified)
    bindings = {
        "pc": pc,
        "insn": imem_rdata,
        "rs1_data": rf_rs1_data,
        "rs2_data": rf_rs2_data,
        "dmem_rdata": dmem_rdata,
    }
    if any(port.name == "mepc" for port in ex.inputs()):
        bindings["mepc"] = mepc
    outs = inline(core, ex, "ex_", bindings)

    # Register file: the storage array is an architectural primitive kept
    # out of synthesis ("synthesized without the RF"), but the read-select
    # multiplexer trees and write decode are core logic and are synthesized.
    num_regs = 1 << REG_ADDR_BITS
    storage = []
    for index in range(1, num_regs):
        storage.append(core.wire(f"regs_q{index}", 32))
    core.regfile = RegFileSpec(
        name="regs", num_regs=num_regs, width=32,
        read_ports=[("rf_rs1_addr", "rf_rs1_data"),
                    ("rf_rs2_addr", "rf_rs2_data")],
        write_port=("rf_we", "rf_waddr", "rf_wdata"),
        storage_signals=[sig.name for sig in storage])
    rs1_addr = core.wire("rf_rs1_addr", REG_ADDR_BITS)
    rs2_addr = core.wire("rf_rs2_addr", REG_ADDR_BITS)
    core.assign(rs1_addr, outs["rs1_addr"])
    core.assign(rs2_addr, outs["rs2_addr"])
    entries = [const(0, 32)] + storage     # x0 reads as constant zero
    core.assign(rf_rs1_data, _read_mux_tree(entries, rs1_addr))
    core.assign(rf_rs2_data, _read_mux_tree(entries, rs2_addr))
    core.assign(core.wire("rf_we", 1), outs["rdest_we"])
    core.assign(core.wire("rf_waddr", REG_ADDR_BITS), outs["rdest_addr"])
    core.assign(core.wire("rf_wdata", 32), outs["rdest_data"])

    # Memory interface and status outputs.
    core.assign(core.output("dmem_addr", 32), outs["dmem_addr"])
    core.assign(core.output("dmem_re", 1), outs["dmem_re"])
    core.assign(core.output("dmem_wdata", 32), outs["dmem_wdata"])
    core.assign(core.output("dmem_wstrb", 4), outs["dmem_wstrb"])
    core.assign(core.output("illegal", 1), outs["illegal"])

    if trap_unit:
        # Machine-mode trap entry (PR 3): once firmware installs a
        # handler (non-zero mtvec), ecall/ebreak redirect to it instead of
        # halting — mepc latches the trapping pc, mcause records
        # breakpoint (3) vs environment call (11) via the imm12 LSB of the
        # fetched word — and mret (decoded inside ModularEX) redirects to
        # mepc.  With mtvec at its reset value of 0 the core halts exactly
        # like a trap-free RISSP.
        trap_take = core.wire("trap_take", 1)
        core.assign(trap_take, outs["halt"] & mtvec.ne(const(0, 32)))
        halt = core.wire("halt_gated", 1)
        core.assign(halt, outs["halt"] & core.sig("trap_take").invert())
        next_pc = core.wire("pc_next", 32)
        handler = cat(mtvec.slice(31, 2), const(0, 2))
        core.assign(next_pc,
                    mux(core.sig("trap_take"), handler, outs["next_pc"]))
        core.assign(core.output("trap", 1), core.sig("trap_take"))
        core.connect_register("mepc", pc, enable=core.sig("trap_take"))
        core.connect_register(
            "mcause",
            mux(imem_rdata.bit(20), const(3, 32), const(11, 32)),
            enable=core.sig("trap_take"))
        halt_sig: Expr = core.sig("halt_gated")
        next_sig: Expr = core.sig("pc_next")
    else:
        halt_sig = outs["halt"]
        next_sig = outs["next_pc"]

    core.assign(core.output("halt", 1), halt_sig)
    core.assign(core.output("next_pc", 32), next_sig)

    # Fetch unit: PC advances unless the core has halted.
    core.connect_register("pc", next_sig, enable=halt_sig.invert())
    core.meta["mnemonics"] = ex.meta["mnemonics"]
    core.meta["modularex"] = ex
    core.meta["trap_unit"] = trap_unit
    facts = None
    if lint:
        # Structural lint gate: derive the cycle/driver/undriven facts
        # once and fail the build with the full finding list (instead of
        # check()'s first-error-only IrError).  The same facts feed the
        # fusable check below, so nothing is derived twice.
        from ..analysis.rtl_lint import structural_facts
        facts = structural_facts(core)
        errors = facts.error_findings()
        if errors:
            details = "; ".join(
                f"{f.rule} {f.location}: {f.detail}" for f in errors)
            raise IrError(f"{name}: structural lint failed — {details}")
    else:
        core.check()
    # Every stitched RISSP must satisfy the fused-loop harness interface
    # (storage-exposed RF, imem/dmem ports, the CORE_INTERFACE outputs) —
    # assert the contract at build time so a stitching change that would
    # silently demote RisspSim to the per-cycle path fails loudly instead.
    from .compiled import core_fusable
    if not core_fusable(core, facts=facts):
        raise IrError(f"{name}: stitched core lost the fused harness "
                      f"interface")
    core.meta["fusable"] = True
    return core
