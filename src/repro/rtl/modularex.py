"""ModularEX — the Modular Execution Unit (Step 2, §3.2).

ModularEX inlines the selected instruction hardware blocks and generates the
*switch*: a partial decoder that derives a one-hot select per block from the
opcode/funct fields, and routes the selected block's outputs forward.  The
switch is emitted in SystemVerilog as a case statement; structurally it is
the classic parallel-case AND-OR one-hot multiplexer, which is also what a
synthesis tool infers — so our gate-level lowering sees the realistic mux
network whose size scales with the number of blocks.
"""

from __future__ import annotations

from functools import reduce

from .ir import Const, Expr, Module, Sig, const, inline
from .library import IsaHardwareLibrary

#: The standard full-width output contract of ModularEX.
_OUTPUTS = (
    ("next_pc", 32),
    ("rs1_addr", 4),
    ("rs2_addr", 4),
    ("rdest_addr", 4),
    ("rdest_data", 32),
    ("rdest_we", 1),
    ("dmem_addr", 32),
    ("dmem_re", 1),
    ("dmem_wdata", 32),
    ("dmem_wstrb", 4),
    ("halt", 1),
)


def _balanced_or(terms: list[Expr]) -> Expr:
    """OR-reduce as a balanced tree (realistic post-synthesis depth)."""
    if not terms:
        raise ValueError("empty OR reduction")
    while len(terms) > 1:
        nxt = []
        for index in range(0, len(terms) - 1, 2):
            nxt.append(terms[index] | terms[index + 1])
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def _onehot_mux(entries: list[tuple[Expr, Expr]], default: Expr) -> Expr:
    """One-hot AND-OR mux: ``OR_i (replicate(sel_i) & val_i)`` + default arm.

    ``entries`` are (1-bit select, value); selects must be mutually
    exclusive (they are: decode keys are distinct).  The default arm fires
    when no select is active.
    """
    width = default.width
    sels = [sel for sel, _ in entries]
    terms = [val & sel.sext(width) for sel, val in entries]
    if entries:
        # A constant-zero default contributes a `0 & none` term that is
        # identically zero — synthesis would sweep it, and RTL005 flags it
        # as unreachable logic, so it is never emitted (the no-select case
        # already ORs to zero).  Non-trivial defaults (seq_pc) keep the
        # explicit default arm.
        if not (isinstance(default, Const) and default.value == 0):
            none = _balanced_or(sels).invert()
            terms.append(default & none.sext(width))
        return _balanced_or(terms)
    return default


def build_modularex(mnemonics: list[str], library: IsaHardwareLibrary,
                    name: str = "modularex",
                    require_verified: bool = True) -> Module:
    """Construct ModularEX for an instruction subset.

    Blocks are pulled from the pre-verified library (raising if any block is
    unverified), inlined under per-mnemonic prefixes, and joined by the
    generated switch.  The module's ``meta['mnemonics']`` records the subset.
    """
    subset = sorted(dict.fromkeys(m.lower() for m in mnemonics))
    m = Module(name)
    pc = m.input("pc", 32)
    insn = m.input("insn", 32)
    rs1_data = m.input("rs1_data", 32)
    rs2_data = m.input("rs2_data", 32)
    dmem_rdata = m.input("dmem_rdata", 32)
    blocks = {mnemonic: library.get_block(mnemonic,
                                          require_verified=require_verified)
              for mnemonic in subset}
    # Trap-return slice (PR 3): a block that redirects to mepc pulls the
    # core's mepc CSR register through a dedicated input.
    mepc = None
    if any(b.meta.get("reads_mepc") for b in blocks.values()):
        mepc = m.input("mepc", 32)
    for out_name, width in _OUTPUTS:
        m.output(out_name, width)
    illegal = m.output("illegal", 1)

    opcode = insn.slice(6, 0)
    funct3 = insn.slice(14, 12)
    funct7 = insn.slice(31, 25)
    imm12 = insn.slice(31, 20)

    selects: dict[str, Sig] = {}
    block_outputs: dict[str, dict[str, Sig]] = {}
    for mnemonic in subset:
        block = blocks[mnemonic]
        op, f3, f7, i12 = block.meta["match"]
        match: Expr = opcode.eq(const(op, 7))
        if f3 is not None:
            match = match & funct3.eq(const(f3, 3))
        if f7 is not None:
            match = match & funct7.eq(const(f7, 7))
        if i12 is not None:
            match = match & imm12.eq(const(i12, 12))
        sel = m.wire(f"sel_{mnemonic}", 1)
        m.assign(sel, match)
        selects[mnemonic] = sel
        bindings: dict[str, Expr] = {"pc": pc, "insn": insn}
        if block.meta["reads_rs1"]:
            bindings["rs1_data"] = rs1_data
        if block.meta["reads_rs2"]:
            bindings["rs2_data"] = rs2_data
        if block.meta["is_load"]:
            bindings["dmem_rdata"] = dmem_rdata
        if block.meta.get("reads_mepc"):
            bindings["mepc"] = mepc
        block_outputs[mnemonic] = inline(m, block, f"b_{mnemonic}_", bindings)

    seq_pc = m.wire("seq_pc", 32)
    m.assign(seq_pc, pc + const(4, 32))
    defaults: dict[str, Expr] = {
        out_name: (m.sig("seq_pc") if out_name == "next_pc"
                   else const(0, width))
        for out_name, width in _OUTPUTS
    }
    for out_name, width in _OUTPUTS:
        entries = []
        for mnemonic in subset:
            outs = block_outputs[mnemonic]
            if out_name in outs:
                entries.append((selects[mnemonic], outs[out_name]))
        m.assign(out_name, _onehot_mux(entries, defaults[out_name]))

    any_sel = _balanced_or([selects[x] for x in subset]) if subset \
        else const(0, 1)
    m.assign(illegal, any_sel.invert())
    m.meta["mnemonics"] = subset
    m.check()
    return m
