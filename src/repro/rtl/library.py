"""The pre-verified full ISA hardware library (Step 0 of the methodology).

The library is the paper's standard-cell-library analog: every instruction
hardware block is built once, verified (functionally, by mutation-checked
testbenches, and formally), and only then released for RISSP construction.
``get_block`` enforces the pre-verification contract — an unverified block
cannot be stitched into a processor.

Building and verifying the library is the one-time NRE cost; the library
object can be serialized conceptually (here it is deterministic to rebuild,
so a process-wide default instance is cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..isa.instructions import BY_MNEMONIC, INSTRUCTIONS
from .blocks import build_block
from .ir import Module
from .verilog import emit_module


class LibraryError(ValueError):
    """Unknown mnemonic, or an attempt to use an unverified block."""


@dataclass
class LibraryEntry:
    """One instruction hardware block plus its verification record."""

    mnemonic: str
    module: Module
    verified: bool = False
    verification_report: dict[str, object] = field(default_factory=dict)


#: A verifier maps a block module to (passed, report).  The default verifier
#: lives in :mod:`repro.verify.testbench`; the indirection keeps rtl free of
#: a dependency on verify.
Verifier = Callable[[Module], tuple[bool, dict[str, object]]]


class IsaHardwareLibrary:
    """Pre-verified full ISA hardware library for RV32I/E."""

    def __init__(self, mnemonics: Iterable[str] | None = None):
        # The default library is the base ISA plus the one system-extension
        # instruction with a hardware block: mret (PR 3 trap-return slice).
        # The Zicsr register instructions and wfi have no blocks — the RTL
        # harness emulates them testbench-side (see repro.rtl.core_sim).
        names = list(mnemonics) if mnemonics is not None else [
            d.mnemonic for d in INSTRUCTIONS] + ["mret"]
        self._entries: dict[str, LibraryEntry] = {}
        for name in names:
            if name not in BY_MNEMONIC:
                raise LibraryError(f"unknown instruction {name!r}")
            self._entries[name] = LibraryEntry(name, build_block(name))

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def mnemonics(self) -> list[str]:
        return sorted(self._entries)

    def entry(self, mnemonic: str) -> LibraryEntry:
        try:
            return self._entries[mnemonic]
        except KeyError:
            raise LibraryError(f"instruction {mnemonic!r} not in the "
                               f"library") from None

    def verify(self, verifier: Verifier,
               mnemonics: Iterable[str] | None = None) -> dict[str, bool]:
        """Run ``verifier`` over blocks and record the results."""
        results = {}
        for name in (mnemonics or self.mnemonics):
            entry = self.entry(name)
            passed, report = verifier(entry.module)
            entry.verified = passed
            entry.verification_report = report
            results[name] = passed
        return results

    def mark_verified(self, mnemonics: Iterable[str] | None = None) -> None:
        """Trusted fast-path used when verification ran elsewhere (tests
        exercise the honest path via :meth:`verify`)."""
        for name in (mnemonics or self.mnemonics):
            self.entry(name).verified = True

    def get_block(self, mnemonic: str, require_verified: bool = True) -> Module:
        """Release a block for RISSP construction (Step 2 'pull')."""
        entry = self.entry(mnemonic)
        if require_verified and not entry.verified:
            raise LibraryError(
                f"block {mnemonic!r} has not been pre-verified; run "
                f"library.verify(...) first")
        return entry.module

    def emit_systemverilog(self, mnemonic: str) -> str:
        """The block's SystemVerilog source (``instrx.sv`` in the paper)."""
        return emit_module(self.entry(mnemonic).module)


_DEFAULT: IsaHardwareLibrary | None = None


def default_library(verified: bool = True) -> IsaHardwareLibrary:
    """Process-wide cached library.

    With ``verified=True`` the blocks are marked pre-verified — the honest
    verification pipeline is exercised by :mod:`repro.verify` and the test
    suite; rebuilding+reverifying for every generator call would only redo
    identical deterministic work.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = IsaHardwareLibrary()
        _DEFAULT.mark_verified()
    elif verified:
        _DEFAULT.mark_verified()
    return _DEFAULT
