"""Word-level RTL intermediate representation.

Instruction hardware blocks, ModularEX and the full RISSP are all built as
:class:`Module` objects over this IR.  The same IR drives three consumers:

  * :mod:`repro.rtl.sim` — cycle-accurate evaluation (RTL simulation),
  * :mod:`repro.rtl.verilog` — SystemVerilog emission (the paper's RTL
    deliverable),
  * :mod:`repro.synth.lower` — bit-blasting into a gate netlist for PPA.

Expressions are immutable, hashable dataclasses; equality is structural,
which the synthesis structural-hashing pass exploits directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Op(Enum):
    """Word-level operators."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    SLT = "slt"
    UGE = "uge"
    SGE = "sge"


#: Operators whose result is a single bit.
COMPARE_OPS = {Op.EQ, Op.NE, Op.ULT, Op.SLT, Op.UGE, Op.SGE}
#: Operators where the rhs is a shift amount (width may differ from lhs).
SHIFT_OPS = {Op.SHL, Op.LSHR, Op.ASHR}


class IrError(ValueError):
    """Raised on width mismatches or malformed module structure."""


class Expr:
    """Base class for expression nodes.  ``width`` is always defined."""

    width: int

    # Convenience builders so block construction reads like RTL.
    def __add__(self, other: "Expr") -> "Expr":
        return Binary(Op.ADD, self, _coerce(other, self.width))

    def __sub__(self, other: "Expr") -> "Expr":
        return Binary(Op.SUB, self, _coerce(other, self.width))

    def __and__(self, other: "Expr") -> "Expr":
        return Binary(Op.AND, self, _coerce(other, self.width))

    def __or__(self, other: "Expr") -> "Expr":
        return Binary(Op.OR, self, _coerce(other, self.width))

    def __xor__(self, other: "Expr") -> "Expr":
        return Binary(Op.XOR, self, _coerce(other, self.width))

    def eq(self, other) -> "Expr":
        return Binary(Op.EQ, self, _coerce(other, self.width))

    def ne(self, other) -> "Expr":
        return Binary(Op.NE, self, _coerce(other, self.width))

    def ult(self, other) -> "Expr":
        return Binary(Op.ULT, self, _coerce(other, self.width))

    def slt(self, other) -> "Expr":
        return Binary(Op.SLT, self, _coerce(other, self.width))

    def uge(self, other) -> "Expr":
        return Binary(Op.UGE, self, _coerce(other, self.width))

    def sge(self, other) -> "Expr":
        return Binary(Op.SGE, self, _coerce(other, self.width))

    def shl(self, amount: "Expr") -> "Expr":
        return Binary(Op.SHL, self, amount)

    def lshr(self, amount: "Expr") -> "Expr":
        return Binary(Op.LSHR, self, amount)

    def ashr(self, amount: "Expr") -> "Expr":
        return Binary(Op.ASHR, self, amount)

    def invert(self) -> "Expr":
        return Not(self)

    def slice(self, hi: int, lo: int) -> "Expr":
        return Slice(self, hi, lo)

    def bit(self, index: int) -> "Expr":
        return Slice(self, index, index)

    def zext(self, width: int) -> "Expr":
        return Ext(self, width, signed=False)

    def sext(self, width: int) -> "Expr":
        return Ext(self, width, signed=True)


def _coerce(value, width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value, width)
    raise IrError(f"cannot use {value!r} as an expression")


@dataclass(frozen=True, eq=True)
class Const(Expr):
    """A constant of explicit ``width`` bits."""

    value: int
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise IrError("constant width must be positive")
        object.__setattr__(self, "value",
                           self.value & ((1 << self.width) - 1))


@dataclass(frozen=True, eq=True)
class Sig(Expr):
    """Reference to a named signal (port, wire or register output)."""

    name: str
    width: int


@dataclass(frozen=True, eq=True)
class Not(Expr):
    """Bitwise complement."""

    a: Expr

    @property
    def width(self) -> int:  # type: ignore[override]
        return self.a.width


@dataclass(frozen=True, eq=True)
class Binary(Expr):
    """Binary word operator."""

    op: Op
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op in SHIFT_OPS:
            return
        if self.a.width != self.b.width:
            raise IrError(f"{self.op.value}: width mismatch "
                          f"{self.a.width} vs {self.b.width}")

    @property
    def width(self) -> int:  # type: ignore[override]
        if self.op in COMPARE_OPS:
            return 1
        return self.a.width


@dataclass(frozen=True, eq=True)
class Mux(Expr):
    """2-way multiplexer: ``sel ? a : b`` with 1-bit ``sel``."""

    sel: Expr
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.sel.width != 1:
            raise IrError("mux select must be 1 bit")
        if self.a.width != self.b.width:
            raise IrError(f"mux arm widths differ: {self.a.width} vs "
                          f"{self.b.width}")

    @property
    def width(self) -> int:  # type: ignore[override]
        return self.a.width


@dataclass(frozen=True, eq=True)
class Cat(Expr):
    """Concatenation, most-significant part first (Verilog ``{a, b, c}``)."""

    parts: tuple[Expr, ...]

    def __post_init__(self):
        if not self.parts:
            raise IrError("empty concatenation")

    @property
    def width(self) -> int:  # type: ignore[override]
        return sum(p.width for p in self.parts)


@dataclass(frozen=True, eq=True)
class Slice(Expr):
    """Bit-field extraction ``a[hi:lo]`` (inclusive)."""

    a: Expr
    hi: int
    lo: int

    def __post_init__(self):
        if not 0 <= self.lo <= self.hi < self.a.width:
            raise IrError(f"slice [{self.hi}:{self.lo}] out of range for "
                          f"width {self.a.width}")

    @property
    def width(self) -> int:  # type: ignore[override]
        return self.hi - self.lo + 1


@dataclass(frozen=True, eq=True)
class Ext(Expr):
    """Zero/sign extension to ``out_width`` bits."""

    a: Expr
    out_width: int
    signed: bool

    def __post_init__(self):
        if self.out_width < self.a.width:
            raise IrError("extension must not narrow")

    @property
    def width(self) -> int:  # type: ignore[override]
        return self.out_width


def cat(*parts: Expr) -> Expr:
    """Concatenate, MSB-first."""
    return Cat(tuple(parts))


def const(value: int, width: int) -> Const:
    return Const(value, width)


def mux(sel: Expr, a: Expr, b: Expr) -> Expr:
    return Mux(sel, a, b)


# --------------------------------------------------------------------------
# Module structure


@dataclass(frozen=True)
class Port:
    name: str
    width: int
    direction: str  # "in" | "out"


@dataclass
class Register:
    """A clocked register: ``q <= en ? next : q`` with synchronous reset."""

    name: str
    width: int
    next: Expr | None = None
    enable: Expr | None = None      # None = always enabled
    reset_value: int = 0


@dataclass
class RegFileSpec:
    """Architectural register-file *storage* primitive.

    The paper synthesizes RISSPs "without the RF": the 512 storage
    flip-flops are excluded (they are a separate array; the full-ISA core's
    FF share is only ~6% — the PC), but the core netlist still contains the
    read-select multiplexers and write decode.  We model that split by
    exposing each register's output on a ``storage_signals`` wire: the RTL
    evaluator drives those wires from the array, the synthesis lowering
    turns them into primary inputs, and the read muxes built over them are
    synthesized as ordinary core logic.
    """

    name: str
    num_regs: int
    width: int
    read_ports: list[tuple[str, str]] = field(default_factory=list)
    # write port: (we_signal, addr_signal, data_signal)
    write_port: tuple[str, str, str] | None = None
    #: wire names carrying each register's current value (index 1..N-1;
    #: x0 is a constant and has no storage signal).
    storage_signals: list[str] = field(default_factory=list)


class Module:
    """A hardware module: ports, wires, combinational assigns, registers.

    Assignments form a DAG over signal names; :meth:`check` verifies that
    every wire/output is driven exactly once and that no combinational loops
    exist (via :func:`topo_order`).
    """

    def __init__(self, name: str):
        self.name = name
        self.ports: dict[str, Port] = {}
        self.wires: dict[str, int] = {}
        self.assigns: dict[str, Expr] = {}
        self.registers: dict[str, Register] = {}
        self.regfile: RegFileSpec | None = None
        self.meta: dict[str, object] = {}

    # -------------------------------------------------------- construction

    def input(self, name: str, width: int) -> Sig:
        self._fresh(name)
        self.ports[name] = Port(name, width, "in")
        return Sig(name, width)

    def output(self, name: str, width: int) -> Sig:
        self._fresh(name)
        self.ports[name] = Port(name, width, "out")
        return Sig(name, width)

    def wire(self, name: str, width: int) -> Sig:
        self._fresh(name)
        self.wires[name] = width
        return Sig(name, width)

    def register(self, name: str, width: int, reset_value: int = 0) -> Sig:
        self._fresh(name)
        self.registers[name] = Register(name, width, reset_value=reset_value)
        return Sig(name, width)

    def assign(self, target: Sig | str, expr: Expr) -> None:
        name = target.name if isinstance(target, Sig) else target
        width = self.signal_width(name)
        if expr.width != width:
            raise IrError(f"assign {name}: width {expr.width} != declared "
                          f"{width}")
        if name in self.assigns:
            raise IrError(f"signal {name} driven twice")
        if name in self.registers:
            raise IrError(f"use connect_register for register {name}")
        if name in self.ports and self.ports[name].direction == "in":
            raise IrError(f"cannot drive input port {name}")
        self.assigns[name] = expr

    def connect_register(self, name: str, next_expr: Expr,
                         enable: Expr | None = None) -> None:
        reg = self.registers[name]
        if next_expr.width != reg.width:
            raise IrError(f"register {name}: next width {next_expr.width} "
                          f"!= {reg.width}")
        reg.next = next_expr
        reg.enable = enable

    def _fresh(self, name: str) -> None:
        if name in self.ports or name in self.wires or name in self.registers:
            raise IrError(f"signal {name} already declared in {self.name}")

    # ------------------------------------------------------------- queries

    def signal_width(self, name: str) -> int:
        if name in self.ports:
            return self.ports[name].width
        if name in self.wires:
            return self.wires[name]
        if name in self.registers:
            return self.registers[name].width
        raise IrError(f"unknown signal {name!r} in module {self.name}")

    def sig(self, name: str) -> Sig:
        return Sig(name, self.signal_width(name))

    def inputs(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction == "in"]

    def outputs(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction == "out"]

    def check(self) -> None:
        """Validate single-driver rule and combinational acyclicity."""
        regfile_driven = set()
        if self.regfile is not None:
            regfile_driven = {data for _, data in self.regfile.read_ports
                              if data not in self.assigns}
            regfile_driven.update(self.regfile.storage_signals)
        for port in self.outputs():
            if port.name not in self.assigns:
                raise IrError(f"output {port.name} of {self.name} undriven")
        for wire in self.wires:
            if wire not in self.assigns and wire not in regfile_driven:
                raise IrError(f"wire {wire} of {self.name} undriven")
        topo_order(self)  # raises on combinational loops


def expr_signals(expr: Expr) -> set[str]:
    """Names of all signals referenced by ``expr``."""
    out: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Sig):
            out.add(node.name)
        elif isinstance(node, Not):
            stack.append(node.a)
        elif isinstance(node, Binary):
            stack.append(node.a)
            stack.append(node.b)
        elif isinstance(node, Mux):
            stack.extend((node.sel, node.a, node.b))
        elif isinstance(node, Cat):
            stack.extend(node.parts)
        elif isinstance(node, (Slice, Ext)):
            stack.append(node.a)
    return out


def map_children(expr: Expr, fn) -> Expr:
    """Rebuild one node with each child expression mapped through ``fn``.

    Leaves (:class:`Const`/:class:`Sig`) are returned unchanged.  The
    single place that knows every node's shape — all expression rewriters
    (:func:`substitute`, the compiled backend's memoized substitution and
    its word-only subtree extraction) dispatch through it, so adding a
    node type cannot silently leave one walker behind.
    """
    if isinstance(expr, (Const, Sig)):
        return expr
    if isinstance(expr, Not):
        return Not(fn(expr.a))
    if isinstance(expr, Binary):
        return Binary(expr.op, fn(expr.a), fn(expr.b))
    if isinstance(expr, Mux):
        return Mux(fn(expr.sel), fn(expr.a), fn(expr.b))
    if isinstance(expr, Cat):
        return Cat(tuple(fn(part) for part in expr.parts))
    if isinstance(expr, Slice):
        return Slice(fn(expr.a), expr.hi, expr.lo)
    if isinstance(expr, Ext):
        return Ext(fn(expr.a), expr.out_width, expr.signed)
    raise IrError(f"cannot rewrite {type(expr).__name__}")


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Rewrite ``expr``, replacing each :class:`Sig` via ``mapping``.

    Signals absent from ``mapping`` are kept as-is.  Used when inlining an
    instruction hardware block into ModularEX under a name prefix.
    """
    if isinstance(expr, Sig):
        return mapping.get(expr.name, expr)
    return map_children(expr, lambda child: substitute(child, mapping))


def inline(parent: Module, child: Module, prefix: str,
           bindings: dict[str, Expr]) -> dict[str, Sig]:
    """Flatten ``child`` into ``parent`` under ``prefix``.

    ``bindings`` maps each child *input port* to a parent expression.  Child
    wires, outputs and registers become prefixed parent signals.  Returns a
    map from child output-port names to the corresponding parent signals.

    This implements the paper's "stitching": ModularEX inlines instruction
    hardware blocks, and the RISSP inlines ModularEX next to the fixed units.
    """
    mapping: dict[str, Expr] = {}
    for port in child.inputs():
        if port.name not in bindings:
            raise IrError(f"inline {child.name}: input {port.name} unbound")
        bound = bindings[port.name]
        if bound.width != port.width:
            raise IrError(f"inline {child.name}: {port.name} width "
                          f"{bound.width} != {port.width}")
        mapping[port.name] = bound
    for name, width in child.wires.items():
        mapping[name] = parent.wire(f"{prefix}{name}", width)
    outputs: dict[str, Sig] = {}
    for port in child.outputs():
        sig = parent.wire(f"{prefix}{port.name}", port.width)
        mapping[port.name] = sig
        outputs[port.name] = sig
    for reg in child.registers.values():
        mapping[reg.name] = parent.register(f"{prefix}{reg.name}", reg.width,
                                            reg.reset_value)
    for target, expr in child.assigns.items():
        parent.assign(mapping[target].name, substitute(expr, mapping))
    for reg in child.registers.values():
        if reg.next is not None:
            enable = (substitute(reg.enable, mapping)
                      if reg.enable is not None else None)
            parent.connect_register(f"{prefix}{reg.name}",
                                    substitute(reg.next, mapping), enable)
    return outputs


def topo_order(module: Module) -> list[str]:
    """Topological order of combinationally assigned signals.

    Raises :class:`IrError` on a combinational loop.  Registers and input
    ports are sources and do not appear in the result.
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 0=unvisited, 1=visiting, 2=done

    def visit(name: str) -> None:
        if name not in module.assigns:
            return  # input, register output, or regfile read data
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            raise IrError(f"combinational loop through {name}")
        state[name] = 1
        for dep in sorted(expr_signals(module.assigns[name])):
            visit(dep)
        state[name] = 2
        order.append(name)

    for name in sorted(module.assigns):
        visit(name)
    return order
