"""SystemVerilog emission for RTL IR modules.

The paper's instruction hardware blocks are SystemVerilog files
(``instrx.sv``); this emitter produces the equivalent sources for every
block, for ModularEX and for the stitched RISSP, so the generated processor
is inspectable in the same form the paper ships.
"""

from __future__ import annotations

from .ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    Module,
    Mux,
    Not,
    Op,
    Sig,
    Slice,
)

_OP_TOKEN = {
    Op.ADD: "+", Op.SUB: "-", Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHL: "<<", Op.LSHR: ">>", Op.EQ: "==", Op.NE: "!=", Op.ULT: "<",
    Op.UGE: ">=",
}


def _emit_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return f"{expr.width}'h{expr.value:x}"
    if isinstance(expr, Sig):
        return expr.name
    if isinstance(expr, Not):
        return f"~({_emit_expr(expr.a)})"
    if isinstance(expr, Binary):
        a = _emit_expr(expr.a)
        b = _emit_expr(expr.b)
        if expr.op is Op.ASHR:
            return f"($signed({a}) >>> {b})"
        if expr.op is Op.SLT:
            return f"($signed({a}) < $signed({b}))"
        if expr.op is Op.SGE:
            return f"($signed({a}) >= $signed({b}))"
        return f"({a} {_OP_TOKEN[expr.op]} {b})"
    if isinstance(expr, Mux):
        return (f"({_emit_expr(expr.sel)} ? {_emit_expr(expr.a)} : "
                f"{_emit_expr(expr.b)})")
    if isinstance(expr, Cat):
        inner = ", ".join(_emit_expr(p) for p in expr.parts)
        return "{" + inner + "}"
    if isinstance(expr, Slice):
        base = _emit_expr(expr.a)
        if expr.hi == expr.lo:
            return f"{base}[{expr.lo}]"
        return f"{base}[{expr.hi}:{expr.lo}]"
    if isinstance(expr, Ext):
        pad = expr.out_width - expr.a.width
        base = _emit_expr(expr.a)
        if pad == 0:
            return base
        if expr.signed:
            top = f"{base}[{expr.a.width - 1}]"
            return "{{" + str(pad) + "{" + top + "}}, " + base + "}"
        return "{" + f"{pad}'b0, {base}" + "}"
    raise TypeError(f"cannot emit {type(expr).__name__}")


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def emit_module(module: Module) -> str:
    """Render ``module`` as synthesizable SystemVerilog text."""
    lines: list[str] = []
    has_regs = bool(module.registers) or module.regfile is not None
    port_decls = []
    if has_regs:
        port_decls.append("    input  logic clk")
        port_decls.append("    input  logic rst")
    for port in module.ports.values():
        direction = "input " if port.direction == "in" else "output"
        port_decls.append(f"    {direction} logic {_range(port.width)}"
                          f"{port.name}")
    lines.append(f"module {module.name} (")
    lines.append(",\n".join(port_decls))
    lines.append(");")
    for name, width in module.wires.items():
        lines.append(f"  logic {_range(width)}{name};")
    for reg in module.registers.values():
        lines.append(f"  logic {_range(reg.width)}{reg.name};")
    if module.regfile is not None:
        spec = module.regfile
        lines.append(f"  logic {_range(spec.width)}{spec.name} "
                     f"[0:{spec.num_regs - 1}];")
    lines.append("")
    for name, expr in module.assigns.items():
        lines.append(f"  assign {name} = {_emit_expr(expr)};")
    if module.registers:
        lines.append("")
        lines.append("  always_ff @(posedge clk) begin")
        lines.append("    if (rst) begin")
        for reg in module.registers.values():
            lines.append(f"      {reg.name} <= {reg.width}'h"
                         f"{reg.reset_value:x};")
        lines.append("    end else begin")
        for reg in module.registers.values():
            if reg.next is None:
                continue
            target = f"{reg.name} <= {_emit_expr(reg.next)};"
            if reg.enable is not None:
                lines.append(f"      if ({_emit_expr(reg.enable)}) {target}")
            else:
                lines.append(f"      {target}")
        lines.append("    end")
        lines.append("  end")
    if module.regfile is not None and module.regfile.write_port is not None:
        spec = module.regfile
        we, addr, data = spec.write_port
        lines.append("")
        lines.append("  always_ff @(posedge clk) begin")
        lines.append(f"    if ({we} && ({addr} != 0)) "
                     f"{spec.name}[{addr}] <= {data};")
        lines.append("  end")
        for addr_sig, data_sig in spec.read_ports:
            lines.append(f"  assign {data_sig} = ({addr_sig} == 0) ? "
                         f"{spec.width}'h0 : {spec.name}[{addr_sig}];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
