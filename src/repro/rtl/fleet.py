"""Batched fleet simulation: step thousands of cores per fused pass.

The paper's deployment story is a *fleet* of tiny cores — many independent
core+firmware instances, each doing a short burst of work.  The fused loop
from PR 4 executes one instance per ``run_cycles`` call, so a fleet
campaign pays the per-instance fixed costs N times: building a
:class:`~repro.rtl.core_sim.RisspSim` (module check, environment setup)
and, per scheduling quantum, entering and leaving the fused loop (register
reload/flush plus a full combinational re-settle).  :class:`FleetSim`
amortizes both: instance state lives in flat per-lane arrays (RAM
bytearray, register-file list, module-register bank, retirement counter)
cloned from a prebuilt template, and one generated ``run_fleet`` pass
(:func:`repro.rtl.compiled.compile_fleet`) advances every live lane by a
quantum of retirements with zero per-lane Python dispatch beyond the lane
loop itself.  All lanes share one per-word decode cache — the same
``_DCACHE`` dict the single-instance fused loop uses.

**Determinism contract**: each lane's trajectory is a pure function of its
own program, pokes and retirement budget.  Batch size, lane order, the
stepping quantum and how lanes are sharded across processes never change
any lane's results — the batched loop keeps every lane's state in its own
arrays and the divergence rule below hands a lane over *before* an
instruction the batch cannot complete bit-identically applies any state.

**Divergence fallback**: the batched loop only executes the pure
hardware-datapath fast path against flat RAM.  A lane that reaches
anything the harness owns — a trapping ecall/ebreak (mtvec installed),
emulated Zicsr/``wfi``, ``mret``, an RV32E register-bound word, an illegal
instruction, a misaligned or out-of-RAM access — leaves the batch with
that instruction *unexecuted* and is adopted by a real
:class:`~repro.rtl.core_sim.RisspSim` built around the lane's exact state.
From then on the lane advances on the single-instance fused path (which
owns all those events), so its results — including error surfaces like
``SimulationError`` refusals — are bit-identical to running it alone.

``FleetSim`` drives flat-memory instances only (the fleet story); attach
a SoC via :class:`~repro.rtl.core_sim.RisspSim` per instance instead.
"""

from __future__ import annotations

import os

from ..isa.bits import to_u32
from ..isa.encoding import Instruction, encode
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..sim.golden import _HALT_SENTINEL, RunResult, abi_initial_regs
from ..obs import telemetry as _obs
from ..sim.memory import Memory
from ..sim.tracing import RvfiTrace
from .compiled import WSTRB_WIDTH, compile_fleet, core_fusable
from .core_sim import (
    RisspSim,
    _classify_word,
    _halt_reason,
    _trace_load_fields,
    _WORD_CLASS,
)
from .ir import Module

#: Default retirements per batched pass: long enough to amortize the
#: per-pass lane setup, short enough that freshly-halted lanes stop
#: consuming passes quickly.
DEFAULT_QUANTUM = 256

_BATCHED, _FALLBACK, _HALTED = 0, 1, 2
_STATE_NAMES = {_BATCHED: "batched", _FALLBACK: "fallback",
                _HALTED: "halted"}


class FleetSim:
    """Run N independent core+firmware instances, batched per fused pass.

    Construct with one shared ``program`` and an ``instances`` count (the
    common fleet shape — clone templates, then differentiate lanes with
    :meth:`poke_regfile` / :meth:`poke_memory_word`), or with a
    ``programs`` sequence giving each lane its own firmware image.
    """

    def __init__(self, core: Module, program: Program | None = None,
                 instances: int | None = None, *,
                 programs=None, mem_size: int = DEFAULT_MEM_SIZE,
                 backend: str | None = None,
                 trace_lanes=(), trace_capacity: int | None = None):
        if programs is None:
            if program is None:
                raise ValueError("FleetSim needs a program (or programs)")
            programs = [program] * (1 if instances is None else instances)
        else:
            programs = list(programs)
            if instances is not None and instances != len(programs):
                raise ValueError(
                    f"instances={instances} != len(programs)="
                    f"{len(programs)}")
        if not programs:
            raise ValueError("FleetSim needs at least one instance")
        self.core = core
        self.mem_size = mem_size
        self.instances = len(programs)
        self._programs = programs
        resolved = backend or os.environ.get("REPRO_RTL_BACKEND", "fused")
        self._backend = resolved
        self._fleet = compile_fleet(core) \
            if resolved == "fused" and core_fusable(core) else None
        self._register_names = tuple(core.registers)
        self._reg_index = {name: index for index, name
                           in enumerate(self._register_names)}
        spec = core.regfile
        self._rf_mask = (1 << spec.width) - 1 if spec is not None else 0

        # Template-cloned per-lane state: one Memory build per unique
        # program object, then a bytes copy per lane — the whole point of
        # the fleet path is never paying RisspSim construction per lane.
        templates: dict[int, tuple[bytes, int]] = {}
        ecall_word = encode(Instruction("ecall"))
        self._mems: list[bytearray] = []
        self._regfiles: list[list[int]] = []
        self._regs: list[list[int]] = []
        self._counts: list[int] = []
        self._sinks: list = []
        abi_regs = abi_initial_regs(mem_size)
        resets = [reg.reset_value & ((1 << reg.width) - 1)
                  for reg in core.registers.values()]
        pc_slot = self._reg_index["pc"]
        for prog in programs:
            cached = templates.get(id(prog))
            if cached is None:
                memory = Memory.from_program(prog, mem_size)
                # ABI setup mirrors RisspSim: ecall stub at the halt
                # sentinel, sp at top of RAM, ra at the stub.
                memory.store(_HALT_SENTINEL, ecall_word, 4)
                cached = (bytes(memory.raw), to_u32(prog.entry))
                templates[id(prog)] = cached
            template, entry = cached
            self._mems.append(bytearray(template))
            regfile = [0] * (spec.num_regs if spec is not None else 0)
            for index, value in abi_regs.items():
                regfile[index] = value
            self._regfiles.append(regfile)
            bank = list(resets)
            bank[pc_slot] = entry
            self._regs.append(bank)
            self._counts.append(0)
            self._sinks.append(None)
        self._status = [_BATCHED] * self.instances
        self._reasons = [""] * self.instances
        self._sims: dict[int, RisspSim] = {}
        self._traces: dict[int, RvfiTrace] = {}
        for lane in trace_lanes:
            self.trace(lane, capacity=trace_capacity)
        self._ctx = {
            "mems": self._mems, "regfiles": self._regfiles,
            "regs": self._regs, "counts": self._counts,
            "sinks": self._sinks, "ram_size": mem_size,
            "halt_reason": _halt_reason, "trace_load": _trace_load_fields,
            "wclass": _WORD_CLASS, "classify": _classify_word,
        }

    # ------------------------------------------------------------ tracing

    def trace(self, lane: int, capacity: int | None = None) -> RvfiTrace:
        """Attach (or fetch) the RVFI trace of one lane; rows follow the
        same columnar convention as every other harness."""
        trace = self._traces.get(lane)
        if trace is None:
            trace = self._traces[lane] = RvfiTrace(capacity=capacity)
            self._sinks[lane] = trace.append_row
        return trace

    # ----------------------------------------------------------- stepping

    def step(self, cycles: int) -> None:
        """Advance every live lane by up to ``cycles`` retirements.

        Batched lanes go through one ``run_fleet`` pass; lanes it reports
        diverged are adopted by a per-instance :class:`RisspSim` and
        finish this step's remaining budget on the fused path, so a
        ``step`` means the same thing for every lane regardless of which
        path executes it.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        lanes = range(self.instances)
        fallback = [l for l in lanes if self._status[l] == _FALLBACK]
        batch = [l for l in lanes if self._status[l] == _BATCHED]
        if batch and self._fleet is None:
            # Non-fused backend (oracle run): every lane is per-instance.
            for lane in batch:
                self._materialize(lane)
            fallback += batch
            batch = []
        if batch:
            targets = {lane: self._counts[lane] + cycles for lane in batch}
            halted, diverged = self._fleet.run_fleet(
                self._ctx, batch, cycles)
            active = _obs._ACTIVE
            if active is not None:
                active.counters["fleet.passes"] += 1
                active.counters["fleet.lane_halt"] += len(halted)
            for lane, reason in halted:
                self._status[lane] = _HALTED
                self._reasons[lane] = reason or "ecall"
            for lane in diverged:
                sim = self._materialize(lane)
                if active is not None:
                    cause = self._divergence_cause(lane, sim)
                    active.counters[f"fleet.diverge.{cause}"] += 1
                self._advance_single(lane, targets[lane])
        for lane in fallback:
            self._advance_single(lane, self._counts[lane] + cycles)

    def run(self, max_instructions: int = 2_000_000,
            quantum: int = DEFAULT_QUANTUM) -> list[RunResult]:
        """Round-robin all lanes to halt (or the retirement budget).

        The quantum only schedules; per the determinism contract it never
        changes any lane's results.
        """
        while True:
            live = [l for l in range(self.instances)
                    if self._status[l] != _HALTED
                    and self._counts[l] < max_instructions]
            if not live:
                break
            budget = min(max_instructions - self._counts[l] for l in live)
            self.step(min(quantum, budget))
        return [self.result(lane) for lane in range(self.instances)]

    def _materialize(self, lane: int) -> RisspSim:
        """Adopt one lane's exact state into a per-instance RisspSim.

        The sim's memory and register file become views of the lane's
        arrays (contents copied in place, the array objects swapped to the
        sim's own), so the peek/poke accessors below stay authoritative on
        both paths; module registers move to ``rtl.env``.  Harness-side
        CSR shadow state (mstatus/mie/...) is still at reset because any
        CSR-touching word diverges *before* executing.
        """
        sim = RisspSim(self.core, self._programs[lane],
                       mem_size=self.mem_size, backend=self._backend)
        sim.memory.raw[:] = self._mems[lane]
        self._mems[lane] = sim.memory.raw
        if sim.rtl.regfile_data is not None:
            sim.rtl.regfile_data[:] = self._regfiles[lane]
            self._regfiles[lane] = sim.rtl.regfile_data
        for name, value in zip(self._register_names, self._regs[lane]):
            sim.rtl.env[name] = value
        self._sims[lane] = sim
        self._status[lane] = _FALLBACK
        return sim

    def _divergence_cause(self, lane: int, sim: RisspSim) -> str:
        """Best-effort classification of why the batched loop handed this
        lane over (telemetry only — never on the no-session path).

        Replays the divergence decision on the freshly-adopted sim's
        *unexecuted* next instruction: the lane state is exactly as the
        batch left it, and only combinational evaluation happens here
        (``set_inputs``/``eval_comb``, the same probe the state tests
        drive), so the fallback path the lane continues on is untouched.
        """
        rtl = sim.rtl
        pc = rtl.env["pc"]
        if pc & 0x3 or pc + 4 > self.mem_size:
            return "fetch"
        word = int.from_bytes(self._mems[lane][pc:pc + 4], "little")
        cls = _WORD_CLASS.get(word)
        if cls is None:
            cls = _classify_word(word)
        if cls == 1:
            return "emulated"
        if cls == 2:
            return "mret"
        if cls == 3:
            return "rv32e_bound"
        rtl.set_inputs(imem_rdata=word, dmem_rdata=0)
        rtl.eval_comb()
        if rtl.get("illegal"):
            return "illegal"
        if sim._trap_hw and rtl.get("trap"):
            return "trap"
        if rtl.get("dmem_re"):
            if (rtl.get("dmem_addr") & ~0x3) + 4 > self.mem_size:
                return "load_oob"
        wstrb = rtl.get("dmem_wstrb")
        if wstrb:
            width = WSTRB_WIDTH.get(wstrb)
            if width is None:
                return "other"
            offset = (wstrb & -wstrb).bit_length() - 1
            if (rtl.get("dmem_addr") & ~0x3) + offset + width \
                    > self.mem_size:
                return "store_oob"
        return "other"

    def _advance_single(self, lane: int, target: int) -> None:
        sim = self._sims[lane]
        count = self._counts[lane]
        if count >= target:
            return
        trace = self._traces.get(lane)
        if sim._fused is not None:
            halted, reason, count = sim._fused_run(count, target, trace)
        else:
            halted, reason = False, ""
            while count < target:
                halted, reason = sim._cycle(count, trace)
                count += 1
                if halted:
                    break
        self._counts[lane] = count
        if halted:
            self._status[lane] = _HALTED
            self._reasons[lane] = reason or "ecall"

    # ------------------------------------------------------------ results

    def lane_state(self, lane: int) -> str:
        """``"batched"`` | ``"fallback"`` | ``"halted"`` — which path the
        lane is on (diverged lanes report ``"fallback"`` forever)."""
        return _STATE_NAMES[self._status[lane]]

    def halted(self, lane: int) -> bool:
        return self._status[lane] == _HALTED

    def result(self, lane: int) -> RunResult:
        """RunResult snapshot of one lane (same fields as RisspSim.run)."""
        reason = self._reasons[lane] if self._status[lane] == _HALTED \
            else "limit"
        trace = self._traces.get(lane)
        return RunResult(exit_code=self.peek_regfile(lane, 10),
                         instructions=self._counts[lane],
                         cycles=self._counts[lane], halted_by=reason,
                         trace=trace if trace is not None else [])

    def instructions(self, lane: int) -> int:
        return self._counts[lane]

    # --------------------------------------------------------- peek/poke

    def peek_regfile(self, lane: int, index: int) -> int:
        return self._regfiles[lane][index] if index else 0

    def poke_regfile(self, lane: int, index: int, value: int) -> None:
        if index:
            self._regfiles[lane][index] = value & self._rf_mask

    def peek_register(self, lane: int, name: str) -> int:
        sim = self._sims.get(lane)
        if sim is not None:
            return sim.rtl.env[name]
        return self._regs[lane][self._reg_index[name]]

    def poke_register(self, lane: int, name: str, value: int) -> None:
        mask = (1 << self.core.registers[name].width) - 1
        sim = self._sims.get(lane)
        if sim is not None:
            sim.rtl.env[name] = value & mask
        else:
            self._regs[lane][self._reg_index[name]] = value & mask

    def peek_memory_word(self, lane: int, addr: int) -> int:
        return int.from_bytes(self._mems[lane][addr:addr + 4], "little")

    def poke_memory_word(self, lane: int, addr: int, value: int) -> None:
        self._mems[lane][addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")
