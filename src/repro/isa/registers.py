"""RISC-V integer register file naming for RV32I (x0-x31) and RV32E (x0-x15).

The RISSP methodology targets RV32E (16 registers); the full-register RV32I
namespace is retained because the assembler accepts both and the subset
analyser must reject RV32I-only register usage when targeting RV32E.
"""

from __future__ import annotations

RV32I_NUM_REGS = 32
RV32E_NUM_REGS = 16

#: ABI register names indexed by register number (RV32I namespace).
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_NAME_TO_NUM = {name: idx for idx, name in enumerate(ABI_NAMES)}
_NAME_TO_NUM.update({f"x{i}": i for i in range(RV32I_NUM_REGS)})
_NAME_TO_NUM["fp"] = 8  # frame-pointer alias for s0


class RegisterError(ValueError):
    """Raised for unknown register names or registers outside the target ISA."""


def parse_register(name: str, num_regs: int = RV32E_NUM_REGS) -> int:
    """Resolve a register name (ABI or ``xN``) to its number.

    Raises :class:`RegisterError` if the name is unknown or the register is
    not architecturally present in a machine with ``num_regs`` registers
    (e.g. ``a6`` on RV32E).
    """
    key = name.strip().lower()
    if key not in _NAME_TO_NUM:
        raise RegisterError(f"unknown register {name!r}")
    num = _NAME_TO_NUM[key]
    if num >= num_regs:
        raise RegisterError(
            f"register {name!r} (x{num}) not available with {num_regs} registers"
        )
    return num


def register_name(num: int) -> str:
    """Return the canonical ABI name for register number ``num``."""
    if not 0 <= num < RV32I_NUM_REGS:
        raise RegisterError(f"register number {num} out of range")
    return ABI_NAMES[num]
