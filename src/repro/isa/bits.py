"""Bit-manipulation helpers shared across the ISA model, simulators and RTL.

All architectural values are carried as Python ints constrained to 32 bits.
Helpers here are the single source of truth for masking, sign extension and
field extraction so that the spec, the ISS and the RTL evaluator cannot
drift apart on corner cases.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF
SIGN32 = 0x8000_0000


def to_u32(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 32-bit value."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed two's-complement int."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & SIGN32 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a signed Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def zero_extend(value: int, bits: int) -> int:
    """Zero-extend (mask) the low ``bits`` bits of ``value``."""
    return value & ((1 << bits) - 1)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the inclusive bit-field ``value[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def fits_signed(value: int, nbits: int) -> bool:
    """True if ``value`` is representable as an ``nbits``-bit signed immediate."""
    lo = -(1 << (nbits - 1))
    hi = (1 << (nbits - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, nbits: int) -> bool:
    """True if ``value`` is representable as an ``nbits``-bit unsigned immediate."""
    return 0 <= value < (1 << nbits)
