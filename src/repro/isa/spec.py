"""Executable specification of RV32I/E instruction semantics.

Each instruction's architectural effect is a *pure function* of the program
counter, the decoded fields, the source register values, and (for loads) a
memory-read callback.  The golden ISS, the per-instruction hardware-block
testbenches, the formal-lite property checker and the RVFI trace checker all
consume this single spec — it plays the role the RISC-V ISA manual plays for
the paper's SVA assertions.

Two execution interfaces are offered over the same semantic tables:

* :func:`step` — the reflective form: decode fields in, :class:`Effects`
  out.  Used wherever per-retirement introspection is needed (RVFI records,
  trace checking, block testbenches).
* :func:`compile_step` — the compiled form: specialize one *static*
  instruction into a closure ``(regs, memory, pc) -> next_pc`` with the
  immediate pre-extracted and all format/mnemonic dispatch hoisted out of
  the inner loop.  The simulators' hot paths execute these (see
  :mod:`repro.sim.decoded`); both forms share ``_ALU_OPS``/``_BRANCH_TAKEN``
  and the width tables below, so they cannot drift apart on semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .bits import to_s32, to_u32
from .csrs import MEPC as _MEPC
from .encoding import Instruction

#: Memory read callback: (address, width_bytes, signed) -> value.
LoadFn = Callable[[int, int, bool], int]

#: CSR read callback: (csr_address) -> current value.  The spec never
#: applies CSR writes itself — they come back as an :class:`Effects`
#: ``csr_write`` for the simulator to commit, mirroring ``mem_write``.
CsrFn = Callable[[int], int]


@dataclass(frozen=True)
class MemWrite:
    """A store effect: ``width`` bytes of ``data`` at ``addr``."""

    addr: int
    data: int
    width: int


@dataclass(frozen=True)
class Effects:
    """Architectural effects of retiring one instruction.

    ``rd`` is None when no register is written (branches, stores and writes
    to x0 — the spec canonicalises ``rd == x0`` to "no write" so consumers
    never have to special-case the zero register).

    ``csr_write`` is ``(csr_address, new_value)`` for Zicsr instructions
    that perform a write; ``is_mret``/``is_wfi`` flag the system
    instructions whose remaining effects (mstatus stacking, timer
    fast-forward) live in the simulator's trap unit, not the pure spec.
    """

    next_pc: int
    rd: int | None = None
    rd_data: int | None = None
    mem_write: MemWrite | None = None
    halt: bool = False      # ecall/ebreak halt (or trap, when mtvec is set)
    is_ecall: bool = False
    csr_write: tuple[int, int] | None = None
    is_mret: bool = False
    is_wfi: bool = False


class SpecError(ValueError):
    """Raised for misaligned control transfers or unknown mnemonics."""


_ALU_OPS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & 31),
    "slt": lambda a, b: 1 if to_s32(a) < to_s32(b) else 0,
    "sltu": lambda a, b: 1 if to_u32(a) < to_u32(b) else 0,
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: to_u32(a) >> (b & 31),
    "sra": lambda a, b: to_s32(a) >> (b & 31),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
}

#: op-imm mnemonics mapped to their register-register ALU function.
_IMM_TO_ALU = {
    "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
    "ori": "or", "andi": "and", "slli": "sll", "srli": "srl", "srai": "sra",
}

_BRANCH_TAKEN: dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: to_u32(a) == to_u32(b),
    "bne": lambda a, b: to_u32(a) != to_u32(b),
    "blt": lambda a, b: to_s32(a) < to_s32(b),
    "bge": lambda a, b: to_s32(a) >= to_s32(b),
    "bltu": lambda a, b: to_u32(a) < to_u32(b),
    "bgeu": lambda a, b: to_u32(a) >= to_u32(b),
}

_LOAD_WIDTH = {"lb": (1, True), "lh": (2, True), "lw": (4, True),
               "lbu": (1, False), "lhu": (2, False)}
_STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4}

#: Zicsr write rules: mnemonic -> (new_value(old, src), writes(src_field)).
#: Per the spec, csrrs/csrrc with rs1=x0 (or uimm=0) read without writing.
_CSR_RULES: dict[str, tuple[Callable[[int, int], int],
                            Callable[[int], bool]]] = {
    "csrrw": (lambda old, src: src, lambda field: True),
    "csrrs": (lambda old, src: old | src, lambda field: field != 0),
    "csrrc": (lambda old, src: old & ~src, lambda field: field != 0),
}
_CSR_RULES["csrrwi"] = _CSR_RULES["csrrw"]
_CSR_RULES["csrrsi"] = _CSR_RULES["csrrs"]
_CSR_RULES["csrrci"] = _CSR_RULES["csrrc"]
_CSR_IMM_FORMS = ("csrrwi", "csrrsi", "csrrci")


def _wr(rd: int, value: int) -> tuple[int | None, int | None]:
    """Canonicalise a register write: x0 writes are dropped."""
    if rd == 0:
        return None, None
    return rd, to_u32(value)


def step(instr: Instruction, pc: int, rs1_val: int, rs2_val: int,
         load: LoadFn | None = None, csr: CsrFn | None = None) -> Effects:
    """Compute the architectural effects of ``instr`` executing at ``pc``.

    ``rs1_val``/``rs2_val`` are the current source register values (ignored
    by formats that do not read them).  ``load`` is required for loads
    only; ``csr`` is required for Zicsr instructions and ``mret`` only.
    """
    m = instr.mnemonic
    pc = to_u32(pc)
    seq_pc = to_u32(pc + 4)

    if m in _ALU_OPS:
        rd, data = _wr(instr.rd, _ALU_OPS[m](rs1_val, rs2_val))
        return Effects(seq_pc, rd, data)
    if m in _IMM_TO_ALU:
        rd, data = _wr(instr.rd, _ALU_OPS[_IMM_TO_ALU[m]](rs1_val, instr.imm))
        return Effects(seq_pc, rd, data)
    if m in _BRANCH_TAKEN:
        taken = _BRANCH_TAKEN[m](rs1_val, rs2_val)
        target = to_u32(pc + instr.imm) if taken else seq_pc
        if target & 0x3:
            raise SpecError(f"misaligned branch target {target:#x}")
        return Effects(target)
    if m in _LOAD_WIDTH:
        if load is None:
            raise SpecError("load semantics require a memory callback")
        width, signed = _LOAD_WIDTH[m]
        addr = to_u32(rs1_val + instr.imm)
        rd, data = _wr(instr.rd, load(addr, width, signed))
        return Effects(seq_pc, rd, data)
    if m in _STORE_WIDTH:
        width = _STORE_WIDTH[m]
        addr = to_u32(rs1_val + instr.imm)
        mask = (1 << (8 * width)) - 1
        return Effects(seq_pc,
                       mem_write=MemWrite(addr, to_u32(rs2_val) & mask, width))
    if m == "lui":
        rd, data = _wr(instr.rd, instr.imm)
        return Effects(seq_pc, rd, data)
    if m == "auipc":
        rd, data = _wr(instr.rd, pc + instr.imm)
        return Effects(seq_pc, rd, data)
    if m == "jal":
        target = to_u32(pc + instr.imm)
        if target & 0x3:
            raise SpecError(f"misaligned jal target {target:#x}")
        rd, data = _wr(instr.rd, seq_pc)
        return Effects(target, rd, data)
    if m == "jalr":
        target = to_u32(rs1_val + instr.imm) & ~1
        if target & 0x3:
            raise SpecError(f"misaligned jalr target {target:#x}")
        rd, data = _wr(instr.rd, seq_pc)
        return Effects(target, rd, data)
    if m == "fence":
        return Effects(seq_pc)
    if m == "ecall":
        return Effects(seq_pc, halt=True, is_ecall=True)
    if m == "ebreak":
        return Effects(seq_pc, halt=True)
    if m in _CSR_RULES:
        if csr is None:
            raise SpecError("csr semantics require a csr callback")
        new_value, writes = _CSR_RULES[m]
        addr = instr.imm & 0xFFF
        src = instr.rs1 if m in _CSR_IMM_FORMS else to_u32(rs1_val)
        src_field = instr.rs1
        old = to_u32(csr(addr))
        rd, data = _wr(instr.rd, old)
        write = ((addr, new_value(old, src) & 0xFFFFFFFF)
                 if writes(src_field) else None)
        return Effects(seq_pc, rd, data, csr_write=write)
    if m == "mret":
        if csr is None:
            raise SpecError("mret semantics require a csr callback")
        target = to_u32(csr(_MEPC)) & ~0x3
        return Effects(target, is_mret=True)
    if m == "wfi":
        return Effects(seq_pc, is_wfi=True)
    raise SpecError(f"no semantics for mnemonic {m!r}")


#: Sentinel ``next_pc`` values returned by compiled executors on a halting
#: instruction (real next-pc values are unsigned, so negatives are free).
HALT_ECALL = -1
HALT_EBREAK = -2
#: Sentinel for system instructions whose semantics need machine state the
#: executor cannot see (CSR file, trap unit, timer): csrr*, mret, wfi.
#: The simulator's run loop retires them through :func:`step` instead —
#: they are rare (trap setup and handler entry/exit), so the fast path
#: stays free of per-retirement CSR plumbing and the *interrupt check
#: happens per retirement in the loop*, never baked into a compiled
#: executor.
DEFER_SYSTEM = -3

_M32 = 0xFFFFFFFF

#: A compiled executor: ``(regs, memory, pc) -> next_pc`` where ``regs`` is
#: the register-file list (``regs[0]`` pinned to 0), ``memory`` provides
#: ``load(addr, width, signed)`` / ``store(addr, value, width)``, and the
#: return value is the unsigned next pc — or :data:`HALT_ECALL` /
#: :data:`HALT_EBREAK` when the instruction halts the machine.
Executor = Callable[[list, object, int], int]


def compile_step(instr: Instruction,
                 store_hook: Callable[[int], None] | None = None) -> Executor:
    """Specialize ``instr`` into a closure executing its semantics in place.

    The closure mutates ``regs`` and ``memory`` directly and returns the
    next pc, exactly mirroring :func:`step` + effect application but with
    zero per-retirement decode, dispatch or :class:`Effects` allocation.
    Writes to ``x0`` are dropped at compile time; loads to ``x0`` still
    perform the access so faults surface identically to :func:`step`.

    ``store_hook``, when given, is called with the effective address after
    every store the closure performs — the decoded-program cache uses it to
    invalidate entries covering self-modified text.
    """
    m = instr.mnemonic
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

    if m in _ALU_OPS:
        if rd == 0:
            return lambda regs, memory, pc: pc + 4
        op = _ALU_OPS[m]

        def ex_alu(regs, memory, pc):
            regs[rd] = op(regs[rs1], regs[rs2]) & _M32
            return pc + 4
        return ex_alu

    if m in _IMM_TO_ALU:
        if rd == 0:
            return lambda regs, memory, pc: pc + 4
        op = _ALU_OPS[_IMM_TO_ALU[m]]

        def ex_alu_imm(regs, memory, pc):
            regs[rd] = op(regs[rs1], imm) & _M32
            return pc + 4
        return ex_alu_imm

    if m in _BRANCH_TAKEN:
        cond = _BRANCH_TAKEN[m]

        def ex_branch(regs, memory, pc):
            if cond(regs[rs1], regs[rs2]):
                target = (pc + imm) & _M32
                if target & 0x3:
                    raise SpecError(f"misaligned branch target {target:#x}")
                return target
            return pc + 4
        return ex_branch

    if m in _LOAD_WIDTH:
        width, signed = _LOAD_WIDTH[m]
        if rd == 0:
            def ex_load_x0(regs, memory, pc):
                memory.load((regs[rs1] + imm) & _M32, width, signed)
                return pc + 4
            return ex_load_x0

        def ex_load(regs, memory, pc):
            regs[rd] = memory.load((regs[rs1] + imm) & _M32, width, signed)
            return pc + 4
        return ex_load

    if m in _STORE_WIDTH:
        width = _STORE_WIDTH[m]
        mask = (1 << (8 * width)) - 1
        if store_hook is None:
            def ex_store(regs, memory, pc):
                memory.store((regs[rs1] + imm) & _M32, regs[rs2] & mask,
                             width)
                return pc + 4
            return ex_store

        def ex_store_hooked(regs, memory, pc):
            addr = (regs[rs1] + imm) & _M32
            memory.store(addr, regs[rs2] & mask, width)
            store_hook(addr)
            return pc + 4
        return ex_store_hooked

    if m == "lui":
        if rd == 0:
            return lambda regs, memory, pc: pc + 4
        value = imm & _M32

        def ex_lui(regs, memory, pc):
            regs[rd] = value
            return pc + 4
        return ex_lui

    if m == "auipc":
        if rd == 0:
            return lambda regs, memory, pc: pc + 4

        def ex_auipc(regs, memory, pc):
            regs[rd] = (pc + imm) & _M32
            return pc + 4
        return ex_auipc

    if m == "jal":
        def ex_jal(regs, memory, pc):
            target = (pc + imm) & _M32
            if target & 0x3:
                raise SpecError(f"misaligned jal target {target:#x}")
            if rd:
                regs[rd] = (pc + 4) & _M32
            return target
        return ex_jal

    if m == "jalr":
        def ex_jalr(regs, memory, pc):
            target = (regs[rs1] + imm) & 0xFFFFFFFE
            if target & 0x3:
                raise SpecError(f"misaligned jalr target {target:#x}")
            if rd:
                regs[rd] = (pc + 4) & _M32
            return target
        return ex_jalr

    if m == "fence":
        return lambda regs, memory, pc: pc + 4
    if m == "ecall":
        return lambda regs, memory, pc: HALT_ECALL
    if m == "ebreak":
        return lambda regs, memory, pc: HALT_EBREAK
    if m in _CSR_RULES or m in ("mret", "wfi"):
        return lambda regs, memory, pc: DEFER_SYSTEM
    raise SpecError(f"no semantics for mnemonic {m!r}")
