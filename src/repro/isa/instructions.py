"""Catalog of the RV32I/E base instruction set.

Each instruction is described once here — mnemonic, format, opcode fields and
Table 2 block type — and every other subsystem (assembler, disassembler,
golden ISS, hardware-block library, subset analyser) derives from this
catalog.  This mirrors the paper's premise that *each instruction in the ISA
is a discrete, fully specified unit*.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Format(Enum):
    """RISC-V encoding formats (Table 2 of the paper groups blocks by these)."""

    R = "R"
    I = "I"        # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    SYS = "SYS"    # fence / ecall / ebreak / mret / wfi
    CSR = "CSR"    # Zicsr: csrrw/csrrs/csrrc and immediate forms


@dataclass(frozen=True)
class InstrDef:
    """Static definition of one instruction.

    Attributes:
        mnemonic: assembly mnemonic, lower case.
        fmt: encoding format.
        opcode: 7-bit major opcode.
        funct3: 3-bit minor opcode (None where the format has no funct3).
        funct7: 7-bit function field for R-type and shift-immediates.
        block_type: Table 2 hardware-block family ("r-type", "i-type", ...).
        is_shift_imm: True for slli/srli/srai (I-format with funct7).
        imm12: fixed 12-bit immediate distinguishing SYSTEM instructions
            that share opcode/funct3 (ecall=0, ebreak=1, wfi=0x105,
            mret=0x302).
        csr_uimm: True for the Zicsr immediate forms, whose rs1 field
            carries a 5-bit unsigned immediate instead of a register.
    """

    mnemonic: str
    fmt: Format
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    block_type: str = ""
    is_shift_imm: bool = False
    imm12: int | None = None
    csr_uimm: bool = False


OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011


def _r(mnemonic: str, funct3: int, funct7: int) -> InstrDef:
    return InstrDef(mnemonic, Format.R, OP_REG, funct3, funct7, "r-type")


def _i(mnemonic: str, opcode: int, funct3: int, block: str = "i-type",
       funct7: int | None = None, shift: bool = False) -> InstrDef:
    return InstrDef(mnemonic, Format.I, opcode, funct3, funct7, block,
                    is_shift_imm=shift)


def _b(mnemonic: str, funct3: int) -> InstrDef:
    return InstrDef(mnemonic, Format.B, OP_BRANCH, funct3, None, "b-type")


def _s(mnemonic: str, funct3: int) -> InstrDef:
    return InstrDef(mnemonic, Format.S, OP_STORE, funct3, None, "s-type")


#: Ordered catalog of the RV32I base ISA (RV32E shares the identical list;
#: the E variant only shrinks the register file to 16 entries).
INSTRUCTIONS: tuple[InstrDef, ...] = (
    InstrDef("lui", Format.U, OP_LUI, None, None, "u-type"),
    InstrDef("auipc", Format.U, OP_AUIPC, None, None, "u-type"),
    InstrDef("jal", Format.J, OP_JAL, None, None, "j-type"),
    _i("jalr", OP_JALR, 0b000),
    _b("beq", 0b000),
    _b("bne", 0b001),
    _b("blt", 0b100),
    _b("bge", 0b101),
    _b("bltu", 0b110),
    _b("bgeu", 0b111),
    _i("lb", OP_LOAD, 0b000),
    _i("lh", OP_LOAD, 0b001),
    _i("lw", OP_LOAD, 0b010),
    _i("lbu", OP_LOAD, 0b100),
    _i("lhu", OP_LOAD, 0b101),
    _s("sb", 0b000),
    _s("sh", 0b001),
    _s("sw", 0b010),
    _i("addi", OP_IMM, 0b000),
    _i("slti", OP_IMM, 0b010),
    _i("sltiu", OP_IMM, 0b011),
    _i("xori", OP_IMM, 0b100),
    _i("ori", OP_IMM, 0b110),
    _i("andi", OP_IMM, 0b111),
    _i("slli", OP_IMM, 0b001, funct7=0b0000000, shift=True),
    _i("srli", OP_IMM, 0b101, funct7=0b0000000, shift=True),
    _i("srai", OP_IMM, 0b101, funct7=0b0100000, shift=True),
    _r("add", 0b000, 0b0000000),
    _r("sub", 0b000, 0b0100000),
    _r("sll", 0b001, 0b0000000),
    _r("slt", 0b010, 0b0000000),
    _r("sltu", 0b011, 0b0000000),
    _r("xor", 0b100, 0b0000000),
    _r("srl", 0b101, 0b0000000),
    _r("sra", 0b101, 0b0100000),
    _r("or", 0b110, 0b0000000),
    _r("and", 0b111, 0b0000000),
    InstrDef("fence", Format.SYS, OP_MISC_MEM, 0b000, None, "sys"),
    InstrDef("ecall", Format.SYS, OP_SYSTEM, 0b000, 0b0000000, "sys",
             imm12=0),
    InstrDef("ebreak", Format.SYS, OP_SYSTEM, 0b000, 0b0000001, "sys",
             imm12=1),
)


def _csr(mnemonic: str, funct3: int, uimm: bool = False) -> InstrDef:
    return InstrDef(mnemonic, Format.CSR, OP_SYSTEM, funct3, None, "sys",
                    csr_uimm=uimm)


#: The machine-mode system extension grown in PR 3: Zicsr plus trap
#: return and wait-for-interrupt.  Kept separate from :data:`INSTRUCTIONS`
#: so the base-ISA surface (block library, Table 2 accounting, the
#: 37-instruction compute denominator) is untouched; ``BY_MNEMONIC`` and
#: the decoder cover the union.
ZICSR_INSTRUCTIONS: tuple[InstrDef, ...] = (
    _csr("csrrw", 0b001),
    _csr("csrrs", 0b010),
    _csr("csrrc", 0b011),
    _csr("csrrwi", 0b101, uimm=True),
    _csr("csrrsi", 0b110, uimm=True),
    _csr("csrrci", 0b111, uimm=True),
    InstrDef("mret", Format.SYS, OP_SYSTEM, 0b000, None, "sys",
             imm12=0b0011000_00010),
    InstrDef("wfi", Format.SYS, OP_SYSTEM, 0b000, None, "sys",
             imm12=0b0001000_00101),
)

#: The full decodable instruction table (base ISA + system extension).
ALL_INSTRUCTIONS: tuple[InstrDef, ...] = INSTRUCTIONS + ZICSR_INSTRUCTIONS

#: Zicsr mnemonics whose semantics need the CSR file (no standalone RTL
#: hardware block; the RTL harness emulates them testbench-side).
CSR_OPS: tuple[str, ...] = tuple(
    d.mnemonic for d in ZICSR_INSTRUCTIONS if d.fmt is Format.CSR)

#: Mnemonic -> definition lookup (base ISA + system extension).
BY_MNEMONIC: dict[str, InstrDef] = {d.mnemonic: d for d in ALL_INSTRUCTIONS}

#: The 37 computational/control/memory instructions used for the
#: "applications use 24-86% of the full ISA" calculation in the paper
#: (fence/ecall/ebreak are excluded from the percentage denominator).
COMPUTE_MNEMONICS: tuple[str, ...] = tuple(
    d.mnemonic for d in INSTRUCTIONS if d.block_type != "sys"
)

FULL_ISA_SIZE = len(COMPUTE_MNEMONICS)  # 37

LOADS = ("lb", "lh", "lw", "lbu", "lhu")
STORES = ("sb", "sh", "sw")
BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def lookup(mnemonic: str) -> InstrDef:
    """Return the catalog entry for ``mnemonic`` (case-insensitive)."""
    try:
        return BY_MNEMONIC[mnemonic.lower()]
    except KeyError:
        raise KeyError(f"unknown RV32I/E instruction {mnemonic!r}") from None
