"""Machine-mode CSR addresses for the trap/interrupt subsystem (PR 3).

Only the M-mode subset the extreme-edge firmware model needs is named here:
trap setup (``mstatus``/``mie``/``mtvec``), trap handling (``mscratch``/
``mepc``/``mcause``/``mtval``/``mip``).  The address map is the single
source of truth for the assembler (symbolic CSR operands), the
disassembler (canonical rendering) and the CSR file in
:mod:`repro.sim.csr`.
"""

from __future__ import annotations

MSTATUS = 0x300
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344

#: name -> address, as accepted by the assembler's CSR operand parser.
CSR_BY_NAME: dict[str, int] = {
    "mstatus": MSTATUS,
    "mie": MIE,
    "mtvec": MTVEC,
    "mscratch": MSCRATCH,
    "mepc": MEPC,
    "mcause": MCAUSE,
    "mtval": MTVAL,
    "mip": MIP,
}

#: address -> canonical name, used by the disassembler.
CSR_NAME_BY_ADDR: dict[int, str] = {v: k for k, v in CSR_BY_NAME.items()}

# mstatus bit positions (machine-mode subset).
MSTATUS_MIE = 1 << 3     # global machine interrupt enable
MSTATUS_MPIE = 1 << 7    # previous MIE, stacked on trap entry

# mie/mip bit positions.
MIP_MTIP = 1 << 7        # machine timer interrupt pending
MIE_MTIE = 1 << 7        # machine timer interrupt enable

# mcause values (exception codes; interrupts set bit 31).
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_ECALL_M = 11
CAUSE_INTERRUPT = 1 << 31
CAUSE_MACHINE_TIMER = CAUSE_INTERRUPT | 7
