"""Machine-mode CSR addresses for the trap/interrupt subsystem (PR 3/5).

Only the M-mode subset the extreme-edge firmware model needs is named here:
trap setup (``mstatus``/``mie``/``mtvec``), trap handling (``mscratch``/
``mepc``/``mcause``/``mtval``/``mip``).  The address map is the single
source of truth for the assembler (symbolic CSR operands), the
disassembler (canonical rendering) and the CSR file in
:mod:`repro.sim.csr`.

Interrupt fabric (PR 5): two level-sensitive sources share ``mip``/``mie``
— the machine timer on the standard MTIP/MTIE position (bit 7) and the
SensorPort data-ready line on platform-custom bit 16 (the privileged spec
reserves interrupt codes >= 16 for platform use).  Fixed arbitration
priority follows :data:`INTERRUPT_SOURCES` order: timer first, sensor
second — the standard sources outrank platform-custom ones, matching how
PicoRV32-class cores order their IRQ vector.
"""

from __future__ import annotations

MSTATUS = 0x300
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344

#: name -> address, as accepted by the assembler's CSR operand parser.
CSR_BY_NAME: dict[str, int] = {
    "mstatus": MSTATUS,
    "mie": MIE,
    "mtvec": MTVEC,
    "mscratch": MSCRATCH,
    "mepc": MEPC,
    "mcause": MCAUSE,
    "mtval": MTVAL,
    "mip": MIP,
}

#: address -> canonical name, used by the disassembler.
CSR_NAME_BY_ADDR: dict[int, str] = {v: k for k, v in CSR_BY_NAME.items()}

# mstatus bit positions (machine-mode subset).
MSTATUS_MIE = 1 << 3     # global machine interrupt enable
MSTATUS_MPIE = 1 << 7    # previous MIE, stacked on trap entry

# mie/mip bit positions.  SDIP/SDIE is the SensorPort data-ready line on
# platform-custom interrupt 16.
MIP_MTIP = 1 << 7        # machine timer interrupt pending
MIE_MTIE = 1 << 7        # machine timer interrupt enable
MIP_SDIP = 1 << 16       # sensor data-ready interrupt pending
MIE_SDIE = 1 << 16       # sensor data-ready interrupt enable

# mcause values (exception codes; interrupts set bit 31).
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_ECALL_M = 11
CAUSE_INTERRUPT = 1 << 31
CAUSE_MACHINE_TIMER = CAUSE_INTERRUPT | 7
CAUSE_SENSOR_DATA = CAUSE_INTERRUPT | 16

#: ``(mip/mie bit, mcause value)`` in decreasing arbitration priority.
#: Every consumer — the :class:`repro.sim.csr.CsrFile` arbiter, the RVFI
#: checker's shadow model and the run loops' packed-pending-word fast
#: paths — iterates this one table, so priority cannot drift between
#: backends.
INTERRUPT_SOURCES: tuple[tuple[int, int], ...] = (
    (MIP_MTIP, CAUSE_MACHINE_TIMER),
    (MIP_SDIP, CAUSE_SENSOR_DATA),
)

#: All interrupt bits any source can drive (the implemented mip bits).
INTERRUPT_MASK = 0
for _bit, _cause in INTERRUPT_SOURCES:
    INTERRUPT_MASK |= _bit
del _bit, _cause
