"""RISC-V RV32I/E ISA substrate: catalog, encoding, spec semantics, assembler.

Public surface:
    * :data:`INSTRUCTIONS`, :func:`lookup` — the instruction catalog
    * :class:`Instruction`, :func:`encode`, :func:`decode`
    * :func:`step` — the executable specification (one retire)
    * :class:`Assembler`, :func:`assemble`, :class:`Program`
    * :func:`disassemble`
"""

from .bits import sign_extend, to_s32, to_u32
from .encoding import DecodeError, EncodingError, Instruction, decode, encode
from .instructions import (
    ALL_INSTRUCTIONS,
    BRANCHES,
    BY_MNEMONIC,
    COMPUTE_MNEMONICS,
    CSR_OPS,
    FULL_ISA_SIZE,
    Format,
    INSTRUCTIONS,
    InstrDef,
    LOADS,
    STORES,
    ZICSR_INSTRUCTIONS,
    lookup,
)
from .assembler import Assembler, AssemblerError, assemble
from .disassembler import disassemble, disassemble_word, format_instruction
from .program import DEFAULT_DATA_BASE, DEFAULT_MEM_SIZE, DEFAULT_TEXT_BASE, Program
from .registers import (
    ABI_NAMES,
    RV32E_NUM_REGS,
    RV32I_NUM_REGS,
    RegisterError,
    parse_register,
    register_name,
)
from .spec import Effects, MemWrite, SpecError, step

__all__ = [
    "ABI_NAMES", "ALL_INSTRUCTIONS", "Assembler", "AssemblerError",
    "BRANCHES", "BY_MNEMONIC", "CSR_OPS", "ZICSR_INSTRUCTIONS",
    "COMPUTE_MNEMONICS", "DEFAULT_DATA_BASE", "DEFAULT_MEM_SIZE",
    "DEFAULT_TEXT_BASE", "DecodeError", "Effects", "EncodingError", "Format",
    "FULL_ISA_SIZE", "INSTRUCTIONS", "InstrDef", "Instruction", "LOADS",
    "MemWrite", "Program", "RV32E_NUM_REGS", "RV32I_NUM_REGS",
    "RegisterError", "STORES", "SpecError", "assemble", "decode",
    "disassemble", "disassemble_word", "encode", "format_instruction",
    "lookup", "parse_register", "register_name", "sign_extend", "step",
    "to_s32", "to_u32",
]
