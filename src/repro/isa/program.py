"""Linked program image produced by the assembler.

The paper compiles applications baremetal to a flat address space (no OS, no
output stream, >=64 KB ROM/RAM).  We mirror that: ``text`` at ``text_base``,
``data`` at ``data_base``, a symbol table, and an entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_TEXT_BASE = 0x0000_0000
DEFAULT_DATA_BASE = 0x0001_0000
DEFAULT_MEM_SIZE = 0x0002_0000  # 128 KB flat memory


@dataclass
class Program:
    """An assembled, fully linked flat binary image."""

    text_words: list[int] = field(default_factory=list)
    data_bytes: bytearray = field(default_factory=bytearray)
    symbols: dict[str, int] = field(default_factory=dict)
    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE
    entry: int = DEFAULT_TEXT_BASE

    @property
    def code_size_bytes(self) -> int:
        """Static codesize in bytes — the Figure 5 y-axis."""
        return 4 * len(self.text_words)

    @property
    def static_instruction_count(self) -> int:
        """Total number of static instructions (paper §4.1 averages)."""
        return len(self.text_words)

    def text_bytes(self) -> bytes:
        """The text section as little-endian bytes."""
        out = bytearray()
        for word in self.text_words:
            out += word.to_bytes(4, "little")
        return bytes(out)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None
