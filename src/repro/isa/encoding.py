"""Binary encoding and decoding of RV32I/E instructions.

The encoder/decoder pair is exercised heavily by property tests: for every
instruction and every legal operand combination, ``decode(encode(x)) == x``.
The subset analyser decodes compiled binaries with :func:`decode`, exactly as
the paper's Step 1 characterises an application from its compiled form.

:func:`decode` is memoized (word -> :class:`Instruction`) because every
consumer — the golden ISS, the Serv timing model, the RVFI checker and the
RTL cosimulation harness — decodes the same few hundred static words millions
of times across a run.  ``Instruction`` is frozen, so sharing one decoded
object per word is safe; illegal words are *not* cached (``lru_cache`` does
not memoize raised exceptions), preserving the error path exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from .bits import bits, fits_signed, sign_extend, to_u32
from .instructions import (
    BY_MNEMONIC,
    Format,
    InstrDef,
    OP_BRANCH,
    OP_IMM,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_AUIPC,
    OP_MISC_MEM,
    OP_REG,
    OP_STORE,
    OP_SYSTEM,
)


class EncodingError(ValueError):
    """Raised when operands cannot be represented in the target format."""


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a legal RV32I/E instruction."""


@dataclass(frozen=True)
class Instruction:
    """A fully decoded instruction: definition plus operand fields.

    ``imm`` is the *sign-extended* immediate (a plain Python int), matching
    what the spec semantics consume.  Fields that a format does not carry are
    zero.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def definition(self) -> InstrDef:
        return BY_MNEMONIC[self.mnemonic]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.mnemonic} rd={self.rd} rs1={self.rs1} "
                f"rs2={self.rs2} imm={self.imm}")


def _check_reg(value: int, what: str, num_regs: int) -> None:
    if not 0 <= value < num_regs:
        raise EncodingError(f"{what}=x{value} outside register file "
                            f"of {num_regs} registers")


def encode(instr: Instruction, num_regs: int = 32) -> int:
    """Encode an :class:`Instruction` into its 32-bit word.

    ``num_regs`` enforces the RV32E register constraint when set to 16.
    """
    d = instr.definition
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if d.fmt in (Format.R, Format.I, Format.U, Format.J):
        _check_reg(rd, "rd", num_regs)
    if d.fmt in (Format.R, Format.I, Format.S, Format.B):
        _check_reg(rs1, "rs1", num_regs)
    if d.fmt in (Format.R, Format.S, Format.B):
        _check_reg(rs2, "rs2", num_regs)

    if d.fmt is Format.R:
        return (d.funct7 << 25 | rs2 << 20 | rs1 << 15 | d.funct3 << 12
                | rd << 7 | d.opcode)
    if d.fmt is Format.I:
        if d.is_shift_imm:
            if not 0 <= imm < 32:
                raise EncodingError(f"{d.mnemonic} shamt {imm} out of range")
            return (d.funct7 << 25 | imm << 20 | rs1 << 15 | d.funct3 << 12
                    | rd << 7 | d.opcode)
        if not fits_signed(imm, 12):
            raise EncodingError(f"{d.mnemonic} immediate {imm} not a signed "
                                f"12-bit value")
        return (to_u32(imm) >> 0 & 0xFFF) << 20 | rs1 << 15 | d.funct3 << 12 \
            | rd << 7 | d.opcode
    if d.fmt is Format.S:
        if not fits_signed(imm, 12):
            raise EncodingError(f"{d.mnemonic} offset {imm} not signed 12-bit")
        u = to_u32(imm)
        return (bits(u, 11, 5) << 25 | rs2 << 20 | rs1 << 15
                | d.funct3 << 12 | bits(u, 4, 0) << 7 | d.opcode)
    if d.fmt is Format.B:
        if imm % 2:
            raise EncodingError(f"{d.mnemonic} offset {imm} not 2-byte aligned")
        if not fits_signed(imm, 13):
            raise EncodingError(f"{d.mnemonic} offset {imm} not signed 13-bit")
        u = to_u32(imm)
        return (bits(u, 12, 12) << 31 | bits(u, 10, 5) << 25 | rs2 << 20
                | rs1 << 15 | d.funct3 << 12 | bits(u, 4, 1) << 8
                | bits(u, 11, 11) << 7 | d.opcode)
    if d.fmt is Format.U:
        if not fits_signed(imm, 32) and not 0 <= imm < (1 << 32):
            raise EncodingError(f"{d.mnemonic} immediate {imm} out of range")
        if to_u32(imm) & 0xFFF:
            raise EncodingError(f"{d.mnemonic} immediate {imm:#x} has non-zero "
                                f"low 12 bits")
        return to_u32(imm) & 0xFFFFF000 | rd << 7 | d.opcode
    if d.fmt is Format.J:
        if imm % 2:
            raise EncodingError(f"jal offset {imm} not 2-byte aligned")
        if not fits_signed(imm, 21):
            raise EncodingError(f"jal offset {imm} not signed 21-bit")
        u = to_u32(imm)
        return (bits(u, 20, 20) << 31 | bits(u, 10, 1) << 21
                | bits(u, 11, 11) << 20 | bits(u, 19, 12) << 12
                | rd << 7 | d.opcode)
    if d.fmt is Format.CSR:
        _check_reg(rd, "rd", num_regs)
        if d.csr_uimm:
            if not 0 <= rs1 < 32:
                raise EncodingError(f"{d.mnemonic} uimm {rs1} not a 5-bit "
                                    f"unsigned value")
        else:
            _check_reg(rs1, "rs1", num_regs)
        if not 0 <= imm < (1 << 12):
            raise EncodingError(f"{d.mnemonic} csr address {imm:#x} not a "
                                f"12-bit unsigned value")
        return (imm << 20 | rs1 << 15 | d.funct3 << 12 | rd << 7 | d.opcode)
    if d.fmt is Format.SYS:
        if d.mnemonic == "fence":
            return d.opcode | d.funct3 << 12
        return d.imm12 << 20 | d.opcode  # ecall/ebreak/mret/wfi
    raise AssertionError(f"unhandled format {d.fmt}")


_R_BY_KEY = {(d.funct3, d.funct7): d.mnemonic
             for d in BY_MNEMONIC.values() if d.fmt is Format.R}
_B_BY_F3 = {d.funct3: d.mnemonic
            for d in BY_MNEMONIC.values() if d.fmt is Format.B}
_L_BY_F3 = {d.funct3: d.mnemonic
            for d in BY_MNEMONIC.values()
            if d.fmt is Format.I and d.opcode == OP_LOAD}
_S_BY_F3 = {d.funct3: d.mnemonic
            for d in BY_MNEMONIC.values() if d.fmt is Format.S}
_IMM_BY_F3 = {d.funct3: d.mnemonic
              for d in BY_MNEMONIC.values()
              if d.fmt is Format.I and d.opcode == OP_IMM and not d.is_shift_imm}
_CSR_BY_F3 = {d.funct3: d for d in BY_MNEMONIC.values()
              if d.fmt is Format.CSR}
_SYS_BY_IMM12 = {d.imm12: d.mnemonic for d in BY_MNEMONIC.values()
                 if d.fmt is Format.SYS and d.imm12 is not None}


@lru_cache(maxsize=None)
def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction` (memoized).

    Raises :class:`DecodeError` for illegal encodings — the subset analyser
    relies on this to reject data words misinterpreted as code.
    """
    word = to_u32(word)
    opcode = bits(word, 6, 0)
    rd = bits(word, 11, 7)
    funct3 = bits(word, 14, 12)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)
    funct7 = bits(word, 31, 25)

    if opcode == OP_LUI:
        return Instruction("lui", rd=rd, imm=sign_extend(word & 0xFFFFF000, 32))
    if opcode == OP_AUIPC:
        return Instruction("auipc", rd=rd,
                           imm=sign_extend(word & 0xFFFFF000, 32))
    if opcode == OP_JAL:
        imm = (bits(word, 31, 31) << 20 | bits(word, 19, 12) << 12
               | bits(word, 20, 20) << 11 | bits(word, 30, 21) << 1)
        return Instruction("jal", rd=rd, imm=sign_extend(imm, 21))
    if opcode == OP_JALR:
        if funct3 != 0:
            raise DecodeError(f"illegal jalr funct3={funct3}")
        return Instruction("jalr", rd=rd, rs1=rs1,
                           imm=sign_extend(bits(word, 31, 20), 12))
    if opcode == OP_BRANCH:
        if funct3 not in _B_BY_F3:
            raise DecodeError(f"illegal branch funct3={funct3}")
        imm = (bits(word, 31, 31) << 12 | bits(word, 7, 7) << 11
               | bits(word, 30, 25) << 5 | bits(word, 11, 8) << 1)
        return Instruction(_B_BY_F3[funct3], rs1=rs1, rs2=rs2,
                           imm=sign_extend(imm, 13))
    if opcode == OP_LOAD:
        if funct3 not in _L_BY_F3:
            raise DecodeError(f"illegal load funct3={funct3}")
        return Instruction(_L_BY_F3[funct3], rd=rd, rs1=rs1,
                           imm=sign_extend(bits(word, 31, 20), 12))
    if opcode == OP_STORE:
        if funct3 not in _S_BY_F3:
            raise DecodeError(f"illegal store funct3={funct3}")
        imm = bits(word, 31, 25) << 5 | bits(word, 11, 7)
        return Instruction(_S_BY_F3[funct3], rs1=rs1, rs2=rs2,
                           imm=sign_extend(imm, 12))
    if opcode == OP_IMM:
        if funct3 == 0b001:
            if funct7 != 0:
                raise DecodeError("illegal slli funct7")
            return Instruction("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return Instruction("srli", rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0b0100000:
                return Instruction("srai", rd=rd, rs1=rs1, imm=rs2)
            raise DecodeError(f"illegal shift funct7={funct7:#09b}")
        if funct3 not in _IMM_BY_F3:
            raise DecodeError(f"illegal op-imm funct3={funct3}")
        return Instruction(_IMM_BY_F3[funct3], rd=rd, rs1=rs1,
                           imm=sign_extend(bits(word, 31, 20), 12))
    if opcode == OP_REG:
        key = (funct3, funct7)
        if key not in _R_BY_KEY:
            raise DecodeError(f"illegal R-type funct3={funct3} "
                              f"funct7={funct7:#09b}")
        return Instruction(_R_BY_KEY[key], rd=rd, rs1=rs1, rs2=rs2)
    if opcode == OP_MISC_MEM:
        return Instruction("fence")
    if opcode == OP_SYSTEM:
        imm12 = bits(word, 31, 20)
        if funct3 in _CSR_BY_F3:
            # ``imm`` carries the CSR address as an *unsigned* 12-bit value;
            # the immediate forms carry the 5-bit uimm in the rs1 field.
            return Instruction(_CSR_BY_F3[funct3].mnemonic, rd=rd, rs1=rs1,
                               imm=imm12)
        if funct3 == 0 and rd == 0 and rs1 == 0 and imm12 in _SYS_BY_IMM12:
            return Instruction(_SYS_BY_IMM12[imm12])
        raise DecodeError(f"unsupported SYSTEM encoding {word:#010x}")
    raise DecodeError(f"illegal opcode {opcode:#09b} in word {word:#010x}")
