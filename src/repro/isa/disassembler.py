"""Disassembler for RV32I/E words — used for diagnostics and reports."""

from __future__ import annotations

from .csrs import CSR_NAME_BY_ADDR
from .encoding import DecodeError, Instruction, decode
from .instructions import BY_MNEMONIC, Format
from .registers import register_name


def csr_name(addr: int) -> str:
    """Canonical CSR operand text: symbolic where named, hex otherwise."""
    return CSR_NAME_BY_ADDR.get(addr, f"{addr:#x}")


def format_instruction(instr: Instruction, addr: int | None = None) -> str:
    """Render a decoded instruction as canonical assembly text."""
    d = BY_MNEMONIC[instr.mnemonic]
    rd = register_name(instr.rd)
    rs1 = register_name(instr.rs1)
    rs2 = register_name(instr.rs2)
    m = instr.mnemonic
    if d.fmt is Format.R:
        return f"{m} {rd}, {rs1}, {rs2}"
    if d.fmt is Format.I:
        if d.opcode == 0b0000011:  # loads
            return f"{m} {rd}, {instr.imm}({rs1})"
        if m == "jalr":
            return f"{m} {rd}, {rs1}, {instr.imm}"
        return f"{m} {rd}, {rs1}, {instr.imm}"
    if d.fmt is Format.S:
        return f"{m} {rs2}, {instr.imm}({rs1})"
    if d.fmt is Format.B:
        target = f"{instr.imm:+d}" if addr is None else f"{addr + instr.imm:#x}"
        return f"{m} {rs1}, {rs2}, {target}"
    if d.fmt is Format.U:
        return f"{m} {rd}, {(instr.imm >> 12) & 0xFFFFF:#x}"
    if d.fmt is Format.J:
        target = f"{instr.imm:+d}" if addr is None else f"{addr + instr.imm:#x}"
        return f"{m} {rd}, {target}"
    if d.fmt is Format.CSR:
        source = str(instr.rs1) if d.csr_uimm else rs1
        return f"{m} {rd}, {csr_name(instr.imm & 0xFFF)}, {source}"
    return m


def disassemble_word(word: int, addr: int | None = None) -> str:
    """Disassemble one 32-bit word; undecodable words render as ``.word``."""
    try:
        return format_instruction(decode(word), addr)
    except DecodeError:
        return f".word {word:#010x}"


def disassemble(words: list[int], base: int = 0) -> list[str]:
    """Disassemble a text section into ``addr: text`` lines."""
    lines = []
    for index, word in enumerate(words):
        addr = base + 4 * index
        lines.append(f"{addr:#010x}: {disassemble_word(word, addr)}")
    return lines
