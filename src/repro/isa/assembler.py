"""Two-pass RV32I/E assembler with pseudo-instructions and ``.macro`` support.

This stands in for the GNU assembler in the paper's toolflow: the MicroC
compiler emits assembly text, this module turns it into the flat binary that
Step 1 of the RISSP methodology characterises.  ``.macro``/``.endm`` are
supported because the Section 5 retargeting flow recompiles applications
against a generated ``macro.S``.

Grammar notes:
  * comments: ``#`` or ``//`` to end of line
  * labels: ``name:`` (may share a line with an instruction)
  * directives: ``.text .data .section .word .half .byte .space .zero
    .align .asciz .string .globl .equ .set .macro .endm``
  * operands: registers (ABI or xN), immediate expressions with ``+ - ( )``,
    ``%hi(sym)`` / ``%lo(sym)``, ``imm(reg)`` memory operands, label refs
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .bits import sign_extend, to_u32
from .csrs import CSR_BY_NAME
from .encoding import EncodingError, Instruction, encode
from .instructions import BY_MNEMONIC, Format
from .program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program
from .registers import RV32E_NUM_REGS, RV32I_NUM_REGS, RegisterError, parse_register


class AssemblerError(ValueError):
    """Assembly failure with source line context."""

    def __init__(self, message: str, line_no: int | None = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


@dataclass
class _Item:
    """One placed element: an instruction or data blob within a section."""

    kind: str                 # "instr" | "data"
    section: str              # "text" | "data"
    addr: int = 0
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    exprs: list[tuple[int, str, int]] = field(default_factory=list)
    line_no: int = 0


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MACRO_ARG_RE = re.compile(r"\\([A-Za-z_]\w*)")


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on top-level commas (parens may nest)."""
    ops: list[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            ops.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        ops.append(current.strip())
    return ops


class Assembler:
    """Assemble RV32I/E source text into a :class:`Program`.

    Args:
        isa: "rv32e" (default, 16 registers) or "rv32i" (32 registers).
        text_base / data_base: section load addresses.
    """

    def __init__(self, isa: str = "rv32e",
                 text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int = DEFAULT_DATA_BASE):
        if isa not in ("rv32e", "rv32i"):
            raise ValueError(f"unsupported ISA {isa!r}")
        self.isa = isa
        self.num_regs = RV32E_NUM_REGS if isa == "rv32e" else RV32I_NUM_REGS
        self.text_base = text_base
        self.data_base = data_base
        self._macros: dict[str, tuple[list[str], list[str]]] = {}
        self._equates: dict[str, int] = {}

    # ------------------------------------------------------------------ API

    def assemble(self, source: str, entry_symbol: str = "main") -> Program:
        """Assemble ``source`` and resolve all symbols.

        ``entry_symbol`` selects the entry point if defined; otherwise the
        program entry is the start of ``.text``.
        """
        items, labels = self._first_pass(source)
        self._layout(items, labels)
        return self._second_pass(items, labels, entry_symbol)

    # ------------------------------------------------------------ first pass

    def _first_pass(self, source: str):
        items: list[_Item] = []
        labels: dict[str, tuple[str, int]] = {}  # name -> (section, item idx)
        section = "text"
        pending_labels: list[str] = []
        macro_body: list[str] | None = None
        macro_name = ""
        macro_params: list[str] = []

        lines = source.splitlines()
        expanded: list[tuple[int, str]] = []
        for line_no, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if macro_body is not None:
                if line.split()[0].lower() == ".endm":
                    self._macros[macro_name] = (macro_params, macro_body)
                    macro_body = None
                else:
                    macro_body.append(line)
                continue
            first = line.split()[0].lower()
            if first == ".macro":
                parts = _split_operands(line[len(".macro"):].strip())
                if not parts:
                    parts = line.split()[1:]
                head = parts[0].split()
                macro_name = head[0].lower()
                macro_params = head[1:] + [p.strip() for p in parts[1:]]
                macro_body = []
                continue
            expanded.extend(self._expand_line(line, line_no))

        for line_no, line in expanded:
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                pending_labels.append(match.group(1))
                line = match.group(2).strip()
            if not line:
                continue
            parts = line.split(None, 1)
            op = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if op.startswith("."):
                section = self._directive(op, rest, section, items,
                                          pending_labels, labels, line_no)
                continue
            for name in pending_labels:
                labels[name] = (section, len(items))
            pending_labels.clear()
            if section != "text":
                raise AssemblerError("instruction outside .text", line_no)
            for mnem, ops in self._expand_pseudo(op, _split_operands(rest),
                                                 line_no):
                items.append(_Item("instr", "text", mnemonic=mnem,
                                   operands=ops, line_no=line_no))
        for name in pending_labels:
            labels[name] = (section, len(items))
        return items, labels

    def _expand_line(self, line: str, line_no: int) -> list[tuple[int, str]]:
        """Expand macro invocations (recursively, depth-limited)."""
        match = _LABEL_RE.match(line)
        prefix = ""
        body = line
        if match:
            prefix = match.group(1) + ": "
            body = match.group(2).strip()
            if not body:
                return [(line_no, line)]
        op = body.split()[0].lower() if body else ""
        if op not in self._macros:
            return [(line_no, line)]
        params, template = self._macros[op]
        args = _split_operands(body[len(op):].strip())
        if len(args) > len(params):
            raise AssemblerError(
                f"macro {op!r} takes {len(params)} args, got {len(args)}",
                line_no)
        binding = {p: (args[i] if i < len(args) else "")
                   for i, p in enumerate(params)}

        def sub(match: re.Match) -> str:
            name = match.group(1)
            if name not in binding:
                raise AssemblerError(
                    f"macro {op!r}: unknown parameter \\{name}", line_no)
            return binding[name]

        out: list[tuple[int, str]] = []
        if prefix:
            out.append((line_no, prefix.rstrip()))
        for tmpl_line in template:
            expanded = _MACRO_ARG_RE.sub(sub, tmpl_line)
            out.extend(self._expand_line(expanded, line_no))
        return out

    # ------------------------------------------------------------ directives

    def _directive(self, op, rest, section, items, pending_labels, labels,
                   line_no):
        def flush_labels():
            for name in pending_labels:
                labels[name] = (section, len(items))
            pending_labels.clear()

        if op in (".text",):
            return "text"
        if op in (".data", ".bss", ".rodata"):
            return "data"
        if op == ".section":
            name = rest.split(",")[0].strip()
            return "text" if name.startswith(".text") else "data"
        if op in (".globl", ".global", ".type", ".size", ".file", ".option",
                  ".attribute", ".ident", ".p2align"):
            return section
        if op in (".equ", ".set"):
            parts = _split_operands(rest)
            if len(parts) != 2:
                raise AssemblerError(f"{op} needs name, value", line_no)
            self._equates[parts[0]] = self._eval_const(parts[1], line_no)
            return section
        if op == ".align":
            flush_labels()
            amount = 1 << self._eval_const(rest, line_no)
            items.append(_Item("data", section, data=bytearray(),
                               line_no=line_no, mnemonic=f"align:{amount}"))
            return section
        if op in (".word", ".long"):
            flush_labels()
            item = _Item("data", section, line_no=line_no)
            for expr in _split_operands(rest):
                item.exprs.append((len(item.data), expr, 4))
                item.data += b"\x00\x00\x00\x00"
            items.append(item)
            return section
        if op in (".half", ".short"):
            flush_labels()
            item = _Item("data", section, line_no=line_no)
            for expr in _split_operands(rest):
                item.exprs.append((len(item.data), expr, 2))
                item.data += b"\x00\x00"
            items.append(item)
            return section
        if op == ".byte":
            flush_labels()
            item = _Item("data", section, line_no=line_no)
            for expr in _split_operands(rest):
                item.exprs.append((len(item.data), expr, 1))
                item.data += b"\x00"
            items.append(item)
            return section
        if op in (".space", ".zero", ".skip"):
            flush_labels()
            size = self._eval_const(rest, line_no)
            items.append(_Item("data", section, data=bytearray(size),
                               line_no=line_no))
            return section
        if op in (".asciz", ".string", ".ascii"):
            flush_labels()
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblerError(f"{op} needs a quoted string", line_no)
            raw = text[1:-1].encode().decode("unicode_escape").encode("latin1")
            data = bytearray(raw)
            if op != ".ascii":
                data.append(0)
            items.append(_Item("data", section, data=data, line_no=line_no))
            return section
        raise AssemblerError(f"unknown directive {op!r}", line_no)

    # ------------------------------------------------------------- pseudos

    def _expand_pseudo(self, op: str, ops: list[str],
                       line_no: int) -> list[tuple[str, list[str]]]:
        """Expand pseudo-instructions to base instructions (fixed sizes)."""
        def need(count: int):
            if len(ops) != count:
                raise AssemblerError(
                    f"{op} expects {count} operands, got {len(ops)}", line_no)

        if op in BY_MNEMONIC:
            return [(op, ops)]
        if op == "nop":
            return [("addi", ["x0", "x0", "0"])]
        if op == "li":
            need(2)
            value = self._eval_const(ops[1], line_no)
            value_s = sign_extend(value, 32)
            if -2048 <= value_s <= 2047:
                return [("addi", [ops[0], "x0", str(value_s)])]
            field20 = (to_u32(value_s + 0x800) >> 12) & 0xFFFFF
            lower = sign_extend(to_u32(value_s) & 0xFFF, 12)
            out = [("lui", [ops[0], str(field20)])]
            if lower != 0:
                out.append(("addi", [ops[0], ops[0], str(lower)]))
            return out
        if op == "la":
            need(2)
            return [("lui", [ops[0], f"%hi({ops[1]})"]),
                    ("addi", [ops[0], ops[0], f"%lo({ops[1]})"])]
        if op == "mv":
            need(2)
            return [("addi", [ops[0], ops[1], "0"])]
        if op == "not":
            need(2)
            return [("xori", [ops[0], ops[1], "-1"])]
        if op == "neg":
            need(2)
            return [("sub", [ops[0], "x0", ops[1]])]
        if op == "seqz":
            need(2)
            return [("sltiu", [ops[0], ops[1], "1"])]
        if op == "snez":
            need(2)
            return [("sltu", [ops[0], "x0", ops[1]])]
        if op == "sltz":
            need(2)
            return [("slt", [ops[0], ops[1], "x0"])]
        if op == "sgtz":
            need(2)
            return [("slt", [ops[0], "x0", ops[1]])]
        if op == "beqz":
            need(2)
            return [("beq", [ops[0], "x0", ops[1]])]
        if op == "bnez":
            need(2)
            return [("bne", [ops[0], "x0", ops[1]])]
        if op == "bgez":
            need(2)
            return [("bge", [ops[0], "x0", ops[1]])]
        if op == "bltz":
            need(2)
            return [("blt", [ops[0], "x0", ops[1]])]
        if op == "blez":
            need(2)
            return [("bge", ["x0", ops[0], ops[1]])]
        if op == "bgtz":
            need(2)
            return [("blt", ["x0", ops[0], ops[1]])]
        if op == "bgt":
            need(3)
            return [("blt", [ops[1], ops[0], ops[2]])]
        if op == "ble":
            need(3)
            return [("bge", [ops[1], ops[0], ops[2]])]
        if op == "bgtu":
            need(3)
            return [("bltu", [ops[1], ops[0], ops[2]])]
        if op == "bleu":
            need(3)
            return [("bgeu", [ops[1], ops[0], ops[2]])]
        if op == "csrr":
            need(2)
            return [("csrrs", [ops[0], ops[1], "x0"])]
        if op == "csrw":
            need(2)
            return [("csrrw", ["x0", ops[0], ops[1]])]
        if op == "csrs":
            need(2)
            return [("csrrs", ["x0", ops[0], ops[1]])]
        if op == "csrc":
            need(2)
            return [("csrrc", ["x0", ops[0], ops[1]])]
        if op == "csrwi":
            need(2)
            return [("csrrwi", ["x0", ops[0], ops[1]])]
        if op == "csrsi":
            need(2)
            return [("csrrsi", ["x0", ops[0], ops[1]])]
        if op == "csrci":
            need(2)
            return [("csrrci", ["x0", ops[0], ops[1]])]
        if op == "j":
            need(1)
            return [("jal", ["x0", ops[0]])]
        if op == "jr":
            need(1)
            return [("jalr", ["x0", ops[0], "0"])]
        if op == "ret":
            need(0)
            return [("jalr", ["x0", "ra", "0"])]
        if op == "call":
            need(1)
            return [("jal", ["ra", ops[0]])]
        if op == "tail":
            need(1)
            return [("jal", ["x0", ops[0]])]
        raise AssemblerError(f"unknown instruction or macro {op!r}", line_no)

    # --------------------------------------------------------------- layout

    def _layout(self, items: list[_Item], labels) -> None:
        addr = {"text": self.text_base, "data": self.data_base}
        for item in items:
            section = item.section
            if item.mnemonic.startswith("align:"):
                amount = int(item.mnemonic.split(":")[1])
                pad = (-addr[section]) % amount
                item.data = bytearray(pad)
                item.mnemonic = ""
            item.addr = addr[section]
            if item.kind == "instr":
                addr[section] += 4
            else:
                addr[section] += len(item.data)
        self._label_addrs = {}
        end = dict(addr)
        for name, (section, idx) in labels.items():
            if idx < len(items):
                target_addr = None
                for item in items[idx:]:
                    if item.section == section:
                        target_addr = item.addr
                        break
                if target_addr is None:
                    target_addr = end[section]
            else:
                target_addr = end[section]
            self._label_addrs[name] = target_addr

    # ------------------------------------------------------- expression eval

    _TOKEN_RE = re.compile(
        r"\s*(%hi|%lo|0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|'(?:\\.|[^'])'"
        r"|[A-Za-z_.$][\w.$]*|>>|<<|[()+\-*&])")

    def _eval_expr(self, text: str, line_no: int,
                   symbols: dict[str, int] | None) -> int:
        """Evaluate an operand expression; ``symbols=None`` = constants only."""
        tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = self._TOKEN_RE.match(text, pos)
            if not match:
                raise AssemblerError(f"bad expression {text!r}", line_no)
            tokens.append(match.group(1))
            pos = match.end()
        self._tokens = tokens
        self._tpos = 0
        value = self._parse_shift(line_no, symbols)
        if self._tpos != len(tokens):
            raise AssemblerError(f"trailing tokens in {text!r}", line_no)
        return value

    def _peek(self):
        return self._tokens[self._tpos] if self._tpos < len(self._tokens) else None

    def _next(self):
        tok = self._peek()
        self._tpos += 1
        return tok

    def _parse_shift(self, line_no, symbols) -> int:
        value = self._parse_sum(line_no, symbols)
        while self._peek() in (">>", "<<", "&"):
            op = self._next()
            rhs = self._parse_sum(line_no, symbols)
            if op == ">>":
                value >>= rhs
            elif op == "<<":
                value <<= rhs
            else:
                value &= rhs
        return value

    def _parse_sum(self, line_no, symbols) -> int:
        value = self._parse_term(line_no, symbols)
        while self._peek() in ("+", "-"):
            if self._next() == "+":
                value += self._parse_term(line_no, symbols)
            else:
                value -= self._parse_term(line_no, symbols)
        return value

    def _parse_term(self, line_no, symbols) -> int:
        value = self._parse_atom(line_no, symbols)
        while self._peek() == "*":
            self._next()
            value *= self._parse_atom(line_no, symbols)
        return value

    def _parse_atom(self, line_no, symbols) -> int:
        tok = self._next()
        if tok is None:
            raise AssemblerError("unexpected end of expression", line_no)
        if tok == "-":
            return -self._parse_atom(line_no, symbols)
        if tok == "+":
            return self._parse_atom(line_no, symbols)
        if tok == "(":
            value = self._parse_shift(line_no, symbols)
            if self._next() != ")":
                raise AssemblerError("missing ')'", line_no)
            return value
        if tok in ("%hi", "%lo"):
            if self._next() != "(":
                raise AssemblerError(f"{tok} needs parenthesised arg", line_no)
            value = self._parse_shift(line_no, symbols)
            if self._next() != ")":
                raise AssemblerError("missing ')'", line_no)
            if tok == "%hi":
                # GNU as convention: %hi yields the 20-bit lui *field*.
                return ((to_u32(value) + 0x800) >> 12) & 0xFFFFF
            return sign_extend(to_u32(value) & 0xFFF, 12)
        if tok.startswith("0x") or tok.startswith("0X"):
            return int(tok, 16)
        if tok.startswith("0b") or tok.startswith("0B"):
            return int(tok, 2)
        if tok.isdigit():
            return int(tok, 10)
        if tok.startswith("'"):
            inner = tok[1:-1].encode().decode("unicode_escape")
            return ord(inner)
        if tok in self._equates:
            return self._equates[tok]
        if symbols is not None:
            if tok not in symbols:
                raise AssemblerError(f"undefined symbol {tok!r}", line_no)
            return symbols[tok]
        raise AssemblerError(f"symbol {tok!r} in constant expression", line_no)

    def _eval_const(self, text: str, line_no: int) -> int:
        return self._eval_expr(text, line_no, None)

    # ---------------------------------------------------------- second pass

    def _second_pass(self, items: list[_Item], labels, entry_symbol) -> Program:
        symbols = dict(self._equates)
        symbols.update(self._label_addrs)
        program = Program(text_base=self.text_base, data_base=self.data_base,
                          symbols=dict(symbols))
        data = bytearray()
        for item in items:
            if item.kind == "data":
                blob = bytearray(item.data)
                for offset, expr, width in item.exprs:
                    value = to_u32(self._eval_expr(expr, item.line_no, symbols))
                    blob[offset:offset + width] = value.to_bytes(
                        4, "little")[:width]
                if item.section == "data":
                    data += blob
                else:
                    if len(blob) % 4:
                        raise AssemblerError(
                            "unaligned data in .text", item.line_no)
                    for idx in range(0, len(blob), 4):
                        program.text_words.append(
                            int.from_bytes(blob[idx:idx + 4], "little"))
                continue
            word = self._encode_item(item, symbols)
            program.text_words.append(word)
        program.data_bytes = data
        program.entry = symbols.get(entry_symbol, self.text_base)
        return program

    def _encode_item(self, item: _Item, symbols) -> int:
        d = BY_MNEMONIC[item.mnemonic]
        ops = item.operands
        line_no = item.line_no

        def reg(text: str) -> int:
            try:
                return parse_register(text, self.num_regs)
            except RegisterError as exc:
                raise AssemblerError(str(exc), line_no) from None

        def imm(text: str) -> int:
            return self._eval_expr(text, line_no, symbols)

        def csr_operand(text: str) -> int:
            key = text.strip().lower()
            if key in CSR_BY_NAME:
                return CSR_BY_NAME[key]
            value = imm(text)
            if not 0 <= value < (1 << 12):
                raise AssemblerError(f"csr address {value:#x} out of range",
                                     line_no)
            return value

        def mem_operand(text: str) -> tuple[int, int]:
            """Parse ``offset(reg)`` or bare ``offset``."""
            match = re.match(r"^(.*)\(\s*([^()]+)\s*\)\s*$", text)
            if match:
                offset_text = match.group(1).strip() or "0"
                return imm(offset_text), reg(match.group(2))
            return imm(text), 0

        try:
            if d.fmt is Format.R:
                if len(ops) != 3:
                    raise AssemblerError(f"{d.mnemonic} needs 3 operands",
                                         line_no)
                instr = Instruction(d.mnemonic, rd=reg(ops[0]),
                                    rs1=reg(ops[1]), rs2=reg(ops[2]))
            elif d.fmt is Format.I and d.opcode == 0b0000011:  # loads
                if len(ops) != 2:
                    raise AssemblerError(f"{d.mnemonic} needs rd, off(rs1)",
                                         line_no)
                offset, base = mem_operand(ops[1])
                instr = Instruction(d.mnemonic, rd=reg(ops[0]), rs1=base,
                                    imm=offset)
            elif d.mnemonic == "jalr":
                if len(ops) == 3:
                    instr = Instruction("jalr", rd=reg(ops[0]),
                                        rs1=reg(ops[1]), imm=imm(ops[2]))
                elif len(ops) == 2 and "(" in ops[1]:
                    offset, base = mem_operand(ops[1])
                    instr = Instruction("jalr", rd=reg(ops[0]), rs1=base,
                                        imm=offset)
                else:
                    raise AssemblerError("jalr needs rd, rs1, imm", line_no)
            elif d.fmt is Format.I:
                if len(ops) != 3:
                    raise AssemblerError(f"{d.mnemonic} needs 3 operands",
                                         line_no)
                instr = Instruction(d.mnemonic, rd=reg(ops[0]),
                                    rs1=reg(ops[1]), imm=imm(ops[2]))
            elif d.fmt is Format.S:
                if len(ops) != 2:
                    raise AssemblerError(f"{d.mnemonic} needs rs2, off(rs1)",
                                         line_no)
                offset, base = mem_operand(ops[1])
                instr = Instruction(d.mnemonic, rs1=base, rs2=reg(ops[0]),
                                    imm=offset)
            elif d.fmt is Format.B:
                if len(ops) != 3:
                    raise AssemblerError(f"{d.mnemonic} needs rs1, rs2, target",
                                         line_no)
                target = imm(ops[2])
                instr = Instruction(d.mnemonic, rs1=reg(ops[0]),
                                    rs2=reg(ops[1]), imm=target - item.addr)
            elif d.fmt is Format.U:
                if len(ops) != 2:
                    raise AssemblerError(f"{d.mnemonic} needs rd, imm", line_no)
                value = imm(ops[1])
                if 0 <= value < (1 << 20):
                    # GNU as form: the operand is the 20-bit upper field.
                    value <<= 12
                elif to_u32(value) & 0xFFF:
                    raise AssemblerError(
                        f"{d.mnemonic} operand {value:#x} is neither a 20-bit "
                        f"field nor a shifted upper immediate", line_no)
                instr = Instruction(d.mnemonic, rd=reg(ops[0]),
                                    imm=sign_extend(to_u32(value), 32))
            elif d.fmt is Format.J:
                if len(ops) != 2:
                    raise AssemblerError("jal needs rd, target", line_no)
                instr = Instruction("jal", rd=reg(ops[0]),
                                    imm=imm(ops[1]) - item.addr)
            elif d.fmt is Format.CSR:
                if len(ops) != 3:
                    raise AssemblerError(
                        f"{d.mnemonic} needs rd, csr, "
                        f"{'uimm' if d.csr_uimm else 'rs1'}", line_no)
                if d.csr_uimm:
                    uimm = imm(ops[2])
                    if not 0 <= uimm < 32:
                        raise AssemblerError(
                            f"{d.mnemonic} uimm {uimm} not a 5-bit unsigned "
                            f"value", line_no)
                    source = uimm
                else:
                    source = reg(ops[2])
                instr = Instruction(d.mnemonic, rd=reg(ops[0]), rs1=source,
                                    imm=csr_operand(ops[1]))
            else:  # SYS
                instr = Instruction(d.mnemonic)
            return encode(instr, self.num_regs)
        except EncodingError as exc:
            raise AssemblerError(str(exc), line_no) from None


def assemble(source: str, isa: str = "rv32e", **kwargs) -> Program:
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler(isa=isa).assemble(source, **kwargs)
