"""Evaluation metrics shared by the Figure 6-9 benchmarks."""

from __future__ import annotations

from ..synth.report import SynthReport
from ..synth.serv_model import SERV_CPI

#: Single-cycle RISSPs retire one instruction per clock.
RISSP_CPI = 1.0


def energy_per_instruction_nj(report: SynthReport,
                              cpi: float | None = None) -> float:
    """EPI = P(fmax) / fmax x CPI in nanojoules (Figure 9 protocol)."""
    if cpi is None:
        cpi = SERV_CPI if report.name == "serv" else RISSP_CPI
    return report.energy_per_instruction_nj(cpi)


def saving(value: float, baseline: float) -> float:
    """Relative saving vs a baseline, as a percentage."""
    return 100.0 * (1.0 - value / baseline) if baseline else 0.0
