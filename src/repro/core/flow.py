"""The end-to-end RISSP generation flow (Figure 2, Steps 0-3 + evaluation).

``RisspFlow`` chains everything this repository builds:

    MicroC source --compile(-O2)--> binary --Step 1--> instruction subset
    --Step 2/3--> RISSP RTL (pre-verified blocks + ModularEX + fixed units)
    --verify--> RISCOF compliance + RVFI trace check + golden cosimulation
    --synthesize--> fmax / NAND2 area / power (Figures 6-8)
    --implement--> FlexIC layout at 300 kHz (Figure 10)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler import compile_to_program
from ..isa.program import Program
from ..physical.flow import LayoutReport, implement
from ..rtl.core_sim import cosimulate
from ..rtl.ir import Module
from ..rtl.library import IsaHardwareLibrary, default_library
from ..rtl.rissp import build_rissp
from ..synth.report import SynthReport, synthesize
from ..synth.techlib import FLEXIC_GEN3, TechLib
from ..workloads import WORKLOADS
from .subset_analysis import SubsetProfile, extract_subset, profile_program


@dataclass
class RisspResult:
    """Everything produced for one application."""

    name: str
    profile: SubsetProfile
    core: Module
    synth: SynthReport
    layout: LayoutReport | None = None
    program: Program | None = None
    verified: dict[str, bool] = field(default_factory=dict)
    #: Platform description for SoC firmware workloads (None for pure
    #: compute kernels) — pass to the simulators to run the binary.
    soc_spec: object | None = None


class RisspFlow:
    """Generate, verify and evaluate RISSPs for applications or domains."""

    def __init__(self, library: IsaHardwareLibrary | None = None,
                 lib: TechLib = FLEXIC_GEN3, opt_level: str = "O2"):
        self.library = library or default_library()
        self.techlib = lib
        self.opt_level = opt_level

    def generate(self, name: str, source: str | None = None,
                 run_verification: bool = False,
                 run_physical: bool = False,
                 lint: bool = True) -> RisspResult:
        """Run the full flow for one application.

        ``run_verification`` additionally executes the RISCOF-analog
        compliance suite, a lock-step cosimulation of the application binary
        on the generated core (comparing writeback *and* both sides of the
        memory interface per retirement), and an RVFI trace check of the
        golden reference run against the executable spec — the full §3.4.2
        story.  All three ride the decoded-op cache
        (:mod:`repro.sim.decoded`), so the reference side runs at fast-path
        speed.

        ``lint`` gates the stitched core on the structural lint
        (:mod:`repro.analysis`): a bad core fails here, at generation time,
        with the finding list — not later in cosim.
        """
        workload = WORKLOADS.get(name) if source is None else None
        soc_spec = workload.soc_spec if workload is not None else None
        if source is None:
            source = WORKLOADS[name].source
        if workload is not None and workload.lang == "asm":
            # The legacy assembly firmware images bypass the -O sweep;
            # the interrupt-driven SoC workloads are pure MicroC since
            # PR 5 and take the ordinary compile path below.
            from ..isa.assembler import assemble
            program = assemble(source)
            opt_level = "-"
        else:
            program = compile_to_program(source, self.opt_level).program
            opt_level = self.opt_level
        profile = profile_program(name, program, opt_level)
        core = build_rissp(profile.core_subset(), self.library,
                           name=f"rissp_{name}",
                           reset_pc=program.entry, lint=lint)
        synth = synthesize(core, self.techlib, seed=name)
        result = RisspResult(name=name, profile=profile, core=core,
                             synth=synth, program=program,
                             soc_spec=soc_spec)
        if run_verification:
            from ..sim.golden import abi_initial_regs
            from ..sim.tracing import RvfiTrace
            from ..verify.riscof import run_compliance
            from ..verify.rvfi import check_trace
            golden_trace = RvfiTrace()
            mismatch = cosimulate(core, program,
                                  max_instructions=2_000_000,
                                  golden_trace_out=golden_trace,
                                  soc=soc_spec)
            result.verified["cosim"] = mismatch is None
            compliance = run_compliance(core)
            result.verified["riscof"] = compliance.compliant
            # The reference trace is complete only when cosim matched to
            # halt — a truncated prefix is never reported as a full pass.
            rvfi_report = check_trace(golden_trace,
                                      initial_regs=abi_initial_regs())
            result.verified["rvfi"] = mismatch is None and rvfi_report.passed
        if run_physical:
            result.layout = implement(synth, lib=self.techlib)
        return result

    def generate_for_subset(self, name: str,
                            mnemonics: list[str]) -> RisspResult:
        """Generate a RISSP directly from an instruction subset (e.g. one
        of the paper's Table 3 lists)."""
        profile = SubsetProfile(name=name, opt_level=self.opt_level,
                                mnemonics=tuple(sorted(mnemonics)),
                                static_instructions=0, code_size_bytes=0)
        core = build_rissp(profile.core_subset(), self.library,
                           name=f"rissp_{name}")
        synth = synthesize(core, self.techlib, seed=name)
        return RisspResult(name=name, profile=profile, core=core,
                           synth=synth)

    def full_isa_baseline(self) -> RisspResult:
        """RISSP-RV32E: the full-ISA core generated by the same flow."""
        from ..isa.instructions import INSTRUCTIONS
        subset = [d.mnemonic for d in INSTRUCTIONS]
        core = build_rissp(subset, self.library, name="rissp_rv32e")
        synth = synthesize(core, self.techlib, seed="rv32e")
        profile = SubsetProfile(name="rv32e", opt_level="-",
                                mnemonics=tuple(sorted(
                                    m for m in subset
                                    if m not in ("fence", "ecall",
                                                 "ebreak"))),
                                static_instructions=0, code_size_bytes=0)
        return RisspResult(name="rv32e", profile=profile, core=core,
                           synth=synth)
