"""The RISSP generation methodology: subset analysis, profiling, full flow."""

from .flow import RisspFlow, RisspResult
from .metrics import RISSP_CPI, energy_per_instruction_nj, saving
from .profile import FlagSweep, summarize, sweep_all, sweep_application
from .subset_analysis import (
    ALWAYS_INCLUDED,
    SubsetProfile,
    extract_subset,
    profile_program,
    union_profile,
)

__all__ = [
    "ALWAYS_INCLUDED", "FlagSweep", "RISSP_CPI", "RisspFlow", "RisspResult",
    "SubsetProfile", "energy_per_instruction_nj", "extract_subset",
    "profile_program", "saving", "summarize", "sweep_all",
    "sweep_application", "union_profile",
]
