"""Step 1: domain-specific instruction-subset extraction.

The application (or a set of applications forming a domain) is compiled for
the full RV32E ISA; the compiled *binary* is decoded and the set of distinct
mnemonics is the RISSP subset.  System instructions (fence/ecall/ebreak) are
always carried by the core and excluded from the percentage maths, matching
the paper's "applications use 24-86% of the full ISA" denominator of 37.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.encoding import DecodeError, decode
from ..isa.instructions import FULL_ISA_SIZE
from ..isa.program import Program

#: Instructions every RISSP carries regardless of the profile (the halt
#: mechanism; fence is a NOP on a single-core in-order machine).
ALWAYS_INCLUDED = ("ecall",)

_SYSTEM = {"fence", "ecall", "ebreak"}

#: PR 3 machine-mode extension: present in event-driven firmware but
#: outside the 37-instruction compute denominator.  ``mret`` is the one
#: with a hardware block — finding *any* of these in a binary makes the
#: generated core trap-capable (mret block + trap unit); the Zicsr
#: register instructions and wfi are emulated by the simulation harness.
_SYSTEM_EXTENSION = {"csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi",
                     "csrrci", "mret", "wfi"}


@dataclass(frozen=True)
class SubsetProfile:
    """The distinct-instruction profile of one compiled application."""

    name: str
    opt_level: str
    mnemonics: tuple[str, ...]          # compute instructions, sorted
    static_instructions: int
    code_size_bytes: int
    #: Machine-mode system-extension mnemonics found in the binary
    #: (csrr*/mret/wfi); empty for pure compute kernels.
    system_mnemonics: tuple[str, ...] = ()

    @property
    def num_distinct(self) -> int:
        return len(self.mnemonics)

    @property
    def isa_fraction(self) -> float:
        """Fraction of the 37-instruction compute ISA used (paper §4.1)."""
        return self.num_distinct / FULL_ISA_SIZE

    def core_subset(self) -> list[str]:
        """Subset to instantiate in hardware (profile + halt support +
        the trap-return block when the firmware uses the trap subsystem)."""
        subset = set(self.mnemonics) | set(ALWAYS_INCLUDED)
        if self.system_mnemonics:
            subset.add("mret")
        return sorted(subset)


def extract_subset(program: Program) -> list[str]:
    """Distinct compute mnemonics actually present in a linked binary."""
    mnemonics: set[str] = set()
    for word in program.text_words:
        try:
            instr = decode(word)
        except DecodeError:
            continue    # literal pools / data islands are not code
        if instr.mnemonic not in _SYSTEM \
                and instr.mnemonic not in _SYSTEM_EXTENSION:
            mnemonics.add(instr.mnemonic)
    return sorted(mnemonics)


def extract_system_extension(program: Program) -> list[str]:
    """Distinct machine-mode system-extension mnemonics in a binary."""
    found: set[str] = set()
    for word in program.text_words:
        try:
            instr = decode(word)
        except DecodeError:
            continue
        if instr.mnemonic in _SYSTEM_EXTENSION:
            found.add(instr.mnemonic)
    return sorted(found)


def profile_program(name: str, program: Program,
                    opt_level: str = "O2") -> SubsetProfile:
    return SubsetProfile(
        name=name,
        opt_level=opt_level,
        mnemonics=tuple(extract_subset(program)),
        static_instructions=program.static_instruction_count,
        code_size_bytes=program.code_size_bytes,
        system_mnemonics=tuple(extract_system_extension(program)))


def union_profile(name: str, profiles: list[SubsetProfile],
                  opt_level: str = "O2") -> SubsetProfile:
    """Domain profile: union of several applications' subsets (the paper
    generates one RISSP per *domain* when multiple apps share a chip)."""
    merged: set[str] = set()
    system: set[str] = set()
    static = 0
    size = 0
    for profile in profiles:
        merged.update(profile.mnemonics)
        system.update(profile.system_mnemonics)
        static += profile.static_instructions
        size += profile.code_size_bytes
    return SubsetProfile(name=name, opt_level=opt_level,
                         mnemonics=tuple(sorted(merged)),
                         static_instructions=static, code_size_bytes=size,
                         system_mnemonics=tuple(sorted(system)))
