"""Schema for the machine-readable ``BENCH_*.json`` benchmark artifacts.

CI uploads every artifact the benchmark suite writes, and downstream
tooling tracks the perf trajectory across PRs from them — so a malformed
document (missing host fingerprint, empty metrics, a NaN speedup from a
division that went wrong) must fail the run *at write time* instead of
being uploaded as garbage.  :func:`validate_artifact` is the single
source of truth for the shape; :func:`write_bench_artifact` (used by the
``bench_artifact`` fixture) refuses to write anything that does not
validate, and ``tests/test_bench_artifacts.py`` re-validates whatever is
on disk.

Document shape::

    {
      "schema":  <int revision, optional — absent documents are revision
                  1; the writer stamps the current SCHEMA_VERSION>,
      "bench":   "<non-empty name, filesystem-safe>",
      "host":    {"python": str, "machine": str, "system": str},
      "metrics": {<non-empty; scalar leaves, or dict tables nested up to
                   two levels (e.g. a per-workload CPI table of rows)>}
    }

Metric leaves must be finite numbers, strings or booleans — ``None``,
NaN and infinities are rejected (``json`` would happily serialize NaN,
producing a document standard parsers refuse).

Schema history: revision 2 (PR 5) added the ``schema`` stamp itself and
extended the ``workload_cpi`` table with the SoC ``sensor_streaming``
row (two-source interrupt firmware), so downstream trajectory tooling
can key row availability off the revision instead of probing names.
Revision 3 (PR 8) extended ``host`` with ``cpu_count`` (positive int)
and ``platform`` (the full ``platform.platform()`` string), shared with
the telemetry manifests via :func:`repro.obs.host_provenance` — perf
numbers from a 1-core CI runner and a 32-core workstation were
previously indistinguishable in the artifact.  The extra keys are
required at revision 3 and rejected below it, so old documents stay
valid and new ones cannot silently drop provenance.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re

from ..obs import host_provenance

_NAME = re.compile(r"^[A-Za-z0-9_.-]+$")
_HOST_KEYS = ("python", "machine", "system")
_HOST_KEYS_V3 = ("cpu_count", "platform")

#: Current artifact schema revision, stamped by :func:`write_bench_artifact`.
SCHEMA_VERSION = 3


#: Dict tables may nest this deep below ``metrics`` (a per-workload
#: table of rows of scalars); anything deeper is rejected.
_MAX_TABLE_DEPTH = 2


def _metric_errors(path: str, value: object, depth: int) -> tuple[list[str],
                                                                  int]:
    """Validate one metrics subtree; returns (errors, numeric leaves)."""
    if isinstance(value, dict):
        if depth >= _MAX_TABLE_DEPTH:
            return ([f"metrics.{path}: tables may nest at most "
                     f"{_MAX_TABLE_DEPTH} levels"], 0)
        if not value:
            return ([f"metrics.{path}: empty table"], 0)
        errors: list[str] = []
        numeric = 0
        for key, leaf in value.items():
            if not isinstance(key, str) or not key:
                errors.append(f"metrics.{path}: bad row key {key!r}")
                continue
            sub_errors, sub_numeric = _metric_errors(f"{path}.{key}", leaf,
                                                     depth + 1)
            errors.extend(sub_errors)
            numeric += sub_numeric
        return errors, numeric
    if isinstance(value, bool) or isinstance(value, str):
        return [], 0
    if isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            return [f"metrics.{path}: non-finite number {value!r}"], 0
        return [], 1
    return ([f"metrics.{path}: unsupported leaf type "
             f"{type(value).__name__}"], 0)


def validate_artifact(document: object) -> list[str]:
    """Validate one artifact document; returns a list of error strings
    (empty when the document conforms)."""
    if not isinstance(document, dict):
        return [f"artifact must be a JSON object, got "
                f"{type(document).__name__}"]
    errors: list[str] = []
    for key in ("bench", "host", "metrics"):
        if key not in document:
            errors.append(f"missing required field {key!r}")
    unknown = set(document) - {"schema", "bench", "host", "metrics"}
    if unknown:
        errors.append(f"unknown top-level fields {sorted(unknown)}")
    schema = document.get("schema")
    if schema is not None and (isinstance(schema, bool)
                               or not isinstance(schema, int)
                               or not 1 <= schema <= SCHEMA_VERSION):
        errors.append(f"schema must be an int in [1, {SCHEMA_VERSION}], "
                      f"got {schema!r}")
    bench = document.get("bench")
    if bench is not None and (not isinstance(bench, str)
                              or not _NAME.match(bench)):
        errors.append(f"bench must be a non-empty filesystem-safe string, "
                      f"got {bench!r}")
    revision = schema if isinstance(schema, int) \
        and not isinstance(schema, bool) else 1
    host = document.get("host")
    if host is not None:
        if not isinstance(host, dict):
            errors.append("host must be an object")
        else:
            for key in _HOST_KEYS:
                if not isinstance(host.get(key), str) or not host.get(key):
                    errors.append(f"host.{key} must be a non-empty string")
            if revision >= 3:
                cpu_count = host.get("cpu_count")
                if isinstance(cpu_count, bool) \
                        or not isinstance(cpu_count, int) or cpu_count < 1:
                    errors.append("host.cpu_count must be a positive int")
                if not isinstance(host.get("platform"), str) \
                        or not host.get("platform"):
                    errors.append("host.platform must be a non-empty string")
            else:
                for key in _HOST_KEYS_V3:
                    if key in host:
                        errors.append(f"host.{key} requires schema >= 3, "
                                      f"document is revision {revision}")
    metrics = document.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict) or not metrics:
            errors.append("metrics must be a non-empty object")
        else:
            numeric = 0
            for name, value in metrics.items():
                if not isinstance(name, str) or not name:
                    errors.append(f"metric name {name!r} must be a "
                                  f"non-empty string")
                    continue
                sub_errors, sub_numeric = _metric_errors(name, value, 0)
                errors.extend(sub_errors)
                numeric += sub_numeric
            if not errors and not numeric:
                errors.append("metrics carry no numeric values")
    return errors


def validate_artifact_file(path: "pathlib.Path | str") -> list[str]:
    """Parse and validate one on-disk artifact."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path.name}: not valid JSON ({exc})"]
    return [f"{path.name}: {error}"
            for error in validate_artifact(document)]


def bench_artifact_dir() -> pathlib.Path:
    """Where artifacts land: ``$REPRO_BENCH_DIR`` (what CI sets and
    uploads) or ``benchmarks/artifacts/`` for local runs."""
    default = pathlib.Path(__file__).resolve().parents[3] \
        / "benchmarks" / "artifacts"
    return pathlib.Path(os.environ.get("REPRO_BENCH_DIR", default))


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Write one validated ``BENCH_<name>.json`` artifact.

    Raises :class:`ValueError` (failing the benchmark that called it)
    when the assembled document does not conform, so CI can never upload
    a malformed artifact.
    """
    document = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "host": host_provenance(),
        "metrics": payload,
    }
    errors = validate_artifact(document)
    if errors:
        raise ValueError(f"refusing to write malformed benchmark artifact "
                         f"{name!r}: {errors}")
    out_dir = bench_artifact_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
