"""Application characterization across compiler flags (Figure 5, §4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler import OPT_LEVELS, compile_to_program
from ..workloads import WORKLOADS
from .subset_analysis import SubsetProfile, profile_program


@dataclass
class FlagSweep:
    """Figure 5 data for one application: one profile per -O flag."""

    name: str
    profiles: dict[str, SubsetProfile] = field(default_factory=dict)

    def codesize_kb(self, level: str) -> float:
        return self.profiles[level].code_size_bytes / 1024.0

    def distinct(self, level: str) -> int:
        return self.profiles[level].num_distinct


def sweep_application(name: str, source: str | None = None,
                      levels: tuple[str, ...] = OPT_LEVELS) -> FlagSweep:
    """Compile one application at every flag and profile each binary."""
    if source is None:
        source = WORKLOADS[name].source
    sweep = FlagSweep(name=name)
    for level in levels:
        result = compile_to_program(source, level)
        sweep.profiles[level] = profile_program(name, result.program, level)
    return sweep


def sweep_all(names: tuple[str, ...] | None = None,
              levels: tuple[str, ...] = OPT_LEVELS) -> dict[str, FlagSweep]:
    """The full Figure 5 study over the workload registry."""
    from ..workloads import ALL_NAMES
    return {name: sweep_application(name, levels=levels)
            for name in (names or ALL_NAMES)}


def summarize(sweeps: dict[str, FlagSweep],
              levels: tuple[str, ...] = OPT_LEVELS) -> dict[str, dict[str, float]]:
    """Per-flag averages the paper quotes in §4.1 (static counts, distinct)."""
    out: dict[str, dict[str, float]] = {}
    for level in levels:
        stats = [sweeps[name].profiles[level] for name in sweeps]
        out[level] = {
            "avg_static_instructions": sum(
                p.static_instructions for p in stats) / len(stats),
            "avg_distinct": sum(p.num_distinct for p in stats) / len(stats),
            "min_distinct": min(p.num_distinct for p in stats),
            "max_distinct": max(p.num_distinct for p in stats),
            "avg_isa_fraction": sum(
                p.isa_fraction for p in stats) / len(stats),
        }
    return out
