"""Physical implementation model — FlexIC layouts (Figure 10, §4.3).

The paper takes the three extreme-edge RISSPs and both baselines through
floorplanning, clock-tree insertion and place & route, implementing all five
at 300 kHz / 3 V after an iterative frequency-reduction loop.  Figure 10's
headline findings are physical-design effects, and each is modelled
explicitly:

  * **Clock-tree cost scales with flip-flops.**  Serv is 60 % FFs; after
    CTS buffering and the placement-utilization hit of a dense clock tree,
    its synthesis-area advantage over the small RISSPs *inverts*
    (RISSP-xgboost ends ~11 % smaller than Serv).  We model utilization as
    ``BASE_UTILIZATION - UTIL_FF_PENALTY * ff_area_fraction`` plus explicit
    H-tree buffers.
  * **Die overhead is partly fixed.**  IO ring, power grid and routing halo
    add a subset-independent term, which compresses area savings relative
    to synthesis (the paper's af_detect drops from double-digit synthesis
    savings to 8 % in layout).
  * **Clock-network switching dominates at 300 kHz.**  FF clock pins plus
    buffer/net capacitance charge at the clock rate; with a fixed
    grid/IO power floor this reproduces "Serv burns RISSP-RV32E-class power
    despite being 35 % smaller".
  * **Routing adds delay.**  Post-route critical paths are ~25 % slower
    than synthesis estimates, which is why none of the cores closed at
    synthesis fmax and the paper iterated downward (we expose the same
    iterative search, and implement at the paper's final 300 kHz point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..synth.power import FF_ENERGY_FACTOR
from ..synth.report import SynthReport
from ..synth.techlib import TechLib
from ..synth.timing import SWEEP_STEP_KHZ

#: Placement utilization of a flop-free design.
BASE_UTILIZATION = 0.75
#: Utilization lost per unit of FF area fraction (clock-tree congestion).
UTIL_FF_PENALTY = 0.365
#: Fixed die overhead in GE-equivalents of placed area (IO ring, power grid).
DIE_FIXED_GE = 733.0
#: H-tree branching factor for clock buffers.
CTS_BRANCHING = 4
#: Clock-pin + clock-net switching energy per FF (NAND2 units, at f_clk).
CLOCK_TREE_ENERGY_PER_FF = 20.0
#: Fixed power floor: die-wide clock grid and IO drivers (mW).
FIXED_POWER_MW = 0.35
#: Post-route delay penalty over the synthesis timing estimate.
ROUTING_DELAY_FACTOR = 1.25
#: Die area per NAND2-equivalent of placed cells, um^2 (0.6 um IGZO).
UM2_PER_GE = 570.0
#: The operating point the paper converged on for all five layouts.
PAPER_IMPL_KHZ = 300


@dataclass(frozen=True)
class LayoutReport:
    """One Figure 10 tile: die geometry, FF share, power at the impl point."""

    name: str
    num_instructions: int
    target_khz: int
    cts_buffers: int
    placed_area_ge: float        # cells + CTS buffers
    utilization: float
    die_area_ge: float           # placed/util + fixed overhead
    die_width_um: float
    die_height_um: float
    die_area_mm2: float
    ff_count: int
    ff_fraction: float
    power_mw: float
    impl_fmax_khz: int           # post-route achievable frequency
    slack_ok: bool

    def summary_row(self) -> str:
        return (f"{self.name:<16} {self.die_width_um:7.0f} x "
                f"{self.die_height_um:<7.0f} {self.die_area_mm2:6.2f} mm2  "
                f"FF {100 * self.ff_fraction:4.1f}%  "
                f"{self.power_mw:6.3f} mW  #instr {self.num_instructions}")


def cts_buffer_count(dff_count: int, branching: int = CTS_BRANCHING) -> int:
    """Buffers in a balanced H-tree over ``dff_count`` sinks."""
    buffers = 0
    level = dff_count
    while level > 1:
        level = math.ceil(level / branching)
        buffers += level
    return buffers


def implement(report: SynthReport, target_khz: int = PAPER_IMPL_KHZ,
              lib: TechLib | None = None) -> LayoutReport:
    """Run the physical-implementation model for one synthesized core."""
    lib = lib or report.lib
    buffers = cts_buffer_count(report.area.dff_count)
    buffer_area = buffers * 1.33  # buffer cell ~ one AND2-equivalent
    placed = report.area.total_ge + buffer_area
    ff_fraction = report.area.ff_fraction
    utilization = BASE_UTILIZATION - UTIL_FF_PENALTY * ff_fraction
    die_ge = placed / utilization + DIE_FIXED_GE
    die_um2 = die_ge * UM2_PER_GE
    side = math.sqrt(die_um2)

    impl_period_ns = (report.timing.critical_path_ns * ROUTING_DELAY_FACTOR
                      + lib.clock_overhead_ns)
    impl_fmax_analog = 1e6 / impl_period_ns
    impl_fmax = int(impl_fmax_analog // SWEEP_STEP_KHZ) * SWEEP_STEP_KHZ

    comb_units = report.area.comb_ge * lib.comb_activity
    ff_units = report.area.dff_count * (FF_ENERGY_FACTOR * lib.ff_activity
                                        + CLOCK_TREE_ENERGY_PER_FF)
    dynamic = (lib.dyn_mw_per_eunit_mhz * (comb_units + ff_units)
               * (target_khz / 1e3))
    static = lib.leakage_mw_per_ge * die_ge
    power = static + dynamic + FIXED_POWER_MW

    return LayoutReport(
        name=report.name,
        num_instructions=len(report.mnemonics),
        target_khz=target_khz,
        cts_buffers=buffers,
        placed_area_ge=placed,
        utilization=utilization,
        die_area_ge=die_ge,
        die_width_um=side,
        die_height_um=side,
        die_area_mm2=die_um2 / 1e6,
        ff_count=report.area.dff_count,
        ff_fraction=ff_fraction,
        power_mw=power,
        impl_fmax_khz=impl_fmax,
        slack_ok=target_khz <= impl_fmax_analog)


def find_common_frequency(reports: list[SynthReport],
                          lib: TechLib | None = None) -> int:
    """The paper's iterative loop: start at each core's synthesis fmax and
    step the target down by 25 kHz until *every* core closes post-route
    timing; returns the highest common achievable frequency (kHz).

    (The paper additionally lost frequency to manufacturing/functional
    yield and stopped at 300 kHz; the model exposes the timing-only bound.)
    """
    if not reports:
        raise ValueError("no designs to implement")
    lowest = None
    for report in reports:
        layout = implement(report, target_khz=PAPER_IMPL_KHZ, lib=lib)
        if lowest is None or layout.impl_fmax_khz < lowest:
            lowest = layout.impl_fmax_khz
    return max(lowest, PAPER_IMPL_KHZ)
