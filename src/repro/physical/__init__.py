"""Physical implementation model: floorplan, CTS, routing, layout reports."""

from .flow import (
    BASE_UTILIZATION,
    CLOCK_TREE_ENERGY_PER_FF,
    DIE_FIXED_GE,
    FIXED_POWER_MW,
    LayoutReport,
    PAPER_IMPL_KHZ,
    ROUTING_DELAY_FACTOR,
    UM2_PER_GE,
    UTIL_FF_PENALTY,
    cts_buffer_count,
    find_common_frequency,
    implement,
)

__all__ = [
    "BASE_UTILIZATION", "CLOCK_TREE_ENERGY_PER_FF", "DIE_FIXED_GE",
    "FIXED_POWER_MW", "LayoutReport", "PAPER_IMPL_KHZ",
    "ROUTING_DELAY_FACTOR", "UM2_PER_GE", "UTIL_FF_PENALTY",
    "cts_buffer_count", "find_common_frequency", "implement",
]
