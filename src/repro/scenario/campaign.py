"""Coverage-guided scenario campaigns: probe, randomize, mutate, merge.

A campaign is three deterministic phases over one splitmix64 seed
stream, each sharded through the simulation farm (contiguous scenario
ranges, outcomes concatenated in shard order — bit-identical at any
worker count, ``workers=1`` the exact serial path):

1. **probes** — a fixed directed set built by
   :func:`repro.scenario.gen.mutate_toward` for every trap-cause and
   arbitration-ordering bin (the set the CI gate asserts reaches all of
   them);
2. **random** — ``count`` scenarios, scenario ``i`` drawn from
   ``derive_seed(base_seed, i)``;
3. **mutation** — while budget remains and bins are uncovered: one
   directed scenario per uncovered bin (registry order), seeded from a
   disjoint stream, the merged map re-scored after each round.  The loop
   stops at budget, saturation (nothing uncovered) or a dry round (no
   new bin covered — mutating the same targets again with fresh seeds
   explores different interrupt alignments, so one dry round means the
   remaining bins are out of this campaign's reach).

Every phase decision is a pure function of seeds plus the merged
coverage map, so the whole campaign replays from its config; every
outcome row carries its ``(scenario-id, seed)`` replay pair.
"""

from __future__ import annotations

from ..obs import telemetry as _obs
from ..verify.fuzz import FUZZ_BASE_SEED, derive_seed
from .coverage import BINS, CoverageMap, coverage_from_trace, family_bins
from .gen import DEFAULT_BUDGET, mutate_toward, random_scenario
from .run import outcome_coverage, scenario_core_spec

#: Disjoint seed-stream offsets per phase (random scenarios use indices
#: ``0..count``; these keep directed phases off that stream).
MUTATION_STREAM = 1 << 20
PROBE_STREAM = 1 << 21

#: The three fixed SoC firmware images the repository verified against
#: before the scenario engine existed — the coverage baseline the
#: acceptance gate compares campaigns to.
FIXED_WORKLOADS = ("af_detect_irq", "sensor_streaming", "label_refresh")

#: Bins the probe set must reach (the CI gate): every trap cause and
#: every arbitration ordering.
PROBE_GATE_BINS = family_bins("trap.") + family_bins("arb.")


def probe_scenarios(base_seed: int = FUZZ_BASE_SEED,
                    budget: int = DEFAULT_BUDGET) -> list:
    """The deterministic directed probe set.

    Two seeds per race/storm bin (their fine interrupt alignment is the
    seed-dependent part of the recipe), one per plain bin.
    """
    probes = []
    index = 0
    for bin_name in PROBE_GATE_BINS:
        tries = 2 if ".race." in bin_name or ".storm." in bin_name else 1
        for _ in range(tries):
            seed = derive_seed(base_seed, PROBE_STREAM + index)
            probes.append(mutate_toward(
                bin_name, seed, budget=budget,
                scenario_id=f"probe[{index:02d}]:{bin_name}:"
                            f"seed={seed:#018x}"))
            index += 1
    return probes


def _run_scenarios(scenarios, checks, spec, workers: int,
                   shards: int) -> list[dict]:
    """Shard one phase's scenarios as contiguous ranges; outcomes merge
    in scenario order."""
    from ..farm.runner import run_tasks
    from ..farm.tasks import ScenarioShardTask

    if not scenarios:
        return []
    shard_count = shards or workers
    shard_count = max(1, min(shard_count, len(scenarios)))
    bounds = [len(scenarios) * index // shard_count
              for index in range(shard_count + 1)]
    tasks = [ScenarioShardTask(
        task_id=f"scenario[{index:02d}]", core=spec,
        scenarios=tuple(scenarios[lo:hi]), checks=tuple(checks[lo:hi]))
        for index, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        if hi > lo]
    outcomes: list[dict] = []
    for shard in run_tasks(tasks, workers=workers):
        outcomes.extend(shard)
    return outcomes


def _merge_outcomes(merged: CoverageMap, outcomes) -> int:
    """Fold outcome rows into the map (row order), annotating each row
    with the bins it covered first; returns how many bins were new."""
    new_total = 0
    for row in outcomes:
        cov = outcome_coverage(row)
        new_bins = [name for name in cov.covered()
                    if not merged.counts[name]]
        merged.merge(cov)
        row["new_bins"] = new_bins
        new_total += len(new_bins)
    return new_total


def scenario_campaign(count: int = 64, base_seed: int = FUZZ_BASE_SEED,
                      budget: int = DEFAULT_BUDGET, workers: int = 1,
                      shards: int = 0, golden_stride: int = 8,
                      probes: bool = True,
                      mutation_budget: int = 16) -> dict:
    """Run one coverage-guided campaign; returns the merged result.

    ``golden_stride`` samples every n-th scenario (globally numbered
    across phases) for a full golden-ISS replay compare; 0 disables.
    ``mutation_budget`` caps the directed scenarios the mutation loop
    may spend on uncovered bins (0 = random-only).
    """
    spec = scenario_core_spec()
    merged = CoverageMap()
    all_outcomes: list[dict] = []
    position = 0

    def check_flags(batch) -> tuple[bool, ...]:
        nonlocal position
        flags = tuple(golden_stride > 0
                      and (position + offset) % golden_stride == 0
                      for offset in range(len(batch)))
        position += len(batch)
        return flags

    probe_list = probe_scenarios(base_seed, budget) if probes else []
    probe_outcomes = _run_scenarios(probe_list, check_flags(probe_list),
                                    spec, workers, shards)
    probe_coverage = CoverageMap()
    _merge_outcomes(probe_coverage, probe_outcomes)
    for row in probe_outcomes:    # probes count toward the merged map too
        merged.merge(outcome_coverage(row))
    all_outcomes.extend(probe_outcomes)

    randoms = [random_scenario(
        derive_seed(base_seed, index), budget=budget,
        scenario_id=f"scn[{index:03d}]:"
                    f"seed={derive_seed(base_seed, index):#018x}")
        for index in range(count)]
    random_outcomes = _run_scenarios(randoms, check_flags(randoms), spec,
                                     workers, shards)
    _merge_outcomes(merged, random_outcomes)
    all_outcomes.extend(random_outcomes)

    spawned = 0
    rounds = 0
    while spawned < mutation_budget:
        uncovered = merged.uncovered()
        if not uncovered:
            break   # saturated
        targets = uncovered[:mutation_budget - spawned]
        batch = []
        for offset, bin_name in enumerate(targets):
            seed = derive_seed(base_seed,
                               MUTATION_STREAM + spawned + offset)
            batch.append(mutate_toward(
                bin_name, seed, budget=budget,
                scenario_id=f"mut[{spawned + offset:03d}]:{bin_name}:"
                            f"seed={seed:#018x}"))
        _obs.bump("scenario.mutants", len(batch))
        batch_outcomes = _run_scenarios(batch, check_flags(batch), spec,
                                        workers, shards)
        newly = _merge_outcomes(merged, batch_outcomes)
        all_outcomes.extend(batch_outcomes)
        spawned += len(batch)
        rounds += 1
        if not newly:
            break   # dry round: remaining bins out of reach
    # probe rows were merged before annotation; annotate consistently.
    for row in probe_outcomes:
        if "new_bins" not in row:
            row["new_bins"] = []

    failures = [{"scenario_id": row["scenario_id"], "seed": row["seed"],
                 "verdict": row["failure"]}
                for row in all_outcomes if row["failure"] is not None]
    return {
        "coverage": merged,
        "probe_coverage": probe_coverage if probes else None,
        "scenarios": all_outcomes,
        "failures": failures,
        "phases": {"probes": len(probe_outcomes),
                   "random": len(random_outcomes),
                   "mutated": spawned, "mutation_rounds": rounds,
                   "saturated": not merged.uncovered()},
    }


def probe_gate_missing(probe_coverage: CoverageMap) -> tuple[str, ...]:
    """Gate bins the probe set failed to reach (must be empty in CI)."""
    covered = set(probe_coverage.covered())
    return tuple(name for name in PROBE_GATE_BINS if name not in covered)


def fixed_workload_coverage(max_instructions: int = 2_000_000
                            ) -> CoverageMap:
    """Merged behavioral coverage of the three fixed SoC workloads —
    the pre-scenario-engine baseline the acceptance gate compares
    campaign coverage against (same extractor, same bins)."""
    from ..farm.campaigns import workload_target
    from ..rtl.core_sim import RisspSim

    merged = CoverageMap()
    for name in FIXED_WORKLOADS:
        core, program, spec = workload_target(name)
        sim = RisspSim(core, program, trace=True, backend="fused",
                       soc=spec)
        result = sim.run(max_instructions=max_instructions)
        merged.merge(coverage_from_trace(
            result.trace, result.halted_by,
            len(spec.sensor_samples) if spec is not None else 0))
    return merged
