"""repro.scenario — coverage-guided scenario engine (PR 9).

Hand-picked workloads exercise the paths their authors thought of; the
paper's verification story needs the paths nobody did.  This package
generates whole SoC environments — sensor waveform models, device event
schedules, interrupt-storm and back-to-back race patterns, mid-run fault
injection — as pure picklable descriptions derived from splitmix64
seeds, scores each run against a fixed behavioral coverage registry fed
from the RVFI trace and telemetry surfaces, and mutates scenario
parameters toward uncovered bins until budget or saturation.  Every
reported failure replays from its ``(scenario-id, seed)`` pair.

Layout:

:mod:`~repro.scenario.gen`
    The scenario DSL: waveform/fault/scenario dataclasses, the firmware
    renderer, ``random_scenario`` / ``mutate_toward`` /
    ``replay_scenario``.
:mod:`~repro.scenario.coverage`
    The fixed bin registry, :class:`CoverageMap`, trace/fleet extractors
    and the schema-validated coverage report.
:mod:`~repro.scenario.run`
    Segmented execution with fault injection, golden-vs-fused replay
    compare, the plain outcome-row surface.
:mod:`~repro.scenario.campaign`
    The probe/random/mutation campaign, farm-sharded bit-identically at
    any worker count.
"""

from .campaign import (FIXED_WORKLOADS, PROBE_GATE_BINS,
                       fixed_workload_coverage, probe_gate_missing,
                       probe_scenarios, scenario_campaign)
from .coverage import (BINS, GATE_FAMILIES, REPORT_KIND, REPORT_SCHEMA,
                       CoverageMap, build_report, coverage_from_fleet,
                       coverage_from_trace, family_bins, validate_report,
                       write_report)
from .gen import (DEFAULT_BUDGET, FLEET_STUNTS, MODES, WAVEFORM_KINDS,
                  FaultEvent, FleetScenario, SocScenario, Waveform,
                  mutate_toward, random_scenario, replay_scenario)
from .run import (outcome_coverage, run_fleet_scenario, run_scenario,
                  run_soc_scenario, scenario_core_spec)

__all__ = [
    "BINS", "CoverageMap", "DEFAULT_BUDGET", "FIXED_WORKLOADS",
    "FLEET_STUNTS", "FaultEvent", "FleetScenario", "GATE_FAMILIES",
    "MODES", "PROBE_GATE_BINS", "REPORT_KIND", "REPORT_SCHEMA",
    "SocScenario", "WAVEFORM_KINDS", "Waveform", "build_report",
    "coverage_from_fleet", "coverage_from_trace", "family_bins",
    "fixed_workload_coverage", "mutate_toward", "outcome_coverage",
    "probe_gate_missing", "probe_scenarios", "random_scenario",
    "replay_scenario", "run_fleet_scenario", "run_scenario",
    "run_soc_scenario", "scenario_campaign", "scenario_core_spec",
    "validate_report", "write_report",
]
