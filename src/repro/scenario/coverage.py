"""Behavioral coverage map over RVFI traces and fleet telemetry.

The map answers "which machine behaviors has this campaign actually
exercised?" with a **fixed bin registry** (:data:`BINS`), mirroring
``obs.COUNTERS``: every :class:`CoverageMap` carries every bin (count
zero when unreached), so merged maps are structure-identical — same key
set, same order — for any worker count or scenario mix.  Merging is a
per-bin count sum in registry order.

Bins are extracted from surfaces the stack already exposes:

``trap.*``
    RVFI rows with ``trap=1``, classified by decoding the faulting word
    (ecall / ebreak / anything else = illegal).
``intr.*`` and ``arb.*``
    Interrupt-entry rows (``intr`` = arbitrated cause 7/16).  An entry
    whose previous row retires ``mret`` is *back-to-back*: same cause as
    the previous entry = a storm, different cause = a same-window race
    named for whichever source entered first.  Otherwise the entry is an
    isolated ``arb.{timer,sensor}_only``.
``wfi.wake.*``
    A retired ``wfi`` followed by an interrupt-entry row woke into the
    handler (``timer``/``sensor``); followed by a plain row it woke with
    ``mstatus.MIE`` off (``masked`` — the privileged-spec wake rule the
    polled firmware template leans on).
``bus.*``
    Loads/stores whose ``mem_addr`` falls in a device window.
``sensor.*``
    ACK-register stores: a write ``>= COUNT`` drains the waveform; a
    jump of more than one past the previous ACK skips samples.
``halt.*``
    The run's ``halted_by``.
``fleet.diverge.*``
    Batched-fleet lane divergences, read as ``obs`` counter deltas from
    the nested telemetry session every fleet scenario runs under (only
    the causes a SoC-less fleet can survive — memory faults raise).

Everything trace-derived uses only cosim-compared columns, so a
scenario's coverage is **backend-independent**: golden and fused runs of
the same scenario yield the same map (a property the tests assert).
"""

from __future__ import annotations

import json
import pathlib

from ..soc import POWER_BASE, SENSOR_BASE, TIMER_BASE, UART_BASE

_WINDOW = 0x10
_ACK_ADDR = SENSOR_BASE + 0xC

#: The fixed coverage-bin registry, grouped by family.  Order is part of
#: the contract: reports, merges and mutation targeting all walk it.
BINS: tuple[str, ...] = (
    # -- trap causes reached (synchronous, handler installed)
    "trap.ecall",
    "trap.ebreak",
    "trap.illegal",
    # -- interrupt causes entered
    "intr.timer",
    "intr.sensor",
    # -- arbitration orderings
    "arb.timer_only",
    "arb.sensor_only",
    "arb.race.timer_first",
    "arb.race.sensor_first",
    "arb.storm.timer",
    "arb.storm.sensor",
    # -- wfi wake paths
    "wfi.wake.timer",
    "wfi.wake.sensor",
    "wfi.wake.masked",
    # -- SocBus device windows touched
    "bus.power.store",
    "bus.timer.load",
    "bus.timer.store",
    "bus.uart.load",
    "bus.uart.store",
    "bus.sensor.load",
    "bus.sensor.store",
    # -- SensorPort edge behavior
    "sensor.drained",
    "sensor.ack_skip",
    # -- how runs ended
    "halt.poweroff",
    "halt.wfi",
    "halt.limit",
    "halt.ecall",
    "halt.ebreak",
    # -- batched-fleet divergence causes (the survivable ones)
    "fleet.diverge.emulated",
    "fleet.diverge.mret",
    "fleet.diverge.trap",
    "fleet.diverge.rv32e_bound",
    "fleet.diverge.illegal",
)

#: Bin-name prefixes of the families the acceptance/CI gates reason
#: about (trap causes, arbitration orderings, wfi wake paths).
GATE_FAMILIES = ("trap.", "arb.", "wfi.")


def family_bins(prefix: str) -> tuple[str, ...]:
    return tuple(name for name in BINS if name.startswith(prefix))


class CoverageMap:
    """Counts per registry bin; structure-identical across merges."""

    __slots__ = ("counts",)

    def __init__(self, counts: dict[str, int] | None = None):
        self.counts = {name: 0 for name in BINS}
        if counts:
            for name, value in counts.items():
                self.hit(name, value)

    def hit(self, name: str, amount: int = 1) -> None:
        if name not in self.counts:
            raise ValueError(f"unknown coverage bin {name!r}")
        self.counts[name] += amount

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        for name in BINS:
            self.counts[name] += other.counts[name]
        return self

    def covered(self) -> tuple[str, ...]:
        """Reached bins, in registry order."""
        return tuple(name for name in BINS if self.counts[name])

    def uncovered(self) -> tuple[str, ...]:
        return tuple(name for name in BINS if not self.counts[name])

    def covered_in(self, prefix: str) -> tuple[str, ...]:
        return tuple(name for name in self.covered()
                     if name.startswith(prefix))

    def to_doc(self) -> dict[str, int]:
        return {name: self.counts[name] for name in BINS}

    @classmethod
    def from_doc(cls, doc: dict) -> "CoverageMap":
        if list(doc) != list(BINS):
            raise ValueError("coverage document bins do not match the "
                             "registry (keys or order differ)")
        return cls(dict(doc))

    def __eq__(self, other) -> bool:
        return isinstance(other, CoverageMap) and \
            list(self.counts.items()) == list(other.counts.items())

    def __repr__(self) -> str:
        return f"CoverageMap({len(self.covered())}/{len(BINS)} covered)"


# ------------------------------------------------------ trace extraction

_MNEMONIC_CACHE: dict[int, str] = {}


def _mnemonic(word: int) -> str:
    """Decoded mnemonic of an instruction word, '' when not decodable."""
    cached = _MNEMONIC_CACHE.get(word)
    if cached is None:
        from ..isa.encoding import decode

        try:
            cached = decode(word).mnemonic
        except Exception:
            cached = ""
        _MNEMONIC_CACHE[word] = cached
    return cached


def _bus_bin(addr: int, is_store: bool) -> str | None:
    for base, device in ((POWER_BASE, "power"), (TIMER_BASE, "timer"),
                         (UART_BASE, "uart"), (SENSOR_BASE, "sensor")):
        if base <= addr < base + _WINDOW:
            name = f"bus.{device}.{'store' if is_store else 'load'}"
            return name if name in BINS else None
    return None


def coverage_from_trace(trace, halted_by: str,
                        sensor_count: int) -> CoverageMap:
    """Extract one SoC run's coverage from its RVFI trace.

    Uses only cosim-compared columns (insn/trap/intr/mem_*) plus the
    run's ``halted_by`` and the platform's sample count, so the result is
    identical on every backend that cosimulates clean.
    """
    cov = CoverageMap()
    insn = trace.column("insn")
    trap = trace.column("trap")
    intr = trace.column("intr")
    mem_addr = trace.column("mem_addr")
    mem_rmask = trace.column("mem_rmask")
    mem_wmask = trace.column("mem_wmask")
    mem_wdata = trace.column("mem_wdata")
    rows = len(insn)
    prev_intr_cause = 0
    prev_ack = 0
    for index in range(rows):
        if trap[index]:
            mnemonic = _mnemonic(insn[index])
            cov.hit("trap.ecall" if mnemonic == "ecall" else
                    "trap.ebreak" if mnemonic == "ebreak" else
                    "trap.illegal")
        cause = intr[index]
        if cause:
            cov.hit("intr.timer" if cause == 7 else "intr.sensor")
            back_to_back = index > 0 and not trap[index - 1] \
                and _mnemonic(insn[index - 1]) == "mret"
            if back_to_back and prev_intr_cause:
                if cause == prev_intr_cause:
                    cov.hit("arb.storm.timer" if cause == 7
                            else "arb.storm.sensor")
                elif prev_intr_cause == 7:
                    cov.hit("arb.race.timer_first")
                else:
                    cov.hit("arb.race.sensor_first")
            else:
                cov.hit("arb.timer_only" if cause == 7
                        else "arb.sensor_only")
            prev_intr_cause = cause
        if not trap[index] and _mnemonic(insn[index]) == "wfi" \
                and index + 1 < rows:
            nxt = intr[index + 1]
            cov.hit("wfi.wake.timer" if nxt == 7 else
                    "wfi.wake.sensor" if nxt == 16 else
                    "wfi.wake.masked")
        if mem_rmask[index]:
            name = _bus_bin(mem_addr[index], is_store=False)
            if name:
                cov.hit(name)
        if mem_wmask[index]:
            name = _bus_bin(mem_addr[index], is_store=True)
            if name:
                cov.hit(name)
            if mem_addr[index] == _ACK_ADDR:
                ack = mem_wdata[index]
                if ack >= sensor_count:
                    cov.hit("sensor.drained")
                if ack > prev_ack + 1:
                    cov.hit("sensor.ack_skip")
                prev_ack = ack
    halt_bin = f"halt.{halted_by}"
    if halt_bin in BINS:
        cov.hit(halt_bin)
    return cov


def coverage_from_fleet(lane_halts, counter_delta: dict) -> CoverageMap:
    """Fleet-scenario coverage: per-lane halt causes plus the scenario's
    ``fleet.diverge.*`` telemetry-counter deltas."""
    cov = CoverageMap()
    for halted_by in lane_halts:
        halt_bin = f"halt.{halted_by}"
        if halt_bin in BINS:
            cov.hit(halt_bin)
    for name in family_bins("fleet.diverge."):
        delta = counter_delta.get(name, 0)
        if delta:
            cov.hit(name, delta)
    return cov


# ------------------------------------------------------- coverage report

REPORT_SCHEMA = 1
REPORT_KIND = "repro-scenario-coverage"


def build_report(result: dict, config: dict | None = None) -> dict:
    """The schema-validated campaign report document (see
    :func:`validate_report` for the contract)."""
    from ..obs.manifest import host_provenance

    coverage: CoverageMap = result["coverage"]
    probe: CoverageMap | None = result.get("probe_coverage")
    return {
        "schema": REPORT_SCHEMA,
        "kind": REPORT_KIND,
        "host": host_provenance(),
        "config": dict(config or {}),
        "bins": coverage.to_doc(),
        "covered": list(coverage.covered()),
        "uncovered": list(coverage.uncovered()),
        "probe_bins": probe.to_doc() if probe is not None else None,
        "scenarios": [dict(row) for row in result["scenarios"]],
        "failures": [dict(row) for row in result["failures"]],
    }


def validate_report(document: object) -> list[str]:
    """Structural validation; returns human-readable problems (empty =
    valid).  Like the telemetry manifest, the writer refuses to emit a
    document that fails its own schema."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["report must be an object"]
    if document.get("schema") != REPORT_SCHEMA:
        errors.append(f"schema must be {REPORT_SCHEMA}")
    if document.get("kind") != REPORT_KIND:
        errors.append(f"kind must be {REPORT_KIND!r}")
    bins = document.get("bins")
    if not isinstance(bins, dict) or list(bins) != list(BINS):
        errors.append("bins must carry exactly the registry bins, in "
                      "registry order")
    else:
        for name, value in bins.items():
            if not isinstance(value, int) or value < 0:
                errors.append(f"bins[{name!r}] must be a non-negative int")
        covered = [name for name in BINS if bins[name]]
        if document.get("covered") != covered:
            errors.append("covered must list the non-zero bins in "
                          "registry order")
        if document.get("uncovered") != \
                [name for name in BINS if not bins[name]]:
            errors.append("uncovered must list the zero bins in "
                          "registry order")
    probe = document.get("probe_bins")
    if probe is not None and (not isinstance(probe, dict)
                              or list(probe) != list(BINS)):
        errors.append("probe_bins must be null or a full registry map")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list):
        errors.append("scenarios must be a list")
    else:
        for index, row in enumerate(scenarios):
            if not isinstance(row, dict):
                errors.append(f"scenarios[{index}] must be an object")
                continue
            for key in ("scenario_id", "seed", "kind", "halted_by",
                        "instructions", "new_bins"):
                if key not in row:
                    errors.append(f"scenarios[{index}] missing {key!r}")
    failures = document.get("failures")
    if not isinstance(failures, list):
        errors.append("failures must be a list")
    else:
        for index, row in enumerate(failures):
            if not isinstance(row, dict) or "scenario_id" not in row \
                    or "seed" not in row or "verdict" not in row:
                errors.append(f"failures[{index}] must carry scenario_id/"
                              f"seed/verdict (the replay pair)")
    return errors


def write_report(path, result: dict, config: dict | None = None):
    """Validate-then-write the campaign coverage report (refuses to emit
    a malformed document, mirroring ``obs.write_manifest``)."""
    document = build_report(result, config)
    errors = validate_report(document)
    if errors:
        raise ValueError("refusing to write invalid coverage report: "
                         + "; ".join(errors))
    out = pathlib.Path(path)
    if out.parent != pathlib.Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2) + "\n")
    return out
