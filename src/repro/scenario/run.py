"""Scenario execution: segmented runs, fault injection, cross-backend
replay and coverage extraction.

The SoC runner exploits the resumable-run contract both simulator
families share: every ``run(max_instructions=N)`` call restarts the
retirement counter at zero with machine state persisting, and peek/poke
between calls behaves exactly like the per-cycle backends.  A scenario
with fault events therefore runs as *segments* split at the fault times;
between segments the platform clock is re-synced and re-based
identically on every backend (``soc.sync(k); soc.rebase(0)``), the pokes
are applied through the backend's architectural poke surface, and the
per-segment traces concatenate into one master trace whose columns are
directly comparable across backends (per-segment ``order`` restart
included).

Coverage is extracted purely from that master trace plus ``halted_by``
(see :mod:`repro.scenario.coverage`), so a scenario's coverage — like
its result — is a pure function of the scenario description.
"""

from __future__ import annotations

from contextlib import contextmanager

from .. import obs
from ..obs import telemetry as _obs
from ..sim.golden import SimulationError
from ..sim.memory import MemoryError_
from ..sim.tracing import RvfiTrace
from .coverage import CoverageMap, coverage_from_fleet, coverage_from_trace
from .gen import SCRATCH_BASE, FleetScenario, SocScenario

#: RVFI columns compared across backends — the cosim contract
#: (rs1/rs2 read-effect columns are backend-representation-specific).
from ..rtl.core_sim import COSIM_FIELDS  # noqa: E402


def scenario_core_spec():
    """The rebuildable full-ISA trap-capable core every scenario runs on
    (same shape the telemetry probe builds)."""
    from ..farm.tasks import CoreSpec
    from ..isa.instructions import INSTRUCTIONS
    from ..rtl.rissp import build_rissp

    core = build_rissp([d.mnemonic for d in INSTRUCTIONS] + ["mret"],
                       name="rissp_scenario")
    return CoreSpec.of(core)


# -------------------------------------------------------- fault plumbing

def _apply_fault(sim, fault) -> None:
    """Poke one fault through the backend's architectural surface."""
    if fault.kind == "reg":
        if hasattr(sim, "rtl"):
            sim.rtl.regfile_data[fault.target] = fault.value & 0xFFFFFFFF
        else:
            sim.write_reg(fault.target, fault.value)
        return
    if fault.kind == "mem":
        sim.memory.store(fault.target, fault.value & 0xFFFFFFFF, 4)
        if hasattr(sim, "image"):
            sim.image.invalidate(fault.target)
        return
    raise ValueError(f"unknown fault kind {fault.kind!r}")


def _fault_schedule(scenario: SocScenario) -> list[tuple[int, list]]:
    """Fault events grouped by (clamped, sorted) retirement time."""
    grouped: dict[int, list] = {}
    for fault in scenario.faults:
        at = max(1, min(fault.at, scenario.budget - 1))
        grouped.setdefault(at, []).append(fault)
    return sorted(grouped.items())


# ------------------------------------------------------------ SoC runner

def run_soc_scenario(core, scenario: SocScenario, backend: str = "fused"):
    """Run one SoC scenario; returns ``(info, master_trace)``.

    ``info`` is a plain picklable dict (halted_by / instructions /
    exit_code / refusal); the master trace concatenates the per-segment
    traces.  A deterministic simulator refusal (``SimulationError`` /
    ``MemoryError_`` — e.g. a fault-poked value steering a store out of
    RAM) is an *outcome*, recorded by exception type so backends can be
    compared on it, not a crash.
    """
    from ..isa.assembler import assemble
    from ..rtl.core_sim import RisspSim
    from ..sim.golden import GoldenSim

    program = assemble(scenario.source())
    spec = scenario.soc_spec()
    if backend == "golden":
        sim = GoldenSim(program, trace=True, soc=spec)
    else:
        sim = RisspSim(core, program, trace=True, backend=backend,
                       soc=spec)
    master = RvfiTrace()
    total = 0
    halted_by = "limit"
    exit_code = 0
    refusal = ""
    schedule = _fault_schedule(scenario)
    segments = [at for at, _ in schedule] + [scenario.budget]
    faults_at = dict(schedule)
    done = False
    for boundary in segments:
        step = boundary - total
        if step > 0 and not done:
            try:
                result = sim.run(max_instructions=step)
            except (SimulationError, MemoryError_) as exc:
                refusal = type(exc).__name__
                done = True
                break
            for index in range(len(result.trace)):
                master.append_row(*result.trace.row(index))
            total += result.instructions
            if result.halted_by != "limit" or total >= scenario.budget:
                halted_by = result.halted_by
                exit_code = result.exit_code
                done = True
                break
            # Re-sync the platform clock for the next segment's
            # order-restart — identical on every backend.
            if sim.soc is not None:
                sim.soc.sync(result.instructions)
                sim.soc.rebase(0)
        for fault in faults_at.get(boundary, ()):
            _apply_fault(sim, fault)
    if not done:   # budget spent exactly at a fault boundary
        halted_by = "limit"
    info = {"halted_by": halted_by if not refusal else "refused",
            "instructions": total, "exit_code": exit_code,
            "refusal": refusal}
    return info, master


def _compare_soc_backends(core, scenario: SocScenario) -> str | None:
    """Replay the scenario on the golden ISS and diff the fused run
    against it — full cosim-column compare over the master traces.
    Returns ``None`` on a clean match, else a replayable verdict."""
    fused_info, fused_trace = run_soc_scenario(core, scenario,
                                               backend="fused")
    golden_info, golden_trace = run_soc_scenario(core, scenario,
                                                 backend="golden")
    if fused_info != golden_info:
        return (f"mismatch:result fused={fused_info} "
                f"golden={golden_info}")
    for field in COSIM_FIELDS:
        if fused_trace.column(field) != golden_trace.column(field):
            return f"mismatch:{field}"
    return None


# ---------------------------------------------------------- fleet runner

@contextmanager
def _captured_counters():
    """A nested telemetry session whose counters are read as this
    scenario's deltas, then replayed into the enclosing session (if any)
    so outer totals still see the activity."""
    parent = _obs.get()
    with obs.session() as telemetry:
        yield telemetry
    if parent is not None:
        for name, value in telemetry.counters.items():
            parent.counters[name] += value
        for snapshot in telemetry.tasks:
            parent.add_task(snapshot)


def run_fleet_scenario(core, scenario: FleetScenario):
    """Run one fleet scenario; returns ``(info, lane_rows,
    counter_delta)`` where the delta carries the ``fleet.diverge.*``
    counts the scenario's lanes produced."""
    from ..isa.assembler import assemble
    from ..rtl.fleet import FleetSim

    programs = [assemble(scenario.lane_source(lane))
                for lane in range(len(scenario.lanes))]
    with _captured_counters() as telemetry:
        fleet = FleetSim(core, programs=programs, mem_size=0x10000)
        for lane, program in enumerate(programs):
            if scenario.lane_needs_handler(lane):
                fleet.poke_register(lane, "mtvec",
                                    program.symbols["handler"])
        results = fleet.run(max_instructions=scenario.budget, quantum=16)
    rows = [(lane, result.exit_code, result.instructions,
             result.halted_by)
            for lane, result in enumerate(results)]
    info = {"halted_by": rows[0][3] if rows else "limit",
            "instructions": sum(row[2] for row in rows),
            "exit_code": rows[0][1] if rows else 0, "refusal": ""}
    return info, rows, dict(telemetry.counters)


def _handler_lane_verdict(core, program, handler: int, budget: int,
                          batched_row) -> str | None:
    """Replay one handler-poked lane on a single fused sim and on the
    golden ISS, with the same ``mtvec`` poke the fleet applied; compare
    the two runs column-for-column and the fused run against the
    batched row."""
    from ..rtl.core_sim import RisspSim
    from ..sim.golden import GoldenSim

    outcomes = []
    traces = []
    for sim in (RisspSim(core, program, trace=True),
                GoldenSim(program, trace=True)):
        sim.csr.mtvec = handler
        try:
            result = sim.run(max_instructions=budget)
        except (SimulationError, MemoryError_) as exc:
            outcomes.append(("refused", type(exc).__name__, 0))
            traces.append(None)
        else:
            outcomes.append((result.halted_by, result.exit_code,
                             result.instructions))
            traces.append(result.trace)
    if outcomes[0] != outcomes[1]:
        return (f"mismatch:result fused={outcomes[0]} "
                f"golden={outcomes[1]}")
    if traces[0] is not None and traces[1] is not None:
        for field in COSIM_FIELDS:
            if traces[0].column(field) != traces[1].column(field):
                return f"mismatch:{field}"
    lane_out = (batched_row[3], batched_row[1], batched_row[2])
    if outcomes[0] != lane_out:
        return f"mismatch:batched fleet={lane_out} single={outcomes[0]}"
    return None


def _compare_fleet_lanes(core, scenario: FleetScenario, rows) -> str | None:
    """Replay each lane alone on a single fused sim and on the golden
    ISS; any divergence from the batched rows is a verdict.  Lanes the
    fleet armed with a poked trap handler get the same poke here —
    ``cosim_verdict`` has no poke surface and would refuse their traps."""
    from ..isa.assembler import assemble
    from ..verify.mutation import cosim_verdict

    for row in rows:
        lane, exit_code, instructions, halted_by = row
        program = assemble(scenario.lane_source(lane))
        if scenario.lane_needs_handler(lane):
            verdict = _handler_lane_verdict(
                core, program, program.symbols["handler"],
                scenario.budget, row)
        else:
            verdict = cosim_verdict(core, program,
                                    max_instructions=scenario.budget)
            if verdict == "mismatch:limit" and halted_by == "limit":
                verdict = None   # both sides agree: loops past budget
        if verdict is not None:
            return f"lane{lane}:{verdict}"
    return None


# ------------------------------------------------------- outcome surface

def run_scenario(core, scenario, check_backends: bool = False) -> dict:
    """Run one scenario (either kind); returns its plain outcome row.

    The row is picklable and schema-stable: scenario identity (the
    replay pair), result, the coverage bins it hit, and a ``failure``
    verdict (``None`` = clean).  ``check_backends`` additionally replays
    the scenario on the golden ISS (SoC kind: full cosim-column compare
    of the segmented master traces; fleet kind: per-lane batched-vs-
    single cosim) — the campaign samples this.
    """
    _obs.bump("scenario.runs")
    failure = None
    if isinstance(scenario, SocScenario):
        info, trace = run_soc_scenario(core, scenario, backend="fused")
        cov = coverage_from_trace(trace, info["halted_by"],
                                  len(scenario.waveform.samples()))
        if check_backends:
            _obs.bump("scenario.replays")
            failure = _compare_soc_backends(core, scenario)
    elif isinstance(scenario, FleetScenario):
        info, rows, delta = run_fleet_scenario(core, scenario)
        cov = coverage_from_fleet([row[3] for row in rows], delta)
        if check_backends:
            _obs.bump("scenario.replays")
            failure = _compare_fleet_lanes(core, scenario, rows)
    else:
        raise TypeError(f"not a scenario: {type(scenario).__name__}")
    if failure is not None:
        _obs.bump("scenario.failures")
    return {
        "scenario_id": scenario.scenario_id,
        "seed": scenario.seed,
        "kind": scenario.kind,
        "halted_by": info["halted_by"],
        "instructions": info["instructions"],
        "exit_code": info["exit_code"],
        "refusal": info["refusal"],
        "bins": cov.to_doc(),
        "failure": failure,
        "checked_backends": bool(check_backends),
    }


def outcome_coverage(outcome: dict) -> CoverageMap:
    return CoverageMap.from_doc(outcome["bins"])
