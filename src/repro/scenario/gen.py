"""Scenario DSL: pure picklable descriptions of generated SoC environments.

A *scenario* is everything the three fixed SoC workloads hard-code, made
parametric and derived from a splitmix64 seed
(:func:`repro.verify.fuzz.derive_seed`):

* a **waveform model** (:class:`Waveform`) the SensorPort replays —
  ECG-like periodic, LCG noise, burst, flatline or ramp;
* a **device event schedule** — sensor sampling cadence, timer arming
  and re-arm period, and the platform clock's starting offset
  (``SocSpec.mtime_offset``), which together produce isolated
  interrupts, same-window races and back-to-back storms;
* a **firmware template** rendered from the scenario parameters
  (interrupt-driven, wfi-polled, or busy-spin main loops; in-order /
  skipping / draining sensor ACK policies; optional synchronous
  ecall/ebreak/illegal trap ops; optional UART telemetry);
* a **fault-injection schedule** (:class:`FaultEvent`) applied through
  the oracle-identical peek/poke surface between resumable ``run()``
  segments — identical on the golden ISS and every RTL backend.

Everything here is a frozen dataclass of ints/strs/tuples: scenarios
pickle across the farm's process boundary, compare by value, and —
because every random draw comes from :func:`repro.verify.fuzz.seeded_rng`
on the scenario's own seed — regenerate bit-identically from a reported
``(scenario-id, seed)`` pair via :func:`replay_scenario`.

The second scenario kind (:class:`FleetScenario`) targets the batched
fleet simulator instead of the SoC: stunt lanes whose first batched
instruction forces a classified lane divergence (the telemetry-probe
idiom), driving the ``fleet.diverge.*`` coverage bins.  The
``rv32e_bound`` stunt (`add x16`, an encoding outside the valid-RV32E
surface random generation draws from) is deliberately *excluded* from
the random lane pool — it is reachable only through directed mutation,
which is what the coverage-guided loop is for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..soc import SocSpec
from ..verify.fuzz import seeded_rng

#: Default per-scenario retirement budget (both backends count trap and
#: interrupt-entry retirements identically, so segment boundaries align).
DEFAULT_BUDGET = 20_000

#: RAM word the sensor ISR / poll block accumulates into, and the target
#: window of memory fault injection — read back into the exit checksum by
#: every firmware's ``finish`` block so memory pokes are trace-visible.
SCRATCH_BASE = 0x8000
_SCRATCH_SPAN = 0x80

#: Registers fault injection may poke: the exit checksum (s1) and the
#: spin-loop increment (a4).  Never an address register (t0-t2) — a poked
#: address could turn a firmware load into an out-of-RAM refusal.
POKE_REGS = (9, 14)

WAVEFORM_KINDS = ("ecg", "noise", "burst", "flatline", "ramp")
MODES = ("irq_wfi", "irq_spin", "polled")
TRAP_OPS = ("", "ecall", "ebreak", "illegal")
#: Sensor ACK policies, encoded as the ACK-register update rule:
#: ``k >= 1`` writes ``INDEX + k`` (1 = in order, >1 = deliberate skip),
#: ``DRAIN`` writes COUNT (consume everything), ``OVERACK`` writes
#: COUNT + 5 (acknowledge past the end — the no-pending edge case).
ACK_DRAIN = -1
ACK_OVERACK = -2

FLEET_STUNTS = ("none", "emulated", "mret", "trap", "rv32e_bound",
                "illegal")
#: Stunts random generation draws from; ``rv32e_bound`` is directed-only
#: (see the module docstring).
RANDOM_FLEET_STUNTS = ("none", "emulated", "mret", "trap", "illegal")
FLEET_ENDS = ("ecall", "ebreak")


# ------------------------------------------------------------- waveforms

@dataclass(frozen=True)
class Waveform:
    """Parameterized sensor waveform model; ``samples()`` is pure."""

    kind: str
    count: int
    period: int = 24
    amplitude: int = 90
    seed: int = 0

    def samples(self) -> tuple[int, ...]:
        if self.kind not in WAVEFORM_KINDS:
            raise ValueError(f"unknown waveform kind {self.kind!r}")
        count = max(1, self.count)
        period = max(2, self.period)
        out = []
        state = self.seed & 0xFFFFFFFF
        for index in range(count):
            state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
            if self.kind == "ecg":
                value = ((index * 5) % 11) - 5
                if index % period == 0:
                    value += self.amplitude
                elif index % period == 1:
                    value -= self.amplitude // 3
            elif self.kind == "noise":
                value = state % (2 * self.amplitude + 1) - self.amplitude
            elif self.kind == "burst":
                value = self.amplitude + (state & 0xF) \
                    if (index // period) % 2 else 0
            elif self.kind == "flatline":
                value = self.amplitude
            else:  # ramp
                value = (index * max(1, self.amplitude // 8)) & 0xFFFF
            out.append(value & 0xFFFFFFFF)
        return tuple(out)


# -------------------------------------------------------- fault injection

@dataclass(frozen=True)
class FaultEvent:
    """One mid-run poke, applied between run segments at retirement
    ``at`` — ``kind`` is ``"reg"`` (architectural register ``target``)
    or ``"mem"`` (RAM word at byte address ``target``)."""

    at: int
    kind: str
    target: int
    value: int


# ---------------------------------------------------------- SoC scenario

@dataclass(frozen=True)
class SocScenario:
    """One generated SoC environment + firmware, fully described."""

    scenario_id: str
    seed: int
    waveform: Waveform
    ticks_per_sample: int
    mtime_offset: int
    timer_init: int        # first mtimecmp value; 0 = timer never armed
    timer_period: int      # ISR / poll re-arm increment
    sensor_irq: bool       # arm mie.SDIE (bit 16)
    mode: str              # "irq_wfi" | "irq_spin" | "polled"
    events: int            # handled events before the firmware finishes
    ack_step: int          # >=1 step, ACK_DRAIN, ACK_OVERACK
    trap_op: str           # "" | "ecall" | "ebreak" | "illegal"
    uart: bool             # UART status read + telemetry byte at finish
    faults: tuple[FaultEvent, ...] = ()
    budget: int = DEFAULT_BUDGET

    @property
    def kind(self) -> str:
        return "soc"

    def soc_spec(self) -> SocSpec:
        return SocSpec(sensor_samples=self.waveform.samples(),
                       sensor_ticks_per_sample=max(1, self.ticks_per_sample),
                       mtime_offset=self.mtime_offset)

    # ------------------------------------------------- firmware template

    def source(self) -> str:
        """Render the firmware for this scenario (RV32E assembly).

        One template, three main-loop shapes.  The ISR dispatches on
        mcause; synchronous traps skip the faulting word.  ``s0`` counts
        handled events, ``s1`` is the exit checksum stored to the power
        gate, so every scenario that reaches ``finish`` halts with
        ``halted_by == "poweroff"`` and a data-dependent exit code.
        """
        mie_mask = (128 if self.timer_init else 0) \
            | (0x10000 if self.sensor_irq else 0)
        lines = [
            ".equ PWR,      0x40000",
            ".equ MTIMECMP, 0x40108",
            ".equ UART_TX,  0x40200",
            ".equ SENSOR,   0x40300",
            f".equ SCRATCH,  {SCRATCH_BASE:#x}",
            "",
            ".text",
            "main:",
            "    la t0, isr",
            "    csrw mtvec, t0",
            "    li s0, 0",
            "    li s1, 0",
            "    li a4, 1",
        ]
        if self.timer_init:
            lines += [
                "    li t0, MTIMECMP",
                f"    li t1, {self.timer_init}",
                "    sw t1, 0(t0)",
                "    sw x0, 4(t0)",
            ]
        if mie_mask:
            lines += [f"    li t0, {mie_mask}", "    csrw mie, t0"]
        if self.mode.startswith("irq") and mie_mask:
            lines.append("    csrsi mstatus, 8")
        lines.append("loop:")
        if self.mode == "irq_spin":
            lines += ["    add s1, s1, a4", "    addi a4, a4, 3"]
        else:
            lines.append("    wfi")
        if self.mode == "polled":
            lines += self._poll_block(mie_mask)
        if self.trap_op == "ecall":
            lines.append("    ecall")
        elif self.trap_op == "ebreak":
            lines.append("    ebreak")
        elif self.trap_op == "illegal":
            lines.append("    .word 0xFFFFFFFF")
        lines += [
            f"    li t0, {self.events}",
            "    blt s0, t0, loop",
            "finish:",
        ]
        if self.mode.startswith("irq") and mie_mask:
            lines.append("    csrci mstatus, 8")
        lines += [
            "    li t2, SCRATCH",        # memory pokes reach the exit code
            "    lw t1, 0(t2)",
            "    add s1, s1, t1",
        ]
        if self.uart:
            lines += [
                "    li t0, UART_TX",
                "    lw t1, 4(t0)",      # STATUS — always ready
                "    add s1, s1, t1",
                "    andi a0, s1, 63",
                "    addi a0, a0, 48",
                "    sw a0, 0(t0)",
            ]
        lines += [
            "    li t0, PWR",
            "    sw s1, 0(t0)",
            "hang:",
            "    j hang",
            "",
            "isr:",
            "    csrr t0, mcause",
            "    li t1, 0x80000007",
            "    beq t0, t1, isr_timer",
            "    li t1, 0x80000010",
            "    beq t0, t1, isr_sensor",
            "    csrr t0, mepc",         # synchronous trap: skip the word
            "    addi t0, t0, 4",
            "    csrw mepc, t0",
            "    addi s0, s0, 1",
            "    addi s1, s1, 7",
            "    mret",
            "isr_timer:",
            "    li t0, MTIMECMP",
            "    lw t1, 0(t0)",
            f"    addi t1, t1, {max(1, self.timer_period)}",
            "    sw t1, 0(t0)",
            "    addi s0, s0, 1",
            "    addi s1, s1, 1",
            "    mret",
            "isr_sensor:",
        ] + self._sensor_block() + [
            "    addi s0, s0, 1",
            "    mret",
        ]
        return "\n".join(lines) + "\n"

    def _sensor_block(self) -> list[str]:
        """Read DATA, fold into checksum + scratch RAM, update ACK."""
        lines = [
            "    li t0, SENSOR",
            "    lw t1, 0(t0)",          # DATA
            "    add s1, s1, t1",
            "    li t2, SCRATCH",
            "    lw t1, 0(t2)",
            "    add t1, t1, s1",
            "    sw t1, 0(t2)",
        ]
        if self.ack_step == ACK_DRAIN:
            lines += ["    lw t1, 8(t0)",             # COUNT
                      "    sw t1, 12(t0)"]
        elif self.ack_step == ACK_OVERACK:
            lines += ["    lw t1, 8(t0)",
                      "    addi t1, t1, 5",
                      "    sw t1, 12(t0)"]
        else:
            lines += ["    lw t1, 4(t0)",             # INDEX
                      f"    addi t1, t1, {max(1, self.ack_step)}",
                      "    sw t1, 12(t0)"]
        return lines

    def _poll_block(self, mie_mask: int) -> list[str]:
        """Polled mode: after the wfi wake, service pending sources by
        reading mip — interrupts armed in mie (for the wake rule) but
        mstatus.MIE never set, so no handler entry ever happens."""
        lines = []
        if self.sensor_irq:
            lines += [
                "    csrr t0, mip",
                "    li t1, 0x10000",
                "    and t0, t0, t1",
                "    beq t0, zero, poll_no_sensor",
            ] + self._sensor_block() + [
                "    addi s0, s0, 1",
                "poll_no_sensor:",
            ]
        if self.timer_init:
            lines += [
                "    csrr t0, mip",
                "    andi t0, t0, 128",
                "    beq t0, zero, poll_no_timer",
                "    li t0, MTIMECMP",
                "    lw t1, 0(t0)",
                f"    addi t1, t1, {max(1, self.timer_period)}",
                "    sw t1, 0(t0)",
                "    addi s0, s0, 1",
                "poll_no_timer:",
            ]
        return lines


# -------------------------------------------------------- fleet scenario

@dataclass(frozen=True)
class FleetScenario:
    """Stunt lanes for the batched fleet simulator.

    Each lane is ``(stunt, end)``: the stunt is the lane's first batched
    instruction (forcing one classified divergence, or ``"none"`` for a
    lane the batch completes), the end is how the lane halts after the
    stunt (``ecall``/``ebreak`` under the halt convention).  Lanes that
    trap need mtvec pre-pointed at the embedded handler — the runner
    pokes it from the program's symbol table, exactly like the telemetry
    probe pokes its lanes.
    """

    scenario_id: str
    seed: int
    lanes: tuple[tuple[str, str], ...]
    budget: int = 96

    @property
    def kind(self) -> str:
        return "fleet"

    def lane_source(self, lane: int) -> str:
        stunt, end = self.lanes[lane]
        if stunt not in FLEET_STUNTS or end not in FLEET_ENDS:
            raise ValueError(f"unknown lane shape {self.lanes[lane]!r}")
        stunt_lines = {
            "none": ["    add t0, t0, t1"],
            "emulated": ["    csrrs t0, mscratch, zero"],
            # mret with reset mepc=0 jumps back to itself: the lane
            # diverges on cause "mret" and runs to its budget.
            "mret": ["    mret"],
            "trap": ["    ecall"],
            # add x16, x0, x0 — decodable, register field past RV32E
            "rv32e_bound": ["    .word 0x00000833"],
            "illegal": ["    .word 0xFFFFFFFF"],
        }[stunt]
        return "\n".join([
            ".text",
            "start:",
        ] + stunt_lines + [
            "    csrw mtvec, x0",        # restore the halt convention
            f"    {end}",
            "",
            "handler:",                  # skip the trapping word
            "    csrr t1, mepc",
            "    addi t1, t1, 4",
            "    csrw mepc, t1",
            "    mret",
        ]) + "\n"

    def lane_needs_handler(self, lane: int) -> bool:
        return self.lanes[lane][0] in ("trap", "rv32e_bound", "illegal")


# ------------------------------------------------------------ generation

def random_scenario(seed: int, budget: int = DEFAULT_BUDGET,
                    scenario_id: str = ""):
    """The random scenario of ``seed``: a pure function of its arguments.

    Draw weights are deliberately uneven — storm cadences, polled mode,
    draining ACK policies and trap ops are rare — so random-only
    campaigns leave bins for the mutation loop to close (which the
    benchmark gate demonstrates at equal budget).
    """
    rng = seeded_rng(seed)
    scenario_id = scenario_id or f"scn:seed={seed:#018x}"
    if rng.random() < 0.2:
        lanes = tuple(
            (rng.choice(RANDOM_FLEET_STUNTS), rng.choice(FLEET_ENDS))
            for _ in range(rng.randrange(1, 5)))
        return FleetScenario(scenario_id=scenario_id, seed=seed,
                             lanes=lanes, budget=96)
    waveform = Waveform(kind=rng.choice(WAVEFORM_KINDS),
                        count=rng.randrange(8, 97),
                        period=rng.randrange(4, 33),
                        amplitude=rng.randrange(20, 121),
                        seed=rng.randrange(1 << 32))
    roll = rng.random()
    mode = "irq_wfi" if roll < 0.55 else \
        ("irq_spin" if roll < 0.9 else "polled")
    timer_armed = rng.random() < 0.7
    sensor_irq = rng.random() < 0.6
    roll = rng.random()
    ack_step = 1 if roll < 0.75 else (
        rng.randrange(2, 5) if roll < 0.9 else
        rng.choice((ACK_DRAIN, ACK_OVERACK)))
    roll = rng.random()
    trap_op = "" if roll < 0.82 else (
        "ecall" if roll < 0.9 else
        ("illegal" if roll < 0.97 else "ebreak"))
    faults = ()
    if rng.random() < 0.3:
        faults = tuple(sorted(
            (_random_fault(rng) for _ in range(rng.randrange(1, 3))),
            key=lambda fault: fault.at))
    return SocScenario(
        scenario_id=scenario_id, seed=seed, waveform=waveform,
        ticks_per_sample=rng.randrange(2, 201),
        mtime_offset=0 if rng.random() < 0.7 else rng.randrange(1, 301),
        timer_init=rng.randrange(4, 301) if timer_armed else 0,
        timer_period=rng.randrange(16, 241),
        sensor_irq=sensor_irq, mode=mode,
        events=rng.randrange(2, 9), ack_step=ack_step, trap_op=trap_op,
        uart=rng.random() < 0.4, faults=faults, budget=budget)


def _random_fault(rng) -> FaultEvent:
    if rng.random() < 0.5:
        return FaultEvent(at=rng.randrange(20, 1500), kind="reg",
                          target=rng.choice(POKE_REGS),
                          value=rng.randrange(1 << 16))
    return FaultEvent(at=rng.randrange(20, 1500), kind="mem",
                      target=SCRATCH_BASE + 4 * rng.randrange(
                          _SCRATCH_SPAN // 4),
                      value=rng.randrange(1 << 32))


# ------------------------------------------------------ directed mutation

def mutate_toward(bin_name: str, seed: int,
                  budget: int = DEFAULT_BUDGET, scenario_id: str = ""):
    """A scenario directed at coverage bin ``bin_name``.

    Starts from :func:`random_scenario` of the same seed and pins the
    parameters that drive the bin's family, leaving the rest (including
    fine interrupt alignment) to the seed — so re-mutating toward a
    still-uncovered bin with the next seed explores different timing.
    Pure function of ``(bin_name, seed, budget)``; unknown bins raise.
    """
    from .coverage import BINS

    if bin_name not in BINS:
        raise ValueError(f"unknown coverage bin {bin_name!r}")
    rng = seeded_rng(seed)
    scenario_id = scenario_id or f"mut:{bin_name}:seed={seed:#018x}"

    if bin_name.startswith("fleet.diverge."):
        stunt = bin_name.rsplit(".", 1)[1]
        return FleetScenario(scenario_id=scenario_id, seed=seed,
                             lanes=((stunt, rng.choice(FLEET_ENDS)),),
                             budget=96)
    if bin_name in ("halt.ecall", "halt.ebreak"):
        return FleetScenario(scenario_id=scenario_id, seed=seed,
                             lanes=(("none", bin_name.rsplit(".", 1)[1]),),
                             budget=96)

    base = random_scenario(seed, budget=budget)
    if base.kind != "soc":
        base = random_scenario(derive_child(seed), budget=budget)
        if base.kind != "soc":   # two fleet draws in a row: build directly
            base = _plain_soc(seed, budget)
    pins: dict = {"scenario_id": scenario_id, "seed": seed,
                  "trap_op": "", "faults": (), "budget": budget}

    if bin_name.startswith("trap."):
        pins.update(mode="irq_spin", timer_init=rng.randrange(8, 40),
                    timer_period=rng.randrange(24, 60), sensor_irq=False,
                    trap_op=bin_name.rsplit(".", 1)[1], events=4)
    elif bin_name in ("intr.timer", "arb.timer_only", "bus.timer.load",
                      "bus.timer.store", "wfi.wake.timer"):
        pins.update(mode="irq_wfi" if "wfi" in bin_name else "irq_spin",
                    timer_init=rng.randrange(8, 60),
                    timer_period=rng.randrange(40, 120),
                    sensor_irq=False, events=4)
    elif bin_name in ("intr.sensor", "arb.sensor_only", "bus.sensor.load",
                      "bus.sensor.store", "wfi.wake.sensor"):
        pins.update(mode="irq_wfi" if "wfi" in bin_name else "irq_spin",
                    timer_init=0, sensor_irq=True,
                    ticks_per_sample=rng.randrange(30, 90), ack_step=1,
                    events=4)
    elif bin_name == "arb.race.timer_first":
        # Timer and sensor comparators on one grid: both levels rise in
        # the same retirement window, fixed priority takes timer first.
        tps = rng.randrange(40, 90)
        pins.update(mode="irq_spin", sensor_irq=True, ticks_per_sample=tps,
                    timer_init=tps, timer_period=tps, ack_step=1,
                    events=6, mtime_offset=0)
    elif bin_name == "arb.race.sensor_first":
        # Timer lands a few retirements into the sensor handler (which
        # enters near boot: the sensor line is high from mtime 0), so the
        # back-to-back entry at the sensor's mret is the timer's.
        tps = rng.randrange(60, 120)
        pins.update(mode="irq_spin", sensor_irq=True, ticks_per_sample=tps,
                    timer_init=rng.randrange(12, 26),
                    timer_period=rng.randrange(300, 600), ack_step=1,
                    events=5, mtime_offset=0)
    elif bin_name == "arb.storm.timer":
        pins.update(mode="irq_spin", sensor_irq=False,
                    timer_init=rng.randrange(4, 12),
                    timer_period=rng.randrange(2, 4), events=6)
    elif bin_name == "arb.storm.sensor":
        pins.update(mode="irq_spin", timer_init=0, sensor_irq=True,
                    ticks_per_sample=1, ack_step=1, events=6,
                    waveform=replace(base.waveform, count=64))
    elif bin_name == "wfi.wake.masked":
        pins.update(mode="polled", sensor_irq=True,
                    ticks_per_sample=rng.randrange(20, 60), ack_step=1,
                    timer_init=0, events=3)
    elif bin_name == "halt.wfi":
        pins.update(mode="irq_wfi", timer_init=0, sensor_irq=False,
                    events=3)
    elif bin_name == "halt.limit":
        pins.update(mode="irq_spin", timer_init=0, sensor_irq=False,
                    events=3, budget=min(budget, 2000))
    elif bin_name == "sensor.drained":
        pins.update(mode="irq_spin", timer_init=0, sensor_irq=True,
                    ticks_per_sample=rng.randrange(10, 40),
                    ack_step=ACK_DRAIN, events=2,
                    waveform=replace(base.waveform, count=12))
    elif bin_name == "sensor.ack_skip":
        pins.update(mode="irq_spin", timer_init=0, sensor_irq=True,
                    ticks_per_sample=rng.randrange(10, 40),
                    ack_step=rng.randrange(2, 5), events=4)
    elif bin_name in ("bus.uart.load", "bus.uart.store"):
        pins.update(mode="irq_spin", timer_init=rng.randrange(8, 40),
                    timer_period=rng.randrange(24, 60), sensor_irq=False,
                    events=3, uart=True)
    else:   # intr.*, bus.power.store, halt.poweroff: any finishing run
        pins.update(mode="irq_spin", timer_init=rng.randrange(8, 40),
                    timer_period=rng.randrange(24, 60), sensor_irq=False,
                    events=3)
    return replace(base, **pins)


def derive_child(seed: int) -> int:
    """One more splitmix64 step — a disjoint child seed stream."""
    from ..verify.fuzz import derive_seed

    return derive_seed(seed, 1)


def _plain_soc(seed: int, budget: int) -> SocScenario:
    return SocScenario(
        scenario_id=f"scn:seed={seed:#018x}", seed=seed,
        waveform=Waveform(kind="ecg", count=32, seed=seed & 0xFFFFFFFF),
        ticks_per_sample=40, mtime_offset=0, timer_init=20,
        timer_period=50, sensor_irq=False, mode="irq_spin", events=3,
        ack_step=1, trap_op="", uart=False, budget=budget)


# ----------------------------------------------------------------- replay

def replay_scenario(scenario_id: str, seed: int,
                    budget: int = DEFAULT_BUDGET):
    """Rebuild the exact scenario a failure report names.

    The id encodes how the scenario was constructed — ``scn...`` ids are
    random draws, ``mut...``/``probe...`` ids embed the directed bin as
    their second ``:``-separated field — and the seed pins every random
    choice, so ``(scenario-id, seed)`` is a complete description.
    """
    head = scenario_id.split(":", 2)
    if head[0].startswith(("mut", "probe")) and len(head) >= 2:
        return mutate_toward(head[1], seed, budget=budget,
                             scenario_id=scenario_id)
    return random_scenario(seed, budget=budget, scenario_id=scenario_id)
