"""MMIO bus: routes the simulators' load/store traffic to devices.

:class:`SocBus` is a drop-in replacement for :class:`repro.sim.memory.Memory`
(same ``load``/``store``/``fetch``/``write_blob``/``read_blob``/``size``
surface): addresses below the RAM size hit RAM with unchanged semantics and
cost, addresses inside an attached device window hit the device.  Every
simulator in the stack — golden ISS, Serv model, RTL harness — talks to
the same bus class, so device behaviour is identical across backends and
lock-step cosimulation just works.

Two deliberate hard edges:

* **No execution from MMIO**: :meth:`SocBus.fetch` refuses device
  addresses, so the decoded-op cache can never capture (and stale-cache) a
  volatile device read as an instruction — it raises instead.
* **Deferred mode** (:attr:`SocBus.deferred`): the ISS fast path flips
  this on around its compiled-executor loop.  Any MMIO access then raises
  :class:`MmioDeferred` *before* performing side effects; the loop catches
  it and retires that one instruction through the reflective slow path
  with the SoC clock synced.  Device reads therefore always observe exact
  time and device writes (e.g. re-arming ``mtimecmp``) take effect before
  the next retirement, while the hot loop itself stays free of device
  bookkeeping.
"""

from __future__ import annotations

from ..sim.memory import Memory, MemoryError_


class MmioDeferred(Exception):
    """Fast-path signal: retire this instruction via the slow path."""


class PowerOffSignal(Exception):
    """Raised by the power gate: simulation ends with ``exit_code``."""

    def __init__(self, exit_code: int):
        super().__init__(f"poweroff({exit_code})")
        self.exit_code = exit_code


class Device:
    """Base MMIO device: word-register load/store at window offsets.

    A device that can interrupt sets :attr:`irq_bit` to its ``mip``
    position and exposes a level-sensitive ``irq_pending`` property; the
    bus packs every attached device's level into the pending word
    :meth:`SocBus.irq_lines` returns.
    """

    #: ``mip`` bit this device drives (0 = the device never interrupts).
    irq_bit = 0

    @property
    def irq_pending(self) -> bool:  # pragma: no cover - irq devices override
        return False

    def load(self, offset: int, width: int) -> int:  # pragma: no cover
        raise MemoryError_(f"{type(self).__name__}: read at +{offset:#x} "
                           f"unsupported")

    def store(self, offset: int, value: int, width: int) -> None:  # pragma: no cover
        raise MemoryError_(f"{type(self).__name__}: write at +{offset:#x} "
                           f"unsupported")


class SocBus:
    """RAM plus attached MMIO device windows behind one memory interface."""

    def __init__(self, ram: Memory):
        self.ram = ram
        self.size = ram.size
        self._windows: list[tuple[int, int, Device]] = []
        self._irq_devices: list[Device] = []
        #: When True, MMIO accesses raise :class:`MmioDeferred` with no
        #: side effects (set by the ISS fast path, see module docstring).
        self.deferred = False

    def attach(self, base: int, size: int, device: Device) -> None:
        """Map ``device`` at ``[base, base + size)``; windows must sit
        above RAM and must not overlap."""
        if base % 4 or size % 4 or size <= 0:
            raise ValueError("device window must be word-aligned")
        if base < self.ram.size:
            raise ValueError(f"device window {base:#x} overlaps RAM")
        end = base + size
        for other_base, other_end, _ in self._windows:
            if base < other_end and other_base < end:
                raise ValueError(f"device window {base:#x} overlaps another")
        self._windows.append((base, end, device))
        if device.irq_bit:
            self._irq_devices.append(device)

    def irq_lines(self) -> int:
        """The unified packed pending word: every attached device's
        level-sensitive interrupt line OR-ed into its ``mip`` position.

        Callers must sync the SoC clock first (``Soc.sync``) — the levels
        are pure functions of device state and ``mtime``.
        """
        word = 0
        for device in self._irq_devices:
            if device.irq_pending:
                word |= device.irq_bit
        return word

    @property
    def raw(self) -> bytearray:
        """RAM byte store for pre-checked direct access (below
        :attr:`direct_size` only — device windows must go through
        :meth:`load`/:meth:`store`)."""
        return self.ram.raw

    @property
    def direct_size(self) -> int:
        """Bytes addressable through :attr:`raw`: exactly the RAM window,
        so every device access routes through the bus."""
        return self.ram.size

    def is_mmio(self, addr: int) -> bool:
        return any(base <= addr < end for base, end, _ in self._windows)

    def _route(self, addr: int, width: int) -> tuple[Device, int]:
        for base, end, device in self._windows:
            if base <= addr < end:
                if width != 4 or addr % 4:
                    raise MemoryError_(
                        f"device registers are word-only: {width}-byte "
                        f"access at {addr:#x}")
                return device, addr - base
        raise MemoryError_(f"access {addr:#x}+{width} beyond {self.size:#x}")

    # ------------------------------------------------- Memory-compatible API

    def load(self, addr: int, width: int, signed: bool) -> int:
        addr &= 0xFFFFFFFF
        if addr + width <= self.ram.size:
            return self.ram.load(addr, width, signed)
        if self.deferred:
            raise MmioDeferred
        device, offset = self._route(addr, width)
        return device.load(offset, width) & 0xFFFFFFFF

    def store(self, addr: int, value: int, width: int) -> None:
        addr &= 0xFFFFFFFF
        if addr + width <= self.ram.size:
            self.ram.store(addr, value, width)
            return
        if self.deferred:
            raise MmioDeferred
        device, offset = self._route(addr, width)
        device.store(offset, value, width)

    def fetch(self, addr: int) -> int:
        if addr + 4 <= self.ram.size:
            return self.ram.fetch(addr)
        raise MemoryError_(
            f"instruction fetch from MMIO/unmapped address {addr:#x}")

    def write_blob(self, addr: int, blob: bytes) -> None:
        self.ram.write_blob(addr, blob)

    def read_blob(self, addr: int, length: int) -> bytes:
        return self.ram.read_blob(addr, length)
