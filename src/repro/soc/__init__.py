"""repro.soc — MMIO bus, peripherals and the standard platform map (PR 3).

The paper's extreme-edge applications are event-driven duty-cycled
firmware: sample a sensor on a timer interrupt, process, push telemetry
out a UART, sleep.  This package provides the device side of that story;
the matching machine-mode trap/interrupt state lives in
:mod:`repro.sim.csr` and is wired through every simulator backend.

Platform memory map (above the 128 KB RAM, so RAM traffic is untouched)::

    0x0004_0000  PowerGate    POWEROFF
    0x0004_0100  MachineTimer MTIME_LO/HI, MTIMECMP_LO/HI
    0x0004_0200  UartTx       TXDATA, STATUS
    0x0004_0300  SensorPort   DATA, INDEX, COUNT, ACK

Time base: ``mtime`` counts *retired instructions* on every backend
(single-cycle RISSP: cycles == instructions), which keeps the golden ISS,
the Serv model and the RTL harness on one deterministic clock and makes
lock-step cosimulation of interrupt timing exact.  ``wfi`` fast-forwards
this clock to the next *enabled-source* event (timer compare or sensor
data-ready) instead of burning host time in an idle loop; with nothing
armed the run ends deterministically (``halted_by == "wfi"``).

Interrupt fabric (PR 5): two level-sensitive lines share ``mip`` — the
timer comparator on MTIP and the SensorPort data-ready comparator
(sample at index ``ACK`` already available) on bit 16.
:meth:`Soc.irq_lines` packs every device level into one pending word and
:meth:`Soc.fire_index` collapses the enabled sources to the single
earliest fire index the run loops compare against, so multi-source
support still costs the fast paths one integer compare per retirement.

Each simulator owns a private :class:`Soc` instance built from a shared
:class:`SocSpec`, so cosimulating two backends from the same spec gives
bit-identical device behaviour on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.csrs import MIP_MTIP, MIP_SDIP
from ..sim.memory import Memory
from .bus import Device, MmioDeferred, PowerOffSignal, SocBus
from .devices import MachineTimer, PowerGate, SensorPort, UartTx

SOC_BASE = 0x0004_0000
POWER_BASE = SOC_BASE + 0x000
TIMER_BASE = SOC_BASE + 0x100
UART_BASE = SOC_BASE + 0x200
SENSOR_BASE = SOC_BASE + 0x300
_WINDOW = 0x10

#: Retirement index guaranteed to never be reached (timer unarmed).
NEVER = 1 << 62


@dataclass(frozen=True)
class SocSpec:
    """Declarative platform description, shareable across simulators.

    ``mtime_offset`` is the platform clock's value at retirement zero
    (``mtime = mtime_offset + retired`` until firmware rebases it) — the
    scenario engine's event-schedule knob: shifting it slides every
    device comparator (timer fire, sensor data-ready) relative to the
    firmware's boot sequence without touching the firmware itself.
    """

    sensor_samples: tuple[int, ...] = ()
    sensor_ticks_per_sample: int = 64
    mtime_offset: int = 0

    def build(self, ram: Memory) -> "Soc":
        return Soc(self, ram)


@dataclass
class Soc:
    """One simulator's instantiated platform: bus + devices + clock base."""

    spec: SocSpec
    ram: Memory
    bus: SocBus = field(init=False)
    power: PowerGate = field(init=False)
    timer: MachineTimer = field(init=False)
    uart: UartTx = field(init=False)
    sensor: SensorPort = field(init=False)
    #: ``mtime = mtime_base + retired``; rebased by ``wfi`` fast-forward
    #: and by direct MMIO writes to MTIME.
    mtime_base: int = 0

    def __post_init__(self):
        # The spec's clock offset is the *initial* rebase; wfi fast-forward
        # and MTIME writes adjust it from there exactly as at offset zero.
        self.mtime_base += self.spec.mtime_offset
        self.bus = SocBus(self.ram)
        self.power = PowerGate()
        self.timer = MachineTimer()
        self.uart = UartTx()
        self.sensor = SensorPort(self.timer, self.spec.sensor_samples,
                                 self.spec.sensor_ticks_per_sample)
        self.bus.attach(POWER_BASE, _WINDOW, self.power)
        self.bus.attach(TIMER_BASE, _WINDOW, self.timer)
        self.bus.attach(UART_BASE, _WINDOW, self.uart)
        self.bus.attach(SENSOR_BASE, _WINDOW, self.sensor)

    # -------------------------------------------------------------- clock

    def sync(self, retired: int) -> None:
        """Bring ``mtime`` up to date before any direct device access."""
        self.timer.mtime = self.mtime_base + retired

    def rebase(self, retired: int) -> None:
        """Adopt a firmware write to MTIME as the new clock offset."""
        self.mtime_base = self.timer.mtime - retired

    def irq_lines(self, retired: int) -> int:
        """Packed pending word of every device interrupt line at
        ``retired`` (syncs the clock, then reads the level comparators)."""
        self.sync(retired)
        return self.bus.irq_lines()

    def _event_times(self, mask: int) -> list[int]:
        """``mtime`` values at which the sources selected by the ``mip``
        -bit ``mask`` next drive their level high.  Event times at or
        beyond :data:`NEVER` (e.g. the timer's far-future reset value)
        are treated as "never fires"."""
        events = []
        if mask & MIP_MTIP and self.timer.mtimecmp < NEVER:
            events.append(self.timer.mtimecmp)
        if mask & MIP_SDIP:
            ready = self.sensor.ready_time()
            if ready is not None and ready < NEVER:
                events.append(ready)
        return events

    def fire_index(self, csr) -> int:
        """Retirement index at which the earliest enabled interrupt line
        rises (``NEVER`` when no interrupt can be taken).

        ``csr`` is the simulator's :class:`~repro.sim.csr.CsrFile`; the
        gate is exactly the arbiter's (global MIE + handler + per-source
        enable), so when the loop's retirement counter reaches this index
        :meth:`~repro.sim.csr.CsrFile.pending_cause` is guaranteed
        non-None.  The loop compares its counter against this single
        integer — the entire per-retirement cost of multi-source
        interrupt support on the fast path.
        """
        if not csr.interrupts_possible:
            return NEVER
        events = self._event_times(csr.mie)
        if not events:
            return NEVER
        return max(min(events) - self.mtime_base, 0)

    def skip_to_event(self, retired: int, wake_mask: int) -> bool:
        """``wfi``: fast-forward the clock to the next enabled-source
        level edge.

        ``wake_mask`` is :meth:`~repro.sim.csr.CsrFile.wfi_wake_mask` —
        the sources enabled in ``mie``, regardless of ``mstatus.MIE``
        (the privileged-spec wake rule).  Returns False when no enabled
        source can ever become pending; the simulators then end the run
        deterministically (``halted_by == "wfi"``) instead of spinning.
        A source already pending fast-forwards by zero.
        """
        events = self._event_times(wake_mask)
        if not events:
            return False
        target = min(events)
        now = self.mtime_base + retired
        if target > now:
            self.mtime_base += target - now
        return True


def attach_soc(soc: "SocSpec | None", ram: Memory) -> "Soc | None":
    """Build a simulator's private :class:`Soc` from its ``soc`` argument.

    ``None`` passes through (no platform); anything that is not a
    :class:`SocSpec` is a caller bug and raises rather than silently
    running a default platform.
    """
    if soc is None:
        return None
    if isinstance(soc, SocSpec):
        return Soc(soc, ram)
    raise TypeError(f"soc must be a SocSpec or None, "
                    f"got {type(soc).__name__}")


__all__ = [
    "Device", "MachineTimer", "MmioDeferred", "NEVER", "PowerGate",
    "PowerOffSignal", "SENSOR_BASE", "SOC_BASE", "SensorPort", "Soc",
    "SocBus", "SocSpec", "TIMER_BASE", "UART_BASE", "POWER_BASE", "UartTx",
    "attach_soc",
]
