"""The standard extreme-edge peripheral set (PR 3 tentpole, PR 5 IRQs).

All devices are deterministic pure functions of bus traffic and the SoC
clock (``mtime`` = retired-instruction count), so two simulators given the
same program and the same :class:`~repro.soc.SocSpec` produce bit-identical
device behaviour — the property lock-step cosimulation rests on.

Interrupt lines (PR 5): a device that can interrupt carries a non-zero
:attr:`~repro.soc.bus.Device.irq_bit` (its ``mip`` position) and a
level-sensitive ``irq_pending`` property computed purely from device state
and ``mtime``.  :meth:`repro.soc.bus.SocBus.irq_lines` packs the levels of
every attached device into one pending word; the run loops wire that word
into ``mip``.

Register maps (word registers, offsets within the device window):

=============  ======  ====================================================
device         offset  register
=============  ======  ====================================================
PowerGate      0x0     POWEROFF (wo): store ends simulation, value = exit
                       code
MachineTimer   0x0     MTIME_LO (rw)   0x4  MTIME_HI (rw)
               0x8     MTIMECMP_LO (rw) 0xC MTIMECMP_HI (rw)
UartTx         0x0     TXDATA (wo): low byte appended to the output
               0x4     STATUS (ro): bit0 = TX ready (always 1)
SensorPort     0x0     DATA (ro): current waveform sample
               0x4     INDEX (ro): current sample index
               0x8     COUNT (ro): number of samples in the waveform
               0xC     ACK (rw): samples consumed; data-ready IRQ level is
                       "a sample at index >= ACK is available"
=============  ======  ====================================================
"""

from __future__ import annotations

from ..isa.csrs import MIP_MTIP, MIP_SDIP
from ..sim.memory import MemoryError_
from .bus import Device, PowerOffSignal

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


class PowerGate(Device):
    """Write-to-die register: the halt mechanism for trap-enabled firmware
    (``ecall``/``ebreak`` trap once a handler is installed, so they can no
    longer double as the simulation terminator)."""

    def store(self, offset: int, value: int, width: int) -> None:
        if offset == 0x0:
            raise PowerOffSignal(value & _M32)
        raise MemoryError_(f"PowerGate: write at +{offset:#x}")


class MachineTimer(Device):
    """CLINT-style mtime/mtimecmp pair.

    ``mtime`` advances with retired instructions: the owning simulator
    syncs it through :meth:`repro.soc.Soc.sync` before any direct device
    access, so reads always observe exact time.  The pending level is
    ``mtime >= mtimecmp``; the simulators wire it into ``mip.MTIP``.
    """

    MTIME_LO, MTIME_HI, MTIMECMP_LO, MTIMECMP_HI = 0x0, 0x4, 0x8, 0xC

    irq_bit = MIP_MTIP

    def __init__(self):
        self.mtime = 0
        #: Reset to the far future so an unarmed timer never fires.
        self.mtimecmp = _M64

    @property
    def irq_pending(self) -> bool:
        return self.mtime >= self.mtimecmp

    def load(self, offset: int, width: int) -> int:
        if offset == self.MTIME_LO:
            return self.mtime & _M32
        if offset == self.MTIME_HI:
            return (self.mtime >> 32) & _M32
        if offset == self.MTIMECMP_LO:
            return self.mtimecmp & _M32
        if offset == self.MTIMECMP_HI:
            return (self.mtimecmp >> 32) & _M32
        raise MemoryError_(f"MachineTimer: read at +{offset:#x}")

    def store(self, offset: int, value: int, width: int) -> None:
        value &= _M32
        if offset == self.MTIME_LO:
            self.mtime = (self.mtime & ~_M32) | value
        elif offset == self.MTIME_HI:
            self.mtime = (self.mtime & _M32) | (value << 32)
        elif offset == self.MTIMECMP_LO:
            self.mtimecmp = (self.mtimecmp & ~_M32) | value
        elif offset == self.MTIMECMP_HI:
            self.mtimecmp = (self.mtimecmp & _M32) | (value << 32)
        else:
            raise MemoryError_(f"MachineTimer: write at +{offset:#x}")


class UartTx(Device):
    """TX-only UART: the telemetry path of the smart-label firmware."""

    TXDATA, STATUS = 0x0, 0x4

    def __init__(self):
        self.output = bytearray()

    def load(self, offset: int, width: int) -> int:
        if offset == self.STATUS:
            return 1    # always ready: the model has no baud backpressure
        raise MemoryError_(f"UartTx: read at +{offset:#x}")

    def store(self, offset: int, value: int, width: int) -> None:
        if offset == self.TXDATA:
            self.output.append(value & 0xFF)
            return
        raise MemoryError_(f"UartTx: write at +{offset:#x}")


class SensorPort(Device):
    """Replays a sampled waveform as a time-indexed analog front-end.

    ``DATA`` reads the sample for the *current* mtime (one sample every
    ``ticks_per_sample`` retirements, clamped at the last sample), so the
    device is read-idempotent — re-reads within one retirement window see
    the same value on every backend.

    Data-ready interrupt (PR 5): the ``ACK`` register holds the number of
    samples firmware has consumed; the IRQ level is the comparator
    "the sample at index ``ACK`` is already available", i.e.
    ``mtime >= ACK * ticks_per_sample`` while ``ACK < COUNT`` — wired
    level-sensitively into ``mip`` bit 16 exactly like
    :attr:`MachineTimer.irq_pending` into MTIP.  An ISR clears the level by
    storing the new consumed count (typically ``INDEX + 1``) to ``ACK``.
    """

    DATA, INDEX, COUNT, ACK = 0x0, 0x4, 0x8, 0xC

    irq_bit = MIP_SDIP

    def __init__(self, timer: MachineTimer, samples: tuple[int, ...],
                 ticks_per_sample: int):
        if ticks_per_sample <= 0:
            raise ValueError("ticks_per_sample must be positive")
        self._timer = timer
        self.samples = tuple(int(s) & _M32 for s in samples)
        self.ticks_per_sample = ticks_per_sample
        #: Samples consumed (the data-ready ACK pointer).
        self.acked = 0

    def _index(self) -> int:
        if not self.samples:
            return 0
        return min(self._timer.mtime // self.ticks_per_sample,
                   len(self.samples) - 1)

    @property
    def irq_pending(self) -> bool:
        return (self.acked < len(self.samples)
                and self._timer.mtime >= self.acked * self.ticks_per_sample)

    def ready_time(self) -> int:
        """``mtime`` at which the data-ready level next rises, or ``None``
        when every sample has been acknowledged (level stays low)."""
        if self.acked >= len(self.samples):
            return None
        return self.acked * self.ticks_per_sample

    def load(self, offset: int, width: int) -> int:
        if offset == self.DATA:
            return self.samples[self._index()] if self.samples else 0
        if offset == self.INDEX:
            return self._index() & _M32
        if offset == self.COUNT:
            return len(self.samples)
        if offset == self.ACK:
            return self.acked & _M32
        raise MemoryError_(f"SensorPort: read at +{offset:#x}")

    def store(self, offset: int, value: int, width: int) -> None:
        if offset == self.ACK:
            self.acked = value & _M32
            return
        raise MemoryError_(f"SensorPort: write at +{offset:#x}")
