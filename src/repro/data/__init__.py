"""Published paper numbers used for comparisons (never as model inputs)."""

from . import paper

__all__ = ["paper"]
