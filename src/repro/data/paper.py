"""Published numbers from the paper, used for comparison in benchmarks,
EXPERIMENTS.md and regression tests.  Nothing here feeds the models —
these are the *targets*, not inputs (except the three calibration anchors
documented in repro.synth.techlib).
"""

#: Table 3 — distinct instructions per application at -O2.
TABLE3_SUBSETS: dict[str, tuple[str, ...]] = {
    "aha-mont64": ("add", "addi", "and", "andi", "beq", "bge", "bgeu",
                   "bltu", "bne", "jal", "jalr", "lui", "lw", "or", "slli",
                   "sltiu", "sltu", "srai", "srli", "sub", "sw", "xor",
                   "xori"),
    "crc32": ("add", "addi", "andi", "bge", "bne", "jal", "jalr", "lui",
              "lw", "slli", "sltiu", "srli", "sub", "sw", "xor", "xori"),
    "cubic": ("addi", "and", "andi", "beq", "bge", "blt", "bne", "jal",
              "jalr", "lui", "lw", "slti", "sltiu", "sw", "xor"),
    "edn": ("add", "addi", "andi", "beq", "bge", "bne", "jal", "jalr",
            "lh", "lhu", "lui", "lw", "sh", "slli", "sltiu", "sra", "srai",
            "srli", "sub", "sw"),
    "huffbench": ("add", "addi", "and", "andi", "beq", "bge", "bgeu",
                  "blt", "bltu", "bne", "jal", "jalr", "lbu", "lui", "lw",
                  "or", "ori", "sb", "sll", "slli", "sltiu", "srai",
                  "srli", "sub", "sw"),
    "matmult-int": ("add", "addi", "bge", "bne", "jal", "jalr", "lui",
                    "lw", "slli", "sltiu", "sw"),
    "md5sum": ("add", "addi", "and", "andi", "beq", "bge", "bgeu", "blt",
               "bltu", "bne", "jal", "jalr", "lui", "lw", "or", "sb",
               "sll", "slli", "sltiu", "srl", "srli", "sub", "sw", "xor",
               "xori"),
    "minver": ("add", "addi", "and", "beq", "bge", "bne", "jal", "jalr",
               "lui", "lw", "slli", "slti", "sltiu", "sub", "sw", "xor"),
    "nbody": ("add", "addi", "and", "andi", "beq", "bge", "bne", "jal",
              "jalr", "lui", "lw", "slli", "slti", "sltiu", "srli", "sw"),
    "nettle-aes": ("add", "addi", "and", "andi", "beq", "bge", "bgeu",
                   "bltu", "bne", "jal", "jalr", "lbu", "lui", "lw", "or",
                   "sb", "slli", "sltiu", "srli", "sub", "sw", "xor"),
    "nettle-sha256": ("add", "addi", "and", "andi", "beq", "bge", "bgeu",
                      "bltu", "bne", "jal", "jalr", "lbu", "lhu", "lui",
                      "lw", "or", "sb", "slli", "sltiu", "sltu", "srli",
                      "sub", "sw", "xor"),
    "nsichneu": ("add", "addi", "beq", "bge", "blt", "bne", "jal", "jalr",
                 "lui", "lw", "slli", "sltiu", "sub", "sw"),
    "picojpeg": ("add", "addi", "and", "andi", "beq", "bge", "bgeu", "blt",
                 "bltu", "bne", "jal", "jalr", "lb", "lbu", "lh", "lhu",
                 "lui", "lw", "or", "sb", "sh", "sll", "slli", "sltiu",
                 "sltu", "sra", "srai", "srli", "sub", "sw", "xori"),
    "primecount": ("add", "addi", "beq", "bge", "blt", "bne", "jal",
                   "jalr", "lui", "lw", "slli", "sltiu", "sw"),
    "qrduino": ("add", "addi", "and", "andi", "beq", "bge", "bgeu", "blt",
                "bltu", "bne", "jal", "jalr", "lbu", "lhu", "lui", "lw",
                "or", "ori", "sb", "sh", "slli", "sltiu", "sltu", "sra",
                "srai", "srl", "srli", "sub", "sw", "xor", "xori"),
    "sglib-combined": ("add", "addi", "andi", "beq", "bge", "bgeu", "blt",
                       "bltu", "bne", "jal", "jalr", "lbu", "lh", "lui",
                       "lw", "sb", "sh", "slli", "sltiu", "sltu", "srai",
                       "sub", "sw", "xori"),
    "slre": ("add", "addi", "and", "andi", "beq", "bge", "bgeu", "blt",
             "bltu", "bne", "jal", "jalr", "lbu", "lui", "lw", "or",
             "slli", "slt", "sltiu", "sltu", "srai", "sub", "sw", "xori"),
    "st": ("add", "addi", "and", "bge", "blt", "bne", "jal", "jalr",
           "lui", "lw", "slli", "slti", "sltiu", "sw"),
    "statemate": ("addi", "beq", "bge", "blt", "bne", "jal", "jalr", "lbu",
                  "lui", "lw", "or", "sb", "sh", "sltiu", "sub", "sw"),
    "tarfind": ("add", "addi", "andi", "beq", "bge", "bgeu", "bltu", "bne",
                "jal", "jalr", "lbu", "lui", "lw", "sb", "slli", "sltiu",
                "srli", "sub", "sw"),
    "ud": ("add", "addi", "beq", "bge", "blt", "bne", "jal", "jalr", "lui",
           "lw", "or", "slli", "sltiu", "sub", "sw"),
    "wikisort": ("add", "addi", "andi", "beq", "bge", "blt", "bne", "jal",
                 "jalr", "lui", "lw", "or", "slli", "slt", "sltiu", "sltu",
                 "srai", "srli", "sub", "sw"),
    "armpit": ("add", "addi", "andi", "beq", "bge", "blt", "bne", "jal",
               "jalr", "lbu", "lui", "lw", "slli", "sltiu", "sw"),
    "xgboost": ("addi", "andi", "bge", "blt", "jal", "jalr", "lui", "lw",
                "srli", "sw", "xor", "xori"),
    "af_detect": ("add", "addi", "andi", "beq", "bge", "bgeu", "blt",
                  "bltu", "bne", "jal", "jalr", "lbu", "lui", "lw", "sb",
                  "sh", "slli", "sltiu", "srai", "srli", "sub", "sw",
                  "xor"),
}

#: §4.1 — average static instruction counts per optimization flag.
AVG_STATIC_PER_FLAG = {"O0": 2027, "O1": 1149, "O2": 1207, "O3": 1586,
                       "Oz": 1018}

#: §4.1 — distinct-instruction statistics across apps/flags.
DISTINCT_RANGE = (9, 32)
AVG_DISTINCT = 19
ISA_USAGE_RANGE = (0.24, 0.86)

#: §4.2 — synthesis anchors and bands.
RV32E_FMAX_KHZ = 1700
SERV_FMAX_KHZ = 2050
RISSP_FMAX_RANGE_KHZ = (1500, 1850)
AREA_SAVING_RANGE_PCT = (8, 43)
POWER_SAVING_RANGE_PCT = (3, 30)
SERV_POWER_VS_RV32E = 1.40
EPI_RATIO_RV32E = 35.0
EPI_RATIO_RISSP_AVG = 40.0
XGBOOST_VS_SERV_AREA = 1.23   # xgboost RISSP 23% larger than Serv (synth)

#: §4.3 — Figure 10 physical implementation relations (at 300 kHz, 3 V).
PHYS_AREA_SAVING_PCT = {"af_detect": 8, "armpit": 35, "xgboost": 42}
PHYS_POWER_SAVING_PCT = {"af_detect": 0, "armpit": 8, "xgboost": 21}
SERV_FF_FRACTION = 0.60
RV32E_FF_FRACTION = 0.06
XGBOOST_SMALLER_THAN_SERV_PCT = 11

#: §5 / Figure 12 — retargeting results.
RETARGET_SIZE_INCREASE_PCT = {"armpit": 13, "xgboost": 5.2,
                              "af_detect": 36}
RETARGET_DISTINCT = {"af_detect": (23, 12)}
