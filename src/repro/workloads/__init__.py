"""Benchmark workloads: Embench analogs + extreme-edge applications +
event-driven SoC firmware (PR 3)."""

from .registry import (
    ALL_NAMES,
    EMBENCH_NAMES,
    EXTREME_EDGE_NAMES,
    SOC_NAMES,
    WORKLOADS,
    Workload,
    get,
)

__all__ = ["ALL_NAMES", "EMBENCH_NAMES", "EXTREME_EDGE_NAMES", "SOC_NAMES",
           "WORKLOADS", "Workload", "get"]
