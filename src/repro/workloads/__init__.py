"""Benchmark workloads: Embench analogs + extreme-edge applications +
event-driven SoC firmware (PR 3; all-C interrupt images since PR 5)."""

from .registry import (
    ALL_NAMES,
    EMBENCH_NAMES,
    EXTREME_EDGE_NAMES,
    SOC_NAMES,
    WORKLOADS,
    Workload,
    build_program,
    get,
)

__all__ = ["ALL_NAMES", "EMBENCH_NAMES", "EXTREME_EDGE_NAMES", "SOC_NAMES",
           "WORKLOADS", "Workload", "build_program", "get"]
