"""Benchmark workloads: Embench analogs + extreme-edge applications."""

from .registry import (
    ALL_NAMES,
    EMBENCH_NAMES,
    EXTREME_EDGE_NAMES,
    WORKLOADS,
    Workload,
    get,
)

__all__ = ["ALL_NAMES", "EMBENCH_NAMES", "EXTREME_EDGE_NAMES", "WORKLOADS",
           "Workload", "get"]
