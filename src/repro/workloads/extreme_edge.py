"""The three extreme-edge applications evaluated in the paper (§4).

* ``armpit``  — malodour classification: two gender-specific decision trees
  over organic-sensor features (Ozer et al., Nat. Comm. 2023).
* ``xgboost`` — a gradient-boosted decision-tree ensemble extracted from a
  Pima-diabetes-style tabular dataset, compiled to C (Chen & Guestrin).
* ``af_detect`` — APPT atrial-fibrillation detection: R-peak detection, RR /
  delta-RR intervals, Bloom-filter pair-presence predictor (Ozer et al.,
  FLEPS 2024).
"""

ARMPIT = r"""
/* armpit: two decision trees (one per gender) over 8 sensor channels. */
int sensors[64];      /* 8 samples x 8 channels, captured readouts */

int tree_female(int *f) {
    if (f[2] < 310) {
        if (f[0] < 120) return 0;
        if (f[5] < 200) return 1;
        return 2;
    }
    if (f[4] < 405) {
        if (f[1] < 150) return 1;
        return 2;
    }
    if (f[7] < 520) return 3;
    return 4;
}

int tree_male(int *f) {
    if (f[1] < 180) {
        if (f[3] < 240) return 0;
        return 1;
    }
    if (f[6] < 460) {
        if (f[0] < 130) return 1;
        if (f[2] < 350) return 2;
        return 3;
    }
    return 4;
}

int main(void) {
    int i;
    int s;
    for (i = 0; i < 64; i++) {
        sensors[i] = ((i * 97 + 31) % 600);
    }
    int score = 0;
    for (s = 0; s < 8; s++) {
        int *frame = &sensors[s * 8];
        int female = tree_female(frame);
        int male = tree_male(frame);
        score = score * 5 + female + male;
    }
    return score & 0x7FFFFFFF;
}
"""

XGBOOST = r"""
/* xgboost: boosted decision-tree ensemble over 8 tabular features
 * (pima-style: pregnancies, glucose, bp, skin, insulin, bmi*10,
 *  pedigree*1000, age).  Trees extracted from a trained booster. */
int features[64];     /* 8 patients x 8 features */

int tree0(int *f) {
    if (f[1] < 128) {
        if (f[5] < 268) return -43;
        if (f[7] < 29) return -12;
        return 21;
    }
    if (f[5] < 242) return 8;
    return 55;
}

int tree1(int *f) {
    if (f[7] < 25) {
        if (f[1] < 104) return -31;
        return -6;
    }
    if (f[1] < 158) {
        if (f[6] < 620) return 4;
        return 27;
    }
    return 49;
}

int tree2(int *f) {
    if (f[4] < 121) {
        if (f[5] < 301) return -17;
        return 11;
    }
    if (f[2] < 71) return 35;
    return 19;
}

int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        features[i] = ((i * 43 + 11) % 350);
    }
    int positives = 0;
    int p;
    for (p = 0; p < 8; p++) {
        int *f = &features[p * 8];
        int margin = tree0(f) + tree1(f) + tree2(f);
        if (margin > 0) positives = positives + 1;
    }
    return positives * 256 + 8;
}
"""

AF_DETECT = r"""
/* af_detect: APPT - Approximate Pair Presence Tracking.
 * Stage 1: R-peak detection on the ECG trace.
 * Stage 2: RR intervals and delta-RR.
 * Stage 3: Bloom-filter pair-presence predictor (AF vs non-AF). */
short ecg[256];
int peaks[32];
unsigned char bloom[64];      /* 512-bit Bloom filter */

int hash1(int rr, int drr) {
    unsigned h = (unsigned)(rr * 31 + drr * 7 + 0x9E);
    h ^= h >> 4;
    return (int)(h & 511);
}

int hash2(int rr, int drr) {
    unsigned h = (unsigned)(rr * 17 + drr * 13 + 0x5A);
    h ^= h >> 3;
    return (int)(h & 511);
}

void bloom_set(int bit) {
    bloom[bit >> 3] |= (char)(1 << (bit & 7));
}

int bloom_get(int bit) {
    return (bloom[bit >> 3] >> (bit & 7)) & 1;
}

int main(void) {
    int i;
    /* synthesize an ECG-like trace: baseline + periodic sharp peaks with
     * drifting period (the AF-like irregularity) */
    int period = 24;
    int phase = 0;
    for (i = 0; i < 256; i++) {
        int v = ((i * 5) % 11) - 5;             /* baseline noise */
        if (phase == 0) v += 90;                /* R peak */
        if (phase == 1) v -= 30;                /* S dip */
        phase++;
        if (phase >= period) {
            phase = 0;
            period = 20 + ((i * 7) % 9);        /* irregular rhythm */
        }
        ecg[i] = (short)v;
    }
    /* stage 1: threshold-based R-peak detection with refractory window */
    int num_peaks = 0;
    int hold = 0;
    for (i = 1; i < 255; i++) {
        if (hold > 0) {
            hold--;
        } else if (ecg[i] > 60 && ecg[i] >= ecg[i - 1]
                   && ecg[i] >= ecg[i + 1]) {
            if (num_peaks < 32) {
                peaks[num_peaks] = i;
                num_peaks = num_peaks + 1;
            }
            hold = 8;
        }
    }
    /* stage 2+3: RR and delta-RR pairs through the Bloom predictor */
    int af_hits = 0;
    int prev_rr = 0;
    for (i = 1; i < num_peaks; i++) {
        int rr = peaks[i] - peaks[i - 1];
        int drr = rr - prev_rr;
        if (drr < 0) drr = 0 - drr;
        if (i > 1) {
            int b1 = hash1(rr, drr);
            int b2 = hash2(rr, drr);
            if (bloom_get(b1) && bloom_get(b2)) {
                af_hits = af_hits + 1;      /* pair seen before: regular */
            }
            bloom_set(b1);
            bloom_set(b2);
        }
        prev_rr = rr;
    }
    int af_detected = (af_hits * 4 < num_peaks) ? 1 : 0;
    return af_detected * 4096 + num_peaks * 64 + af_hits;
}
"""
