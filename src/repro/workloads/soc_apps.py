"""Event-driven SoC firmware workloads (PR 3, all-C + two-source in PR 5).

The paper's extreme-edge devices are duty-cycled, interrupt-driven
firmware, not run-to-completion kernels.  These workloads exercise the
machine-mode trap/interrupt subsystem and the MMIO peripherals end to end
on every simulator backend:

* ``af_detect_irq`` — the smart-bandage AF detector restructured the way
  the real device works: a timer ISR samples the ECG front-end
  (:class:`~repro.soc.SensorPort` replaying a synthetic trace) into a
  buffer while the main loop sleeps in ``wfi``; an APPT-style analysis
  stage classifies the window.  Since PR 5 the *entire* image — ISR,
  runtime and analysis — is MicroC, using the ``__csrr``/``__csrw``/
  ``__csrs``/``__csrc``/``__wfi`` intrinsics and the ``__interrupt``
  function qualifier; no hand-written assembly remains.
* ``sensor_streaming`` (PR 5) — two-source interrupt fabric exercise,
  also pure MicroC: the SensorPort data-ready line (mip bit 16) streams
  samples through one ISR while the machine timer (MTIP) paces heartbeat
  ticks on a co-prime period, so both levels periodically rise inside
  the same retirement window and the fixed-priority arbiter (timer
  first) decides the entry order.  The ISR dispatches on ``mcause``.
* ``label_refresh`` — the warehouse smart label (RV32E assembly): a
  timer paces display refreshes; each wake samples the temperature
  sensor, folds it into the display checksum and pushes one telemetry
  byte out the UART.
* ``uart_selftest`` — power-on self test (RV32E assembly): Zicsr
  read-back patterns (csrrw/csrrs/csrrc + immediate forms), an ecall
  trap/mret round trip, and a UART-logged verdict.

All four terminate through the power gate (store the exit code to
``PWR``) because ``ecall``/``ebreak`` trap rather than halt once a
handler is installed.

The matching platform description per workload lives in
:data:`SOC_SPECS`; C firmware compiles with the standard ``-O`` sweep,
assembly images bypass it.
"""

from __future__ import annotations

from ..soc import SocSpec

#: Shared MMIO address map header (matches repro.soc's platform map) and
#: sampling parameters.  PERIOD must equal the workload's SocSpec
#: ``sensor_ticks_per_sample`` so ISR sampling and waveform replay agree.
_HEADER = """
.equ PWR,       0x40000
.equ MTIME,     0x40100
.equ MTIMECMP,  0x40108
.equ UART_TX,   0x40200
.equ SENSOR,    0x40300
.equ MTIE,      128
"""


def ecg_waveform(n: int = 260) -> tuple[int, ...]:
    """Synthetic ECG in the style of the batch ``af_detect`` workload:
    baseline noise plus R peaks whose period jumps erratically beat to
    beat — the AF-like RR irregularity the analysis stage detects."""
    out = []
    period = 24
    phase = 0
    for i in range(n):
        value = ((i * 5) % 11) - 5
        if phase == 0:
            value += 90
        if phase == 1:
            value -= 30
        phase += 1
        if phase >= period:
            phase = 0
            period = 18 + ((i * 13) % 17)
        out.append(value & 0xFFFFFFFF)
    return tuple(out)


def temperature_waveform(n: int = 64) -> tuple[int, ...]:
    """Slow cold-chain temperature drift with a mid-shipment excursion."""
    out = []
    for i in range(n):
        value = 40 + ((i * 3) % 7)          # decidegrees about 4 degC
        if 24 <= i < 40:
            value += (i - 24) * 2           # door-open excursion
        out.append(value)
    return tuple(out)


def stream_waveform(n: int = 96) -> tuple[int, ...]:
    """Pseudo-random 8-bit stream for the two-source streaming workload."""
    out = []
    value = 0x5A
    for _ in range(n):
        value = (value * 75 + 74) % 257     # BBS-style mixing, 8-bit-ish
        out.append(value & 0xFF)
    return tuple(out)


#: Samples per capture window (one lw each ISR entry).
AF_NSAMP = 256
#: Timer ticks between ECG samples — much longer than the ISR+wakeup
#: path, so the core genuinely duty-cycles in ``wfi`` between samples
#: (the real device samples at a few hundred Hz from a kHz core).
AF_PERIOD = 120

#: The whole smart-bandage image in MicroC (PR 5): trap setup, timer ISR,
#: wfi duty-cycling and the APPT-style analysis stage — one translation
#: unit, zero assembly.  The analysis mirrors stages 2-3 of the batch
#: ``af_detect`` workload over the ISR-captured buffer.
AF_DETECT_IRQ_C = rf"""
/* MMIO map: PWR 0x40000, MTIMECMP 0x40108/0x4010C, UART 0x40200,
   SENSOR 0x40300.  CSRs: mstatus 0x300, mie 0x304, mtvec 0x305. */

int ecg_buf[{AF_NSAMP}];
int nsamp;
int peaks[32];

__interrupt void sample_isr(void) {{
    /* One ECG sample per timer interrupt, re-armed on the exact grid. */
    ecg_buf[nsamp] = (int)*(unsigned *)0x40300;
    nsamp = nsamp + 1;
    unsigned due = *(unsigned *)0x40108;
    *(unsigned *)0x40108 = due + {AF_PERIOD};
}}

int analyze(int *ecg, int n) {{
    int num_peaks = 0;
    int hold = 0;
    int i;
    for (i = 1; i < n - 1; i++) {{
        if (hold > 0) {{
            hold = hold - 1;
        }} else if (ecg[i] > 60 && ecg[i] >= ecg[i - 1]
                   && ecg[i] >= ecg[i + 1]) {{
            if (num_peaks < 32) {{
                peaks[num_peaks] = i;
                num_peaks = num_peaks + 1;
            }}
            hold = 8;
        }}
    }}
    int irregular = 0;
    int prev_rr = 0;
    for (i = 1; i < num_peaks; i++) {{
        int rr = peaks[i] - peaks[i - 1];
        int drr = rr - prev_rr;
        if (drr < 0) drr = 0 - drr;
        if (i > 1 && drr > 2) irregular = irregular + 1;
        prev_rr = rr;
    }}
    int af = (irregular * 2 >= num_peaks) ? 1 : 0;
    return af * 4096 + num_peaks * 64 + irregular;
}}

int main(void) {{
    nsamp = 0;
    __csrw(0x305, sample_isr);          /* mtvec = &sample_isr */
    *(unsigned *)0x40108 = {AF_PERIOD}; /* first sample one period out */
    *(unsigned *)0x4010C = 0;
    __csrw(0x304, 128);                 /* mie.MTIE */
    __csrs(0x300, 8);                   /* global MIE: sampling starts */
    while (nsamp < {AF_NSAMP}) __wfi();
    __csrc(0x300, 8);                   /* window full: mask, analyze */
    int verdict = analyze(ecg_buf, {AF_NSAMP});
    *(unsigned *)0x40200 = (verdict >> 12) ? 'A' : 'N';
    *(unsigned *)0x40000 = verdict;     /* power off with the verdict */
    while (1) {{}}
    return 0;
}}
"""

#: Stream length / pacing of the two-source workload.  The sensor delivers
#: one sample every STREAM_TPS ticks; the timer beats every STREAM_BEAT
#: ticks.  lcm(40, 90) = 360, so every 360 ticks both levels rise in the
#: same retirement window and arbitration priority becomes observable.
STREAM_NSAMP = 96
STREAM_TPS = 40
STREAM_BEAT = 90

#: Two-source interrupt fabric exercise in pure MicroC: one handler
#: dispatching on mcause, sensor data-ready (cause 16) below the machine
#: timer (cause 7) in arbitration priority.
SENSOR_STREAMING_C = rf"""
/* SENSOR regs: DATA 0x40300, INDEX 0x40304, COUNT 0x40308, ACK 0x4030C.
   mie bits: MTIE = 1<<7, SDIE = 1<<16. */

unsigned checksum;
int nticks;
int ndata;

__interrupt void fabric_isr(void) {{
    unsigned cause = __csrr(0x342);
    if (cause == 0x80000007u) {{
        /* Machine timer: heartbeat, re-armed on a co-prime period. */
        nticks = nticks + 1;
        unsigned due = *(unsigned *)0x40108;
        *(unsigned *)0x40108 = due + {STREAM_BEAT};
    }} else {{
        /* Sensor data-ready: drain and acknowledge the stream. */
        unsigned idx = *(unsigned *)0x40304;
        unsigned v = *(unsigned *)0x40300;
        checksum = checksum * 31 + v + idx;
        ndata = ndata + 1;
        *(unsigned *)0x4030C = idx + 1;   /* ACK drops the level */
    }}
}}

int main(void) {{
    checksum = 0;
    nticks = 0;
    ndata = 0;
    __csrw(0x305, fabric_isr);
    *(unsigned *)0x40108 = {STREAM_BEAT};
    *(unsigned *)0x4010C = 0;
    __csrw(0x304, 65664);               /* MTIE | SDIE */
    __csrs(0x300, 8);
    while (*(unsigned *)0x4030C < {STREAM_NSAMP}) __wfi();
    __csrc(0x300, 8);
    *(unsigned *)0x40200 = checksum & 63;     /* one telemetry byte */
    *(unsigned *)0x40000 =
        (nticks << 24) | (ndata << 16) | (checksum & 0xFFFF);
    while (1) {{}}
    return 0;
}}
"""

#: Ticks between smart-label display refreshes.
LABEL_PERIOD = 50
#: Refreshes before the label reports and powers down.
LABEL_REFRESHES = 16

LABEL_REFRESH = _HEADER + f"""
.equ PERIOD,    {LABEL_PERIOD}
.equ NREFRESH,  {LABEL_REFRESHES}

.text
main:
    la t0, isr
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, PERIOD
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, MTIE
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0                 # refreshes completed
    li s1, 0                 # display checksum
loop:
    wfi                      # sleep until the refresh timer fires
    li t0, SENSOR
    lw t1, 0(t0)             # temperature at this refresh
    slli t2, s1, 1           # fold into the display checksum
    add t2, t2, t1
    mv s1, t2
    andi a0, t1, 63          # one printable telemetry byte per refresh
    addi a0, a0, 48
    call putc
    addi s0, s0, 1
    li t0, NREFRESH
    beq s0, t0, finish
    j loop
finish:
    csrci mstatus, 8
    slli t1, s0, 16          # exit: refreshes<<16 | checksum&0xFFFF
    li t2, 0xFFFF
    and s1, s1, t2
    or t1, t1, s1
    li t0, PWR
    sw t1, 0(t0)
hang:
    j hang

putc:
    li t0, UART_TX
    sw a0, 0(t0)
    ret

isr:
    li t0, MTIMECMP          # pace the next refresh
    lw t1, 0(t0)
    addi t1, t1, PERIOD
    sw t1, 0(t0)
    mret
"""

UART_SELFTEST = _HEADER + """
.text
main:
    li s0, 0                 # tests passed
    li t0, 0x5A5A            # 1: csrrw round trip through mscratch
    csrw mscratch, t0
    csrr t1, mscratch
    bne t0, t1, t2go
    addi s0, s0, 1
t2go:
    li t0, 0xF0              # 2: csrrs reads old value and ORs bits in
    csrw mscratch, t0
    li t1, 0x0F
    csrrs t2, mscratch, t1
    li t1, 0xF0
    bne t2, t1, t3go
    csrr t1, mscratch
    li t0, 0xFF
    bne t1, t0, t3go
    addi s0, s0, 1
t3go:
    li t1, 0xF0              # 3: csrrc clears bits
    csrrc t2, mscratch, t1
    csrr t1, mscratch
    li t0, 0x0F
    bne t1, t0, t4go
    addi s0, s0, 1
t4go:
    csrwi mscratch, 0        # 4: immediate forms
    csrsi mscratch, 21
    csrr t1, mscratch
    li t0, 21
    bne t1, t0, t5go
    addi s0, s0, 1
t5go:
    la t0, aligned           # 5: mepc is a real read/write CSR
    csrw mepc, t0
    csrr t1, mepc
    bne t1, t0, t6go
    addi s0, s0, 1
t6go:
aligned:
    la t0, handler           # 6: ecall traps to mtvec and mret returns
    csrw mtvec, t0
    li s1, 0
    ecall
    li t0, 1
    beq s1, t0, pass6
    j report
pass6:
    addi s0, s0, 1
report:
    li a0, 'S'               # log "S=<score>"
    call putc
    li a0, '='
    call putc
    addi a0, s0, 48
    call putc
    li t0, PWR
    sw s0, 0(t0)
hang:
    j hang

putc:
    li t0, UART_TX
putc_wait:
    lw t1, 4(t0)             # poll STATUS until TX ready
    beq t1, x0, putc_wait
    sw a0, 0(t0)
    ret

handler:
    addi s1, s1, 1
    csrr t0, mepc
    addi t0, t0, 4           # resume past the trapping ecall
    csrw mepc, t0
    mret
"""


#: name -> (source text, language).
_IMAGES: dict[str, tuple[str, str]] = {
    "af_detect_irq": (AF_DETECT_IRQ_C, "c"),
    "sensor_streaming": (SENSOR_STREAMING_C, "c"),
    "label_refresh": (LABEL_REFRESH, "asm"),
    "uart_selftest": (UART_SELFTEST, "asm"),
}


def source(name: str) -> str:
    try:
        return _IMAGES[name][0]
    except KeyError:
        raise KeyError(f"unknown soc workload {name!r}") from None


def lang(name: str) -> str:
    try:
        return _IMAGES[name][1]
    except KeyError:
        raise KeyError(f"unknown soc workload {name!r}") from None


#: Matching platform description per workload — share one spec between
#: simulators to cosimulate them in lock-step.
SOC_SPECS: dict[str, SocSpec] = {
    "af_detect_irq": SocSpec(sensor_samples=ecg_waveform(),
                             sensor_ticks_per_sample=AF_PERIOD),
    "sensor_streaming": SocSpec(sensor_samples=stream_waveform(STREAM_NSAMP),
                                sensor_ticks_per_sample=STREAM_TPS),
    "label_refresh": SocSpec(sensor_samples=temperature_waveform(),
                             sensor_ticks_per_sample=LABEL_PERIOD),
    "uart_selftest": SocSpec(),
}
