"""Event-driven SoC firmware workloads (PR 3).

The paper's extreme-edge devices are duty-cycled, interrupt-driven
firmware, not run-to-completion kernels.  These three workloads exercise
the machine-mode trap/interrupt subsystem and the MMIO peripherals end to
end on every simulator backend:

* ``af_detect_irq`` — the smart-bandage AF detector restructured the way
  the real device works: a timer ISR samples the ECG front-end
  (:class:`~repro.soc.SensorPort` replaying a synthetic trace) into a
  buffer while the main loop sleeps in ``wfi``; the APPT-style analysis
  stage is *MicroC-compiled C* linked under the hand-written interrupt
  runtime — the paper's toolflow and the trap subsystem in one binary.
* ``label_refresh`` — the warehouse smart label: a timer paces display
  refreshes; each wake samples the temperature sensor, folds it into the
  display checksum and pushes one telemetry byte out the UART.
* ``uart_selftest`` — power-on self test: Zicsr read-back patterns
  (csrrw/csrrs/csrrc + immediate forms), an ecall trap/mret round trip,
  and a UART-logged verdict.

All three terminate through the power gate (store the exit code to
``PWR``) because ``ecall``/``ebreak`` trap rather than halt once a
handler is installed.

Firmware is assembled for RV32E; the matching platform description per
workload lives in :data:`SOC_SPECS`.
"""

from __future__ import annotations

from ..soc import SocSpec

#: Shared MMIO address map header (matches repro.soc's platform map) and
#: sampling parameters.  PERIOD must equal the workload's SocSpec
#: ``sensor_ticks_per_sample`` so ISR sampling and waveform replay agree.
_HEADER = """
.equ PWR,       0x40000
.equ MTIME,     0x40100
.equ MTIMECMP,  0x40108
.equ UART_TX,   0x40200
.equ SENSOR,    0x40300
.equ MTIE,      128
"""


def ecg_waveform(n: int = 260) -> tuple[int, ...]:
    """Synthetic ECG in the style of the batch ``af_detect`` workload:
    baseline noise plus R peaks whose period jumps erratically beat to
    beat — the AF-like RR irregularity the analysis stage detects."""
    out = []
    period = 24
    phase = 0
    for i in range(n):
        value = ((i * 5) % 11) - 5
        if phase == 0:
            value += 90
        if phase == 1:
            value -= 30
        phase += 1
        if phase >= period:
            phase = 0
            period = 18 + ((i * 13) % 17)
        out.append(value & 0xFFFFFFFF)
    return tuple(out)


def temperature_waveform(n: int = 64) -> tuple[int, ...]:
    """Slow cold-chain temperature drift with a mid-shipment excursion."""
    out = []
    for i in range(n):
        value = 40 + ((i * 3) % 7)          # decidegrees about 4 degC
        if 24 <= i < 40:
            value += (i - 24) * 2           # door-open excursion
        out.append(value)
    return tuple(out)


#: APPT-style analysis stage, compiled by the MicroC toolflow and linked
#: under the interrupt runtime below.  Mirrors stages 2-3 of the batch
#: ``af_detect`` workload over the ISR-captured buffer.
AF_ANALYZE_KERNEL_C = r"""
int peaks[32];

int analyze(int *ecg, int n) {
    int num_peaks = 0;
    int hold = 0;
    int i;
    for (i = 1; i < n - 1; i++) {
        if (hold > 0) {
            hold = hold - 1;
        } else if (ecg[i] > 60 && ecg[i] >= ecg[i - 1]
                   && ecg[i] >= ecg[i + 1]) {
            if (num_peaks < 32) {
                peaks[num_peaks] = i;
                num_peaks = num_peaks + 1;
            }
            hold = 8;
        }
    }
    int irregular = 0;
    int prev_rr = 0;
    for (i = 1; i < num_peaks; i++) {
        int rr = peaks[i] - peaks[i - 1];
        int drr = rr - prev_rr;
        if (drr < 0) drr = 0 - drr;
        if (i > 1 && drr > 2) irregular = irregular + 1;
        prev_rr = rr;
    }
    int af = (irregular * 2 >= num_peaks) ? 1 : 0;
    return af * 4096 + num_peaks * 64 + irregular;
}
"""

#: Samples per capture window (one lw each ISR entry).
AF_NSAMP = 256
#: Timer ticks between ECG samples — much longer than the ~17-instruction
#: ISR+wakeup path, so the core genuinely duty-cycles in ``wfi`` between
#: samples (the real device samples at a few hundred Hz from a kHz core).
AF_PERIOD = 120

_AF_RUNTIME = _HEADER + f"""
.equ PERIOD,    {AF_PERIOD}
.equ NSAMP,     {AF_NSAMP}

.data
ecg_buf:
    .space {4 * AF_NSAMP}

.text
main:
    la t0, isr
    csrw mtvec, t0
    li s0, 0                 # samples captured (ISR-owned)
    la s1, ecg_buf
    li t0, MTIMECMP          # first sample due one period out
    li t1, PERIOD
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, MTIE
    csrw mie, t0
    csrsi mstatus, 8         # global MIE: sampling starts
capture:
    wfi
    li t0, NSAMP
    blt s0, t0, capture
    csrci mstatus, 8         # window full: mask interrupts, analyze
    la a0, ecg_buf
    li a1, NSAMP
    call analyze
    mv s0, a0
    srli t0, a0, 12          # AF flag -> one telemetry byte
    li t1, UART_TX
    li a2, 'N'
    beqz t0, tx
    li a2, 'A'
tx:
    sw a2, 0(t1)
    li t0, PWR
    sw s0, 0(t0)             # power off with the packed verdict
hang:
    j hang

isr:
    li t0, SENSOR            # one ECG sample per timer interrupt
    lw t1, 0(t0)
    slli t2, s0, 2
    add t2, t2, s1
    sw t1, 0(t2)
    addi s0, s0, 1
    li t0, MTIMECMP          # re-arm on the exact sample grid
    lw t1, 0(t0)
    addi t1, t1, PERIOD
    sw t1, 0(t0)
    mret
"""

#: Ticks between smart-label display refreshes.
LABEL_PERIOD = 50
#: Refreshes before the label reports and powers down.
LABEL_REFRESHES = 16

LABEL_REFRESH = _HEADER + f"""
.equ PERIOD,    {LABEL_PERIOD}
.equ NREFRESH,  {LABEL_REFRESHES}

.text
main:
    la t0, isr
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, PERIOD
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, MTIE
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0                 # refreshes completed
    li s1, 0                 # display checksum
loop:
    wfi                      # sleep until the refresh timer fires
    li t0, SENSOR
    lw t1, 0(t0)             # temperature at this refresh
    slli t2, s1, 1           # fold into the display checksum
    add t2, t2, t1
    mv s1, t2
    andi a0, t1, 63          # one printable telemetry byte per refresh
    addi a0, a0, 48
    call putc
    addi s0, s0, 1
    li t0, NREFRESH
    beq s0, t0, finish
    j loop
finish:
    csrci mstatus, 8
    slli t1, s0, 16          # exit: refreshes<<16 | checksum&0xFFFF
    li t2, 0xFFFF
    and s1, s1, t2
    or t1, t1, s1
    li t0, PWR
    sw t1, 0(t0)
hang:
    j hang

putc:
    li t0, UART_TX
    sw a0, 0(t0)
    ret

isr:
    li t0, MTIMECMP          # pace the next refresh
    lw t1, 0(t0)
    addi t1, t1, PERIOD
    sw t1, 0(t0)
    mret
"""

UART_SELFTEST = _HEADER + """
.text
main:
    li s0, 0                 # tests passed
    li t0, 0x5A5A            # 1: csrrw round trip through mscratch
    csrw mscratch, t0
    csrr t1, mscratch
    bne t0, t1, t2go
    addi s0, s0, 1
t2go:
    li t0, 0xF0              # 2: csrrs reads old value and ORs bits in
    csrw mscratch, t0
    li t1, 0x0F
    csrrs t2, mscratch, t1
    li t1, 0xF0
    bne t2, t1, t3go
    csrr t1, mscratch
    li t0, 0xFF
    bne t1, t0, t3go
    addi s0, s0, 1
t3go:
    li t1, 0xF0              # 3: csrrc clears bits
    csrrc t2, mscratch, t1
    csrr t1, mscratch
    li t0, 0x0F
    bne t1, t0, t4go
    addi s0, s0, 1
t4go:
    csrwi mscratch, 0        # 4: immediate forms
    csrsi mscratch, 21
    csrr t1, mscratch
    li t0, 21
    bne t1, t0, t5go
    addi s0, s0, 1
t5go:
    la t0, aligned           # 5: mepc is a real read/write CSR
    csrw mepc, t0
    csrr t1, mepc
    bne t1, t0, t6go
    addi s0, s0, 1
t6go:
aligned:
    la t0, handler           # 6: ecall traps to mtvec and mret returns
    csrw mtvec, t0
    li s1, 0
    ecall
    li t0, 1
    beq s1, t0, pass6
    j report
pass6:
    addi s0, s0, 1
report:
    li a0, 'S'               # log "S=<score>"
    call putc
    li a0, '='
    call putc
    addi a0, s0, 48
    call putc
    li t0, PWR
    sw s0, 0(t0)
hang:
    j hang

putc:
    li t0, UART_TX
putc_wait:
    lw t1, 4(t0)             # poll STATUS until TX ready
    beq t1, x0, putc_wait
    sw a0, 0(t0)
    ret

handler:
    addi s1, s1, 1
    csrr t0, mepc
    addi t0, t0, 4           # resume past the trapping ecall
    csrw mepc, t0
    mret
"""


def _af_detect_irq_source() -> str:
    """Interrupt runtime + MicroC-compiled analysis stage, one unit."""
    from ..compiler import compile_to_assembly
    return _AF_RUNTIME + "\n" + compile_to_assembly(AF_ANALYZE_KERNEL_C,
                                                    "O2")


#: name -> assembled-from source text (lazily built once per process).
_SOURCES: dict[str, str] = {}


def source(name: str) -> str:
    if name not in _SOURCES:
        if name == "af_detect_irq":
            _SOURCES[name] = _af_detect_irq_source()
        elif name == "label_refresh":
            _SOURCES[name] = LABEL_REFRESH
        elif name == "uart_selftest":
            _SOURCES[name] = UART_SELFTEST
        else:
            raise KeyError(f"unknown soc workload {name!r}")
    return _SOURCES[name]


#: Matching platform description per workload — share one spec between
#: simulators to cosimulate them in lock-step.
SOC_SPECS: dict[str, SocSpec] = {
    "af_detect_irq": SocSpec(sensor_samples=ecg_waveform(),
                             sensor_ticks_per_sample=AF_PERIOD),
    "label_refresh": SocSpec(sensor_samples=temperature_waveform(),
                             sensor_ticks_per_sample=LABEL_PERIOD),
    "uart_selftest": SocSpec(),
}
