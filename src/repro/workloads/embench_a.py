"""Embench-analog MicroC kernels (part 1 of 2).

Each kernel reimplements the algorithmic core of the corresponding Embench
application in MicroC (fixed-point where the original uses floats, since the
paper compiles baremetal without libgcc soft-float).  ``main`` returns a
checksum so correctness is observable through the exit code.
"""

AHA_MONT64 = r"""
/* aha-mont64: Montgomery modular multiplication (32-bit variant). */
unsigned m = 0xE2089EA5;      /* odd modulus */
unsigned minv = 0x53A482C7;   /* -m^-1 mod 2^32 (precomputed) */

unsigned monmul(unsigned a, unsigned b) {
    /* interleaved Montgomery multiplication, bit-serial */
    unsigned acc = 0;
    int i;
    for (i = 0; i < 32; i++) {
        if (a & 1) {
            unsigned prev = acc;
            acc = acc + b;
            if (acc < prev) {            /* carry out: reduce */
                acc = acc - m;
            }
        }
        if (acc & 1) {
            unsigned prev2 = acc;
            acc = acc + m;
            if (acc < prev2) {
                acc = (acc >> 1) | 0x80000000;
            } else {
                acc = acc >> 1;
            }
        } else {
            acc = acc >> 1;
        }
        a = a >> 1;
    }
    if (acc >= m) acc = acc - m;
    return acc;
}

int main(void) {
    unsigned x = 0x0CCCCCCD;
    unsigned result = 0;
    int round;
    for (round = 0; round < 24; round++) {
        x = monmul(x, x + (unsigned)round);
        result = result ^ x;
    }
    return (int)(result & 0x7FFFFFFF);
}
"""

CRC32 = r"""
/* crc32: bitwise CRC-32 (IEEE 802.3 polynomial) over a buffer. */
unsigned char message[64];

unsigned crc32(unsigned char *data, int length) {
    unsigned crc = 0xFFFFFFFF;
    int i;
    for (i = 0; i < length; i++) {
        unsigned byte = data[i];
        crc = crc ^ byte;
        int bit;
        for (bit = 0; bit < 8; bit++) {
            unsigned mask = 0 - (crc & 1);
            crc = (crc >> 1) ^ (0xEDB88320 & mask);
        }
    }
    return ~crc;
}

int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        message[i] = (char)(i * 7 + 3);
    }
    unsigned result = crc32(message, 64);
    return (int)(result & 0x7FFFFFFF);
}
"""

CUBIC = r"""
/* cubic: real roots of cubic polynomials in Q16.16 fixed point. */
int fmul(int a, int b) {
    /* Q16.16 multiply via 16-bit halves to avoid 64-bit products */
    int ah = a >> 16;
    unsigned al = (unsigned)a & 0xFFFF;
    int bh = b >> 16;
    unsigned bl = (unsigned)b & 0xFFFF;
    int high = ah * bh;
    int cross = ah * (int)bl + bh * (int)al;
    unsigned low = (al * bl) >> 16;
    return (high << 16) + cross + (int)low;
}

int eval_poly(int a, int b, int c, int d, int x) {
    int x2 = fmul(x, x);
    int x3 = fmul(x2, x);
    return fmul(a, x3) + fmul(b, x2) + fmul(c, x) + d;
}

int find_root(int a, int b, int c, int d, int lo, int hi) {
    /* bisection over a bracketing interval */
    int i;
    for (i = 0; i < 24; i++) {
        int mid = (lo + hi) >> 1;
        int v = eval_poly(a, b, c, d, mid);
        if (v > 0) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return lo;
}

int main(void) {
    /* p(x) = x^3 - 6x^2 + 11x - 6 has roots 1, 2, 3 */
    int one = 1 << 16;
    int root = find_root(0 - one, 6 * one, 0 - 11 * one, 6 * one,
                         (5 << 14), (3 << 16) + (1 << 15));
    /* negated leading coeff flips sign convention: root near 3.0 */
    return root >> 8;
}
"""

EDN = r"""
/* edn: vector MAC / FIR filter kernels over 16-bit data. */
short signal[128];
short coeffs[16];

int fir(short *x, short *h, int n, int taps) {
    int total = 0;
    int i;
    for (i = taps; i < n; i++) {
        int acc = 0;
        int t;
        for (t = 0; t < taps; t++) {
            acc += x[i - t] * h[t];
        }
        total ^= acc >> 4;
    }
    return total;
}

int main(void) {
    int i;
    for (i = 0; i < 128; i++) {
        signal[i] = (short)((i * 37) & 0xFF) - 100;
    }
    for (i = 0; i < 16; i++) {
        coeffs[i] = (short)(i - 8);
    }
    return fir(signal, coeffs, 128, 16) & 0x7FFFFFFF;
}
"""

HUFFBENCH = r"""
/* huffbench: frequency count + code-length assignment + bit packing. */
unsigned char text[96];
int freq[16];
int lengths[16];
unsigned char packed[64];

int main(void) {
    int i;
    for (i = 0; i < 96; i++) {
        text[i] = (char)((i * i + 5) & 15);
    }
    for (i = 0; i < 16; i++) freq[i] = 0;
    for (i = 0; i < 96; i++) freq[text[i]]++;
    /* shorter codes for more frequent symbols (rank-based lengths) */
    for (i = 0; i < 16; i++) {
        int rank = 0;
        int j;
        for (j = 0; j < 16; j++) {
            if (freq[j] > freq[i] || (freq[j] == freq[i] && j < i)) rank++;
        }
        lengths[i] = 2 + (rank >> 2);
    }
    /* pack symbols as length-bit codes */
    int bitpos = 0;
    for (i = 0; i < 96; i++) {
        int sym = text[i];
        int len = lengths[sym];
        int b;
        for (b = 0; b < len; b++) {
            if ((sym >> b) & 1) {
                packed[bitpos >> 3] |= (char)(1 << (bitpos & 7));
            }
            bitpos++;
            if (bitpos >= 512) bitpos = 0;
        }
    }
    unsigned check = 0;
    for (i = 0; i < 64; i++) {
        check = check * 33 + packed[i];
    }
    return (int)(check & 0x7FFFFFFF);
}
"""

MATMULT_INT = r"""
/* matmult-int: dense integer matrix multiply (16x16). */
int a[256];
int b[256];
int c[256];

int main(void) {
    int i;
    int j;
    int k;
    for (i = 0; i < 256; i++) {
        a[i] = (i % 7) - 3;
        b[i] = (i % 5) - 2;
    }
    for (i = 0; i < 16; i++) {
        for (j = 0; j < 16; j++) {
            int acc = 0;
            for (k = 0; k < 16; k++) {
                acc += a[i * 16 + k] * b[k * 16 + j];
            }
            c[i * 16 + j] = acc;
        }
    }
    int check = 0;
    for (i = 0; i < 256; i++) {
        check ^= c[i] + i;
    }
    return check & 0x7FFFFFFF;
}
"""

MD5SUM = r"""
/* md5sum: MD5-style mixing rounds over a message block. */
unsigned block[16];

unsigned rotl(unsigned x, int s) {
    return (x << s) | (x >> (32 - s));
}

int main(void) {
    unsigned a = 0x67452301;
    unsigned b = 0xEFCDAB89;
    unsigned c = 0x98BADCFE;
    unsigned d = 0x10325476;
    int i;
    for (i = 0; i < 16; i++) {
        block[i] = (unsigned)(i * 0x01010101 + 0x1234);
    }
    for (i = 0; i < 48; i++) {
        unsigned f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else {
            if (i < 32) {
                f = (d & b) | (~d & c);
                g = (5 * i + 1) & 15;
            } else {
                f = b ^ c ^ d;
                g = (3 * i + 5) & 15;
            }
        }
        unsigned temp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + block[g] + 0x5A827999, (i & 3) * 5 + 4);
        a = temp;
    }
    return (int)((a ^ b ^ c ^ d) & 0x7FFFFFFF);
}
"""

MINVER = r"""
/* minver: 3x3 matrix inversion in Q12 fixed point (Gauss-Jordan). */
int mat[9];
int inv[9];

int fmul12(int a, int b) {
    return (a * b) >> 12;
}

int fdiv12(int a, int b) {
    return (a << 12) / b;
}

int main(void) {
    int unit = 1 << 12;
    mat[0] = 2 * unit; mat[1] = 0;        mat[2] = unit;
    mat[3] = 0;        mat[4] = unit;     mat[5] = 0;
    mat[6] = unit;     mat[7] = 0;        mat[8] = unit;
    int i;
    int j;
    for (i = 0; i < 9; i++) inv[i] = 0;
    inv[0] = unit; inv[4] = unit; inv[8] = unit;
    int col;
    for (col = 0; col < 3; col++) {
        int pivot = mat[col * 3 + col];
        if (pivot == 0) return -1;
        for (j = 0; j < 3; j++) {
            mat[col * 3 + j] = fdiv12(mat[col * 3 + j], pivot);
            inv[col * 3 + j] = fdiv12(inv[col * 3 + j], pivot);
        }
        for (i = 0; i < 3; i++) {
            if (i == col) continue;
            int factor = mat[i * 3 + col];
            for (j = 0; j < 3; j++) {
                mat[i * 3 + j] -= fmul12(factor, mat[col * 3 + j]);
                inv[i * 3 + j] -= fmul12(factor, inv[col * 3 + j]);
            }
        }
    }
    int check = 0;
    for (i = 0; i < 9; i++) {
        check ^= inv[i] + i * 17;
    }
    return check & 0x7FFFFFFF;
}
"""

NBODY = r"""
/* nbody: gravitational step in fixed point (Q8.8, softened). */
int posx[8];
int posy[8];
int velx[8];
int vely[8];

int isqrt(int v) {
    int r = 0;
    int bit = 1 << 14;
    while (bit > v) bit >>= 2;
    while (bit != 0) {
        if (v >= r + bit) {
            v -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
    }
    return r;
}

int main(void) {
    int i;
    int j;
    for (i = 0; i < 8; i++) {
        posx[i] = (i * 61 % 97) << 8;
        posy[i] = (i * 37 % 89) << 8;
        velx[i] = 0;
        vely[i] = 0;
    }
    int step;
    for (step = 0; step < 8; step++) {
        for (i = 0; i < 8; i++) {
            int ax = 0;
            int ay = 0;
            for (j = 0; j < 8; j++) {
                if (i == j) continue;
                int dx = (posx[j] - posx[i]) >> 4;
                int dy = (posy[j] - posy[i]) >> 4;
                int d2 = ((dx * dx) >> 8) + ((dy * dy) >> 8) + 16;
                int d = isqrt(d2 << 8);
                if (d == 0) d = 1;
                int inv3 = (1 << 24) / (d2 * d);
                ax += (dx * inv3) >> 10;
                ay += (dy * inv3) >> 10;
            }
            velx[i] += ax;
            vely[i] += ay;
        }
        for (i = 0; i < 8; i++) {
            posx[i] += velx[i] >> 4;
            posy[i] += vely[i] >> 4;
        }
    }
    int check = 0;
    for (i = 0; i < 8; i++) {
        check ^= posx[i] * 3 + posy[i];
    }
    return check & 0x7FFFFFFF;
}
"""

NETTLE_AES = r"""
/* nettle-aes: AES round functions (SubBytes/ShiftRows/AddRoundKey). */
unsigned char sbox[64] = {
    99, 124, 119, 123, 242, 107, 111, 197,
    48, 1, 103, 43, 254, 215, 171, 118,
    202, 130, 201, 125, 250, 89, 71, 240,
    173, 212, 162, 175, 156, 164, 114, 192,
    183, 253, 147, 38, 54, 63, 247, 204,
    52, 165, 229, 241, 113, 216, 49, 21,
    4, 199, 35, 195, 24, 150, 5, 154,
    7, 18, 128, 226, 235, 39, 178, 117
};
unsigned char state[16];
unsigned char key[16];

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = (char)(i * 17 + 1);
        key[i] = (char)(i * 29 + 7);
    }
    int round;
    for (round = 0; round < 10; round++) {
        /* SubBytes (reduced sbox) */
        for (i = 0; i < 16; i++) {
            state[i] = sbox[state[i] & 63];
        }
        /* ShiftRows */
        unsigned char tmp = state[1];
        state[1] = state[5]; state[5] = state[9];
        state[9] = state[13]; state[13] = tmp;
        tmp = state[2]; state[2] = state[10]; state[10] = tmp;
        tmp = state[6]; state[6] = state[14]; state[14] = tmp;
        tmp = state[3]; state[3] = state[15]; state[15] = state[11];
        state[11] = state[7]; state[7] = tmp;
        /* AddRoundKey + simple key schedule step */
        for (i = 0; i < 16; i++) {
            state[i] ^= key[i];
            key[i] = (char)(key[i] + i + round);
        }
    }
    unsigned check = 0;
    for (i = 0; i < 16; i++) {
        check = (check << 2) ^ state[i];
    }
    return (int)(check & 0x7FFFFFFF);
}
"""

NETTLE_SHA256 = r"""
/* nettle-sha256: SHA-256 compression function over one block. */
unsigned w[64];
unsigned kconst[16] = {
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174
};

unsigned rotr(unsigned x, int s) {
    return (x >> s) | (x << (32 - s));
}

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        w[i] = (unsigned)(i * 0x11223344 + 99);
    }
    for (i = 16; i < 64; i++) {
        unsigned s0 = rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ (w[i-15] >> 3);
        unsigned s1 = rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ (w[i-2] >> 10);
        w[i] = w[i-16] + s0 + w[i-7] + s1;
    }
    unsigned a = 0x6A09E667;
    unsigned b = 0xBB67AE85;
    unsigned c = 0x3C6EF372;
    unsigned d = 0xA54FF53A;
    unsigned e = 0x510E527F;
    unsigned f = 0x9B05688C;
    unsigned g = 0x1F83D9AB;
    unsigned h = 0x5BE0CD19;
    for (i = 0; i < 64; i++) {
        unsigned S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        unsigned ch = (e & f) ^ (~e & g);
        unsigned t1 = h + S1 + ch + kconst[i & 15] + w[i];
        unsigned S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        unsigned mj = (a & b) ^ (a & c) ^ (b & c);
        unsigned t2 = S0 + mj;
        h = g; g = f; f = e;
        e = d + t1;
        d = c; c = b; b = a;
        a = t1 + t2;
    }
    return (int)((a ^ e) & 0x7FFFFFFF);
}
"""

NSICHNEU = r"""
/* nsichneu: large Petri-net transition chain (branch-heavy). */
int places[32];

int main(void) {
    int i;
    for (i = 0; i < 32; i++) {
        places[i] = (i % 3 == 0) ? 1 : 0;
    }
    int iter;
    for (iter = 0; iter < 40; iter++) {
        if (places[0] > 0 && places[3] > 0) {
            places[0]--; places[3]--; places[1]++; places[7]++;
        }
        if (places[1] > 0 && places[4] > 0) {
            places[1]--; places[4]--; places[2]++; places[8]++;
        }
        if (places[2] > 0) { places[2]--; places[5]++; }
        if (places[5] > 1) { places[5] -= 2; places[6]++; places[0]++; }
        if (places[6] > 0 && places[9] > 0) {
            places[6]--; places[9]--; places[10]++;
        }
        if (places[7] > 2) { places[7] -= 3; places[11]++; }
        if (places[8] > 0) { places[8]--; places[12]++; places[4]++; }
        if (places[10] > 0 && places[12] > 0) {
            places[10]--; places[12]--; places[13]++; places[3]++;
        }
        if (places[11] > 0) { places[11]--; places[14]++; }
        if (places[13] > 0 && places[14] > 0) {
            places[13]--; places[14]--; places[15]++; places[9]++;
        }
        if (places[15] > 1) { places[15] -= 2; places[16]++; }
        int k;
        for (k = 16; k < 31; k++) {
            if (places[k] > 0) { places[k]--; places[k + 1]++; }
        }
        if (places[31] > 0) { places[31]--; places[0]++; }
    }
    int check = 0;
    for (i = 0; i < 32; i++) {
        check = check * 5 + places[i];
    }
    return check & 0x7FFFFFFF;
}
"""
