"""Embench-analog MicroC kernels (part 2 of 2)."""

PICOJPEG = r"""
/* picojpeg: dequantize + zigzag + integer butterfly IDCT-ish transform. */
unsigned char zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63
};
short quant[64];
short coefs[64];
short block[64];

int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        quant[i] = (short)(1 + (i >> 3));
        coefs[i] = (short)(((i * 29) & 63) - 32);
    }
    /* dequantize through zigzag order */
    for (i = 0; i < 64; i++) {
        block[zigzag[i]] = (short)(coefs[i] * quant[i]);
    }
    /* row butterflies */
    int r;
    for (r = 0; r < 8; r++) {
        short *row = &block[r * 8];
        int s0 = row[0] + row[4];
        int d0 = row[0] - row[4];
        int s1 = row[1] + row[5];
        int d1 = row[1] - row[5];
        int s2 = row[2] + row[6];
        int d2 = row[2] - row[6];
        int s3 = row[3] + row[7];
        int d3 = row[3] - row[7];
        row[0] = (short)((s0 + s2) >> 1);
        row[2] = (short)((s0 - s2) >> 1);
        row[1] = (short)((s1 + s3) >> 1);
        row[3] = (short)((s1 - s3) >> 1);
        row[4] = (short)((d0 + d1) >> 1);
        row[5] = (short)((d0 - d1) >> 1);
        row[6] = (short)((d2 + d3) >> 1);
        row[7] = (short)((d2 - d3) >> 1);
    }
    /* clamp to pixel range */
    unsigned check = 0;
    for (i = 0; i < 64; i++) {
        int v = block[i] + 128;
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        check = check * 31 + (unsigned)v;
    }
    return (int)(check & 0x7FFFFFFF);
}
"""

PRIMECOUNT = r"""
/* primecount: count primes below N by trial division. */
int main(void) {
    int count = 0;
    int n;
    for (n = 2; n < 400; n++) {
        int prime = 1;
        int d;
        for (d = 2; d * d <= n; d++) {
            if (n % d == 0) {
                prime = 0;
                break;
            }
        }
        count += prime;
    }
    return count;   /* pi(400) == 78 */
}
"""

QRDUINO = r"""
/* qrduino: QR bit-stream framing with mask patterns. */
unsigned char frame[100];

int main(void) {
    int size = 20;
    int i;
    for (i = 0; i < 100; i++) frame[i] = 0;
    /* place finder-like patterns */
    int r;
    int c;
    for (r = 0; r < 5; r++) {
        for (c = 0; c < 5; c++) {
            int dark = (r == 0 || r == 4 || c == 0 || c == 4
                        || (r >= 1 && r <= 3 && c >= 1 && c <= 3)) ? 1 : 0;
            int bit = r * size + c;
            if (dark) frame[bit >> 3] |= (char)(1 << (bit & 7));
        }
    }
    /* data fill with mask pattern 0: (r+c) % 2 */
    unsigned data = 0xB5E3A1C7;
    for (r = 0; r < size; r++) {
        for (c = 6; c < size; c++) {
            int bit = r * size + c;
            int value = (int)((data >> ((r * c) & 31)) & 1);
            if (((r + c) & 1) == 0) value = 1 - value;
            if (value) frame[bit >> 3] |= (char)(1 << (bit & 7));
        }
    }
    unsigned check = 0;
    for (i = 0; i < 50; i++) {
        check = check * 131 + frame[i];
    }
    return (int)(check & 0x7FFFFFFF);
}
"""

SGLIB_COMBINED = r"""
/* sglib-combined: sorting, array-backed linked list, binary search. */
int values[48];
short next[48];

int main(void) {
    int i;
    for (i = 0; i < 48; i++) {
        values[i] = (i * 53) % 97;
    }
    /* insertion sort */
    for (i = 1; i < 48; i++) {
        int key = values[i];
        int j = i - 1;
        while (j >= 0 && values[j] > key) {
            values[j + 1] = values[j];
            j--;
        }
        values[j + 1] = key;
    }
    /* build linked list in sorted order, then reverse it */
    for (i = 0; i < 48; i++) {
        next[i] = (short)(i + 1);
    }
    next[47] = -1;
    int head = 0;
    int prev = -1;
    while (head != -1) {
        int nx = next[head];
        next[head] = (short)prev;
        prev = head;
        head = nx;
    }
    head = prev;
    /* binary search for several keys */
    int found = 0;
    int probe;
    for (probe = 0; probe < 97; probe += 13) {
        int lo = 0;
        int hi = 47;
        while (lo <= hi) {
            int mid = (lo + hi) >> 1;
            if (values[mid] == probe) {
                found++;
                break;
            }
            if (values[mid] < probe) {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
    }
    int check = found * 1000 + head;
    int walk = head;
    while (walk != -1) {
        check += values[walk];
        walk = next[walk];
    }
    return check & 0x7FFFFFFF;
}
"""

SLRE = r"""
/* slre: tiny regex matcher: literals, '.', '*', '$', char classes-lite. */
char pattern[8] = "ab.c*d";
char subject[24] = "zzabxccccdyy";

int match_here(char *pat, char *text);

int match_star(int ch, char *pat, char *text) {
    do {
        if (match_here(pat, text)) return 1;
    } while (*text != 0 && (*text++ == ch || ch == '.'));
    return 0;
}

int match_here(char *pat, char *text) {
    if (pat[0] == 0) return 1;
    if (pat[1] == '*') {
        return match_star(pat[0], &pat[2], text);
    }
    if (pat[0] == '$' && pat[1] == 0) {
        return *text == 0 ? 1 : 0;
    }
    if (*text != 0 && (pat[0] == '.' || pat[0] == *text)) {
        return match_here(&pat[1], &text[1]);
    }
    return 0;
}

int match(char *pat, char *text) {
    int pos = 0;
    do {
        if (match_here(pat, &text[pos])) return pos + 1;
        pos++;
    } while (text[pos - 1] != 0);
    return 0;
}

int main(void) {
    int r1 = match(pattern, subject);        /* finds at offset 2 -> 3 */
    int r2 = match("xy*z$", "axyyyz");       /* anchored tail match */
    int r3 = match("q.z", subject);          /* no match -> 0 */
    return r1 * 100 + r2 * 10 + r3;
}
"""

ST = r"""
/* st: statistics (mean, variance, correlation) in integer arithmetic. */
int xs[64];
int ys[64];

int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        xs[i] = (i * 13) % 50;
        ys[i] = ((i * 13) % 50) * 2 + ((i * 7) % 5) - 2;
    }
    int sumx = 0;
    int sumy = 0;
    for (i = 0; i < 64; i++) {
        sumx += xs[i];
        sumy += ys[i];
    }
    int meanx = sumx / 64;
    int meany = sumy / 64;
    int varx = 0;
    int vary = 0;
    int cov = 0;
    for (i = 0; i < 64; i++) {
        int dx = xs[i] - meanx;
        int dy = ys[i] - meany;
        varx += dx * dx;
        vary += dy * dy;
        cov += dx * dy;
    }
    varx /= 64;
    vary /= 64;
    cov /= 64;
    /* scaled correlation: cov^2 * 100 / (varx * vary) */
    int corr100 = (cov * cov) / ((varx * vary) / 100 + 1);
    return meanx + meany * 100 + corr100 * 10000;
}
"""

STATEMATE = r"""
/* statemate: generated-automaton style state machine over an event tape. */
unsigned char events[80];
int counters[8];

int main(void) {
    int i;
    for (i = 0; i < 80; i++) {
        events[i] = (char)((i * 11 + 3) & 7);
    }
    for (i = 0; i < 8; i++) counters[i] = 0;
    int state = 0;
    for (i = 0; i < 80; i++) {
        int ev = events[i];
        if (state == 0) {
            if (ev == 1) state = 1;
            else if (ev == 2) state = 2;
            else counters[0]++;
        } else if (state == 1) {
            if (ev == 3) { state = 3; counters[1]++; }
            else if (ev == 0) state = 0;
        } else if (state == 2) {
            if (ev >= 4) { state = 4; counters[2]++; }
            else state = 0;
        } else if (state == 3) {
            if (ev == 7) { state = 5; counters[3]++; }
            else if (ev < 2) state = 1;
        } else if (state == 4) {
            counters[4]++;
            if (ev == 5) state = 5;
            else if (ev == 6) state = 0;
        } else {
            counters[5]++;
            if (ev == 0) state = 0;
        }
    }
    int check = state;
    for (i = 0; i < 8; i++) {
        check = check * 10 + counters[i] % 10;
    }
    return check & 0x7FFFFFFF;
}
"""

TARFIND = r"""
/* tarfind: scan tar-style 512-byte records for matching names. */
unsigned char archive[2048];
char needle[6] = "data3";

int name_matches(unsigned char *header, char *name) {
    int i = 0;
    while (name[i] != 0) {
        if (header[i] != name[i]) return 0;
        i++;
    }
    return header[i] == 0;
}

int main(void) {
    int rec;
    int i;
    for (rec = 0; rec < 4; rec++) {
        unsigned char *h = &archive[rec * 512];
        h[0] = 'd'; h[1] = 'a'; h[2] = 't'; h[3] = 'a';
        h[4] = (char)('0' + rec * 3);
        h[5] = 0;
        /* size field in octal-ish */
        for (i = 0; i < 8; i++) {
            h[124 + i] = (char)('0' + ((rec + i) & 7));
        }
    }
    int found_at = -1;
    int checked = 0;
    for (rec = 0; rec < 4; rec++) {
        checked++;
        if (name_matches(&archive[rec * 512], needle)) {
            found_at = rec;
            break;
        }
    }
    return (found_at + 1) * 100 + checked;
}
"""

UD = r"""
/* ud: LU decomposition and back substitution over integers. */
int a[64];
int b[8];
int x[8];

int main(void) {
    int n = 8;
    int i;
    int j;
    int k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i * n + j] = (i == j) ? 16 + i : ((i + j) % 4);
        }
        b[i] = 10 + i * 3;
    }
    /* Doolittle LU in place (integer, scaled) */
    for (k = 0; k < n; k++) {
        for (i = k + 1; i < n; i++) {
            a[i * n + k] = a[i * n + k] / a[k * n + k];
            for (j = k + 1; j < n; j++) {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    /* forward substitution Ly = b */
    for (i = 0; i < n; i++) {
        x[i] = b[i];
        for (j = 0; j < i; j++) {
            x[i] -= a[i * n + j] * x[j];
        }
    }
    /* backward substitution Ux = y */
    for (i = n - 1; i >= 0; i--) {
        for (j = i + 1; j < n; j++) {
            x[i] -= a[i * n + j] * x[j];
        }
        x[i] = x[i] / a[i * n + i];
    }
    int check = 0;
    for (i = 0; i < n; i++) {
        check = check * 7 + x[i] + 100;
    }
    return check & 0x7FFFFFFF;
}
"""

WIKISORT = r"""
/* wikisort: bottom-up merge sort with a temp buffer. */
int data[64];
int temp[64];

void merge(int *src, int *dst, int lo, int mid, int hi) {
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi) {
        if (src[i] <= src[j]) {
            dst[k++] = src[i++];
        } else {
            dst[k++] = src[j++];
        }
    }
    while (i < mid) dst[k++] = src[i++];
    while (j < hi) dst[k++] = src[j++];
}

int main(void) {
    int n = 64;
    int i;
    for (i = 0; i < n; i++) {
        data[i] = (i * 59) % 101;
    }
    int width;
    int flipped = 0;
    int *src = data;
    int *dst = temp;
    for (width = 1; width < n; width *= 2) {
        int lo;
        for (lo = 0; lo < n; lo += width * 2) {
            int mid = lo + width;
            int hi = lo + width * 2;
            if (mid > n) mid = n;
            if (hi > n) hi = n;
            merge(src, dst, lo, mid, hi);
        }
        int *swap = src;
        src = dst;
        dst = swap;
        flipped = 1 - flipped;
    }
    /* verify sortedness and checksum */
    int sorted = 1;
    int check = 0;
    for (i = 0; i < n; i++) {
        if (i > 0 && src[i] < src[i - 1]) sorted = 0;
        check = check * 3 + src[i];
    }
    return (sorted * 0x40000000 + (check & 0x3FFFFFFF)) & 0x7FFFFFFF;
}
"""
