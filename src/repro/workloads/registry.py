"""Workload registry: the 22 Embench-analog kernels + 3 extreme-edge apps
+ 4 event-driven SoC firmware images (PR 3, extended in PR 5).

The names match the paper's Figure 5 / Table 3 rows so the benchmark
harness can print the same tables.  SoC workloads target the
trap/interrupt subsystem and the MMIO platform and each carries the
:class:`~repro.soc.SocSpec` it runs against; since PR 5 gave MicroC CSR/
wfi intrinsics and the ``__interrupt`` qualifier, the interrupt-driven
images are pure C (``lang="c"``) while two legacy images stay assembly.
Use :func:`build_program` to turn any workload into a linked binary
without caring which toolflow it needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import embench_a, embench_b, extreme_edge, soc_apps


@dataclass(frozen=True)
class Workload:
    name: str
    source: str
    category: str            # "embench" | "extreme-edge" | "soc"
    description: str
    lang: str = "c"          # "c" (MicroC) | "asm" (RV32E assembly)
    soc_spec: object | None = None   # SocSpec for soc workloads


_EMBENCH = (
    ("aha-mont64", embench_a.AHA_MONT64, "Montgomery modular multiply"),
    ("crc32", embench_a.CRC32, "bitwise CRC-32 checksum"),
    ("cubic", embench_a.CUBIC, "fixed-point cubic root solving"),
    ("edn", embench_a.EDN, "FIR filter / vector MAC on int16"),
    ("huffbench", embench_a.HUFFBENCH, "frequency coding + bit packing"),
    ("matmult-int", embench_a.MATMULT_INT, "16x16 integer matrix multiply"),
    ("md5sum", embench_a.MD5SUM, "MD5-style mixing rounds"),
    ("minver", embench_a.MINVER, "fixed-point 3x3 matrix inversion"),
    ("nbody", embench_a.NBODY, "fixed-point gravitational n-body"),
    ("nettle-aes", embench_a.NETTLE_AES, "AES round functions"),
    ("nettle-sha256", embench_a.NETTLE_SHA256, "SHA-256 compression"),
    ("nsichneu", embench_a.NSICHNEU, "Petri-net transition chain"),
    ("picojpeg", embench_b.PICOJPEG, "JPEG dequant + butterfly IDCT"),
    ("primecount", embench_b.PRIMECOUNT, "trial-division prime counting"),
    ("qrduino", embench_b.QRDUINO, "QR code bit-stream framing"),
    ("sglib-combined", embench_b.SGLIB_COMBINED,
     "sorting + lists + binary search"),
    ("slre", embench_b.SLRE, "tiny regular-expression matcher"),
    ("st", embench_b.ST, "integer statistics (mean/var/corr)"),
    ("statemate", embench_b.STATEMATE, "generated state machine"),
    ("tarfind", embench_b.TARFIND, "tar archive header scan"),
    ("ud", embench_b.UD, "integer LU decomposition"),
    ("wikisort", embench_b.WIKISORT, "bottom-up merge sort"),
)

_EXTREME_EDGE = (
    ("armpit", extreme_edge.ARMPIT,
     "malodour classification decision trees (FlexIC app)"),
    ("xgboost", extreme_edge.XGBOOST,
     "boosted decision-tree ensemble (pima-style tabular data)"),
    ("af_detect", extreme_edge.AF_DETECT,
     "APPT atrial-fibrillation detection (FlexIC app)"),
)

_SOC = (
    ("af_detect_irq",
     "interrupt-driven AF detect, pure MicroC: timer-ISR ECG sampling + "
     "wfi sleep + APPT analysis (smart bandage, event-driven)"),
    ("sensor_streaming",
     "two-source interrupt fabric, pure MicroC: sensor data-ready stream "
     "racing a co-prime timer heartbeat through one mcause-dispatching "
     "ISR (fixed-priority arbitration)"),
    ("label_refresh",
     "timer-paced e-label refresh with sensor fold-in and UART telemetry "
     "(warehouse smart label)"),
    ("uart_selftest",
     "Zicsr read-back patterns + ecall/mret round trip, UART-logged"),
)

WORKLOADS: dict[str, Workload] = {}
for _name, _src, _desc in _EMBENCH:
    WORKLOADS[_name] = Workload(_name, _src, "embench", _desc)
for _name, _src, _desc in _EXTREME_EDGE:
    WORKLOADS[_name] = Workload(_name, _src, "extreme-edge", _desc)
for _name, _desc in _SOC:
    WORKLOADS[_name] = Workload(_name, soc_apps.source(_name), "soc",
                                _desc, lang=soc_apps.lang(_name),
                                soc_spec=soc_apps.SOC_SPECS[_name])

EMBENCH_NAMES = tuple(name for name, _, _ in _EMBENCH)
EXTREME_EDGE_NAMES = tuple(name for name, _, _ in _EXTREME_EDGE)
SOC_NAMES = tuple(name for name, _ in _SOC)
#: The 25 compiled (MicroC) workloads of the paper's Figure 5/Table 3;
#: the SoC firmware images are registered separately under SOC_NAMES.
ALL_NAMES = EMBENCH_NAMES + EXTREME_EDGE_NAMES


def get(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{', '.join(ALL_NAMES)}") from None


def build_program(workload: "Workload | str", opt_level: str = "O2"):
    """Linked binary for a workload, whichever toolflow it needs —
    MicroC compilation for ``lang="c"``, direct assembly otherwise."""
    if isinstance(workload, str):
        workload = WORKLOADS[workload]
    if workload.lang == "asm":
        from ..isa.assembler import assemble
        return assemble(workload.source)
    from ..compiler import compile_to_program
    return compile_to_program(workload.source, opt_level).program
