"""``repro.obs`` — zero-overhead-when-off telemetry (PR 8).

Three primitives:

* **counters** — plain-int bumps at existing Python re-entry points
  (fused-loop callbacks, compile functions, cache probes, farm task
  boundaries); never inside exec-compiled generated code;
* **spans** — monotonic-clock start/stop with labels;
* **run manifests** — one schema-validated JSON per run (config, stage
  spans, whole-run counters, derived cache rates, per-task timings,
  host provenance), plus a Chrome ``trace_event`` timeline export.

Off by default: every instrumented site is one module-global read plus
an ``is not None`` check.  Open a session with::

    from repro import obs

    with obs.session() as telemetry:
        ...  # anything instrumented records into `telemetry`
    obs.write_manifest("run.json", telemetry)
    obs.write_trace("trace.json", telemetry)

This package imports nothing from the rest of ``repro`` (stdlib only),
so any module — including the RTL hot paths — may import it without
cycles.
"""

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    cache_rates,
    host_provenance,
    validate_manifest,
    write_manifest,
)
from .telemetry import (
    COUNTERS,
    TASK_SNAPSHOT_KEYS,
    Telemetry,
    bump,
    get,
    session,
    span,
)
from .trace_event import build_trace, write_trace

__all__ = [
    "COUNTERS",
    "MANIFEST_SCHEMA_VERSION",
    "TASK_SNAPSHOT_KEYS",
    "Telemetry",
    "build_manifest",
    "build_trace",
    "bump",
    "cache_rates",
    "get",
    "host_provenance",
    "session",
    "span",
    "validate_manifest",
    "write_manifest",
    "write_trace",
]
