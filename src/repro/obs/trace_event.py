"""Chrome ``trace_event`` export: campaign timelines Perfetto can load.

One complete-event (``"ph": "X"``) row per recorded span:

* parent-session stage spans, under the parent pid;
* one ``task`` slice per farm task snapshot, under the **worker's** pid
  (so Perfetto groups lanes by worker process), preceded by a ``queue``
  slice covering the task's time between submission and worker pickup.

Timestamps are microseconds relative to the session start — stage spans
place by the parent's wall clock, task slices by the worker's wall clock
at pickup (the cross-process common timeline; durations themselves are
monotonic-clock measured).  Load the file at https://ui.perfetto.dev or
``about:tracing``.
"""

from __future__ import annotations

import json
import pathlib

from .telemetry import Telemetry


def build_trace(telemetry: Telemetry) -> dict:
    """Assemble the ``{"traceEvents": [...]}`` document from one
    finished session."""
    events: list[dict] = []
    pid = telemetry.pid
    events.append({"name": "process_name", "ph": "M", "pid": pid,
                   "tid": 0, "args": {"name": "repro (parent)"}})
    for span in telemetry.spans:
        events.append({
            "name": span["name"], "cat": "stage", "ph": "X",
            "ts": span["start_sec"] * 1e6,
            "dur": span["dur_sec"] * 1e6,
            "pid": pid, "tid": 0, "args": dict(span["labels"]),
        })
    named_workers = set()
    for snapshot in telemetry.tasks:
        worker = snapshot["pid"]
        if worker not in named_workers:
            named_workers.add(worker)
            name = "repro (parent)" if worker == pid \
                else f"repro worker {worker}"
            events.append({"name": "process_name", "ph": "M",
                           "pid": worker, "tid": 1,
                           "args": {"name": name}})
        start = (snapshot["start_wall"] - telemetry.start_wall) * 1e6
        wait = snapshot["queue_wait_sec"] * 1e6
        if wait > 0:
            events.append({
                "name": snapshot["task_id"], "cat": "queue", "ph": "X",
                "ts": start - wait, "dur": wait,
                "pid": worker, "tid": 1,
                "args": {"state": "queued"},
            })
        events.append({
            "name": snapshot["task_id"], "cat": "task", "ph": "X",
            "ts": start, "dur": snapshot["run_sec"] * 1e6,
            "pid": worker, "tid": 1,
            "args": {"queue_wait_sec": snapshot["queue_wait_sec"]},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: "pathlib.Path | str",
                telemetry: Telemetry) -> pathlib.Path:
    """Write the trace-event JSON for one finished session."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(build_trace(telemetry), indent=2) + "\n")
    return path
