"""Counters and spans: the zero-overhead-when-off telemetry core.

Design rules (the whole subsystem hangs off them):

* **Off means off.**  The module-global :data:`_ACTIVE` session is
  ``None`` unless a caller opened :func:`session`; every instrumented
  site in the stack is one global read plus an ``is not None`` check
  before doing anything at all.  Nothing is ever injected into
  exec-compiled generated code — counters are bumped only at the Python
  re-entry points the hot loops already have (fused-loop callbacks,
  compile functions, farm task boundaries), so the generated
  ``run_cycles``/``run_fleet`` inner loops are byte-identical with
  telemetry on or off.

* **Fixed counter registry.**  A session's counter dict is initialized
  from :data:`COUNTERS` — every canonical counter, all zero — so the
  *structure* of a merged telemetry snapshot (its key set) is a constant
  of the build, never a function of which branches a particular run
  happened to execute.  This is what makes farm telemetry bit-identical
  in structure across worker counts: a worker that never diverged a
  fleet lane still reports ``fleet.diverge.trap: 0``.

* **Plain ints, plain dicts.**  A bump is ``counters[name] += 1`` on a
  plain dict; a span is two ``perf_counter`` reads.  No locks — sessions
  are per-process (workers open their own; snapshots merge explicitly).

Counter taxonomy (see README for the narrative):

``fused.*``
    Single-instance fused-loop activity: runs, retirements, and every
    cause that re-enters Python (halt, MMIO load/store, emulated
    Zicsr/wfi, mret, illegal word, hardware ecall/ebreak trap,
    arbitrated interrupt entry).
``decode_cache.*``
    The shared per-word decode cache: ``lookups`` approximates probes by
    retirements through the fused loop (every retirement probes once);
    ``misses`` is exact (cache growth).  Emulated/illegal retirements
    re-decode through the ISA memo instead, so the derived hit rate is a
    lower bound.
``compile_cache.*``
    Structural-fingerprint compile caches (per-cycle module, fused core,
    batched fleet): hit/miss per ``compile_*`` call.
``fleet.*``
    Batched-fleet lane lifecycle: passes, in-batch halts, and lane
    divergences classified by cause (fetch, emulated, mret, rv32e_bound,
    illegal, trap, load_oob, store_oob, other).
``riscof.*``
    Golden-signature cache for the compliance flow: lookups, in-process
    memo hits, on-disk cache hits, full golden recomputes.
``farm.*``
    Task counts and worker-side core rebuilds (per-process memo hit vs
    full build).
``scenario.*``
    Coverage-guided scenario engine: scenarios executed, golden-replay
    cross-checks, mutation-loop spawns, and replayable failures.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

#: The canonical counter registry.  Every :class:`Telemetry` session
#: carries exactly these keys (all zero at start); instrumented sites
#: may only bump names listed here.
COUNTERS: tuple[str, ...] = (
    # -- single-instance fused loop: Python re-entries by cause
    "fused.runs",
    "fused.retired",
    "fused.exit.halt",
    "fused.exit.mmio_load",
    "fused.exit.mmio_store",
    "fused.exit.emulated",
    "fused.exit.mret",
    "fused.exit.illegal",
    "fused.exit.hw_trap",
    "fused.exit.interrupt",
    # -- shared per-word decode cache
    "decode_cache.lookups",
    "decode_cache.misses",
    # -- structural-fingerprint compile caches
    "compile_cache.module.hit",
    "compile_cache.module.miss",
    "compile_cache.core.hit",
    "compile_cache.core.miss",
    "compile_cache.fleet.hit",
    "compile_cache.fleet.miss",
    # -- batched fleet lane lifecycle
    "fleet.passes",
    "fleet.lane_halt",
    "fleet.diverge.fetch",
    "fleet.diverge.emulated",
    "fleet.diverge.mret",
    "fleet.diverge.rv32e_bound",
    "fleet.diverge.illegal",
    "fleet.diverge.trap",
    "fleet.diverge.load_oob",
    "fleet.diverge.store_oob",
    "fleet.diverge.other",
    # -- riscof golden-signature cache
    "riscof.sig_lookup",
    "riscof.sig_memo_hit",
    "riscof.sig_disk_hit",
    "riscof.sig_recompute",
    # -- farm
    "farm.tasks",
    "farm.core_rebuild.memo_hit",
    "farm.core_rebuild.build",
    # -- coverage-guided scenario engine
    "scenario.runs",
    "scenario.replays",
    "scenario.mutants",
    "scenario.failures",
)

#: Keys every farm task snapshot carries (see
#: :func:`repro.farm.runner.execute_task_telemetry`); fixed so snapshot
#: structure is a constant, like the counter registry.
TASK_SNAPSHOT_KEYS: tuple[str, ...] = (
    "task_id", "pid", "start_wall", "queue_wait_sec", "run_sec",
    "counters")


class Telemetry:
    """One telemetry session: counters + spans + merged task snapshots.

    Not thread-safe and not meant to be: a session belongs to one
    process.  Worker processes open their own session per task and ship
    a plain-dict snapshot back (see the farm runner); the parent merges
    snapshots in submission order via :meth:`add_task`.
    """

    __slots__ = ("counters", "spans", "tasks", "pid", "start_wall", "_t0")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {name: 0 for name in COUNTERS}
        self.spans: list[dict] = []
        self.tasks: list[dict] = []
        self.pid = os.getpid()
        self.start_wall = time.time()
        self._t0 = time.perf_counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[dict]:
        """Record one labeled span (wall-clock start for timeline
        placement, monotonic-clock duration for accuracy)."""
        record = {"name": name,
                  "start_sec": time.time() - self.start_wall,
                  "dur_sec": 0.0,
                  "labels": dict(labels)}
        started = time.perf_counter()
        self.spans.append(record)
        try:
            yield record
        finally:
            record["dur_sec"] = time.perf_counter() - started

    def add_task(self, snapshot: dict) -> None:
        """Merge one worker task snapshot (submission order = call
        order; the farm runner guarantees it)."""
        self.tasks.append(snapshot)

    def merged_counters(self) -> dict[str, int]:
        """Session counters plus the sum of every task snapshot's —
        the whole-run totals the manifest reports."""
        merged = dict(self.counters)
        for snapshot in self.tasks:
            for name, value in snapshot["counters"].items():
                merged[name] = merged.get(name, 0) + value
        return merged


#: The active session, or None (telemetry off).  Instrumented sites read
#: this exact global; keep it a single attribute so the off path stays
#: one load + one identity check.
_ACTIVE: Telemetry | None = None


def get() -> Telemetry | None:
    """The active session, or None when telemetry is off."""
    return _ACTIVE


def bump(name: str, amount: int = 1) -> None:
    """Bump one counter if a session is active (no-op otherwise)."""
    active = _ACTIVE
    if active is not None:
        active.counters[name] += amount


@contextmanager
def session() -> Iterator[Telemetry]:
    """Open a telemetry session for the duration of the ``with`` block.

    Nestable: an inner session shadows the outer one (the farm's serial
    path uses this so ``workers=1`` task snapshots have exactly the same
    shape as pool snapshots) and the outer session is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = active = Telemetry()
    try:
        yield active
    finally:
        _ACTIVE = previous


@contextmanager
def span(name: str,
         **labels: object) -> Iterator[dict | None]:
    """Span on the active session; a no-op context when telemetry is
    off."""
    active = _ACTIVE
    if active is None:
        yield None
        return
    with active.span(name, **labels) as record:
        yield record
