"""The run manifest: one schema-validated JSON document per run.

A manifest is the machine-readable record of *what a run actually did*:
the configuration it ran under, per-stage spans, the whole-run counter
totals (session + every farm task), derived cache-hit rates, the
per-task timing snapshots, and enough host provenance to compare runs
across machines.  ``python -m repro --telemetry PATH`` writes one per
invocation — including failed ones, so a crashed campaign still leaves
its telemetry behind.

Like :mod:`repro.core.bench_schema`, validation is the writer's problem:
:func:`write_manifest` refuses to write a document
:func:`validate_manifest` rejects, so CI can never upload a malformed
manifest.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform

from .telemetry import COUNTERS, TASK_SNAPSHOT_KEYS, Telemetry

#: Manifest schema revision (independent of the BENCH_* artifact schema).
MANIFEST_SCHEMA_VERSION = 1

_TOP_KEYS = ("schema", "kind", "host", "config", "counters",
             "cache_rates", "stages", "tasks")

_KIND = "repro-telemetry-manifest"


def host_provenance() -> dict:
    """Host fingerprint shared by manifests and (schema v3+) BENCH_*
    artifacts: interpreter, architecture, OS, full platform string, and
    CPU count."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def _rate(hits: int, total: int) -> float:
    return hits / total if total else 0.0


def cache_rates(counters: dict) -> dict:
    """Derived hit rates from the raw counters — fixed key set, so the
    manifest structure never depends on which caches a run touched.

    ``decode_cache.hit_rate`` is a documented lower bound: lookups are
    approximated by fused-loop retirements (each probes the per-word
    cache once) while emulated/illegal retirements re-decode through the
    ISA memo instead of probing.
    """
    lookups = counters.get("decode_cache.lookups", 0)
    sig_lookups = counters.get("riscof.sig_lookup", 0)
    rebuilds = (counters.get("farm.core_rebuild.memo_hit", 0)
                + counters.get("farm.core_rebuild.build", 0))
    rates = {
        "decode_cache.hit_rate": _rate(
            lookups - counters.get("decode_cache.misses", 0), lookups),
        "riscof.sig_memo_hit_rate": _rate(
            counters.get("riscof.sig_memo_hit", 0), sig_lookups),
        "riscof.sig_disk_hit_rate": _rate(
            counters.get("riscof.sig_disk_hit", 0), sig_lookups),
        "farm.core_rebuild.memo_hit_rate": _rate(
            counters.get("farm.core_rebuild.memo_hit", 0), rebuilds),
    }
    for tier in ("module", "core", "fleet"):
        hits = counters.get(f"compile_cache.{tier}.hit", 0)
        misses = counters.get(f"compile_cache.{tier}.miss", 0)
        rates[f"compile_cache.{tier}.hit_rate"] = _rate(hits, hits + misses)
    return rates


def build_manifest(telemetry: Telemetry, config: dict | None = None) -> dict:
    """Assemble the manifest document from one finished session."""
    counters = telemetry.merged_counters()
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": _KIND,
        "host": host_provenance(),
        "config": dict(config or {}),
        "counters": counters,
        "cache_rates": cache_rates(counters),
        "stages": [dict(span) for span in telemetry.spans],
        "tasks": [dict(snapshot) for snapshot in telemetry.tasks],
    }


def _finite(value: object) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def validate_manifest(document: object) -> list[str]:
    """Validate one manifest document; returns error strings (empty when
    the document conforms)."""
    if not isinstance(document, dict):
        return [f"manifest must be a JSON object, got "
                f"{type(document).__name__}"]
    errors: list[str] = []
    for key in _TOP_KEYS:
        if key not in document:
            errors.append(f"missing required field {key!r}")
    unknown = set(document) - set(_TOP_KEYS)
    if unknown:
        errors.append(f"unknown top-level fields {sorted(unknown)}")
    if document.get("kind") != _KIND:
        errors.append(f"kind must be {_KIND!r}, got "
                      f"{document.get('kind')!r}")
    schema = document.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool) \
            or not 1 <= schema <= MANIFEST_SCHEMA_VERSION:
        errors.append(f"schema must be an int in "
                      f"[1, {MANIFEST_SCHEMA_VERSION}], got {schema!r}")
    host = document.get("host")
    if isinstance(host, dict):
        for key in ("python", "machine", "system", "platform"):
            if not isinstance(host.get(key), str) or not host.get(key):
                errors.append(f"host.{key} must be a non-empty string")
        cpus = host.get("cpu_count")
        if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
            errors.append(f"host.cpu_count must be a positive int, "
                          f"got {cpus!r}")
    elif host is not None:
        errors.append("host must be an object")
    config = document.get("config")
    if config is not None and not isinstance(config, dict):
        errors.append("config must be an object")
    counters = document.get("counters")
    if isinstance(counters, dict):
        missing = [name for name in COUNTERS if name not in counters]
        if missing:
            errors.append(f"counters missing registry names {missing}")
        extra = sorted(set(counters) - set(COUNTERS))
        if extra:
            errors.append(f"counters carry unregistered names {extra}")
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                errors.append(f"counters[{name!r}] must be a "
                              f"non-negative int, got {value!r}")
    elif counters is not None:
        errors.append("counters must be an object")
    rates = document.get("cache_rates")
    if isinstance(rates, dict):
        for name, value in rates.items():
            if not _finite(value):
                errors.append(f"cache_rates[{name!r}] must be a finite "
                              f"number, got {value!r}")
    elif rates is not None:
        errors.append("cache_rates must be an object")
    stages = document.get("stages")
    if isinstance(stages, list):
        for index, span in enumerate(stages):
            if not isinstance(span, dict) \
                    or not isinstance(span.get("name"), str) \
                    or not _finite(span.get("start_sec")) \
                    or not _finite(span.get("dur_sec")) \
                    or not isinstance(span.get("labels"), dict):
                errors.append(f"stages[{index}] is not a valid span "
                              f"record")
    elif stages is not None:
        errors.append("stages must be a list")
    tasks = document.get("tasks")
    if isinstance(tasks, list):
        for index, snapshot in enumerate(tasks):
            if not isinstance(snapshot, dict) \
                    or tuple(sorted(snapshot)) \
                    != tuple(sorted(TASK_SNAPSHOT_KEYS)):
                errors.append(f"tasks[{index}] must carry exactly keys "
                              f"{sorted(TASK_SNAPSHOT_KEYS)}")
                continue
            if not isinstance(snapshot["task_id"], str) \
                    or not snapshot["task_id"]:
                errors.append(f"tasks[{index}].task_id must be a "
                              f"non-empty string")
            if not isinstance(snapshot["counters"], dict):
                errors.append(f"tasks[{index}].counters must be an object")
    elif tasks is not None:
        errors.append("tasks must be a list")
    return errors


def write_manifest(path: "pathlib.Path | str", telemetry: Telemetry,
                   config: dict | None = None) -> pathlib.Path:
    """Build, validate and write the manifest; refuses malformed output
    exactly like :func:`repro.core.bench_schema.write_bench_artifact`."""
    document = build_manifest(telemetry, config)
    errors = validate_manifest(document)
    if errors:
        raise ValueError(f"refusing to write malformed telemetry "
                         f"manifest: {errors}")
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
