"""Gate-level netlist with constructive optimization.

The netlist is an AIG-like DAG over a small standard-cell alphabet (NOT,
AND2, OR2, XOR2, MUX2, DFF plus constants).  Two of the paper's
"redundancy removal by synthesis tools" mechanisms are implemented right in
the constructor API:

  * **constant propagation** — gates with constant inputs fold away, which
    is how the unused arms of the ModularEX switch disappear, and
  * **structural hashing** — identical gates over identical inputs merge,
    which is how common datapath logic (the ``pc+4`` incrementer, the
    effective-address adder shared by loads/stores/jalr, branch comparator
    chains) is shared across instruction hardware blocks.

A third pass, dead-gate elimination, runs after construction
(:func:`sweep_dead`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class GateType(Enum):
    CONST0 = "const0"
    CONST1 = "const1"
    NOT = "not"
    AND2 = "and2"
    OR2 = "or2"
    XOR2 = "xor2"
    MUX2 = "mux2"   # inputs: (sel, a, b) -> sel ? a : b
    DFF = "dff"     # input: (d,); state element
    INPUT = "input"


_COMMUTATIVE = {GateType.AND2, GateType.OR2, GateType.XOR2}


@dataclass(frozen=True)
class Gate:
    kind: GateType
    inputs: tuple[int, ...]
    name: str = ""   # populated for INPUT and DFF nodes


class Netlist:
    """Mutable gate network under construction; optimizes as it builds."""

    def __init__(self):
        self.gates: dict[int, Gate] = {}
        self.outputs: dict[str, int] = {}
        self._strash: dict[tuple, int] = {}
        self._next_id = 0
        self.zero = self._raw(Gate(GateType.CONST0, ()))
        self.one = self._raw(Gate(GateType.CONST1, ()))
        self.dff_init: dict[int, int] = {}

    # ------------------------------------------------------------- plumbing

    def _raw(self, gate: Gate) -> int:
        node = self._next_id
        self._next_id += 1
        self.gates[node] = gate
        return node

    def add_input(self, name: str) -> int:
        return self._raw(Gate(GateType.INPUT, (), name))

    def add_dff(self, name: str, init: int = 0) -> int:
        node = self._raw(Gate(GateType.DFF, (self.zero,), name))
        self.dff_init[node] = init
        return node

    def connect_dff(self, dff: int, d: int) -> None:
        gate = self.gates[dff]
        if gate.kind is not GateType.DFF:
            raise ValueError(f"node {dff} is not a DFF")
        self.gates[dff] = Gate(GateType.DFF, (d,), gate.name)

    def set_output(self, name: str, node: int) -> None:
        self.outputs[name] = node

    def is_const(self, node: int) -> bool:
        return self.gates[node].kind in (GateType.CONST0, GateType.CONST1)

    def const_value(self, node: int) -> int:
        return 1 if self.gates[node].kind is GateType.CONST1 else 0

    # ----------------------------------------------------- logic constructors

    def g_not(self, a: int) -> int:
        gate = self.gates[a]
        if gate.kind is GateType.CONST0:
            return self.one
        if gate.kind is GateType.CONST1:
            return self.zero
        if gate.kind is GateType.NOT:   # double negation
            return gate.inputs[0]
        return self._hashed(GateType.NOT, (a,))

    def g_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        for x, y in ((a, b), (b, a)):
            if self.gates[x].kind is GateType.CONST0:
                return self.zero
            if self.gates[x].kind is GateType.CONST1:
                return y
        if self._complementary(a, b):
            return self.zero
        return self._hashed(GateType.AND2, (a, b))

    def g_or(self, a: int, b: int) -> int:
        if a == b:
            return a
        for x, y in ((a, b), (b, a)):
            if self.gates[x].kind is GateType.CONST1:
                return self.one
            if self.gates[x].kind is GateType.CONST0:
                return y
        if self._complementary(a, b):
            return self.one
        return self._hashed(GateType.OR2, (a, b))

    def g_xor(self, a: int, b: int) -> int:
        if a == b:
            return self.zero
        for x, y in ((a, b), (b, a)):
            if self.gates[x].kind is GateType.CONST0:
                return y
            if self.gates[x].kind is GateType.CONST1:
                return self.g_not(y)
        if self._complementary(a, b):
            return self.one
        return self._hashed(GateType.XOR2, (a, b))

    def g_mux(self, sel: int, a: int, b: int) -> int:
        """``sel ? a : b``."""
        if a == b:
            return a
        kind = self.gates[sel].kind
        if kind is GateType.CONST1:
            return a
        if kind is GateType.CONST0:
            return b
        if self.is_const(a) and self.is_const(b):
            # arms are 1/0 or 0/1 (a == b handled above)
            return sel if self.const_value(a) else self.g_not(sel)
        if self.is_const(a):
            return (self.g_or(sel, b) if self.const_value(a)
                    else self.g_and(self.g_not(sel), b))
        if self.is_const(b):
            return (self.g_or(self.g_not(sel), a) if self.const_value(b)
                    else self.g_and(sel, a))
        return self._hashed(GateType.MUX2, (sel, a, b))

    def _complementary(self, a: int, b: int) -> bool:
        ga, gb = self.gates[a], self.gates[b]
        return ((ga.kind is GateType.NOT and ga.inputs[0] == b)
                or (gb.kind is GateType.NOT and gb.inputs[0] == a))

    def _hashed(self, kind: GateType, inputs: tuple[int, ...]) -> int:
        if kind in _COMMUTATIVE:
            inputs = tuple(sorted(inputs))
        key = (kind, inputs)
        node = self._strash.get(key)
        if node is None:
            node = self._raw(Gate(kind, inputs))
            self._strash[key] = node
        return node

    # --------------------------------------------------------------- queries

    def counts(self) -> dict[GateType, int]:
        """Gate population by type (excluding constants and inputs)."""
        out: dict[GateType, int] = {}
        for gate in self.gates.values():
            if gate.kind in (GateType.CONST0, GateType.CONST1, GateType.INPUT):
                continue
            out[gate.kind] = out.get(gate.kind, 0) + 1
        return out

    def num_dffs(self) -> int:
        return sum(1 for g in self.gates.values()
                   if g.kind is GateType.DFF)


def sweep_dead(netlist: Netlist) -> Netlist:
    """Dead-gate elimination: keep only logic reachable from outputs/DFFs.

    Returns a new compacted netlist-view (same object, gates dict pruned) —
    the unused-instruction logic the RISSP philosophy removes shows up here
    as a concrete gate-count drop.
    """
    live: set[int] = set()
    stack = list(netlist.outputs.values())
    # DFFs are roots too only if they themselves are live; iterate to fixpoint
    # starting from outputs, pulling in DFF d-cones on demand.
    while stack:
        node = stack.pop()
        if node in live:
            continue
        live.add(node)
        gate = netlist.gates[node]
        stack.extend(gate.inputs)
    changed = True
    while changed:
        changed = False
        for node, gate in list(netlist.gates.items()):
            if gate.kind is GateType.DFF and node in live:
                for dep in gate.inputs:
                    if dep not in live:
                        stack = [dep]
                        while stack:
                            inner = stack.pop()
                            if inner in live:
                                continue
                            live.add(inner)
                            stack.extend(netlist.gates[inner].inputs)
                        changed = True
    netlist.gates = {node: gate for node, gate in netlist.gates.items()
                     if node in live
                     or gate.kind in (GateType.CONST0, GateType.CONST1)}
    netlist.dff_init = {node: init for node, init in netlist.dff_init.items()
                        if node in netlist.gates}
    return netlist
