"""Post-synthesis technology-mapping statistics.

Commercial synthesis does not leave a design as 2-input primitives: AND-OR
cones (exactly what the ModularEX one-hot switch produces) map onto complex
cells (AO22/AO21), and inverted gates fold into NAND/NOR.  Simulating and
mutating the primitive netlist is simpler and equivalent, so the functional
netlist stays primitive — but *area and energy* are computed from a virtual
mapping that mirrors what the EDA tool reports.

Rules (classic standard-cell identities, applied over single-fanout fanins):

  * ``OR2(AND2, AND2)``     -> AO22  (2.5 GE replaces 3.99 GE)
  * ``OR2(AND2, x)``        -> AO21  (1.8 GE replaces 2.66 GE)
  * ``NOT(AND2)``           -> NAND2 (1.0 GE replaces 2.0 GE)
  * ``NOT(OR2)``            -> NOR2  (1.0 GE replaces 2.0 GE)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .netlist import GateType, Netlist
from .techlib import TechLib

_AO22_AREA = 2.5
_AO21_AREA = 1.8
_NAND2_AREA = 1.0
_NOR2_AREA = 1.0

_SOURCES = (GateType.CONST0, GateType.CONST1, GateType.INPUT)


@dataclass
class MappedStats:
    """Virtual post-mapping cell statistics (areas in raw NAND2-eq GE)."""

    comb_area_ge: float = 0.0
    dff_count: int = 0
    cell_counts: dict[str, int] = field(default_factory=dict)

    def _bump(self, name: str, count: int = 1) -> None:
        self.cell_counts[name] = self.cell_counts.get(name, 0) + count


def fanout_counts(netlist: Netlist) -> dict[int, int]:
    """Fanout per node, counting primary outputs and DFF data pins."""
    fanout: dict[int, int] = {}
    for gate in netlist.gates.values():
        for dep in gate.inputs:
            fanout[dep] = fanout.get(dep, 0) + 1
    for node in netlist.outputs.values():
        fanout[node] = fanout.get(node, 0) + 1
    return fanout


def mapped_stats(netlist: Netlist, lib: TechLib) -> MappedStats:
    """Compute virtually mapped cell counts and combinational area."""
    stats = MappedStats()
    fanout = fanout_counts(netlist)
    absorbed: set[int] = set()
    gates = netlist.gates

    def is_abs_candidate(node: int, kind: GateType) -> bool:
        gate = gates.get(node)
        return (gate is not None and gate.kind is kind
                and fanout.get(node, 0) == 1 and node not in absorbed)

    # Walk ORs first so AO absorption wins over NAND/NOR folding.
    for node, gate in gates.items():
        if gate.kind is not GateType.OR2:
            continue
        a, b = gate.inputs
        a_and = is_abs_candidate(a, GateType.AND2)
        b_and = is_abs_candidate(b, GateType.AND2)
        if a_and and b_and:
            absorbed.update((node, a, b))
            stats.comb_area_ge += _AO22_AREA
            stats._bump("AO22")
        elif a_and or b_and:
            absorbed.update((node, a if a_and else b))
            stats.comb_area_ge += _AO21_AREA
            stats._bump("AO21")

    for node, gate in gates.items():
        if gate.kind is not GateType.NOT or node in absorbed:
            continue
        inner = gate.inputs[0]
        if is_abs_candidate(inner, GateType.AND2):
            absorbed.update((node, inner))
            stats.comb_area_ge += _NAND2_AREA
            stats._bump("NAND2")
        elif is_abs_candidate(inner, GateType.OR2):
            absorbed.update((node, inner))
            stats.comb_area_ge += _NOR2_AREA
            stats._bump("NOR2")

    for node, gate in gates.items():
        if node in absorbed or gate.kind in _SOURCES:
            continue
        if gate.kind is GateType.DFF:
            stats.dff_count += 1
            continue
        stats.comb_area_ge += lib.cell(gate.kind).area_ge
        stats._bump(gate.kind.value.upper())
    return stats
