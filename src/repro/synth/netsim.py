"""Gate-level netlist simulation.

Used for synthesis-equivalence checking (word-level RTL evaluation vs the
lowered gates — the paper's synthesis tool performs the same check via
equivalence checking) and as the execution engine for the MCY-analog
mutation coverage measurement.
"""

from __future__ import annotations

from .netlist import Gate, GateType, Netlist


def topo_gates(netlist: Netlist) -> list[int]:
    """Topological order of combinational gates (sources first)."""
    order: list[int] = []
    state: dict[int, int] = {}

    sources = (GateType.CONST0, GateType.CONST1, GateType.INPUT, GateType.DFF)
    dff_nodes = [n for n, g in netlist.gates.items()
                 if g.kind is GateType.DFF]
    # DFF outputs are sources, but their *data-input cones* are
    # combinational logic that must be scheduled too.
    dff_fanin = [g.inputs[0] for n, g in netlist.gates.items()
                 if g.kind is GateType.DFF]
    for root in list(netlist.outputs.values()) + dff_nodes + dff_fanin:
        stack = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                state[node] = 2
                order.append(node)
                continue
            mark = state.get(node, 0)
            if mark:
                continue
            state[node] = 1
            gate = netlist.gates[node]
            stack.append((node, True))
            if gate.kind in sources:
                continue
            for dep in gate.inputs:
                if state.get(dep, 0) == 0:
                    stack.append((dep, False))
    return order


class NetSim:
    """Evaluate a netlist cycle-by-cycle."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = topo_gates(netlist)
        self.values: dict[int, int] = {}
        self.dff_state: dict[int, int] = dict(netlist.dff_init)

    def eval_comb(self, inputs: dict[str, int]) -> dict[str, int]:
        """Evaluate with named input bits; returns named output bits."""
        values = self.values
        values.clear()
        gates = self.netlist.gates
        for node in self._order:
            gate = gates[node]
            kind = gate.kind
            if kind is GateType.CONST0:
                values[node] = 0
            elif kind is GateType.CONST1:
                values[node] = 1
            elif kind is GateType.INPUT:
                values[node] = inputs.get(gate.name, 0) & 1
            elif kind is GateType.DFF:
                values[node] = self.dff_state.get(node, 0)
            elif kind is GateType.NOT:
                values[node] = 1 - values[gate.inputs[0]]
            elif kind is GateType.AND2:
                values[node] = values[gate.inputs[0]] & values[gate.inputs[1]]
            elif kind is GateType.OR2:
                values[node] = values[gate.inputs[0]] | values[gate.inputs[1]]
            elif kind is GateType.XOR2:
                values[node] = values[gate.inputs[0]] ^ values[gate.inputs[1]]
            elif kind is GateType.MUX2:
                sel, a, b = gate.inputs
                values[node] = values[a] if values[sel] else values[b]
            else:  # pragma: no cover
                raise ValueError(f"cannot simulate {kind}")
        return {name: values[node]
                for name, node in self.netlist.outputs.items()}

    def tick(self) -> None:
        """Commit DFF next-state (call after :meth:`eval_comb`)."""
        for node, gate in self.netlist.gates.items():
            if gate.kind is GateType.DFF:
                self.dff_state[node] = self.values[gate.inputs[0]]


def eval_words(netlist: Netlist, inputs: dict[str, int],
               widths: dict[str, int]) -> dict[str, int]:
    """Word-level convenience wrapper: pack/unpack ``name[i]`` bit pins."""
    bit_inputs: dict[str, int] = {}
    for name, value in inputs.items():
        for index in range(widths.get(name, 32)):
            bit_inputs[f"{name}[{index}]"] = (value >> index) & 1
    sim = NetSim(netlist)
    out_bits = sim.eval_comb(bit_inputs)
    words: dict[str, int] = {}
    for pin, bit in out_bits.items():
        name, _, rest = pin.partition("[")
        index = int(rest[:-1])
        words[name] = words.get(name, 0) | (bit << index)
    return words
