"""Synthesis flow: lowering, optimization, FlexIC techlib, timing, power."""

from .lower import LoweredDesign, lower_module
from .netlist import Gate, GateType, Netlist, sweep_dead
from .netsim import NetSim, eval_words, topo_gates
from .optimize import MappedStats, fanout_counts, mapped_stats
from .power import FF_ENERGY_FACTOR, PowerBreakdown, power_at, switching_units
from .report import AreaStats, SynthReport, area_stats, synthesize
from .serv_model import SERV_CPI, synthesize_serv
from .techlib import DFF_SETUP_UNITS, FLEXIC_GEN3, CellInfo, TechLib, design_jitter
from .timing import TimingReport, analyze_timing, critical_path_units

__all__ = [
    "AreaStats", "CellInfo", "DFF_SETUP_UNITS", "FF_ENERGY_FACTOR",
    "FLEXIC_GEN3", "Gate", "GateType", "LoweredDesign", "MappedStats",
    "NetSim", "Netlist", "PowerBreakdown", "SERV_CPI", "SynthReport",
    "TechLib", "TimingReport", "analyze_timing", "area_stats",
    "critical_path_units", "design_jitter", "eval_words", "fanout_counts",
    "lower_module", "mapped_stats", "power_at", "sweep_dead", "switching_units",
    "synthesize", "synthesize_serv", "topo_gates",
]
