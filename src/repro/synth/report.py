"""Synthesis result aggregation: the numbers Figures 6-9 are built from.

``synthesize`` runs the full flow for one module: lower -> optimize (const
prop + strash + dead sweep + virtual tech mapping) -> timing -> area ->
power, then replays the paper's measurement protocol:

  * **fmax** — highest 25 kHz sweep point with positive slack (Fig 6),
  * **average area** — mean NAND2-eq gate count across all positive-slack
    target frequencies, with a constraint-pressure model (synthesis upsizes
    as the target approaches fmax) (Fig 7),
  * **average power** — mean total power across the same sweep (Fig 8),
  * **EPI** — power at fmax / fmax x CPI (Fig 9).

Area policy: the virtual-mapping combinational area is scaled by
``lib.area_scale`` (fitting commercial-synthesis compaction of random
logic); flip-flop area is structural (count x cell area) because sequential
cells do not compress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.ir import Module
from .lower import LoweredDesign, lower_module
from .netlist import GateType
from .optimize import MappedStats, mapped_stats
from .power import PowerBreakdown, power_at
from .techlib import FLEXIC_GEN3, TechLib
from .timing import TimingReport, analyze_timing

#: Constraint-pressure area model: synthesizing at target frequency f costs
#: ``area * (1 + AREA_PRESSURE * (f / fmax)^2)`` extra gates (upsizing /
#: duplication as slack tightens).
AREA_PRESSURE = 0.08


@dataclass
class AreaStats:
    """Reported (scaled) area decomposition."""

    comb_ge: float
    ff_ge: float
    dff_count: int

    @property
    def total_ge(self) -> float:
        return self.comb_ge + self.ff_ge

    @property
    def ff_fraction(self) -> float:
        return self.ff_ge / self.total_ge if self.total_ge else 0.0


def area_stats(stats: MappedStats, lib: TechLib) -> AreaStats:
    """Apply the reporting policy to virtual-mapping statistics."""
    ff_cell = lib.cell(GateType.DFF).area_ge
    return AreaStats(comb_ge=stats.comb_area_ge * lib.area_scale,
                     ff_ge=stats.dff_count * ff_cell,
                     dff_count=stats.dff_count)


@dataclass
class SynthReport:
    """Everything downstream experiments need about one synthesized core."""

    name: str
    mnemonics: tuple[str, ...]
    gate_counts: dict[GateType, int]
    mapped: MappedStats
    area: AreaStats
    timing: TimingReport
    lib: TechLib
    avg_area_ge: float = 0.0    # averaged across the positive-slack sweep
    avg_power_mw: float = 0.0
    power_at_fmax: PowerBreakdown | None = None
    design: LoweredDesign | None = field(default=None, repr=False)

    @property
    def fmax_khz(self) -> int:
        return self.timing.fmax_khz

    @property
    def area_ge(self) -> float:
        return self.area.total_ge

    @property
    def dff_count(self) -> int:
        return self.area.dff_count

    @property
    def ff_area_fraction(self) -> float:
        return self.area.ff_fraction

    def area_at(self, freq_khz: float) -> float:
        """Constraint-pressure area at a target frequency."""
        if self.timing.fmax_khz_analog <= 0:
            return self.area.total_ge
        ratio = min(freq_khz / self.timing.fmax_khz_analog, 1.0)
        return self.area.total_ge * (1.0 + AREA_PRESSURE * ratio * ratio)

    def power_mw_at(self, freq_khz: float) -> PowerBreakdown:
        pressure = self.area_at(freq_khz) / self.area.total_ge \
            if self.area.total_ge else 1.0
        return power_at(self.area.comb_ge * pressure, self.area.dff_count,
                        self.area_at(freq_khz), self.lib, freq_khz)

    def energy_per_instruction_nj(self, cpi: float = 1.0) -> float:
        """EPI = P(fmax)/fmax x CPI (Fig 9 protocol); result in nanojoules."""
        if self.power_at_fmax is None or self.fmax_khz == 0:
            raise ValueError("no fmax point available")
        power_w = self.power_at_fmax.total_mw * 1e-3
        freq_hz = self.fmax_khz * 1e3
        return power_w / freq_hz * cpi * 1e9


def synthesize(module: Module, lib: TechLib = FLEXIC_GEN3,
               seed: str | None = None,
               keep_design: bool = True) -> SynthReport:
    """Run the synthesis flow over ``module`` and measure PPA."""
    design = lower_module(module, sweep=True)
    netlist = design.netlist
    timing = analyze_timing(netlist, lib, seed=seed or module.name)
    stats = mapped_stats(netlist, lib)
    area = area_stats(stats, lib)
    report = SynthReport(
        name=module.name,
        mnemonics=tuple(module.meta.get("mnemonics", ())),
        gate_counts=netlist.counts(),
        mapped=stats,
        area=area,
        timing=timing,
        lib=lib,
        design=design,
    )
    sweep = timing.sweep_khz
    if sweep:
        areas = [report.area_at(khz) for khz in sweep]
        report.avg_area_ge = sum(areas) / len(areas)
        powers = [report.power_mw_at(khz).total_mw for khz in sweep]
        report.avg_power_mw = sum(powers) / len(powers)
        report.power_at_fmax = report.power_mw_at(timing.fmax_khz)
    if not keep_design:
        report.design = None
    return report
