"""Power model: static leakage + dynamic switching (§4.2.3).

``P(f) = leakage(total area) + f * dyn_coeff * switching_units`` where

  * combinational switching is proportional to mapped combinational area
    (1 energy unit per NAND2-equivalent) weighted by average activity,
  * each flip-flop contributes 10 energy units at activity 1.0 — the FlexIC
    process fact the paper uses to explain why the FF-heavy Serv draws more
    power than larger RISSPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .techlib import TechLib

#: Flip-flop switching energy relative to one NAND2-equivalent of logic.
FF_ENERGY_FACTOR = 10.0


@dataclass(frozen=True)
class PowerBreakdown:
    static_mw: float
    dynamic_mw: float

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw


def switching_units(comb_area_ge: float, dff_count: int,
                    lib: TechLib) -> float:
    """Activity-weighted switching energy units for a design."""
    return (comb_area_ge * lib.comb_activity
            + dff_count * FF_ENERGY_FACTOR * lib.ff_activity)


def power_at(comb_area_ge: float, dff_count: int, total_area_ge: float,
             lib: TechLib, freq_khz: float) -> PowerBreakdown:
    """Power (mW) at ``freq_khz`` for the given area statistics."""
    static = lib.leakage_mw_per_ge * total_area_ge
    dynamic = (lib.dyn_mw_per_eunit_mhz
               * switching_units(comb_area_ge, dff_count, lib)
               * (freq_khz / 1e3))
    return PowerBreakdown(static_mw=static, dynamic_mw=dynamic)
