"""FlexIC technology library model (Pragmatic 0.6 µm IGZO, "Gen3").

The paper synthesizes with a commercial EDA tool against Pragmatic's
FlexIC process.  We model the process as a small standard-cell library with
per-cell area (NAND2-equivalents), delay and switching energy, plus the two
process facts §4.2.3 states explicitly:

  * a flip-flop consumes ~10x the power of a NAND2 gate,
  * the process is slow (metal-oxide TFTs): cores clock in the ~1-2 MHz
    range at 3 V.

Calibration: exactly three constants (``area_scale``, ``delay_ns_per_unit``
and the two power coefficients) are fitted to the paper's published anchor
for the *full-ISA baseline only* (RISSP-RV32E ~= 1700 kHz, ~3.2 kGE,
~0.9 mW at fmax).  Every per-application result is then produced by the
model.  A bounded deterministic perturbation (``jitter_pct``) stands in for
commercial-synthesis heuristic variance, which Figure 6 shows (some RISSPs
clock below the full-ISA core).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .netlist import GateType


@dataclass(frozen=True)
class CellInfo:
    """Area in NAND2-equivalents, delay and switching energy in NAND2 units."""

    area_ge: float
    delay_units: float
    energy_units: float


@dataclass(frozen=True)
class TechLib:
    name: str
    cells: dict[GateType, CellInfo] = field(default_factory=dict)
    #: raw modeled GE -> reported NAND2-eq gate count (fits RV32E anchor).
    area_scale: float = 1.0
    #: ns of real delay per NAND2 delay unit.
    delay_ns_per_unit: float = 1.0
    #: fixed per-cycle timing overhead: clk->q + setup + skew margin (ns).
    clock_overhead_ns: float = 0.0
    #: static power per (reported) NAND2-eq of area, mW.
    leakage_mw_per_ge: float = 0.0
    #: dynamic power per energy-unit per MHz of clock, mW.
    dyn_mw_per_eunit_mhz: float = 0.0
    #: average switching activity of combinational cells.
    comb_activity: float = 0.15
    #: flip-flops are clocked every cycle.
    ff_activity: float = 1.0
    #: bounded deterministic synthesis-variance on the critical path.
    jitter_pct: float = 0.06
    #: supply voltage (V), for reporting.
    vdd: float = 3.0

    def cell(self, kind: GateType) -> CellInfo:
        return self.cells[kind]


def design_jitter(lib: TechLib, seed: str) -> float:
    """Deterministic per-design delay factor in [1-j, 1+j].

    Stands in for commercial-synthesis heuristic noise; seeded by the design
    identity so results are reproducible run to run.
    """
    digest = hashlib.sha256(seed.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + lib.jitter_pct * (2.0 * unit - 1.0)


def _cells() -> dict[GateType, CellInfo]:
    # Areas: classic NAND2-equivalent factors; delays relative to NAND2=1.0;
    # energies proportional to area except the DFF, which the paper pins at
    # 10x a NAND2's power.
    return {
        GateType.NOT: CellInfo(area_ge=0.67, delay_units=0.6,
                               energy_units=0.7),
        GateType.AND2: CellInfo(area_ge=1.33, delay_units=1.2,
                                energy_units=1.3),
        GateType.OR2: CellInfo(area_ge=1.33, delay_units=1.2,
                               energy_units=1.3),
        GateType.XOR2: CellInfo(area_ge=2.33, delay_units=1.8,
                                energy_units=2.2),
        GateType.MUX2: CellInfo(area_ge=2.33, delay_units=1.6,
                                energy_units=2.1),
        GateType.DFF: CellInfo(area_ge=6.0, delay_units=1.5,
                               energy_units=10.0),
    }


#: DFF setup time used when closing timing into a flop (delay units).
DFF_SETUP_UNITS = 1.0

#: Pragmatic FlexIC Gen3-like 0.6 um IGZO library, calibrated to the
#: RISSP-RV32E anchors (see module docstring).  The calibration constants
#: were fitted once with tests/test_calibration.py and are fixed here.
FLEXIC_GEN3 = TechLib(
    name="flexic-gen3-0.6um-igzo",
    cells=_cells(),
    area_scale=0.265,
    delay_ns_per_unit=4.65,
    clock_overhead_ns=30.0,
    leakage_mw_per_ge=1.39e-4,
    dyn_mw_per_eunit_mhz=3.83e-4,
    comb_activity=0.10,
    ff_activity=1.0,
    jitter_pct=0.06,
    vdd=3.0,
)
