"""Structural synthesis model of Serv, the bit-serial baseline.

Serv (olofk/serv) processes the datapath one bit per cycle: the ALU is
1 bit wide, but every architectural word lives in shift registers, so the
design is dominated by flip-flops (~60 % of area after synthesis, per the
paper's Figure 10 annotation) while the combinational cone between flops is
very short (hence the highest fmax in Figure 6).  Its register file is held
in RAM, not counted here — the same exclusion applied to the RISSPs.

We model Serv structurally (FF count, combinational area, logic depth) and
push those numbers through the *same* techlib timing/power formulas the
RISSPs use, so every cross-core comparison shares one cost model.
"""

from __future__ import annotations

from ..isa.instructions import INSTRUCTIONS
from .netlist import GateType
from .optimize import MappedStats
from .power import power_at
from .report import AreaStats, SynthReport
from .techlib import FLEXIC_GEN3, TechLib, design_jitter
from .timing import (
    SWEEP_START_KHZ,
    SWEEP_STEP_KHZ,
    SWEEP_STOP_KHZ,
    TimingReport,
)

#: Serial-state flip-flops: instruction/operand shift registers, serial PC,
#: FSM state, CSR-less control.  (Serv's RF lives in RAM and is excluded.)
SERV_DFF_COUNT = 132

#: Combinational area (raw modeled NAND2-eq before area_scale): the 1-bit
#: ALU, shift-register steering muxes, state machine and decode.
SERV_COMB_RAW_GE = 1992.0

#: Register-to-register logic depth in delay units — a 1-bit datapath plus
#: control fan-in, far shorter than a 32-bit single-cycle core.
SERV_PATH_UNITS = 104.0

#: Average clock cycles per instruction (paper §4.2.4).
SERV_CPI = 32.0


def synthesize_serv(lib: TechLib = FLEXIC_GEN3) -> SynthReport:
    """Produce a :class:`SynthReport` for Serv under ``lib``."""
    jitter = design_jitter(lib, "serv")
    path_ns = SERV_PATH_UNITS * lib.delay_ns_per_unit * jitter
    period_ns = path_ns + lib.clock_overhead_ns
    fmax_analog = 1e6 / period_ns
    sweep = tuple(khz for khz in range(SWEEP_START_KHZ, SWEEP_STOP_KHZ + 1,
                                       SWEEP_STEP_KHZ)
                  if khz <= fmax_analog)
    timing = TimingReport(
        critical_path_units=SERV_PATH_UNITS,
        critical_path_ns=path_ns,
        period_ns=period_ns,
        fmax_khz_analog=fmax_analog,
        fmax_khz=sweep[-1] if sweep else 0,
        sweep_khz=sweep)
    stats = MappedStats(comb_area_ge=SERV_COMB_RAW_GE,
                        dff_count=SERV_DFF_COUNT,
                        cell_counts={"SERIAL_CORE": 1})
    ff_area = SERV_DFF_COUNT * lib.cell(GateType.DFF).area_ge
    area = AreaStats(comb_ge=SERV_COMB_RAW_GE * lib.area_scale,
                     ff_ge=ff_area, dff_count=SERV_DFF_COUNT)
    report = SynthReport(
        name="serv",
        mnemonics=tuple(d.mnemonic for d in INSTRUCTIONS),
        gate_counts={GateType.DFF: SERV_DFF_COUNT},
        mapped=stats,
        area=area,
        timing=timing,
        lib=lib,
        design=None)
    if sweep:
        areas = [report.area_at(khz) for khz in sweep]
        report.avg_area_ge = sum(areas) / len(areas)
        powers = [report.power_mw_at(khz).total_mw for khz in sweep]
        report.avg_power_mw = sum(powers) / len(powers)
        report.power_at_fmax = report.power_mw_at(timing.fmax_khz)
    return report
