"""Static timing analysis over the gate netlist.

Computes the longest register-to-register / input-to-output combinational
path, converts it to a clock period against the technology library, and
replays the paper's frequency search: sweep the target clock from 100 kHz in
25 kHz steps up to 3 MHz and report the highest frequency with positive
slack (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .netlist import GateType, Netlist
from .netsim import topo_gates
from .techlib import DFF_SETUP_UNITS, TechLib, design_jitter

SWEEP_START_KHZ = 100
SWEEP_STEP_KHZ = 25
SWEEP_STOP_KHZ = 3000


@dataclass(frozen=True)
class TimingReport:
    critical_path_units: float   # technology-independent depth
    critical_path_ns: float      # with library delays + jitter
    period_ns: float             # + clock overhead + setup
    fmax_khz_analog: float       # 1/period
    fmax_khz: int                # snapped to the 25 kHz sweep grid
    sweep_khz: tuple[int, ...]   # all positive-slack sweep points


def critical_path_units(netlist: Netlist, lib: TechLib) -> float:
    """Longest arrival time in delay units (DFF clk->q counted at source)."""
    arrival: dict[int, float] = {}
    worst = 0.0
    for node in topo_gates(netlist):
        gate = netlist.gates[node]
        kind = gate.kind
        if kind in (GateType.CONST0, GateType.CONST1, GateType.INPUT):
            arrival[node] = 0.0
            continue
        if kind is GateType.DFF:
            arrival[node] = lib.cell(GateType.DFF).delay_units
            continue
        here = max((arrival.get(dep, 0.0) for dep in gate.inputs),
                   default=0.0) + lib.cell(kind).delay_units
        arrival[node] = here
        if here > worst:
            worst = here
    # Paths ending in a DFF pay setup.
    for node, gate in netlist.gates.items():
        if gate.kind is GateType.DFF:
            end = arrival.get(gate.inputs[0], 0.0) + DFF_SETUP_UNITS
            if end > worst:
                worst = end
    return worst


def analyze_timing(netlist: Netlist, lib: TechLib,
                   seed: str = "") -> TimingReport:
    """Full timing report with the paper's 25 kHz frequency sweep."""
    units = critical_path_units(netlist, lib)
    jitter = design_jitter(lib, seed) if seed else 1.0
    path_ns = units * lib.delay_ns_per_unit * jitter
    period_ns = path_ns + lib.clock_overhead_ns
    fmax_khz_analog = 1e6 / period_ns  # 1/ns = GHz; x1e6 = kHz
    sweep = tuple(
        khz for khz in range(SWEEP_START_KHZ, SWEEP_STOP_KHZ + 1,
                             SWEEP_STEP_KHZ)
        if khz <= fmax_khz_analog)
    fmax = sweep[-1] if sweep else 0
    return TimingReport(critical_path_units=units,
                        critical_path_ns=path_ns,
                        period_ns=period_ns,
                        fmax_khz_analog=fmax_khz_analog,
                        fmax_khz=fmax,
                        sweep_khz=sweep)
