"""Bit-blasting: word-level RTL IR -> gate-level netlist.

This is the technology-independent "elaboration + mapping" front half of the
synthesis flow.  Word operators lower to the classic structures a synthesis
tool infers (ripple-carry adders, barrel shifters, one-hot AND-OR muxes),
after which the netlist-level constant propagation / structural hashing /
dead sweep perform the paper's "redundancy removal".

The register file primitive is **not** lowered — its interface signals
become primary outputs/inputs, matching the paper's setup where "each RISSP
is synthesized without the RF".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.ir import (
    Binary,
    Cat,
    Const,
    Expr,
    Ext,
    Module,
    Mux,
    Not,
    Op,
    Sig,
    Slice,
    topo_order,
)
from .netlist import GateType, Netlist, sweep_dead

Bits = list  # list[int] of netlist node ids, LSB first


@dataclass
class LoweredDesign:
    """Result of lowering a module: netlist plus name-level pin maps."""

    module_name: str
    netlist: Netlist
    input_bits: dict[str, Bits] = field(default_factory=dict)
    output_bits: dict[str, Bits] = field(default_factory=dict)
    dff_bits: dict[str, Bits] = field(default_factory=dict)


class _Lowerer:
    def __init__(self, module: Module):
        self.module = module
        self.net = Netlist()
        self.values: dict[str, Bits] = {}
        self.memo: dict[Expr, Bits] = {}

    # ------------------------------------------------------------ primitives

    def _const_bits(self, value: int, width: int) -> Bits:
        return [self.net.one if (value >> i) & 1 else self.net.zero
                for i in range(width)]

    def _adder(self, a: Bits, b: Bits, cin: int) -> tuple[Bits, int]:
        """Ripple-carry add; returns (sum bits, carry out)."""
        net = self.net
        carry = cin
        out: Bits = []
        for abit, bbit in zip(a, b):
            axb = net.g_xor(abit, bbit)
            out.append(net.g_xor(axb, carry))
            carry = net.g_or(net.g_and(abit, bbit), net.g_and(axb, carry))
        return out, carry

    def _sub(self, a: Bits, b: Bits) -> tuple[Bits, int]:
        nb = [self.net.g_not(x) for x in b]
        return self._adder(a, nb, self.net.one)

    def _or_tree(self, bits: Bits) -> int:
        if not bits:
            return self.net.zero
        layer = list(bits)
        while len(layer) > 1:
            nxt = [self.net.g_or(layer[i], layer[i + 1])
                   for i in range(0, len(layer) - 1, 2)]
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def _barrel(self, a: Bits, amount: Bits, right: bool, fill: int) -> Bits:
        """Logarithmic barrel shifter with ``fill`` shifted in."""
        net = self.net
        width = len(a)
        current = list(a)
        for stage, sel in enumerate(amount):
            shift = 1 << stage
            if shift >= width:
                # any set high bit clears the result (or saturates to fill)
                current = [net.g_mux(sel, fill, bit) for bit in current]
                continue
            shifted: Bits = []
            for index in range(width):
                src = index + shift if right else index - shift
                shifted.append(current[src] if 0 <= src < width else fill)
            current = [net.g_mux(sel, s, c)
                       for s, c in zip(shifted, current)]
        return current

    # --------------------------------------------------------------- exprs

    def lower_expr(self, expr: Expr) -> Bits:
        cached = self.memo.get(expr)
        if cached is not None:
            return cached
        bits = self._lower_expr(expr)
        assert len(bits) == expr.width, f"width bug lowering {expr}"
        self.memo[expr] = bits
        return bits

    def _lower_expr(self, expr: Expr) -> Bits:
        net = self.net
        if isinstance(expr, Const):
            return self._const_bits(expr.value, expr.width)
        if isinstance(expr, Sig):
            return list(self.values[expr.name])
        if isinstance(expr, Not):
            return [net.g_not(x) for x in self.lower_expr(expr.a)]
        if isinstance(expr, Mux):
            sel = self.lower_expr(expr.sel)[0]
            a = self.lower_expr(expr.a)
            b = self.lower_expr(expr.b)
            return [net.g_mux(sel, x, y) for x, y in zip(a, b)]
        if isinstance(expr, Cat):
            out: Bits = []
            for part in reversed(expr.parts):   # LSB-first assembly
                out.extend(self.lower_expr(part))
            return out
        if isinstance(expr, Slice):
            return self.lower_expr(expr.a)[expr.lo:expr.hi + 1]
        if isinstance(expr, Ext):
            inner = self.lower_expr(expr.a)
            pad = expr.out_width - len(inner)
            fill = inner[-1] if expr.signed else net.zero
            return inner + [fill] * pad
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        raise TypeError(f"cannot lower {type(expr).__name__}")

    def _lower_binary(self, expr: Binary) -> Bits:
        net = self.net
        op = expr.op
        a = self.lower_expr(expr.a)
        if op in (Op.SHL, Op.LSHR, Op.ASHR):
            amount = self.lower_expr(expr.b)
            if op is Op.SHL:
                return self._barrel(a, amount, right=False, fill=net.zero)
            if op is Op.LSHR:
                return self._barrel(a, amount, right=True, fill=net.zero)
            return self._barrel(a, amount, right=True, fill=a[-1])
        b = self.lower_expr(expr.b)
        if op is Op.AND:
            return [net.g_and(x, y) for x, y in zip(a, b)]
        if op is Op.OR:
            return [net.g_or(x, y) for x, y in zip(a, b)]
        if op is Op.XOR:
            return [net.g_xor(x, y) for x, y in zip(a, b)]
        if op is Op.ADD:
            return self._adder(a, b, net.zero)[0]
        if op is Op.SUB:
            return self._sub(a, b)[0]
        if op is Op.EQ:
            diff = [net.g_xor(x, y) for x, y in zip(a, b)]
            return [net.g_not(self._or_tree(diff))]
        if op is Op.NE:
            diff = [net.g_xor(x, y) for x, y in zip(a, b)]
            return [self._or_tree(diff)]
        if op is Op.ULT:
            _, cout = self._sub(a, b)
            return [net.g_not(cout)]
        if op is Op.UGE:
            _, cout = self._sub(a, b)
            return [cout]
        if op in (Op.SLT, Op.SGE):
            diff, _ = self._sub(a, b)
            sign_differs = net.g_xor(a[-1], b[-1])
            lt = net.g_mux(sign_differs, a[-1], diff[-1])
            return [lt if op is Op.SLT else net.g_not(lt)]
        raise TypeError(f"cannot lower op {op}")

    # --------------------------------------------------------------- module

    def run(self) -> LoweredDesign:
        module = self.module
        design = LoweredDesign(module.name, self.net)
        regfile_data = set()
        regfile_interface = set()
        if module.regfile is not None:
            spec = module.regfile
            # Storage wires become primary inputs (the array itself stays
            # out of synthesis); read-data wires only do so in the legacy
            # style where they are not computed by in-core read muxes.
            regfile_data.update(spec.storage_signals)
            for addr, data in spec.read_ports:
                if data not in module.assigns:
                    regfile_data.add(data)
                regfile_interface.add(addr)
            if spec.write_port is not None:
                regfile_interface.update(spec.write_port)

        for port in module.inputs():
            bits = [self.net.add_input(f"{port.name}[{i}]")
                    for i in range(port.width)]
            self.values[port.name] = bits
            design.input_bits[port.name] = bits
        for name in regfile_data:
            width = module.signal_width(name)
            bits = [self.net.add_input(f"{name}[{i}]") for i in range(width)]
            self.values[name] = bits
            design.input_bits[name] = bits
        for reg in module.registers.values():
            bits = [self.net.add_dff(f"{reg.name}[{i}]",
                                     (reg.reset_value >> i) & 1)
                    for i in range(reg.width)]
            self.values[reg.name] = bits
            design.dff_bits[reg.name] = bits

        for name in topo_order(module):
            self.values[name] = self.lower_expr(module.assigns[name])

        for reg in module.registers.values():
            if reg.next is None:
                continue
            next_bits = self.lower_expr(reg.next)
            if reg.enable is not None:
                en = self.lower_expr(reg.enable)[0]
                q = self.values[reg.name]
                next_bits = [self.net.g_mux(en, nxt, cur)
                             for nxt, cur in zip(next_bits, q)]
            for dff, d in zip(self.values[reg.name], next_bits):
                self.net.connect_dff(dff, d)

        out_names = [p.name for p in module.outputs()]
        out_names += sorted(regfile_interface)
        for name in out_names:
            bits = self.values[name]
            design.output_bits[name] = bits
            for index, node in enumerate(bits):
                self.net.set_output(f"{name}[{index}]", node)
        return design


def lower_module(module: Module, sweep: bool = True) -> LoweredDesign:
    """Lower ``module`` to gates; optionally run dead-gate elimination."""
    module.check()
    design = _Lowerer(module).run()
    if sweep:
        sweep_dead(design.netlist)
    return design
