"""Machine-mode CSR file and trap unit shared by every simulator.

One :class:`CsrFile` instance holds the M-mode trap state the PR 3
subsystem architected: ``mstatus`` (MIE/MPIE bits), ``mie``/``mip``,
``mtvec``, ``mscratch``, ``mepc``, ``mcause``, ``mtval``.  The golden ISS,
the Serv timing model and the RTL cosimulation harness all mutate machine
state exclusively through :meth:`trap_enter`/:meth:`do_mret`/
:meth:`write`, so trap semantics cannot drift between backends — the same
single-source-of-truth discipline :mod:`repro.isa.spec` established for
instruction semantics.

Interrupt model: the only interrupt source is the machine timer
(``mip.MTIP``), wired level-sensitively from the SoC's mtime/mtimecmp
comparator by the simulators (see :mod:`repro.soc`).  ``mip`` is
read-only through the Zicsr instructions, as MTIP is for real CLINTs.

Legacy halt convention: with ``mtvec == 0`` (reset state) no handler is
installed and ``ecall``/``ebreak`` halt the simulation exactly as the seed
defined; installing a non-zero ``mtvec`` converts them (and illegal
instructions, and timer interrupts) into trap entries.
"""

from __future__ import annotations

from ..isa.bits import to_u32
from ..isa.csrs import (
    CAUSE_MACHINE_TIMER,
    MCAUSE,
    MEPC,
    MIE,
    MIE_MTIE,
    MIP,
    MIP_MTIP,
    MSCRATCH,
    MSTATUS,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MTVAL,
    MTVEC,
)


class CsrError(Exception):
    """Access to an unimplemented CSR (simulators trap it as illegal)."""


#: Writable-bit masks (WARL): unimplemented bits read as zero and ignore
#: writes.  ``mip`` is fully read-only — MTIP is wired from the timer.
_WRITE_MASKS = {
    MSTATUS: MSTATUS_MIE | MSTATUS_MPIE,
    MIE: MIE_MTIE,
    MTVEC: 0xFFFFFFFC,        # direct mode only; low bits forced to 0
    MSCRATCH: 0xFFFFFFFF,
    MEPC: 0xFFFFFFFC,
    MCAUSE: 0xFFFFFFFF,
    MTVAL: 0xFFFFFFFF,
    MIP: 0,
}


def warl_mask(addr: int) -> int:
    """Writable-bit mask of an implemented CSR (0 for read-only ``mip``).

    Shared with the RVFI checker's shadow CSR file so its model of a
    Zicsr write matches :meth:`CsrFile.write` bit for bit.
    """
    try:
        return _WRITE_MASKS[addr]
    except KeyError:
        raise CsrError(f"unimplemented CSR {addr:#x}") from None


class CsrFile:
    """M-mode CSR state plus the trap-entry/-return state machine."""

    __slots__ = ("mstatus", "mie", "mip", "mtvec", "mscratch", "mepc",
                 "mcause", "mtval")

    def __init__(self):
        self.mstatus = 0
        self.mie = 0
        self.mip = 0
        self.mtvec = 0
        self.mscratch = 0
        self.mepc = 0
        self.mcause = 0
        self.mtval = 0

    _FIELDS = {MSTATUS: "mstatus", MIE: "mie", MIP: "mip", MTVEC: "mtvec",
               MSCRATCH: "mscratch", MEPC: "mepc", MCAUSE: "mcause",
               MTVAL: "mtval"}

    def read(self, addr: int) -> int:
        """Zicsr read; raises :class:`CsrError` for unimplemented CSRs."""
        try:
            return getattr(self, self._FIELDS[addr])
        except KeyError:
            raise CsrError(f"unimplemented CSR {addr:#x}") from None

    def write(self, addr: int, value: int) -> None:
        """Zicsr write with WARL masking (read-only bits are preserved)."""
        try:
            field = self._FIELDS[addr]
        except KeyError:
            raise CsrError(f"unimplemented CSR {addr:#x}") from None
        mask = _WRITE_MASKS[addr]
        old = getattr(self, field)
        setattr(self, field, (old & ~mask) | (to_u32(value) & mask))

    # ------------------------------------------------------------ trap unit

    @property
    def traps_enabled(self) -> bool:
        """True once firmware installed a handler (non-zero ``mtvec``)."""
        return self.mtvec != 0

    def stack_interrupt_enable(self) -> None:
        """Trap-entry mstatus update alone: MPIE <= MIE, MIE <= 0.

        Split out for the RTL harness, whose trap hardware latches
        mepc/mcause itself but keeps mstatus in the harness shadow.
        """
        mie = self.mstatus & MSTATUS_MIE
        self.mstatus = (self.mstatus & ~(MSTATUS_MIE | MSTATUS_MPIE)) \
            | (MSTATUS_MPIE if mie else 0)

    def unstack_interrupt_enable(self) -> None:
        """Trap-return mstatus update alone: MIE <= MPIE, MPIE <= 1."""
        mpie = self.mstatus & MSTATUS_MPIE
        self.mstatus = (self.mstatus & ~MSTATUS_MIE) | MSTATUS_MPIE \
            | (MSTATUS_MIE if mpie else 0)

    def trap_enter(self, cause: int, epc: int, tval: int = 0) -> int:
        """Take a trap: stack MIE, record epc/cause/tval, return the
        handler address (direct-mode ``mtvec``)."""
        self.stack_interrupt_enable()
        self.mepc = to_u32(epc) & ~0x3
        self.mcause = to_u32(cause)
        self.mtval = to_u32(tval)
        return self.mtvec

    def do_mret(self) -> int:
        """Return from a trap: unstack MIE, return the resume address."""
        self.unstack_interrupt_enable()
        return self.mepc

    # ----------------------------------------------------- interrupt gating

    def set_timer_pending(self, pending: bool) -> None:
        """Wire the mtime >= mtimecmp comparator level into ``mip.MTIP``."""
        if pending:
            self.mip |= MIP_MTIP
        else:
            self.mip &= ~MIP_MTIP

    @property
    def timer_interrupt_armed(self) -> bool:
        """True when a timer interrupt *would* be taken once MTIP rises."""
        return bool(self.mstatus & MSTATUS_MIE and self.mie & MIE_MTIE
                    and self.traps_enabled)

    def take_timer_interrupt(self, epc: int) -> int:
        """Interrupt entry for the machine timer; returns the handler pc."""
        return self.trap_enter(CAUSE_MACHINE_TIMER, epc)
