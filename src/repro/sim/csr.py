"""Machine-mode CSR file and trap unit shared by every simulator.

One :class:`CsrFile` instance holds the M-mode trap state the PR 3
subsystem architected: ``mstatus`` (MIE/MPIE bits), ``mie``/``mip``,
``mtvec``, ``mscratch``, ``mepc``, ``mcause``, ``mtval``.  The golden ISS,
the Serv timing model and the RTL cosimulation harness all mutate machine
state exclusively through :meth:`trap_enter`/:meth:`do_mret`/
:meth:`write`, so trap semantics cannot drift between backends — the same
single-source-of-truth discipline :mod:`repro.isa.spec` established for
instruction semantics.

Interrupt model (PR 5): multiple level-sensitive sources share ``mip`` —
the machine timer on MTIP and the SensorPort data-ready line on
platform-custom bit 16 — each wired from its device comparator by the
simulators (see :mod:`repro.soc`).  :meth:`pending_cause` is the fixed
-priority arbiter: it returns the ``mcause`` value of the highest-priority
enabled-and-pending source (timer outranks sensor, per
:data:`repro.isa.csrs.INTERRUPT_SOURCES`), or ``None`` when no interrupt
can be taken.  ``mip`` is read-only through the Zicsr instructions — all
of its implemented bits are hardware-wired levels — and, per the Zicsr
spec, an instruction that *writes* a read-only CSR raises an
illegal-instruction exception while the pure-read forms (``csrrs``/
``csrrc`` with ``rs1=x0``, ``csrrsi``/``csrrci`` with ``uimm=0``) do not.

``wfi`` (PR 5 conformance fix): the wake-up condition is an *enabled*
(``mie``) source becoming *pending* — ``mstatus.MIE`` and ``mtvec`` play
no part, matching the privileged spec ("resume when an interrupt becomes
pending, regardless of whether interrupts are globally enabled").
:meth:`wfi_wake_mask` exposes the enabled-source mask the SoC clock uses
to fast-forward; with no enabled source armed the simulators terminate
the run deterministically (``halted_by == "wfi"``) instead of spinning.

Legacy halt convention: with ``mtvec == 0`` (reset state) no handler is
installed and ``ecall``/``ebreak`` halt the simulation exactly as the seed
defined; installing a non-zero ``mtvec`` converts them (and illegal
instructions, and interrupts) into trap entries.
"""

from __future__ import annotations

from ..isa.bits import to_u32
from ..isa.csrs import (
    INTERRUPT_MASK,
    INTERRUPT_SOURCES,
    MCAUSE,
    MEPC,
    MIE,
    MIE_MTIE,
    MIE_SDIE,
    MIP,
    MSCRATCH,
    MSTATUS,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MTVAL,
    MTVEC,
)


class CsrError(Exception):
    """Access to an unimplemented CSR, or a write to a read-only one
    (simulators trap both as illegal instructions)."""


#: Writable-bit masks (WARL): unimplemented bits read as zero and ignore
#: writes.  ``mie`` implements one enable bit per interrupt source.
_WRITE_MASKS = {
    MSTATUS: MSTATUS_MIE | MSTATUS_MPIE,
    MIE: MIE_MTIE | MIE_SDIE,
    MTVEC: 0xFFFFFFFC,        # direct mode only; low bits forced to 0
    MSCRATCH: 0xFFFFFFFF,
    MEPC: 0xFFFFFFFC,
    MCAUSE: 0xFFFFFFFF,
    MTVAL: 0xFFFFFFFF,
    MIP: 0,
}

#: CSRs whose every implemented bit is hardware-wired: Zicsr *writes* to
#: them raise an illegal-instruction exception (the Zicsr rule for
#: read-only CSRs); pure reads are always legal.
READ_ONLY_CSRS = frozenset({MIP})


def warl_mask(addr: int) -> int:
    """Writable-bit mask of an implemented CSR (0 for read-only ``mip``).

    Shared with the RVFI checker's shadow CSR file so its model of a
    Zicsr write matches :meth:`CsrFile.write` bit for bit.
    """
    try:
        return _WRITE_MASKS[addr]
    except KeyError:
        raise CsrError(f"unimplemented CSR {addr:#x}") from None


class CsrFile:
    """M-mode CSR state plus the trap-entry/-return state machine."""

    __slots__ = ("mstatus", "mie", "mip", "mtvec", "mscratch", "mepc",
                 "mcause", "mtval")

    def __init__(self):
        self.mstatus = 0
        self.mie = 0
        self.mip = 0
        self.mtvec = 0
        self.mscratch = 0
        self.mepc = 0
        self.mcause = 0
        self.mtval = 0

    _FIELDS = {MSTATUS: "mstatus", MIE: "mie", MIP: "mip", MTVEC: "mtvec",
               MSCRATCH: "mscratch", MEPC: "mepc", MCAUSE: "mcause",
               MTVAL: "mtval"}

    def read(self, addr: int) -> int:
        """Zicsr read; raises :class:`CsrError` for unimplemented CSRs."""
        try:
            return getattr(self, self._FIELDS[addr])
        except KeyError:
            raise CsrError(f"unimplemented CSR {addr:#x}") from None

    def write(self, addr: int, value: int) -> None:
        """Zicsr write with WARL masking (read-only bits are preserved).

        Writes to fully read-only CSRs (``mip``) raise :class:`CsrError`
        so the simulators trap them as illegal instructions — the Zicsr
        conformance rule the PR 5 audit fixed.  Note the pure-read Zicsr
        forms never reach here: :func:`repro.isa.spec.step` returns
        ``csr_write=None`` for ``csrrs``/``csrrc`` with ``rs1=x0``.
        """
        try:
            field = self._FIELDS[addr]
        except KeyError:
            raise CsrError(f"unimplemented CSR {addr:#x}") from None
        if addr in READ_ONLY_CSRS:
            raise CsrError(f"write to read-only CSR {addr:#x}")
        mask = _WRITE_MASKS[addr]
        old = getattr(self, field)
        setattr(self, field, (old & ~mask) | (to_u32(value) & mask))

    # ------------------------------------------------------------ trap unit

    @property
    def traps_enabled(self) -> bool:
        """True once firmware installed a handler (non-zero ``mtvec``)."""
        return self.mtvec != 0

    def stack_interrupt_enable(self) -> None:
        """Trap-entry mstatus update alone: MPIE <= MIE, MIE <= 0.

        Split out for the RTL harness, whose trap hardware latches
        mepc/mcause itself but keeps mstatus in the harness shadow.
        """
        mie = self.mstatus & MSTATUS_MIE
        self.mstatus = (self.mstatus & ~(MSTATUS_MIE | MSTATUS_MPIE)) \
            | (MSTATUS_MPIE if mie else 0)

    def unstack_interrupt_enable(self) -> None:
        """Trap-return mstatus update alone: MIE <= MPIE, MPIE <= 1."""
        mpie = self.mstatus & MSTATUS_MPIE
        self.mstatus = (self.mstatus & ~MSTATUS_MIE) | MSTATUS_MPIE \
            | (MSTATUS_MIE if mpie else 0)

    def trap_enter(self, cause: int, epc: int, tval: int = 0) -> int:
        """Take a trap: stack MIE, record epc/cause/tval, return the
        handler address (direct-mode ``mtvec``)."""
        self.stack_interrupt_enable()
        self.mepc = to_u32(epc) & ~0x3
        self.mcause = to_u32(cause)
        self.mtval = to_u32(tval)
        return self.mtvec

    def do_mret(self) -> int:
        """Return from a trap: unstack MIE, return the resume address."""
        self.unstack_interrupt_enable()
        return self.mepc

    # ----------------------------------------------------- interrupt gating

    def set_pending(self, levels: int) -> None:
        """Wire the packed device comparator levels into ``mip``.

        ``levels`` is the packed pending word the SoC assembles from its
        device comparators (:meth:`repro.soc.Soc.irq_lines`) — one mip bit
        per source, level-sensitive.
        """
        self.mip = levels

    @property
    def interrupts_possible(self) -> bool:
        """True when *some* interrupt would be taken once its level rises:
        global MIE set, a handler installed, and at least one source
        enabled."""
        return bool(self.mstatus & MSTATUS_MIE and self.traps_enabled
                    and self.mie)

    def pending_cause(self) -> int | None:
        """Fixed-priority arbitration: the ``mcause`` value of the
        highest-priority enabled-and-pending source, or ``None``.

        Priority order is :data:`repro.isa.csrs.INTERRUPT_SOURCES` —
        machine timer above sensor data-ready.  Requires global MIE and an
        installed handler, exactly the gate trap entry applies.
        """
        if not (self.mstatus & MSTATUS_MIE) or not self.traps_enabled:
            return None
        ready = self.mip & self.mie
        if not ready:
            return None
        for bit, cause in INTERRUPT_SOURCES:
            if ready & bit:
                return cause
        return None

    def wfi_wake_mask(self) -> int:
        """``mip`` bits whose rise resumes a ``wfi``: the *enabled*
        sources.  Per the privileged spec this ignores ``mstatus.MIE``
        and ``mtvec`` — wfi wakes on pending, not on trap entry."""
        return self.mie & INTERRUPT_MASK

    def take_interrupt(self, cause: int, epc: int) -> int:
        """Arbitrated interrupt entry; returns the handler pc (``mtval``
        is zeroed, as on every interrupt entry)."""
        return self.trap_enter(cause, epc)
