"""Simulation substrate: flat memory, golden ISS (Spike analog), Serv model."""

from .golden import GoldenSim, RunResult, SimulationError, run_program
from .memory import Memory, MemoryError_
from .serv import ServConfig, ServSim, run_program_serv
from .tracing import RvfiRecord

__all__ = [
    "GoldenSim", "Memory", "MemoryError_", "RunResult", "RvfiRecord",
    "ServConfig", "ServSim", "SimulationError", "run_program",
    "run_program_serv",
]
