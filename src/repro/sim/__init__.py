"""Simulation substrate: flat memory, golden ISS (Spike analog), Serv model.

All simulators share the decoded-program cache in :mod:`repro.sim.decoded`:
static instructions are decoded and compiled to specialized executor
closures once, then dispatched by pc — the difference between the seed's
~0.19 MIPS interpreter and the current multi-MIPS fast path.
"""

from .csr import CsrError, CsrFile
from .decoded import DecodedImage, DecodedOp, SimulationError
from .golden import GoldenSim, RunResult, abi_initial_regs, run_program
from .memory import Memory, MemoryError_
from .serv import ServConfig, ServSim, run_program_serv
from .tracing import RvfiRecord, RvfiTrace, load_read_fields

__all__ = [
    "CsrError", "CsrFile", "DecodedImage", "DecodedOp", "GoldenSim",
    "Memory", "MemoryError_", "RunResult", "RvfiRecord", "RvfiTrace",
    "ServConfig", "ServSim", "SimulationError", "abi_initial_regs",
    "load_read_fields", "run_program", "run_program_serv",
]
