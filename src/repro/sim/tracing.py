"""RVFI-style retirement records.

The paper verifies RISSPs with riscv-formal, whose RISC-V Formal Interface
(RVFI) reports, per retired instruction: the instruction word, pc before and
after, source/destination registers with their data, and any memory access.
Both the golden ISS and the RTL simulation of a generated RISSP emit these
records so the :mod:`repro.verify.rvfi` checker can compare them against the
executable spec.

Read-effect convention (shared by every producer so traces are comparable
field-by-field): ``mem_addr`` is the true byte address of the access,
``mem_rmask`` is ``(1 << width) - 1`` — lane bits counted from the accessed
address, not shifted by the sub-word offset — and ``mem_rdata`` is the
sub-word value sign- or zero-extended to 32 bits exactly as it lands in
``rd``.  :func:`load_read_fields` computes the triple from a raw aligned
memory word; the RTL harness uses it so byte/halfword loads record the same
fields the golden ISS does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..isa.bits import sign_extend, to_u32


@dataclass(frozen=True)
class RvfiRecord:
    """One retired instruction, RVFI-style."""

    order: int           # retirement index
    insn: int            # raw 32-bit instruction word
    pc_rdata: int        # pc of this instruction
    pc_wdata: int        # next pc
    rs1_addr: int
    rs2_addr: int
    rs1_rdata: int
    rs2_rdata: int
    rd_addr: int         # 0 when no register write
    rd_wdata: int        # 0 when rd_addr == 0
    mem_addr: int = 0
    mem_rmask: int = 0   # byte mask of a load (bit per byte, from addr)
    mem_wmask: int = 0   # byte mask of a store
    mem_rdata: int = 0
    mem_wdata: int = 0
    trap: int = 0        # this instruction trapped (ecall/ebreak/illegal):
                         # no architectural side effects, pc_wdata = handler
    intr: int = 0        # first instruction of an interrupt handler


class RvfiTrace:
    """Columnar RVFI retirement trace with optional ring-buffer capacity.

    Long verification runs used to allocate one :class:`RvfiRecord` per
    retirement; this container stores each RVFI field in its own column
    list instead, so recording a retirement is 17 integer appends (or, in
    ring mode, 17 in-place slot writes — zero allocation) via
    :meth:`append_row`.  It quacks like a read-only sequence of
    :class:`RvfiRecord`: ``len(trace)``, ``trace[i]``, slicing and
    iteration all materialize records on demand, so existing consumers
    (``check_trace``, tests that copy and corrupt traces) keep working
    unchanged.

    With ``capacity=N`` the trace keeps only the newest N retirements
    (index 0 is the oldest *retained* row); ``total_appended`` still counts
    every retirement ever recorded.
    """

    #: Field order shared by :meth:`append_row` and :meth:`row`; matches
    #: the :class:`RvfiRecord` constructor.
    FIELDS = ("order", "insn", "pc_rdata", "pc_wdata", "rs1_addr",
              "rs2_addr", "rs1_rdata", "rs2_rdata", "rd_addr", "rd_wdata",
              "mem_addr", "mem_rmask", "mem_wmask", "mem_rdata",
              "mem_wdata", "trap", "intr")

    __slots__ = ("capacity", "total_appended", "_columns")

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.total_appended = 0
        if capacity is None:
            self._columns = tuple([] for _ in self.FIELDS)
        else:
            self._columns = tuple([0] * capacity for _ in self.FIELDS)

    def append_row(self, order: int, insn: int, pc_rdata: int,
                   pc_wdata: int, rs1_addr: int, rs2_addr: int,
                   rs1_rdata: int, rs2_rdata: int, rd_addr: int,
                   rd_wdata: int, mem_addr: int = 0, mem_rmask: int = 0,
                   mem_wmask: int = 0, mem_rdata: int = 0,
                   mem_wdata: int = 0, trap: int = 0, intr: int = 0) -> None:
        values = (order, insn, pc_rdata, pc_wdata, rs1_addr, rs2_addr,
                  rs1_rdata, rs2_rdata, rd_addr, rd_wdata, mem_addr,
                  mem_rmask, mem_wmask, mem_rdata, mem_wdata, trap, intr)
        if self.capacity is None:
            for column, value in zip(self._columns, values):
                column.append(value)
        else:
            slot = self.total_appended % self.capacity
            for column, value in zip(self._columns, values):
                column[slot] = value
        self.total_appended += 1

    def column(self, field: str) -> list[int]:
        """The raw column for ``field`` (ring mode: physical slot order)."""
        return self._columns[self.FIELDS.index(field)]

    def _slot(self, index: int) -> int:
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("trace index out of range")
        if self.capacity is None or self.total_appended <= self.capacity:
            return index
        return (self.total_appended + index) % self.capacity

    def row(self, index: int) -> tuple[int, ...]:
        """All 17 fields of one retirement as a tuple (``FIELDS`` order)."""
        slot = self._slot(index)
        return tuple(column[slot] for column in self._columns)

    def peek(self, index: int, field: str) -> int:
        """Read one field of one retirement without materializing it."""
        return self.column(field)[self._slot(index)]

    def poke(self, index: int, field: str, value: int) -> None:
        """Overwrite one recorded field in place (fault-injection hook)."""
        self.column(field)[self._slot(index)] = value

    def __len__(self) -> int:
        if self.capacity is None:
            return self.total_appended
        return min(self.total_appended, self.capacity)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [RvfiRecord(*self.row(i))
                    for i in range(*index.indices(len(self)))]
        return RvfiRecord(*self.row(index))

    def __iter__(self) -> Iterator[RvfiRecord]:
        for index in range(len(self)):
            yield RvfiRecord(*self.row(index))


def load_read_fields(addr: int, word: int, width: int,
                     signed: bool) -> tuple[int, int, int]:
    """RVFI ``(mem_addr, mem_rmask, mem_rdata)`` for a load, repo convention.

    ``word`` is the aligned 32-bit memory word covering the access at byte
    address ``addr``; the returned ``mem_rdata`` is the ``width``-byte lane
    extended to 32 bits (sign-extended when ``signed``), matching what the
    golden ISS records and what lands in ``rd``.
    """
    offset = addr & 0x3
    value = (word >> (8 * offset)) & ((1 << (8 * width)) - 1)
    if signed:
        value = to_u32(sign_extend(value, 8 * width))
    return to_u32(addr), (1 << width) - 1, value
