"""RVFI-style retirement records.

The paper verifies RISSPs with riscv-formal, whose RISC-V Formal Interface
(RVFI) reports, per retired instruction: the instruction word, pc before and
after, source/destination registers with their data, and any memory access.
Both the golden ISS and the RTL simulation of a generated RISSP emit these
records so the :mod:`repro.verify.rvfi` checker can compare them against the
executable spec.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RvfiRecord:
    """One retired instruction, RVFI-style."""

    order: int           # retirement index
    insn: int            # raw 32-bit instruction word
    pc_rdata: int        # pc of this instruction
    pc_wdata: int        # next pc
    rs1_addr: int
    rs2_addr: int
    rs1_rdata: int
    rs2_rdata: int
    rd_addr: int         # 0 when no register write
    rd_wdata: int        # 0 when rd_addr == 0
    mem_addr: int = 0
    mem_rmask: int = 0   # byte mask of a load (bit per byte, from addr)
    mem_wmask: int = 0   # byte mask of a store
    mem_rdata: int = 0
    mem_wdata: int = 0
