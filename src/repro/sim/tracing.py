"""RVFI-style retirement records.

The paper verifies RISSPs with riscv-formal, whose RISC-V Formal Interface
(RVFI) reports, per retired instruction: the instruction word, pc before and
after, source/destination registers with their data, and any memory access.
Both the golden ISS and the RTL simulation of a generated RISSP emit these
records so the :mod:`repro.verify.rvfi` checker can compare them against the
executable spec.

Read-effect convention (shared by every producer so traces are comparable
field-by-field): ``mem_addr`` is the true byte address of the access,
``mem_rmask`` is ``(1 << width) - 1`` — lane bits counted from the accessed
address, not shifted by the sub-word offset — and ``mem_rdata`` is the
sub-word value sign- or zero-extended to 32 bits exactly as it lands in
``rd``.  :func:`load_read_fields` computes the triple from a raw aligned
memory word; the RTL harness uses it so byte/halfword loads record the same
fields the golden ISS does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.bits import sign_extend, to_u32


@dataclass(frozen=True)
class RvfiRecord:
    """One retired instruction, RVFI-style."""

    order: int           # retirement index
    insn: int            # raw 32-bit instruction word
    pc_rdata: int        # pc of this instruction
    pc_wdata: int        # next pc
    rs1_addr: int
    rs2_addr: int
    rs1_rdata: int
    rs2_rdata: int
    rd_addr: int         # 0 when no register write
    rd_wdata: int        # 0 when rd_addr == 0
    mem_addr: int = 0
    mem_rmask: int = 0   # byte mask of a load (bit per byte, from addr)
    mem_wmask: int = 0   # byte mask of a store
    mem_rdata: int = 0
    mem_wdata: int = 0


def load_read_fields(addr: int, word: int, width: int,
                     signed: bool) -> tuple[int, int, int]:
    """RVFI ``(mem_addr, mem_rmask, mem_rdata)`` for a load, repo convention.

    ``word`` is the aligned 32-bit memory word covering the access at byte
    address ``addr``; the returned ``mem_rdata`` is the ``width``-byte lane
    extended to 32 bits (sign-extended when ``signed``), matching what the
    golden ISS records and what lands in ``rd``.
    """
    offset = addr & 0x3
    value = (word >> (8 * offset)) & ((1 << (8 * width)) - 1)
    if signed:
        value = to_u32(sign_extend(value, 8 * width))
    return to_u32(addr), (1 << width) - 1, value
