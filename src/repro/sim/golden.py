"""Golden instruction-set simulator — the repo's Spike analog.

Executes RV32I/E programs instruction-by-instruction straight from the
executable spec (:mod:`repro.isa.spec`).  It is the reference model for
RISCOF-style signature comparison and the source of reference RVFI traces.

Halt convention (baremetal, no OS): ``ecall`` terminates execution with the
exit value in ``a0``; ``ebreak`` terminates with a breakpoint status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.bits import to_u32
from ..isa.encoding import decode
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.registers import RV32E_NUM_REGS
from ..isa.spec import step
from .memory import Memory
from .tracing import RvfiRecord


class SimulationError(Exception):
    """Raised when execution leaves the architected envelope."""


@dataclass
class RunResult:
    """Outcome of a completed simulation."""

    exit_code: int            # a0 at the terminating ecall/ebreak
    instructions: int         # dynamic instruction count
    cycles: int               # core cycles (single-cycle core: == instructions)
    halted_by: str            # "ecall" | "ebreak" | "limit"
    trace: list[RvfiRecord] = field(default_factory=list)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class GoldenSim:
    """Reference RV32E simulator built directly on the ISA spec."""

    def __init__(self, program: Program, mem_size: int = DEFAULT_MEM_SIZE,
                 num_regs: int = RV32E_NUM_REGS, trace: bool = False):
        self.memory = Memory.from_program(program, mem_size)
        self.num_regs = num_regs
        self.regs = [0] * num_regs
        self.pc = to_u32(program.entry)
        self.regs[2] = mem_size - 16  # sp at top of memory, 16-byte aligned
        self.regs[1] = _HALT_SENTINEL  # ra: returning from main falls into halt
        self._trace_enabled = trace
        self._install_halt_stub(program)

    def _install_halt_stub(self, program: Program) -> None:
        """Place ``ecall`` at a sentinel address so ``ret`` from main halts."""
        from ..isa.encoding import Instruction, encode
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = to_u32(value)

    def step_one(self, order: int = 0) -> tuple[bool, RvfiRecord | None, str]:
        """Retire one instruction; returns (halted, record, halt_reason)."""
        pc = self.pc
        word = self.memory.fetch(pc)
        try:
            instr = decode(word)
        except Exception as exc:
            raise SimulationError(f"illegal instruction at {pc:#x}: {exc}")
        if instr.rd >= self.num_regs or instr.rs1 >= self.num_regs \
                or instr.rs2 >= self.num_regs:
            raise SimulationError(
                f"{instr.mnemonic} at {pc:#x} uses registers outside RV32E")
        rs1 = self.read_reg(instr.rs1)
        rs2 = self.read_reg(instr.rs2)

        mem_addr = mem_rmask = mem_wmask = mem_rdata = mem_wdata = 0

        def load(addr: int, width: int, signed: bool) -> int:
            nonlocal mem_addr, mem_rmask, mem_rdata
            value = self.memory.load(addr, width, signed)
            mem_addr = to_u32(addr)
            mem_rmask = (1 << width) - 1
            mem_rdata = value
            return value

        effects = step(instr, pc, rs1, rs2, load)
        if effects.mem_write is not None:
            mw = effects.mem_write
            self.memory.store(mw.addr, mw.data, mw.width)
            mem_addr = mw.addr
            mem_wmask = (1 << mw.width) - 1
            mem_wdata = mw.data
        if effects.rd is not None:
            self.write_reg(effects.rd, effects.rd_data)
        self.pc = effects.next_pc

        record = None
        if self._trace_enabled:
            record = RvfiRecord(
                order=order, insn=word, pc_rdata=pc, pc_wdata=effects.next_pc,
                rs1_addr=instr.rs1, rs2_addr=instr.rs2,
                rs1_rdata=rs1, rs2_rdata=rs2,
                rd_addr=effects.rd or 0,
                rd_wdata=effects.rd_data if effects.rd else 0,
                mem_addr=mem_addr, mem_rmask=mem_rmask, mem_wmask=mem_wmask,
                mem_rdata=mem_rdata, mem_wdata=mem_wdata)
        if effects.halt:
            return True, record, "ecall" if effects.is_ecall else "ebreak"
        return False, record, ""

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt (or instruction limit)."""
        trace: list[RvfiRecord] = []
        count = 0
        halted_by = "limit"
        while count < max_instructions:
            halted, record, reason = self.step_one(order=count)
            count += 1
            if record is not None:
                trace.append(record)
            if halted:
                halted_by = reason
                break
        return RunResult(exit_code=self.read_reg(10), instructions=count,
                         cycles=count, halted_by=halted_by, trace=trace)


#: Sentinel return address holding an ``ecall``; ``ret`` from main halts here.
_HALT_SENTINEL = 0x0000_FFF0


def run_program(program: Program, max_instructions: int = 20_000_000,
                trace: bool = False, mem_size: int = DEFAULT_MEM_SIZE) -> RunResult:
    """Assembled program in, :class:`RunResult` out — the main entry point."""
    sim = GoldenSim(program, mem_size=mem_size, trace=trace)
    return sim.run(max_instructions)
