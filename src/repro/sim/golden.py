"""Golden instruction-set simulator — the repo's Spike analog.

Executes RV32I/E programs straight from the executable spec
(:mod:`repro.isa.spec`).  It is the reference model for RISCOF-style
signature comparison and the source of reference RVFI traces.

Two execution paths share one :class:`~repro.sim.decoded.DecodedImage`
(the decoded-op cache, see :mod:`repro.sim.decoded`):

* **fast path** (``trace=False``, the default): :meth:`GoldenSim.run`
  dispatches precompiled executor closures keyed by pc — no per-retirement
  decode, no ``Effects`` allocation, no trace-record construction.  This
  took the loop microbenchmark from ~0.19 MIPS (seed interpreter) to
  multiple MIPS (>10x, see ``benchmarks/test_bench_sim_throughput.py``).
* **recorded path** (``trace=True``): :meth:`GoldenSim.retire_one` keeps
  the reflective ``spec.step`` flow so every retirement yields a full
  columnar RVFI row, but decode still comes from the shared cache.

Machine-mode traps (PR 3): a :class:`~repro.sim.csr.CsrFile` is always
present.  With ``mtvec == 0`` (reset) the seed's halt convention holds —
``ecall`` terminates with the exit value in ``a0``, ``ebreak`` with a
breakpoint status.  Once firmware installs a handler, ``ecall``/``ebreak``
and illegal instructions become trap entries, ``mret`` returns, and (with
a :class:`~repro.soc.SocSpec` attached) the machine timer raises
interrupts.  The decoded-op cache contract is preserved: compiled
executors never see CSR or interrupt state — system instructions return
the :data:`~repro.isa.spec.DEFER_SYSTEM` sentinel and are retired through
the slow path, and the *interrupt check happens per retirement in the run
loop* (a single integer comparison against a precomputed fire index), so
enabling the subsystem costs the idle fast path almost nothing.

MMIO (PR 3): with a SoC attached, ``self.memory`` is a
:class:`~repro.soc.SocBus`.  The fast path runs the bus in *deferred*
mode — device accesses abort the compiled executor before any side effect
and the instruction retires through the reflective path with the SoC
clock synced — so device reads always see exact time and device writes
(e.g. re-arming ``mtimecmp``) are honoured before the next retirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.bits import to_u32
from ..isa.csrs import (
    CAUSE_BREAKPOINT,
    CAUSE_ECALL_M,
    CAUSE_ILLEGAL_INSTRUCTION,
)
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.registers import RV32E_NUM_REGS
from ..isa.spec import DEFER_SYSTEM, HALT_EBREAK, step
from .csr import CsrError, CsrFile
from .decoded import DecodedImage, SimulationError
from .memory import Memory
from .tracing import RvfiRecord, RvfiTrace
# Safe despite repro.soc wrapping this simulator: the soc package only
# imports the cycle-free repro.sim.memory submodule, never this module.
from ..soc.bus import MmioDeferred, PowerOffSignal

__all__ = ["GoldenSim", "RunResult", "SimulationError", "abi_initial_regs",
           "run_program"]

_M32 = 0xFFFFFFFF


@dataclass
class RunResult:
    """Outcome of a completed simulation.

    ``trace`` is a sequence of :class:`RvfiRecord` — recorded runs return
    the columnar :class:`RvfiTrace`, which materializes records lazily.
    """

    exit_code: int            # a0 at the terminating ecall/ebreak, or the
                              # value stored to the SoC power gate
    instructions: int         # dynamic instruction count
    cycles: int               # core cycles (single-cycle core: == instructions)
    halted_by: str            # "ecall" | "ebreak" | "poweroff" | "wfi"
                              # | "limit" ("wfi" = slept with no enabled
                              # interrupt source that could ever wake it)
    trace: "RvfiTrace | list[RvfiRecord]" = field(default_factory=list)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class GoldenSim:
    """Reference RV32E simulator built directly on the ISA spec."""

    def __init__(self, program: Program, mem_size: int = DEFAULT_MEM_SIZE,
                 num_regs: int = RV32E_NUM_REGS, trace: bool = False,
                 trace_capacity: int | None = None,
                 soc: "object | None" = None):
        self.memory = Memory.from_program(program, mem_size)
        self.csr = CsrFile()
        from ..soc import attach_soc
        self.soc = attach_soc(soc, self.memory)
        if self.soc is not None:
            self.memory = self.soc.bus
        self.num_regs = num_regs
        self.regs = [0] * num_regs
        self.pc = to_u32(program.entry)
        for index, value in abi_initial_regs(mem_size).items():
            self.regs[index] = value
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        self._poweroff_code = 0
        self._install_halt_stub(program)
        self.image = DecodedImage(self.memory, num_regs)

    def _install_halt_stub(self, program: Program) -> None:
        """Place ``ecall`` at a sentinel address so ``ret`` from main halts."""
        from ..isa.encoding import Instruction, encode
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = to_u32(value)

    # ------------------------------------------------------- recorded path

    def retire_one(self, order: int,
                   sink: RvfiTrace | None = None) -> tuple[bool, str]:
        """Retire one instruction; returns (halted, halt_reason).

        When ``sink`` is given the retirement's RVFI fields are appended to
        it as one columnar row — no per-retirement record allocation.
        Interrupt entry happens *between* retirements: when an enabled
        source's level is high the arbiter redirects the pc to the handler
        and the handler's first instruction retires with ``intr`` set to
        the arbitrated exception code (7 = timer, 16 = sensor); a trapping
        instruction (ecall/ebreak/illegal with a handler installed)
        retires with ``trap=1``, no architectural side effects and
        ``pc_wdata`` = the handler address.
        """
        csr = self.csr
        soc = self.soc
        intr = 0
        pc = self.pc
        if soc is not None:
            csr.set_pending(soc.irq_lines(order))
            cause = csr.pending_cause()
            if cause is not None:
                pc = csr.take_interrupt(cause, pc)
                self.pc = pc
                intr = cause & 0x3F   # arbitrated exception code

        try:
            op = self.image.get(pc)
        except SimulationError:
            if not csr.traps_enabled:
                raise
            return self._retire_trap(order, sink, pc, self.memory.fetch(pc),
                                     CAUSE_ILLEGAL_INSTRUCTION, intr)
        instr = op.instr
        rs1 = 0 if instr.definition.csr_uimm else self.read_reg(instr.rs1)
        rs2 = self.read_reg(instr.rs2)

        mem_addr = mem_rmask = mem_wmask = mem_rdata = mem_wdata = 0

        def load(addr: int, width: int, signed: bool) -> int:
            nonlocal mem_addr, mem_rmask, mem_rdata
            value = self.memory.load(addr, width, signed)
            mem_addr = to_u32(addr)
            mem_rmask = (1 << width) - 1
            mem_rdata = value
            return value

        try:
            effects = step(instr, pc, rs1, rs2, load, csr.read)
            if effects.csr_write is not None:
                # Committed inside the try: a write to a read-only CSR
                # traps as illegal with no architectural side effects.
                csr.write(*effects.csr_write)
        except CsrError:
            if not csr.traps_enabled:
                raise SimulationError(
                    f"{instr.mnemonic} at {pc:#x}: illegal CSR access "
                    f"(csr {instr.imm:#x})") from None
            return self._retire_trap(order, sink, pc, op.word,
                                     CAUSE_ILLEGAL_INSTRUCTION, intr)
        if effects.halt and csr.traps_enabled:
            cause = CAUSE_ECALL_M if effects.is_ecall else CAUSE_BREAKPOINT
            return self._retire_trap(order, sink, pc, op.word, cause, intr)

        halted = False
        reason = ""
        if effects.mem_write is not None:
            mw = effects.mem_write
            try:
                self.memory.store(mw.addr, mw.data, mw.width)
            except PowerOffSignal as sig:
                self._poweroff_code = sig.exit_code
                halted, reason = True, "poweroff"
            self.image.invalidate(mw.addr)
            if soc is not None:
                soc.rebase(order)   # honour firmware writes to MTIME
            mem_addr = mw.addr
            mem_wmask = (1 << mw.width) - 1
            mem_wdata = mw.data
        if effects.is_mret:
            csr.do_mret()
        if effects.is_wfi and not self._wfi_resume(order):
            halted, reason = True, "wfi"
        if effects.rd is not None:
            self.write_reg(effects.rd, effects.rd_data)
        self.pc = effects.next_pc

        if sink is not None:
            sink.append_row(
                order, op.word, pc, effects.next_pc, instr.rs1, instr.rs2,
                rs1, rs2, effects.rd or 0,
                effects.rd_data if effects.rd else 0,
                mem_addr, mem_rmask, mem_wmask, mem_rdata, mem_wdata,
                0, intr)
        if effects.halt:
            return True, "ecall" if effects.is_ecall else "ebreak"
        return halted, reason

    def _retire_trap(self, order: int, sink: RvfiTrace | None, pc: int,
                     word: int, cause: int, intr: int) -> tuple[bool, str]:
        """Trap entry: the trapping instruction retires with ``trap=1``."""
        target = self.csr.trap_enter(cause, pc,
                                     word if cause ==
                                     CAUSE_ILLEGAL_INSTRUCTION else 0)
        self.pc = target
        if sink is not None:
            sink.append_row(order, word, pc, target, 0, 0, 0, 0, 0, 0,
                            trap=1, intr=intr)
        return False, ""

    def step_one(self, order: int = 0) -> tuple[bool, RvfiRecord | None, str]:
        """Back-compat wrapper over :meth:`retire_one` returning a record."""
        sink = RvfiTrace(capacity=1) if self._trace_enabled else None
        halted, reason = self.retire_one(order, sink)
        record = sink[0] if sink is not None else None
        return halted, record, reason

    # ----------------------------------------------------------- fast path

    def _wfi_resume(self, order: int) -> bool:
        """Shared ``wfi`` semantics (PR 5 conformance fix): fast-forward
        the clock to the next *enabled* (``mie``) source edge regardless
        of ``mstatus.MIE`` — the privileged-spec wake rule — and return
        True.  Returns False when no enabled source can ever become
        pending (nothing armed, or no SoC at all): the run then ends
        deterministically with ``halted_by == "wfi"`` instead of
        spinning."""
        wake = self.csr.wfi_wake_mask()
        if self.soc is None or not wake:
            return False
        return self.soc.skip_to_event(order + 1, wake)

    def _exec_system(self, pc: int, order: int) -> tuple[int, bool]:
        """Slow-path retirement of one deferred system instruction
        (csrr*/mret/wfi); returns ``(next_pc, wfi_halt)``.  Rare by
        construction — trap setup and handler entry/exit only."""
        if self.soc is not None:
            self.csr.set_pending(self.soc.irq_lines(order))
        op = self.image.get(pc)
        instr = op.instr
        rs1 = 0 if instr.definition.csr_uimm else self.read_reg(instr.rs1)
        try:
            effects = step(instr, pc, rs1, 0, csr=self.csr.read)
            if effects.csr_write is not None:
                self.csr.write(*effects.csr_write)
        except CsrError:
            if not self.csr.traps_enabled:
                raise SimulationError(
                    f"{instr.mnemonic} at {pc:#x}: illegal CSR access "
                    f"(csr {instr.imm:#x})") from None
            return self.csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc,
                                       op.word), False
        if effects.is_mret:
            self.csr.do_mret()
        halted = effects.is_wfi and not self._wfi_resume(order)
        if effects.rd is not None:
            self.write_reg(effects.rd, effects.rd_data)
        return effects.next_pc, halted

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt (or instruction limit).

        With tracing off this is the decoded-op fast path: one dict probe
        plus one compiled-closure call per retired instruction.
        """
        if self._trace_enabled:
            return self._run_recorded(max_instructions)
        if self.soc is not None:
            return self._run_soc(max_instructions)
        csr = self.csr
        regs = self.regs
        memory = self.memory
        get_op = self.image.get
        executors = self.image.executors
        ex_get = executors.get
        pc = self.pc
        count = 0
        halted_by = "limit"
        try:
            while count < max_instructions:
                execute = ex_get(pc)
                if execute is None:
                    try:
                        execute = get_op(pc).execute
                    except SimulationError:
                        if not csr.traps_enabled:
                            raise
                        pc = csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc,
                                            memory.fetch(pc))
                        count += 1
                        continue
                next_pc = execute(regs, memory, pc)
                count += 1
                if next_pc >= 0:
                    pc = next_pc
                else:
                    if next_pc == DEFER_SYSTEM:
                        pc, wfi_halt = self._exec_system(pc, count - 1)
                        if wfi_halt:
                            halted_by = "wfi"
                            break
                        continue
                    if csr.traps_enabled:
                        pc = csr.trap_enter(
                            CAUSE_BREAKPOINT if next_pc == HALT_EBREAK
                            else CAUSE_ECALL_M, pc)
                        continue
                    pc = (pc + 4) & _M32
                    halted_by = "ebreak" if next_pc == HALT_EBREAK else "ecall"
                    break
        finally:
            self.pc = pc
        return RunResult(exit_code=self.read_reg(10), instructions=count,
                         cycles=count, halted_by=halted_by, trace=[])

    def _run_soc(self, max_instructions: int) -> RunResult:
        """Fast path with the SoC attached.

        Identical inner loop plus exactly one integer comparison per
        retirement (``count >= fire_at``, the precomputed earliest fire
        index over every enabled interrupt source — the packed pending
        word collapses to one integer).  ``fire_at`` is refreshed only at
        the points where machine state can legally move it: deferred MMIO
        retirements (mtimecmp/mtime/sensor-ACK writes), deferred system
        instructions (mstatus/mie writes, mret, wfi), trap entries and
        interrupt entries.  At fire time the full pending word is
        assembled and :meth:`CsrFile.pending_cause` arbitrates.
        """
        csr = self.csr
        soc = self.soc
        bus = soc.bus
        regs = self.regs
        memory = self.memory
        get_op = self.image.get
        ex_get = self.image.executors.get
        pc = self.pc
        count = 0
        halted_by = "limit"
        exit_code = None
        fire_at = soc.fire_index(csr)
        bus.deferred = True
        try:
            while count < max_instructions:
                if count >= fire_at:
                    csr.set_pending(soc.irq_lines(count))
                    pc = csr.take_interrupt(csr.pending_cause(), pc)
                    fire_at = soc.fire_index(csr)
                    continue    # interrupt entry retires nothing
                execute = ex_get(pc)
                if execute is None:
                    try:
                        execute = get_op(pc).execute
                    except SimulationError:
                        if not csr.traps_enabled:
                            raise
                        pc = csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc,
                                            memory.fetch(pc))
                        fire_at = soc.fire_index(csr)
                        count += 1
                        continue
                try:
                    next_pc = execute(regs, memory, pc)
                except MmioDeferred:
                    bus.deferred = False
                    try:
                        soc.sync(count)
                        next_pc = self._retire_mmio(pc)
                        soc.rebase(count)
                    except PowerOffSignal as sig:
                        count += 1
                        pc = (pc + 4) & _M32
                        halted_by = "poweroff"
                        exit_code = sig.exit_code
                        break
                    finally:
                        bus.deferred = True
                    count += 1
                    pc = next_pc
                    fire_at = soc.fire_index(csr)
                    continue
                count += 1
                if next_pc >= 0:
                    pc = next_pc
                    continue
                if next_pc == DEFER_SYSTEM:
                    pc, wfi_halt = self._exec_system(pc, count - 1)
                    fire_at = soc.fire_index(csr)
                    if wfi_halt:
                        halted_by = "wfi"
                        break
                    continue
                if csr.traps_enabled:
                    pc = csr.trap_enter(
                        CAUSE_BREAKPOINT if next_pc == HALT_EBREAK
                        else CAUSE_ECALL_M, pc)
                    fire_at = soc.fire_index(csr)
                    continue
                pc = (pc + 4) & _M32
                halted_by = "ebreak" if next_pc == HALT_EBREAK else "ecall"
                break
        finally:
            bus.deferred = False
            self.pc = pc
        return RunResult(
            exit_code=self.read_reg(10) if exit_code is None else exit_code,
            instructions=count, cycles=count, halted_by=halted_by, trace=[])

    def _retire_mmio(self, pc: int) -> int:
        """Reflective retirement of one instruction whose memory access
        hit an MMIO window (fast path only; bus is in direct mode and the
        SoC clock is already synced).  Returns the next pc."""
        op = self.image.get(pc)
        instr = op.instr
        effects = step(instr, pc, self.read_reg(instr.rs1),
                       self.read_reg(instr.rs2), self.memory.load)
        if effects.mem_write is not None:
            mw = effects.mem_write
            self.memory.store(mw.addr, mw.data, mw.width)
            self.image.invalidate(mw.addr)
        if effects.rd is not None:
            self.write_reg(effects.rd, effects.rd_data)
        return effects.next_pc

    def _run_recorded(self, max_instructions: int) -> RunResult:
        """Trace-recording loop over :meth:`retire_one` into a columnar
        :class:`RvfiTrace` (one row append per retirement, no records)."""
        trace = RvfiTrace(capacity=self._trace_capacity)
        count = 0
        halted_by = "limit"
        while count < max_instructions:
            halted, reason = self.retire_one(count, trace)
            count += 1
            if halted:
                halted_by = reason
                break
        exit_code = self._poweroff_code if halted_by == "poweroff" \
            else self.read_reg(10)
        return RunResult(exit_code=exit_code, instructions=count,
                         cycles=count, halted_by=halted_by, trace=trace)


#: Sentinel return address holding an ``ecall``; ``ret`` from main halts here.
_HALT_SENTINEL = 0x0000_FFF0


def abi_initial_regs(mem_size: int = DEFAULT_MEM_SIZE) -> dict[int, int]:
    """Baremetal ABI reset state: sp at the top of memory (16-byte aligned),
    ra at the halt stub.  Single source of truth for every simulator's
    register reset and for the RVFI checker's initial shadow file."""
    return {2: mem_size - 16, 1: _HALT_SENTINEL}


def run_program(program: Program, max_instructions: int = 20_000_000,
                trace: bool = False, mem_size: int = DEFAULT_MEM_SIZE,
                soc: "object | None" = None) -> RunResult:
    """Assembled program in, :class:`RunResult` out — the main entry point."""
    sim = GoldenSim(program, mem_size=mem_size, trace=trace, soc=soc)
    return sim.run(max_instructions)
