"""Golden instruction-set simulator — the repo's Spike analog.

Executes RV32I/E programs straight from the executable spec
(:mod:`repro.isa.spec`).  It is the reference model for RISCOF-style
signature comparison and the source of reference RVFI traces.

Two execution paths share one :class:`~repro.sim.decoded.DecodedImage`
(the decoded-op cache, see :mod:`repro.sim.decoded`):

* **fast path** (``trace=False``, the default): :meth:`GoldenSim.run`
  dispatches precompiled executor closures keyed by pc — no per-retirement
  decode, no ``Effects`` allocation, no trace-record construction.  This
  took the loop microbenchmark from ~0.19 MIPS (seed interpreter) to
  multiple MIPS (>10x, see ``benchmarks/test_bench_sim_throughput.py``).
* **recorded path** (``trace=True``): :meth:`GoldenSim.step_one` keeps the
  reflective ``spec.step`` flow so every retirement yields a full
  :class:`~repro.sim.tracing.RvfiRecord`, but decode still comes from the
  shared cache.

Halt convention (baremetal, no OS): ``ecall`` terminates execution with the
exit value in ``a0``; ``ebreak`` terminates with a breakpoint status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.bits import to_u32
from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.registers import RV32E_NUM_REGS
from ..isa.spec import HALT_EBREAK, step
from .decoded import DecodedImage, SimulationError
from .memory import Memory
from .tracing import RvfiRecord, RvfiTrace

__all__ = ["GoldenSim", "RunResult", "SimulationError", "abi_initial_regs",
           "run_program"]


@dataclass
class RunResult:
    """Outcome of a completed simulation.

    ``trace`` is a sequence of :class:`RvfiRecord` — recorded runs return
    the columnar :class:`RvfiTrace`, which materializes records lazily.
    """

    exit_code: int            # a0 at the terminating ecall/ebreak
    instructions: int         # dynamic instruction count
    cycles: int               # core cycles (single-cycle core: == instructions)
    halted_by: str            # "ecall" | "ebreak" | "limit"
    trace: "RvfiTrace | list[RvfiRecord]" = field(default_factory=list)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class GoldenSim:
    """Reference RV32E simulator built directly on the ISA spec."""

    def __init__(self, program: Program, mem_size: int = DEFAULT_MEM_SIZE,
                 num_regs: int = RV32E_NUM_REGS, trace: bool = False,
                 trace_capacity: int | None = None):
        self.memory = Memory.from_program(program, mem_size)
        self.num_regs = num_regs
        self.regs = [0] * num_regs
        self.pc = to_u32(program.entry)
        for index, value in abi_initial_regs(mem_size).items():
            self.regs[index] = value
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        self._install_halt_stub(program)
        self.image = DecodedImage(self.memory, num_regs)

    def _install_halt_stub(self, program: Program) -> None:
        """Place ``ecall`` at a sentinel address so ``ret`` from main halts."""
        from ..isa.encoding import Instruction, encode
        self.memory.store(_HALT_SENTINEL, encode(Instruction("ecall")), 4)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = to_u32(value)

    def retire_one(self, order: int,
                   sink: RvfiTrace | None = None) -> tuple[bool, str]:
        """Retire one instruction; returns (halted, halt_reason).

        When ``sink`` is given the retirement's RVFI fields are appended to
        it as one columnar row — no per-retirement record allocation.
        """
        pc = self.pc
        op = self.image.get(pc)
        instr = op.instr
        rs1 = self.read_reg(instr.rs1)
        rs2 = self.read_reg(instr.rs2)

        mem_addr = mem_rmask = mem_wmask = mem_rdata = mem_wdata = 0

        def load(addr: int, width: int, signed: bool) -> int:
            nonlocal mem_addr, mem_rmask, mem_rdata
            value = self.memory.load(addr, width, signed)
            mem_addr = to_u32(addr)
            mem_rmask = (1 << width) - 1
            mem_rdata = value
            return value

        effects = step(instr, pc, rs1, rs2, load)
        if effects.mem_write is not None:
            mw = effects.mem_write
            self.memory.store(mw.addr, mw.data, mw.width)
            self.image.invalidate(mw.addr)
            mem_addr = mw.addr
            mem_wmask = (1 << mw.width) - 1
            mem_wdata = mw.data
        if effects.rd is not None:
            self.write_reg(effects.rd, effects.rd_data)
        self.pc = effects.next_pc

        if sink is not None:
            sink.append_row(
                order, op.word, pc, effects.next_pc, instr.rs1, instr.rs2,
                rs1, rs2, effects.rd or 0,
                effects.rd_data if effects.rd else 0,
                mem_addr, mem_rmask, mem_wmask, mem_rdata, mem_wdata)
        if effects.halt:
            return True, "ecall" if effects.is_ecall else "ebreak"
        return False, ""

    def step_one(self, order: int = 0) -> tuple[bool, RvfiRecord | None, str]:
        """Back-compat wrapper over :meth:`retire_one` returning a record."""
        sink = RvfiTrace(capacity=1) if self._trace_enabled else None
        halted, reason = self.retire_one(order, sink)
        record = sink[0] if sink is not None else None
        return halted, record, reason

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt (or instruction limit).

        With tracing off this is the decoded-op fast path: one dict probe
        plus one compiled-closure call per retired instruction.
        """
        if self._trace_enabled:
            return self._run_recorded(max_instructions)
        regs = self.regs
        memory = self.memory
        get_op = self.image.get
        executors = self.image.executors
        ex_get = executors.get
        pc = self.pc
        count = 0
        halted_by = "limit"
        try:
            while count < max_instructions:
                execute = ex_get(pc)
                if execute is None:
                    execute = get_op(pc).execute
                next_pc = execute(regs, memory, pc)
                count += 1
                if next_pc >= 0:
                    pc = next_pc
                else:
                    pc = (pc + 4) & 0xFFFFFFFF
                    halted_by = "ebreak" if next_pc == HALT_EBREAK else "ecall"
                    break
        finally:
            self.pc = pc
        return RunResult(exit_code=self.read_reg(10), instructions=count,
                         cycles=count, halted_by=halted_by, trace=[])

    def _run_recorded(self, max_instructions: int) -> RunResult:
        """Trace-recording loop over :meth:`retire_one` into a columnar
        :class:`RvfiTrace` (one row append per retirement, no records)."""
        trace = RvfiTrace(capacity=self._trace_capacity)
        count = 0
        halted_by = "limit"
        while count < max_instructions:
            halted, reason = self.retire_one(count, trace)
            count += 1
            if halted:
                halted_by = reason
                break
        return RunResult(exit_code=self.read_reg(10), instructions=count,
                         cycles=count, halted_by=halted_by, trace=trace)


#: Sentinel return address holding an ``ecall``; ``ret`` from main halts here.
_HALT_SENTINEL = 0x0000_FFF0


def abi_initial_regs(mem_size: int = DEFAULT_MEM_SIZE) -> dict[int, int]:
    """Baremetal ABI reset state: sp at the top of memory (16-byte aligned),
    ra at the halt stub.  Single source of truth for every simulator's
    register reset and for the RVFI checker's initial shadow file."""
    return {2: mem_size - 16, 1: _HALT_SENTINEL}


def run_program(program: Program, max_instructions: int = 20_000_000,
                trace: bool = False, mem_size: int = DEFAULT_MEM_SIZE) -> RunResult:
    """Assembled program in, :class:`RunResult` out — the main entry point."""
    sim = GoldenSim(program, mem_size=mem_size, trace=trace)
    return sim.run(max_instructions)
