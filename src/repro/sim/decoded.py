"""Decoded-program cache: the shared fast-execution substrate.

Every simulator in the repo (golden ISS, Serv timing model, RISSP RTL
harness) used to re-decode the instruction word at every retirement — the
dominant cost of the interpreter stack (~0.19 MIPS at the seed).  This
module memoizes the per-*address* work once per static instruction:

* :class:`DecodedImage` lazily maps a text address to a :class:`DecodedOp`
  holding the fetched word, the decoded :class:`~repro.isa.encoding.Instruction`,
  a precompiled executor closure from :func:`repro.isa.spec.compile_step`
  (immediates pre-extracted, format dispatch hoisted out of the inner
  loop), and the static classification the Serv cycle model needs — so
  per-instruction cycle costs are computed at decode time, not per step.
* Entries are **invalidated on stores into cached text**: compiled store
  executors call back into :meth:`DecodedImage.invalidate`, and the golden
  ISS's record-keeping path does the same, so self-modifying programs
  (including the self-patched halt-stub region) re-decode transparently.
  RISC-V stores are width-aligned and therefore never straddle a word, so
  invalidating the single covering word is exact.

Lazy decoding preserves the seed's error envelope: a data word is only
rejected as an illegal instruction if the pc actually reaches it, and
register-bound (RV32E) violations surface on first execution.
"""

from __future__ import annotations

from ..isa.encoding import DecodeError, decode
from ..isa.instructions import BRANCHES, LOADS, STORES
from ..isa.spec import compile_step


class SimulationError(Exception):
    """Raised when execution leaves the architected envelope."""


class DecodedOp:
    """One static instruction: decoded fields plus its compiled executor."""

    __slots__ = ("pc", "word", "instr", "execute",
                 "is_mem", "is_branch", "is_jump")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedOp(pc={self.pc:#x}, {self.instr})"


class DecodedImage:
    """Lazy text-address -> :class:`DecodedOp` cache over one memory.

    ``executors`` mirrors the cache as a bare ``pc -> closure`` dict so hot
    loops can dispatch with a single dictionary probe; it is kept in sync
    by :meth:`get` and :meth:`invalidate`.
    """

    def __init__(self, memory, num_regs: int = 16):
        self.memory = memory
        self.num_regs = num_regs
        self._ops: dict[int, DecodedOp] = {}
        self.executors: dict[int, object] = {}

    def get(self, pc: int) -> DecodedOp:
        """Return the decoded op at ``pc``, compiling it on first use."""
        op = self._ops.get(pc)
        if op is None:
            op = self._compile(pc)
        return op

    def invalidate(self, addr: int) -> None:
        """Drop the cached entry whose word covers byte address ``addr``."""
        base = addr & ~0x3 & 0xFFFFFFFF
        if self._ops.pop(base, None) is not None:
            self.executors.pop(base, None)

    def _compile(self, pc: int) -> DecodedOp:
        word = self.memory.fetch(pc)
        try:
            instr = decode(word)
        except DecodeError as exc:
            raise SimulationError(
                f"illegal instruction at {pc:#x}: {exc}") from exc
        # The Zicsr immediate forms carry a 5-bit uimm in the rs1 field —
        # not a register number, so it is exempt from the RV32E bound.
        rs1_is_reg = not instr.definition.csr_uimm
        if instr.rd >= self.num_regs \
                or (rs1_is_reg and instr.rs1 >= self.num_regs) \
                or instr.rs2 >= self.num_regs:
            raise SimulationError(
                f"{instr.mnemonic} at {pc:#x} uses registers outside RV32E")
        op = DecodedOp()
        op.pc = pc
        op.word = word
        op.instr = instr
        mnemonic = instr.mnemonic
        op.is_mem = mnemonic in LOADS or mnemonic in STORES
        op.is_branch = mnemonic in BRANCHES
        op.is_jump = mnemonic in ("jal", "jalr")
        op.execute = compile_step(instr, store_hook=self.invalidate)
        self._ops[pc] = op
        self.executors[pc] = op.execute
        return op
