"""Timing model of Serv, the bit-serial RISC-V core used as baseline.

Serv processes one *bit* of the datapath per clock, so a 32-bit operation
takes ~32 clocks; the paper uses an average CPI of 32 for the Figure 9
energy-per-instruction comparison.  Functionally Serv retires the same
architectural effects as any RV32E core, so this model wraps the golden ISS
and layers the bit-serial cycle accounting on top.

The *structural* model of Serv (gates, flip-flop fraction) used by the
synthesis and physical-implementation experiments lives in
:mod:`repro.synth.serv_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.encoding import decode
from ..isa.instructions import BRANCHES, LOADS, STORES
from ..isa.program import DEFAULT_MEM_SIZE, Program
from .golden import GoldenSim, RunResult

#: Datapath width — one cycle per bit.
_WORD_BITS = 32

#: Extra state-machine cycles for the two-phase memory handshake.
_MEM_EXTRA = 2

#: Extra cycles to redirect the serial PC on a taken control transfer.
_BRANCH_EXTRA = 1


@dataclass(frozen=True)
class ServConfig:
    """Cycle model parameters (defaults reproduce the paper's CPI ≈ 32)."""

    bits: int = _WORD_BITS
    mem_extra: int = _MEM_EXTRA
    branch_extra: int = _BRANCH_EXTRA


class ServSim:
    """Bit-serial execution: golden semantics + serial cycle accounting."""

    def __init__(self, program: Program, config: ServConfig | None = None,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False):
        self.config = config or ServConfig()
        self._golden = GoldenSim(program, mem_size=mem_size, trace=trace)

    def _instr_cycles(self, word: int, pc_before: int, pc_after: int) -> int:
        mnemonic = decode(word).mnemonic
        cycles = self.config.bits
        if mnemonic in LOADS or mnemonic in STORES:
            cycles += self.config.mem_extra
        if mnemonic in BRANCHES and pc_after != (pc_before + 4) & 0xFFFFFFFF:
            cycles += self.config.branch_extra
        if mnemonic in ("jal", "jalr"):
            cycles += self.config.branch_extra
        return cycles

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt; ``cycles`` reflects bit-serial execution."""
        cycles = 0
        count = 0
        trace = []
        halted_by = "limit"
        while count < max_instructions:
            pc_before = self._golden.pc
            word = self._golden.memory.fetch(pc_before)
            halted, record, reason = self._golden.step_one(order=count)
            count += 1
            cycles += self._instr_cycles(word, pc_before, self._golden.pc)
            if record is not None:
                trace.append(record)
            if halted:
                halted_by = reason
                break
        return RunResult(exit_code=self._golden.read_reg(10),
                         instructions=count, cycles=cycles,
                         halted_by=halted_by, trace=trace)


def run_program_serv(program: Program,
                     max_instructions: int = 20_000_000) -> RunResult:
    """Convenience wrapper mirroring :func:`repro.sim.golden.run_program`."""
    return ServSim(program).run(max_instructions)
