"""Timing model of Serv, the bit-serial RISC-V core used as baseline.

Serv processes one *bit* of the datapath per clock, so a 32-bit operation
takes ~32 clocks; the paper uses an average CPI of 32 for the Figure 9
energy-per-instruction comparison.  Functionally Serv retires the same
architectural effects as any RV32E core, so this model wraps the golden ISS
and layers the bit-serial cycle accounting on top.

Cycle accounting rides the shared decoded-op cache
(:mod:`repro.sim.decoded`): the memory/branch/jump classification that
determines an instruction's cost is computed once per static instruction at
decode time (the seed decoded every retired word a *second* time just for
cycle counting), so the Serv model now runs at golden-ISS fast-path speed.

The *structural* model of Serv (gates, flip-flop fraction) used by the
synthesis and physical-implementation experiments lives in
:mod:`repro.synth.serv_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.spec import HALT_EBREAK
from .golden import GoldenSim, RunResult

#: Datapath width — one cycle per bit.
_WORD_BITS = 32

#: Extra state-machine cycles for the two-phase memory handshake.
_MEM_EXTRA = 2

#: Extra cycles to redirect the serial PC on a taken control transfer.
_BRANCH_EXTRA = 1


@dataclass(frozen=True)
class ServConfig:
    """Cycle model parameters (defaults reproduce the paper's CPI ≈ 32)."""

    bits: int = _WORD_BITS
    mem_extra: int = _MEM_EXTRA
    branch_extra: int = _BRANCH_EXTRA


class ServSim:
    """Bit-serial execution: golden semantics + serial cycle accounting."""

    def __init__(self, program: Program, config: ServConfig | None = None,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False):
        self.config = config or ServConfig()
        self._golden = GoldenSim(program, mem_size=mem_size, trace=trace)

    def _op_cycles(self, op, redirected: bool) -> int:
        """Serial cycles for one retirement of decoded ``op``.

        ``redirected`` is True when the next pc differs from pc+4 (the only
        case where a *branch* pays the redirect penalty; jal/jalr always do).
        """
        cycles = self.config.bits
        if op.is_mem:
            cycles += self.config.mem_extra
        if op.is_jump or (op.is_branch and redirected):
            cycles += self.config.branch_extra
        return cycles

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt; ``cycles`` reflects bit-serial execution."""
        golden = self._golden
        if golden._trace_enabled:
            return self._run_recorded(max_instructions)
        op_cycles = self._op_cycles
        regs = golden.regs
        memory = golden.memory
        get_op = golden.image.get
        pc = golden.pc
        cycles = 0
        count = 0
        halted_by = "limit"
        try:
            while count < max_instructions:
                op = get_op(pc)
                next_pc = op.execute(regs, memory, pc)
                count += 1
                if next_pc >= 0:
                    cycles += op_cycles(op, next_pc != pc + 4)
                    pc = next_pc
                else:
                    cycles += op_cycles(op, False)
                    pc = (pc + 4) & 0xFFFFFFFF
                    halted_by = "ebreak" if next_pc == HALT_EBREAK else "ecall"
                    break
        finally:
            golden.pc = pc
        return RunResult(exit_code=golden.read_reg(10),
                         instructions=count, cycles=cycles,
                         halted_by=halted_by, trace=[])

    def _run_recorded(self, max_instructions: int) -> RunResult:
        """Trace-recording loop: golden ``retire_one`` into a columnar
        :class:`~repro.sim.tracing.RvfiTrace` + cached cycle costs."""
        from .tracing import RvfiTrace

        golden = self._golden
        cycles = 0
        count = 0
        trace = RvfiTrace(capacity=golden._trace_capacity)
        halted_by = "limit"
        while count < max_instructions:
            pc_before = golden.pc
            op = golden.image.get(pc_before)
            halted, reason = golden.retire_one(count, trace)
            count += 1
            redirected = golden.pc != (pc_before + 4) & 0xFFFFFFFF
            cycles += self._op_cycles(op, redirected)
            if halted:
                halted_by = reason
                break
        return RunResult(exit_code=golden.read_reg(10),
                         instructions=count, cycles=cycles,
                         halted_by=halted_by, trace=trace)


def run_program_serv(program: Program,
                     max_instructions: int = 20_000_000) -> RunResult:
    """Convenience wrapper mirroring :func:`repro.sim.golden.run_program`."""
    return ServSim(program).run(max_instructions)
