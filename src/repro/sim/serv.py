"""Timing model of Serv, the bit-serial RISC-V core used as baseline.

Serv processes one *bit* of the datapath per clock, so a 32-bit operation
takes ~32 clocks; the paper uses an average CPI of 32 for the Figure 9
energy-per-instruction comparison.  Functionally Serv retires the same
architectural effects as any RV32E core, so this model wraps the golden ISS
and layers the bit-serial cycle accounting on top.

Cycle accounting rides the shared decoded-op cache
(:mod:`repro.sim.decoded`): the memory/branch/jump classification that
determines an instruction's cost is computed once per static instruction at
decode time (the seed decoded every retired word a *second* time just for
cycle counting), so the Serv model now runs at golden-ISS fast-path speed.

Machine-mode traps and the SoC (PR 3) come for free from the wrapped
golden ISS: system instructions cost one full serial word pass, trap/
interrupt entries redirect the pc exactly as on the golden model (the
bit-serial redirect penalty is charged through the ordinary
``branch_extra`` term when the next pc diverges from pc+4).  With a SoC
attached the model runs retirement-by-retirement through the golden
reference path so the interrupt check stays per-retirement; the pure
compute fast loop is untouched.

The *structural* model of Serv (gates, flip-flop fraction) used by the
synthesis and physical-implementation experiments lives in
:mod:`repro.synth.serv_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import DEFAULT_MEM_SIZE, Program
from ..isa.spec import DEFER_SYSTEM, HALT_EBREAK
from .decoded import SimulationError
from .golden import GoldenSim, RunResult
from ..isa.csrs import CAUSE_BREAKPOINT, CAUSE_ECALL_M, \
    CAUSE_ILLEGAL_INSTRUCTION

#: Datapath width — one cycle per bit.
_WORD_BITS = 32

#: Extra state-machine cycles for the two-phase memory handshake.
_MEM_EXTRA = 2

#: Extra cycles to redirect the serial PC on a taken control transfer.
_BRANCH_EXTRA = 1

_M32 = 0xFFFFFFFF


@dataclass(frozen=True)
class ServConfig:
    """Cycle model parameters (defaults reproduce the paper's CPI ≈ 32)."""

    bits: int = _WORD_BITS
    mem_extra: int = _MEM_EXTRA
    branch_extra: int = _BRANCH_EXTRA


class ServSim:
    """Bit-serial execution: golden semantics + serial cycle accounting."""

    def __init__(self, program: Program, config: ServConfig | None = None,
                 mem_size: int = DEFAULT_MEM_SIZE, trace: bool = False,
                 soc: "object | None" = None):
        self.config = config or ServConfig()
        self._golden = GoldenSim(program, mem_size=mem_size, trace=trace,
                                 soc=soc)

    @property
    def soc(self):
        return self._golden.soc

    def _op_cycles(self, op, redirected: bool) -> int:
        """Serial cycles for one retirement of decoded ``op``.

        ``redirected`` is True when the next pc differs from pc+4 (the only
        case where a *branch* pays the redirect penalty; jal/jalr always do).
        """
        cycles = self.config.bits
        if op.is_mem:
            cycles += self.config.mem_extra
        if op.is_jump or (op.is_branch and redirected):
            cycles += self.config.branch_extra
        return cycles

    def run(self, max_instructions: int = 20_000_000) -> RunResult:
        """Run to halt; ``cycles`` reflects bit-serial execution."""
        golden = self._golden
        if golden._trace_enabled or golden.soc is not None:
            return self._run_stepped(max_instructions)
        op_cycles = self._op_cycles
        csr = golden.csr
        regs = golden.regs
        memory = golden.memory
        get_op = golden.image.get
        pc = golden.pc
        cycles = 0
        count = 0
        halted_by = "limit"
        try:
            while count < max_instructions:
                try:
                    op = get_op(pc)
                except SimulationError:
                    if not csr.traps_enabled:
                        raise
                    pc = csr.trap_enter(CAUSE_ILLEGAL_INSTRUCTION, pc,
                                        memory.fetch(pc))
                    cycles += self.config.bits
                    count += 1
                    continue
                next_pc = op.execute(regs, memory, pc)
                count += 1
                if next_pc >= 0:
                    cycles += op_cycles(op, next_pc != pc + 4)
                    pc = next_pc
                else:
                    cycles += op_cycles(op, False)
                    if next_pc == DEFER_SYSTEM:
                        pc, wfi_halt = golden._exec_system(pc, count - 1)
                        if wfi_halt:
                            halted_by = "wfi"
                            break
                        continue
                    if csr.traps_enabled:
                        pc = csr.trap_enter(
                            CAUSE_BREAKPOINT if next_pc == HALT_EBREAK
                            else CAUSE_ECALL_M, pc)
                        continue
                    pc = (pc + 4) & _M32
                    halted_by = "ebreak" if next_pc == HALT_EBREAK else "ecall"
                    break
        finally:
            golden.pc = pc
        return RunResult(exit_code=golden.read_reg(10),
                         instructions=count, cycles=cycles,
                         halted_by=halted_by, trace=[])

    def _run_stepped(self, max_instructions: int) -> RunResult:
        """Retirement-by-retirement loop through the golden reference path
        (used when tracing and/or a SoC is attached): cycle costs come
        from the decoded-op classification of each retired row."""
        from .tracing import RvfiTrace

        golden = self._golden
        cycles = 0
        count = 0
        trace = RvfiTrace(capacity=golden._trace_capacity) \
            if golden._trace_enabled else RvfiTrace(capacity=1)
        halted_by = "limit"
        while count < max_instructions:
            halted, reason = golden.retire_one(count, trace)
            row = trace.row(-1)
            pc_rdata, pc_wdata, trapped = row[2], row[3], row[15]
            if trapped:
                cycles += self.config.bits
            else:
                op = golden.image.get(pc_rdata)
                cycles += self._op_cycles(
                    op, pc_wdata != (pc_rdata + 4) & _M32)
            count += 1
            if halted:
                halted_by = reason
                break
        exit_code = golden._poweroff_code if halted_by == "poweroff" \
            else golden.read_reg(10)
        return RunResult(exit_code=exit_code,
                         instructions=count, cycles=cycles,
                         halted_by=halted_by,
                         trace=trace if golden._trace_enabled else [])


def run_program_serv(program: Program,
                     max_instructions: int = 20_000_000,
                     soc: "object | None" = None) -> RunResult:
    """Convenience wrapper mirroring :func:`repro.sim.golden.run_program`."""
    return ServSim(program, soc=soc).run(max_instructions)
