"""Flat little-endian byte-addressable memory for the simulators.

Extreme-edge systems in the paper are baremetal with >=64 KB ROM/RAM; we
model a single flat space holding both text and data (Harvard separation is
enforced at the core's interface level, not here).
"""

from __future__ import annotations

from ..isa.bits import sign_extend, to_u32
from ..isa.program import DEFAULT_MEM_SIZE, Program


class MemoryError_(Exception):
    """Out-of-range or misaligned access (suffixed to avoid the builtin)."""


class Memory:
    """Flat memory with load/store of 1/2/4 bytes, little endian."""

    def __init__(self, size: int = DEFAULT_MEM_SIZE):
        if size <= 0 or size % 4:
            raise ValueError("memory size must be a positive multiple of 4")
        self.size = size
        self._bytes = bytearray(size)

    @classmethod
    def from_program(cls, program: Program,
                     size: int = DEFAULT_MEM_SIZE) -> "Memory":
        """Load a linked program image (text + data) into a fresh memory."""
        mem = cls(size)
        mem.write_blob(program.text_base, program.text_bytes())
        if program.data_bytes:
            mem.write_blob(program.data_base, bytes(program.data_bytes))
        return mem

    @property
    def raw(self) -> bytearray:
        """The backing byte store.

        The fused RTL backend reads/writes this directly for accesses it
        has already bounds- and alignment-checked; everything else goes
        through :meth:`load`/:meth:`store`.
        """
        return self._bytes

    @property
    def direct_size(self) -> int:
        """Bytes addressable through :attr:`raw` without device routing
        (the whole space for flat RAM; the RAM window for an MMIO bus)."""
        return self.size

    def _check(self, addr: int, width: int) -> int:
        addr = to_u32(addr)
        if addr + width > self.size:
            raise MemoryError_(f"access {addr:#x}+{width} beyond {self.size:#x}")
        if addr % width:
            raise MemoryError_(f"misaligned {width}-byte access at {addr:#x}")
        return addr

    def load(self, addr: int, width: int, signed: bool) -> int:
        """Read ``width`` bytes; sign- or zero-extend to 32 bits."""
        addr = self._check(addr, width)
        raw = int.from_bytes(self._bytes[addr:addr + width], "little")
        if signed:
            return to_u32(sign_extend(raw, 8 * width))
        return raw

    def store(self, addr: int, value: int, width: int) -> None:
        """Write the low ``width`` bytes of ``value``."""
        addr = self._check(addr, width)
        self._bytes[addr:addr + width] = (to_u32(value)
                                          & ((1 << (8 * width)) - 1)
                                          ).to_bytes(width, "little")

    def fetch(self, addr: int) -> int:
        """Instruction fetch: aligned 32-bit read."""
        addr = self._check(addr, 4)
        return int.from_bytes(self._bytes[addr:addr + 4], "little")

    def write_blob(self, addr: int, blob: bytes) -> None:
        addr = to_u32(addr)
        if addr + len(blob) > self.size:
            raise MemoryError_(f"blob of {len(blob)} bytes at {addr:#x} "
                               f"exceeds memory")
        self._bytes[addr:addr + len(blob)] = blob

    def read_blob(self, addr: int, length: int) -> bytes:
        addr = to_u32(addr)
        if addr + length > self.size:
            raise MemoryError_(f"read of {length} bytes at {addr:#x} "
                               f"exceeds memory")
        return bytes(self._bytes[addr:addr + length])
