"""repro — RISC-V Instruction Subset Processors (RISSPs) for extreme edge.

Reproduction of "Flexing RISC-V Instruction Subset Processors to Extreme
Edge" (MICRO 2025).  The package builds the complete toolflow of the paper:

* :mod:`repro.isa` — RV32I/E ISA model, assembler, executable spec
* :mod:`repro.compiler` — the MicroC cross-compiler (-O0..-Oz)
* :mod:`repro.sim` — golden ISS (Spike analog) and Serv bit-serial model
* :mod:`repro.rtl` — instruction hardware blocks, ModularEX, RISSP RTL
* :mod:`repro.verify` — testbenches, mutation (MCY), formal (SBY), RISCOF,
  RVFI analogs
* :mod:`repro.synth` — gate-level synthesis + FlexIC Gen3 techlib
* :mod:`repro.physical` — floorplan/CTS/route model (Figure 10)
* :mod:`repro.retarget` — generative macro retargeting (§5)
* :mod:`repro.core` — Step 1-3 methodology + end-to-end flow
* :mod:`repro.workloads` — Embench-analog + extreme-edge kernels

Quickstart::

    from repro import RisspFlow
    flow = RisspFlow()
    result = flow.generate("armpit", run_verification=True)
    print(result.profile.mnemonics, result.synth.fmax_khz)
"""

from .core import RisspFlow, RisspResult, extract_subset, sweep_application
from .compiler import compile_to_assembly, compile_to_program
from .isa import Assembler, Program, assemble, decode, encode, step
from .retarget import MINIMAL_SUBSET, retarget_assembly
from .rtl import build_block, build_modularex, build_rissp, default_library
from .sim import run_program, run_program_serv
from .synth import FLEXIC_GEN3, synthesize, synthesize_serv
from .physical import implement

__version__ = "1.0.0"

__all__ = [
    "Assembler", "FLEXIC_GEN3", "MINIMAL_SUBSET", "Program", "RisspFlow",
    "RisspResult", "assemble", "build_block", "build_modularex",
    "build_rissp", "compile_to_assembly", "compile_to_program", "decode",
    "default_library", "encode", "extract_subset", "implement",
    "retarget_assembly", "run_program", "run_program_serv", "step",
    "sweep_application", "synthesize", "synthesize_serv",
]
