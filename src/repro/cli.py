"""The single ``repro`` entrypoint: ``python -m repro [stages] [options]``.

One CLI drives the verification campaigns the repository accumulated —
cosimulation, the RTL mutant kill matrix, riscof-analog compliance, the
farm scaling benchmark, the batched fleet throughput stage, and the
coverage-guided scenario campaign — through the multi-process simulation
farm (:mod:`repro.farm`).

Configuration is **declarative**: :class:`FarmConfig` is a plain
dataclass whose fields *are* the command line (in the style of
simple_parsing / EasyArgs — the parser is generated from the dataclass,
never written twice).  Field names map to ``--kebab-case`` options,
tuple-typed fields take multiple values, helps live in field metadata,
and ``parse_config`` returns a populated ``FarmConfig``; programmatic
callers can skip argv entirely and hand :func:`run` a config instance.

Semantics guaranteed by the farm layer: ``--workers 1`` is the exact
serial path, and results are bit-identical for any worker count — only
wall-clock changes.

Output discipline (PR 8): **stdout is machine-clean** — nothing is ever
printed to it, so ``--json-out -``-style piping and shell capture stay
usable; all human-facing progress goes to stderr via :func:`_echo`.
``--telemetry PATH`` records the run under a :mod:`repro.obs` session
and writes the schema-validated run manifest (counters, stage spans,
per-task timings, host provenance); ``--trace-out PATH`` additionally
writes a Chrome ``trace_event`` timeline Perfetto can load.  Both are
written even when stages fail — a crashed campaign still leaves its
telemetry and its ``--json-out`` results behind.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import typing
from contextlib import nullcontext
from dataclasses import dataclass, field

from .verify.fuzz import FUZZ_BASE_SEED

#: Stage names, in the order a multi-stage invocation runs them.
STAGES = ("cosim", "mutation", "compliance", "bench", "fleet",
          "scenarios", "lint")


def _cfg(default, help_text: str, **extra):
    """A config field: default + help (+ argparse extras) in one place."""
    metadata = {"help": help_text, **extra}
    if isinstance(default, (tuple, list, dict)):
        # Copy per instance so a list/dict default is never shared.
        return field(default_factory=lambda: type(default)(default),
                     metadata=metadata)
    return field(default=default, metadata=metadata)


@dataclass
class FarmConfig:
    """Declarative farm configuration — every field is a CLI option."""

    stages: tuple[str, ...] = _cfg(
        ("cosim",), "campaign stages to run, in order", choices=STAGES,
        positional=True)
    workloads: tuple[str, ...] = _cfg(
        ("uart_selftest", "crc32"),
        "workload names the cosim stage verifies (each on its own "
        "generated core; pass none to run fuzz chunks only)")
    backends: tuple[str, ...] = _cfg(
        ("fused",),
        "RTL evaluator backends (fused / compiled / interpreter); cosim "
        "runs each, mutation requires them to agree per mutant")
    workers: int = _cfg(
        1, "process-pool size; 1 = the exact serial path")
    shards: int = _cfg(
        0, "compliance task groups (0 = one group per worker)")
    fuzz_chunks: int = _cfg(
        0, "seeded random-program cosim chunks added to the cosim stage")
    fuzz_seed: int = _cfg(
        FUZZ_BASE_SEED,
        "base seed; chunk i fuzzes derive_seed(base, i) (hex accepted)")
    max_instructions: int = _cfg(
        2_000_000, "retirement budget per workload cosim")
    fuzz_max_instructions: int = _cfg(
        20_000, "retirement budget per fuzz chunk")
    mutation_limit: int = _cfg(
        24, "mutants enumerated by the mutation stage")
    mutation_budget: int = _cfg(
        2_000, "retirement budget per mutant cosim")
    bench_workers: tuple[int, ...] = _cfg(
        (1, 2, 4), "worker counts the bench stage times")
    fleet_instances: int = _cfg(
        1024, "core+firmware instances the fleet stage batches")
    fleet_quantum: int = _cfg(
        256, "retirements per batched fleet pass (scheduling only — "
             "never changes results)")
    scenario_count: int = _cfg(
        64, "random scenarios the scenarios stage generates")
    scenario_seed: int = _cfg(
        FUZZ_BASE_SEED,
        "base seed; scenario i derives from derive_seed(base, i) "
        "(hex accepted)")
    scenario_mutation: int = _cfg(
        16, "extra directed scenarios the mutation loop may spend on "
            "uncovered coverage bins (0 = random-only)")
    scenario_budget: int = _cfg(
        20_000, "retirement budget per scenario")
    scenario_probes: int = _cfg(
        1, "1 = run the directed probe set and gate on it reaching "
           "every trap-cause and arbitration-ordering bin; 0 = skip")
    scenario_golden_stride: int = _cfg(
        8, "replay every n-th scenario on the golden ISS with a full "
           "trace-column compare (0 disables)")
    coverage_out: str = _cfg(
        "", "write the schema-validated scenario coverage report to "
            "this path")
    lint_subsets: tuple[str, ...] = _cfg(
        (), "subset-lattice entries the lint stage stitches and lints "
            "(Table 3 names / rv32e; empty = the whole lattice)")
    lint_out: str = _cfg(
        "", "write the schema-validated lint report to this path")
    json_out: str = _cfg(
        "", "write stage results as JSON to this path")
    telemetry: str = _cfg(
        "", "record the run under a telemetry session and write the "
            "run-manifest JSON (counters, stage spans, task timings, "
            "host provenance) to this path")
    trace_out: str = _cfg(
        "", "write a Chrome trace_event timeline of the run (open in "
            "Perfetto / about:tracing) to this path; implies the "
            "telemetry session")


def _option_name(field_name: str) -> str:
    return "--" + field_name.replace("_", "-")


def _int(text: str) -> int:
    """Int converter accepting 0x/0o/0b prefixes (seeds read as hex)."""
    return int(text, 0)


def build_parser(config_cls=FarmConfig) -> argparse.ArgumentParser:
    """Generate the argparse surface from the config dataclass."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(config_cls.__doc__ or "").strip(),
        epilog="example: python -m repro cosim mutation --workers 4 "
               "--fuzz-chunks 8 --backends fused compiled")
    hints = typing.get_type_hints(config_cls)
    for spec in dataclasses.fields(config_cls):
        metadata = dict(spec.metadata)
        help_text = metadata.pop("help", None)
        positional = metadata.pop("positional", False)
        default = spec.default if spec.default is not dataclasses.MISSING \
            else spec.default_factory()
        hint = hints[spec.name]
        kwargs: dict = {"help": help_text, "default": default, **metadata}
        if typing.get_origin(hint) is tuple:
            element = typing.get_args(hint)[0]
            kwargs["nargs"] = "*"
            kwargs["type"] = _int if element is int else element
        elif hint is int:
            kwargs["type"] = _int
        else:
            kwargs["type"] = hint
        if positional:
            # argparse validates a nargs="*" positional's default (and the
            # empty list) against choices as one value; show the choices in
            # the metavar, parse unvalidated with default=None, and let
            # parse_config validate and substitute the dataclass default.
            choice_list = kwargs.pop("choices", None)
            if choice_list:
                kwargs["metavar"] = "{" + ",".join(choice_list) + "}"
            kwargs["default"] = None
            parser.add_argument(spec.name, **kwargs)
        else:
            parser.add_argument(_option_name(spec.name),
                                dest=spec.name, **kwargs)
    return parser


def parse_config(argv=None, config_cls=FarmConfig) -> FarmConfig:
    parser = build_parser(config_cls)
    namespace = parser.parse_args(argv)
    values = {spec.name: getattr(namespace, spec.name)
              for spec in dataclasses.fields(config_cls)}
    for spec in dataclasses.fields(config_cls):
        allowed = spec.metadata.get("choices")
        if spec.metadata.get("positional") and allowed:
            for item in values[spec.name] or ():
                if item not in allowed:
                    parser.error(
                        f"argument {spec.name}: invalid choice: {item!r} "
                        f"(choose from {', '.join(allowed)})")
    positionals = {spec.name for spec in dataclasses.fields(config_cls)
                   if spec.metadata.get("positional")}
    for name, value in list(values.items()):
        if value is None or (value == [] and name in positionals):
            del values[name]  # dataclass default applies
        elif isinstance(value, list):
            values[name] = tuple(value)
    return config_cls(**values)


# ---------------------------------------------------------------- stages

def _echo(message: str) -> None:
    """Human-facing progress: stderr, so stdout stays machine-clean and
    never interleaves with worker output in a pipe."""
    print(message, file=sys.stderr)


def _stage_cosim(config: FarmConfig) -> tuple[bool, dict]:
    from .farm import cosim_campaign

    if not config.backends:
        # Zero backends would loop zero times and report "0/0 clean" — a
        # vacuous pass claiming success with nothing verified.
        _echo("cosim: no backends configured — nothing verified -> FAIL")
        return False, {"verdicts": {}}
    if not config.workloads and not config.fuzz_chunks:
        _echo("cosim: no workloads and no fuzz chunks — nothing "
              "verified -> FAIL")
        return False, {"verdicts": {}}
    verdicts: dict[str, str | None] = {}
    for backend in config.backends:
        prefix = f"{backend}:" if len(config.backends) > 1 else ""
        results = cosim_campaign(
            workloads=tuple(config.workloads),
            fuzz_chunks=config.fuzz_chunks, fuzz_seed=config.fuzz_seed,
            backend=backend, max_instructions=config.max_instructions,
            fuzz_max_instructions=config.fuzz_max_instructions,
            workers=config.workers)
        for task_id, verdict in results.items():
            verdicts[prefix + task_id] = verdict
    for task_id, verdict in verdicts.items():
        _echo(f"  {task_id:<48} {verdict or 'PASS'}")
    clean = sum(1 for verdict in verdicts.values() if verdict is None)
    _echo(f"cosim: {clean}/{len(verdicts)} clean")
    return clean == len(verdicts), {"verdicts": verdicts}


def _stage_mutation(config: FarmConfig) -> tuple[bool, dict]:
    from .farm import mutation_exercise_target
    from .verify.mutation import rtl_mutant_kill_matrix

    if not config.backends:
        # Empty verdict rows would crash the kill count (StopIteration
        # inside the generator) — fail cleanly instead.
        _echo("mutation: no backends configured — nothing verified "
              "-> FAIL")
        return False, {"mutants": 0, "killed": 0, "disagreements": []}
    core, program = mutation_exercise_target()
    matrix = rtl_mutant_kill_matrix(
        core, program, backends=tuple(config.backends),
        limit=config.mutation_limit,
        max_instructions=config.mutation_budget, workers=config.workers)
    unequal = {description: row for description, row in matrix.items()
               if len(set(row.values())) != 1}
    kills = sum(1 for row in matrix.values()
                if next(iter(row.values())) is not None)
    for description, row in unequal.items():
        _echo(f"  BACKENDS DISAGREE {description}: {row}")
    _echo(f"mutation: {kills}/{len(matrix)} mutants killed, "
          f"{len(unequal)} backend disagreements "
          f"(backends={','.join(config.backends)})")
    return not unequal, {"mutants": len(matrix), "killed": kills,
                         "disagreements": list(unequal)}


def _stage_compliance(config: FarmConfig) -> tuple[bool, dict]:
    from .isa.instructions import INSTRUCTIONS
    from .rtl.rissp import build_rissp
    from .verify.riscof import run_compliance

    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    report = run_compliance(core, workers=config.workers,
                            shards=config.shards)
    for mismatch in report.mismatches:
        _echo(f"  MISMATCH {mismatch}")
    _echo(f"compliance: {report.tests_run} programs, "
          f"{len(report.mismatches)} mismatches "
          f"-> {'PASS' if report.compliant else 'FAIL'}")
    return report.compliant, {"tests_run": report.tests_run,
                              "mismatches": report.mismatches}


def _stage_bench(config: FarmConfig) -> tuple[bool, dict]:
    from .core.bench_schema import write_bench_artifact
    from .farm import farm_scaling_metrics

    if not config.bench_workers or not config.backends:
        # Zero worker counts would crash indexing the serial baseline;
        # zero backends would time an empty campaign.
        _echo("bench: needs at least one worker count and one backend "
              "-> FAIL")
        return False, {}
    metrics = farm_scaling_metrics(
        worker_counts=tuple(config.bench_workers),
        backends=tuple(config.backends))
    for key, seconds in metrics["wallclock_sec"].items():
        _echo(f"  {key:<12} {seconds:7.2f}s")
    for workers in config.bench_workers[1:]:
        _echo(f"  speedup at {workers} workers: "
              f"{metrics[f'speedup_workers_{workers}']:.2f}x")
    path = write_bench_artifact("farm_scaling", metrics)
    _echo(f"bench: wrote {path}")
    return True, {"metrics": metrics, "artifact": str(path)}


def _stage_fleet(config: FarmConfig) -> tuple[bool, dict]:
    from .core.bench_schema import write_bench_artifact
    from .farm import fleet_throughput_metrics

    if config.fleet_instances <= 0:
        _echo("fleet: needs at least one instance -> FAIL")
        return False, {}
    metrics = fleet_throughput_metrics(
        instances=config.fleet_instances, workers=config.workers,
        quantum=config.fleet_quantum)
    _echo(f"  instances            {metrics['instances']}")
    _echo(f"  retirements          {metrics['retirements']}")
    _echo(f"  fleet cycles/sec     {metrics['fleet_cycles_per_sec']:,.0f}")
    _echo(f"  single cycles/sec    {metrics['single_cycles_per_sec']:,.0f}")
    _echo(f"  speedup vs single    "
          f"{metrics['speedup_vs_single']:.2f}x")
    path = write_bench_artifact("fleet_throughput", metrics)
    _echo(f"fleet: wrote {path}")
    return True, {"metrics": metrics, "artifact": str(path)}


def _stage_scenarios(config: FarmConfig) -> tuple[bool, dict]:
    from .scenario import (probe_gate_missing, scenario_campaign,
                           write_report)

    if config.scenario_count <= 0:
        # Probes alone could still "pass"; an explicit zero-scenario
        # request is a misconfiguration, not vacuous 100% coverage.
        _echo("scenarios: --scenario-count must be positive — nothing "
              "generated -> FAIL")
        return False, {"covered": 0, "bins": 0, "failures": []}
    result = scenario_campaign(
        count=config.scenario_count, base_seed=config.scenario_seed,
        budget=config.scenario_budget, workers=config.workers,
        shards=config.shards,
        golden_stride=config.scenario_golden_stride,
        probes=bool(config.scenario_probes),
        mutation_budget=config.scenario_mutation)
    coverage = result["coverage"]
    for row in result["failures"]:
        _echo(f"  FAILURE {row['scenario_id']} "
              f"seed={row['seed']:#018x}: {row['verdict']}")
    missing = ()
    if result["probe_coverage"] is not None:
        missing = probe_gate_missing(result["probe_coverage"])
        for name in missing:
            _echo(f"  PROBE GATE MISS {name}")
    phases = result["phases"]
    _echo(f"scenarios: {len(coverage.covered())}/{len(coverage.counts)} "
          f"bins covered ({phases['probes']} probes + "
          f"{phases['random']} random + {phases['mutated']} mutated; "
          f"saturated={phases['saturated']})")
    payload = {"covered": len(coverage.covered()),
               "bins": len(coverage.counts),
               "uncovered": list(coverage.uncovered()),
               "phases": phases, "failures": result["failures"],
               "probe_gate_missing": list(missing)}
    if config.coverage_out:
        config_doc = {
            "count": config.scenario_count,
            "base_seed": config.scenario_seed,
            "budget": config.scenario_budget,
            "workers": config.workers, "shards": config.shards,
            "golden_stride": config.scenario_golden_stride,
            "probes": bool(config.scenario_probes),
            "mutation_budget": config.scenario_mutation}
        path = write_report(config.coverage_out, result, config_doc)
        _echo(f"coverage report written to {path}")
        payload["artifact"] = str(path)
    ok = not result["failures"] and not missing
    return ok, payload


def _stage_lint(config: FarmConfig) -> tuple[bool, dict]:
    from .analysis import write_lint_report
    from .farm import lint_campaign

    result = lint_campaign(
        subsets=tuple(config.lint_subsets) or None,
        workers=config.workers)
    for finding in result["findings"]:
        _echo(f"  {finding.rule} {finding.location}: {finding.detail}")
    for finding, waiver in result["waived"]:
        _echo(f"  waived {finding.rule} {finding.location} "
              f"({waiver.reason})")
    targets = result["targets"]
    _echo(f"lint: {targets['blocks']} blocks + {targets['cores']} cores "
          f"+ {targets['gen_sources']} generated sources + contract scan "
          f"across {result['tasks']} tasks -> "
          f"{len(result['findings'])} findings, "
          f"{len(result['waived'])} waived")
    payload = {"findings": [f.to_doc() for f in result["findings"]],
               "waived": len(result["waived"]),
               "targets": targets, "tasks": result["tasks"]}
    if config.lint_out:
        config_doc = {"subsets": list(config.lint_subsets),
                      "workers": config.workers}
        path = write_lint_report(config.lint_out, result, config_doc)
        _echo(f"lint report written to {path}")
        payload["artifact"] = str(path)
    return not result["findings"], payload


_STAGE_RUNNERS = {"cosim": _stage_cosim, "mutation": _stage_mutation,
                  "compliance": _stage_compliance, "bench": _stage_bench,
                  "fleet": _stage_fleet, "scenarios": _stage_scenarios,
                  "lint": _stage_lint}


def _run_stage(config: FarmConfig, stage: str) -> tuple[bool, dict]:
    """One stage with its failure contract: a raising stage is recorded
    as failed — with the replayable task id (for fuzz chunks, embedding
    the seed) when the farm reports one — instead of aborting the run,
    so later stages still execute and ``--json-out``/``--telemetry``
    always get written (the PR 8 regression: an uncaught
    ``FarmTaskError`` used to skip the JSON write entirely)."""
    from .farm import FarmTaskError

    try:
        return _STAGE_RUNNERS[stage](config)
    except FarmTaskError as exc:
        _echo(f"{stage}: FAILED — {exc}")
        return False, {"error": f"{type(exc).__name__}: {exc}",
                       "task_id": exc.task_id,
                       "task_description": exc.description}
    except Exception as exc:
        _echo(f"{stage}: FAILED — {type(exc).__name__}: {exc}")
        return False, {"error": f"{type(exc).__name__}: {exc}"}


def run(config: FarmConfig) -> int:
    """Run the configured stages; returns the process exit code.

    ``--json-out`` is written whether or not stages fail or raise;
    ``--telemetry``/``--trace-out`` open one :mod:`repro.obs` session
    around all stages (each under its own span) plus the telemetry
    probe, and write the manifest/timeline at the end, also
    unconditionally.
    """
    from . import obs

    results: dict[str, dict] = {}
    failures = []
    with obs.session() if (config.telemetry or config.trace_out) \
            else nullcontext(None) as telemetry:
        for stage in config.stages:
            _echo(f"== {stage} (workers={config.workers}) ==")
            with obs.span(stage, workers=config.workers):
                ok, payload = _run_stage(config, stage)
            results[stage] = {"ok": ok, **payload}
            if not ok:
                failures.append(stage)
        if telemetry is not None:
            # Populate every instrumented counter family once so run
            # manifests are comparable regardless of stage selection.
            from .farm import telemetry_probe

            with obs.span("telemetry_probe"):
                telemetry_probe()
    if config.json_out:
        out_path = pathlib.Path(config.json_out)
        if out_path.parent != pathlib.Path(""):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(results, indent=2) + "\n")
        _echo(f"results written to {config.json_out}")
    if telemetry is not None:
        config_doc = {name: list(value) if isinstance(value, tuple)
                      else value
                      for name, value in dataclasses.asdict(config).items()}
        if config.telemetry:
            path = obs.write_manifest(config.telemetry, telemetry,
                                      config_doc)
            _echo(f"telemetry manifest written to {path}")
        if config.trace_out:
            path = obs.write_trace(config.trace_out, telemetry)
            _echo(f"trace timeline written to {path}")
    if failures:
        _echo(f"FAILED stages: {', '.join(failures)}")
        return 1
    _echo(f"all stages passed: {', '.join(config.stages)}")
    return 0


def main(argv=None) -> int:
    return run(parse_config(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
