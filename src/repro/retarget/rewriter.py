"""Assembly rewriting against a verified macro set (Figure 11 right side).

Takes compiler-produced assembly for the full ISA, expands pseudo
instructions, and rewrites every instruction outside the target subset
using the verified macros.  Emits both the rewritten assembly and a
``macro.S``-style record of the transformations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..isa.assembler import Assembler, _split_operands, _strip_comment
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, LOADS, STORES
from .synthesizer import SynthesisReport, synthesize_macros
from .templates import MINIMAL_SUBSET, TEMP0

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(.*)\(\s*([^()]+)\s*\)\s*$")


@dataclass
class RetargetResult:
    assembly: str
    macro_file: str
    report: SynthesisReport
    rewritten_count: int


class AssemblyRewriter:
    def __init__(self, subset: tuple[str, ...] = MINIMAL_SUBSET,
                 report: SynthesisReport | None = None):
        self.subset = tuple(subset)
        self.report = report
        self._asm = Assembler()
        self._label_count = 0
        self.rewritten = 0

    def _fresh_label(self) -> str:
        self._label_count += 1
        return f".Lrt{self._label_count}"

    # ----------------------------------------------------------- rewriting

    def rewrite(self, assembly: str) -> RetargetResult:
        needed = self._scan_unsupported(assembly)
        if self.report is None:
            self.report = synthesize_macros(sorted(needed),
                                            subset=self.subset)
        out: list[str] = []
        for raw in assembly.splitlines():
            line = _strip_comment(raw)
            if not line:
                continue
            match = _LABEL_RE.match(line)
            if match:
                out.append(f"{match.group(1)}:")
                line = match.group(2).strip()
                if not line:
                    continue
            if line.startswith("."):
                out.append(line)
                continue
            out.extend(self._rewrite_instruction(line))
        macro_file = self._emit_macro_file()
        return RetargetResult(assembly="\n".join(out) + "\n",
                              macro_file=macro_file,
                              report=self.report,
                              rewritten_count=self.rewritten)

    def _scan_unsupported(self, assembly: str) -> set[str]:
        needed: set[str] = set()
        for raw in assembly.splitlines():
            line = _strip_comment(raw)
            match = _LABEL_RE.match(line) if line else None
            if match:
                line = match.group(2).strip()
            if not line or line.startswith("."):
                continue
            parts = line.split(None, 1)
            op = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            try:
                expanded = self._asm._expand_pseudo(
                    op, _split_operands(rest), 0)
            except Exception:
                continue
            for mnemonic, _ in expanded:
                if mnemonic not in self.subset \
                        and mnemonic not in ("ecall", "ebreak", "fence",
                                             "lui"):
                    needed.add(mnemonic)
        return needed

    def _rewrite_instruction(self, line: str) -> list[str]:
        parts = line.split(None, 1)
        op = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        ops = _split_operands(rest)
        if op == "la":
            # symbol address build over the subset (addresses < 2^21)
            self.rewritten += 1
            rd, sym = ops
            return [
                f"    addi {rd}, x0, (({sym}) >> 10)",
                f"    addi {TEMP0}, x0, 10",
                f"    sll {rd}, {rd}, {TEMP0}",
                f"    addi {rd}, {rd}, (({sym}) & 1023)",
            ]
        expanded = self._asm._expand_pseudo(op, ops, 0)
        out: list[str] = []
        for mnemonic, operands in expanded:
            if mnemonic in self.subset or mnemonic in ("ecall", "ebreak",
                                                       "fence"):
                out.append(f"    {mnemonic} {', '.join(operands)}")
                continue
            out.extend(self._apply_macro(mnemonic, operands))
        return out

    _SUBSTITUTES = ("t0", "t1", "t2", "a5", "a4", "a3", "s1", "s0")

    def _apply_macro(self, mnemonic: str, operands: list[str]) -> list[str]:
        """Expand one instruction, legalizing gp/tp operand collisions.

        The macro temporaries are gp/tp; when the compiled code itself holds
        a live value there (spill-scratch reloads), the operand is moved
        through a callee-preserved substitute around the expansion.  Branch
        macros never write the temporaries, so they skip legalization (and
        must, since a taken branch would escape before the restore).
        """
        if mnemonic in BRANCHES:
            return self._expand_verified(mnemonic, operands)
        def base_of(op: str) -> str | None:
            mem = _MEM_RE.match(op)
            return mem.group(2).strip() if mem else None

        regs = []
        for op in operands:
            if op in ("gp", "tp", "x3", "x4"):
                regs.append(op)
            else:
                base = base_of(op)
                if base in ("gp", "tp", "x3", "x4"):
                    regs.append(base)
        if not regs:
            return self._expand_verified(mnemonic, operands)
        writes_rd = mnemonic not in STORES
        taken = {op for op in operands if "(" not in op}
        taken |= {base_of(op) for op in operands if base_of(op)}
        subs = [r for r in self._SUBSTITUTES if r not in taken]
        mapping: dict[str, str] = {}
        prologue: list[str] = []
        epilogue: list[str] = []
        for index, reg in enumerate(dict.fromkeys(regs)):
            sub = subs[index]
            slot = -36 - 4 * index
            mapping[reg] = sub
            prologue += [f"sw {sub}, {slot}(sp)",
                         f"addi {sub}, {reg}, 0"]
            restore = [f"lw {sub}, {slot}(sp)"]
            if writes_rd and operands and operands[0] == reg:
                restore.insert(0, f"addi {reg}, {sub}, 0")
            epilogue += restore
        def remap(op: str) -> str:
            if op in mapping:
                return mapping[op]
            base = base_of(op)
            if base in mapping:
                mem = _MEM_RE.match(op)
                return f"{mem.group(1)}({mapping[base]})"
            return op

        new_operands = [remap(op) for op in operands]
        body = self._expand_verified(mnemonic, new_operands)
        return ([f"    {line}" for line in prologue] + body
                + [f"    {line}" for line in epilogue])

    def _expand_verified(self, mnemonic: str,
                         operands: list[str]) -> list[str]:
        macro = self.report.macros.get(mnemonic) if self.report else None
        if mnemonic == "lui":
            from .templates import _lui
            value = self._asm._eval_expr(operands[1], 0, None)
            lines = _lui(operands[0], str(value), self._fresh_label)
        elif macro is None:
            raise ValueError(f"no verified macro for {mnemonic!r}")
        elif mnemonic in BRANCHES:
            lines = macro.template(operands[0], operands[1], operands[2],
                                   self._fresh_label)
        elif mnemonic in LOADS or mnemonic in STORES:
            reg = operands[0]
            mem = _MEM_RE.match(operands[1])
            offset = mem.group(1).strip() or "0"
            base = mem.group(2).strip()
            if base in ("sp", "x2"):
                raise ValueError(f"{mnemonic}: sp-based operands would "
                                 f"collide with the macro stash slots")
            lines = macro.template(reg, offset, base, self._fresh_label)
        else:
            lines = macro.template(*operands, self._fresh_label)
        self.rewritten += 1
        return [f"    {line}" if not line.endswith(":") else line
                for line in lines]

    def _emit_macro_file(self) -> str:
        """A macro.S-style record of every verified transformation."""
        out = ["# macro.S - generated by the RISSP retargeting tool",
               f"# target subset: {', '.join(self.subset)}", ""]
        for mnemonic, macro in sorted((self.report.macros or {}).items()):
            out.append(f".macro {mnemonic}_subst rd, rs1, rs2")
            try:
                body = macro.template("\\rd", "\\rs1", "\\rs2",
                                      self._fresh_label)
            except Exception:
                body = ["# (operand-dependent expansion; see rewriter)"]
            out.extend(f"    {line}" for line in body)
            out.append(".endm")
            out.append(f"# verified on {macro.cases_checked} cases in "
                       f"{macro.attempts} attempt(s)")
            out.append("")
        return "\n".join(out)


def retarget_assembly(assembly: str,
                      subset: tuple[str, ...] = MINIMAL_SUBSET,
                      report: SynthesisReport | None = None
                      ) -> RetargetResult:
    """Rewrite full-ISA assembly onto ``subset`` (the §5 flow)."""
    return AssemblyRewriter(subset, report).rewrite(assembly)
