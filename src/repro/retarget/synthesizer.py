"""Generative macro synthesis with the Figure 11 verify/retry loop.

For each instruction outside the target subset the synthesizer asks the
candidate generator (:mod:`repro.retarget.templates` — the LLM stand-in)
for an expansion, verifies it against the instruction's ISA semantics on
corner operands by *executing* it on the golden ISS, rejects failures and
retries with the next candidate, exactly as the paper's loop does ("a valid
macro can be generated in less than 10 attempts").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.assembler import assemble
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, LOADS, STORES
from ..sim.golden import GoldenSim
from .templates import CANDIDATES, MINIMAL_SUBSET, Template

MAX_ATTEMPTS = 10

_CORNERS = (0, 1, 5, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 31, 0xA5A5A5A5)
_IMM_CORNERS = (0, 1, -1, 7, 100, 2047, -2048)
_SHAMT_CORNERS = (0, 1, 7, 31)


class RetargetError(ValueError):
    pass


@dataclass
class VerifiedMacro:
    mnemonic: str
    template: Template
    attempts: int
    cases_checked: int


@dataclass
class SynthesisReport:
    subset: tuple[str, ...]
    macros: dict[str, VerifiedMacro] = field(default_factory=dict)
    total_attempts: int = 0


def _run(asm: str, max_instructions: int = 20_000) -> GoldenSim:
    program = assemble(asm)
    sim = GoldenSim(program)
    sim.run(max_instructions)
    return sim


def _s32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def _expected(mnemonic: str, a: int, b: int) -> int:
    from ..isa.encoding import Instruction
    from ..isa.spec import step
    instr = Instruction(mnemonic, rd=5, rs1=3, rs2=4,
                        imm=_s32(b) if _uses_imm(mnemonic) else 0)
    effects = step(instr, 0x1000, a, 0 if _uses_imm(mnemonic) else b)
    return effects.rd_data or 0


def _uses_imm(mnemonic: str) -> bool:
    d = BY_MNEMONIC[mnemonic]
    return d.fmt is Format.I or d.fmt is Format.U


def _label_factory():
    count = [0]

    def fresh() -> str:
        count[0] += 1
        return f".Lvf{count[0]}"
    return fresh


def _verify_alu(mnemonic: str, template: Template) -> int:
    """Returns number of cases checked; raises on mismatch."""
    cases = 0
    imm_form = _uses_imm(mnemonic)
    d = BY_MNEMONIC[mnemonic]
    if d.mnemonic == "lui":
        for imm20 in (0, 1, 0x12345, 0xFFFFF, 0x80000):
            lines = template("a0", str(imm20), _label_factory())
            asm = ".text\nmain:\n" + "\n".join(
                f"    {line}" for line in lines) + "\n    ret\n"
            sim = _run(asm)
            want = (imm20 << 12) & 0xFFFFFFFF
            if sim.read_reg(10) != want:
                raise RetargetError(f"lui {imm20:#x}: got "
                                    f"{sim.read_reg(10):#x} want {want:#x}")
            cases += 1
        return cases
    if d.mnemonic == "auipc":
        for imm20 in (0, 1, 0x00010):
            lines = template("a0", str(imm20), _label_factory())
            asm = (".text\nmain:\n    nop\nanchor:\n"
                   + "\n".join(f"    {line}" for line in lines)
                   + "\n    ret\n")
            program = assemble(asm)
            sim = GoldenSim(program)
            sim.run(20_000)
            want = (program.symbol("anchor") + (imm20 << 12)) & 0xFFFFFFFF
            if sim.read_reg(10) != want:
                raise RetargetError(f"auipc {imm20:#x} mismatch")
            cases += 1
        return cases
    if imm_form:
        b_space = _SHAMT_CORNERS if d.is_shift_imm else _IMM_CORNERS
    else:
        b_space = _CORNERS
    for a in _CORNERS:
        for b in b_space:
            lines = template("a0", "a1", str(_s32(b)) if imm_form else "a2",
                             _label_factory())
            body = [f"    li a1, {_s32(a)}"]
            if not imm_form:
                body.append(f"    li a2, {_s32(b)}")
            body += [f"    {line}" if not line.endswith(":") else line
                     for line in lines]
            asm = ".text\nmain:\n" + "\n".join(body) + "\n    ret\n"
            sim = _run(asm)
            want = _expected(mnemonic, a, b)
            if sim.read_reg(10) != want:
                raise RetargetError(
                    f"{mnemonic} a={a:#x} b={b:#x}: got "
                    f"{sim.read_reg(10):#x} want {want:#x}")
            cases += 1
    return cases


def _verify_branch(mnemonic: str, template: Template) -> int:
    from ..isa.spec import _BRANCH_TAKEN
    taken_fn = _BRANCH_TAKEN[mnemonic]
    cases = 0
    for a in _CORNERS:
        for b in (0, 1, 0xFFFFFFFF, 0x80000000, a):
            lines = template("a1", "a2", "taken", _label_factory())
            body = [f"    li a1, {_s32(a)}", f"    li a2, {_s32(b)}"]
            body += [f"    {line}" if not line.endswith(":") else line
                     for line in lines]
            body += ["    li a0, 0", "    ret", "taken:",
                     "    li a0, 1", "    ret"]
            sim = _run(".text\nmain:\n" + "\n".join(body) + "\n")
            want = 1 if taken_fn(a, b) else 0
            if sim.read_reg(10) != want:
                raise RetargetError(f"{mnemonic} a={a:#x} b={b:#x} "
                                    f"polarity wrong")
            cases += 1
    return cases


def _verify_load(mnemonic: str, template: Template) -> int:
    width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2}[mnemonic]
    signed = mnemonic in ("lb", "lh")
    cases = 0
    for word in (0x8899AA7F, 0x01FF80E2, 0x7FFF8000):
        for offset in range(0, 4, width):
            lines = template("a0", str(offset), "a1", _label_factory())
            asm = (".data\nbuf: .word {w}\n.text\nmain:\n"
                   "    la a1, buf\n".format(w=word)
                   + "\n".join(f"    {line}" if not line.endswith(":")
                               else line for line in lines)
                   + "\n    ret\n")
            sim = _run(asm)
            raw = (word >> (8 * offset)) & ((1 << (8 * width)) - 1)
            if signed and raw & (1 << (8 * width - 1)):
                raw |= (0xFFFFFFFF << (8 * width)) & 0xFFFFFFFF
            if sim.read_reg(10) != raw & 0xFFFFFFFF:
                raise RetargetError(
                    f"{mnemonic} off={offset}: got "
                    f"{sim.read_reg(10):#x} want {raw:#x}")
            cases += 1
    return cases


def _verify_store(mnemonic: str, template: Template) -> int:
    width = {"sb": 1, "sh": 2}[mnemonic]
    cases = 0
    for value in (0xAB, 0x12345678, 0xFFFFFFFF):
        for offset in range(0, 4, width):
            lines = template("a2", str(offset), "a1", _label_factory())
            asm = (".data\nbuf: .word 0x55AA33CC\n.text\nmain:\n"
                   "    la a1, buf\n"
                   f"    li a2, {_s32(value)}\n"
                   + "\n".join(f"    {line}" if not line.endswith(":")
                               else line for line in lines)
                   + "\n    ret\n")
            program = assemble(asm)
            sim = GoldenSim(program)
            sim.run(20_000)
            got = sim.memory.load(program.symbol("buf"), 4, False)
            mask = ((1 << (8 * width)) - 1) << (8 * offset)
            want = (0x55AA33CC & ~mask) | ((value << (8 * offset)) & mask)
            if got != want & 0xFFFFFFFF:
                raise RetargetError(
                    f"{mnemonic} off={offset} val={value:#x}: memory "
                    f"{got:#x} want {want:#x}")
            cases += 1
    return cases


def synthesize_macro(mnemonic: str) -> VerifiedMacro:
    """Propose/verify/retry loop for one instruction."""
    candidates = CANDIDATES.get(mnemonic)
    if not candidates:
        raise RetargetError(f"no candidate generator for {mnemonic!r}")
    last_error: Exception | None = None
    for attempt, template in enumerate(candidates[:MAX_ATTEMPTS], start=1):
        try:
            if mnemonic in BRANCHES:
                cases = _verify_branch(mnemonic, template)
            elif mnemonic in LOADS and mnemonic != "lw":
                cases = _verify_load(mnemonic, template)
            elif mnemonic in STORES and mnemonic != "sw":
                cases = _verify_store(mnemonic, template)
            else:
                cases = _verify_alu(mnemonic, template)
            return VerifiedMacro(mnemonic, template, attempt, cases)
        except (RetargetError, Exception) as exc:   # reject + retry
            last_error = exc
    raise RetargetError(f"no valid macro for {mnemonic!r} within "
                        f"{MAX_ATTEMPTS} attempts: {last_error}")


def synthesize_macros(mnemonics: list[str],
                      subset: tuple[str, ...] = MINIMAL_SUBSET
                      ) -> SynthesisReport:
    """Verified macros for every instruction the subset lacks."""
    report = SynthesisReport(subset=tuple(subset))
    for mnemonic in sorted(set(mnemonics) - set(subset)):
        if mnemonic in ("ecall", "ebreak", "fence"):
            continue
        macro = synthesize_macro(mnemonic)
        report.macros[mnemonic] = macro
        report.total_attempts += macro.attempts
    return report
