"""Candidate macro templates for instruction retargeting (§5).

Each unsupported instruction has an ordered list of *candidate* expansions
over the minimal subset.  This plays the role of the LLM in Figure 11: a
generator that proposes plausible rewrites, some of which are wrong — the
verification loop rejects those and requests the next candidate, exactly as
the paper reports needing "less than 10 attempts" per instruction.

A template receives the operand strings, a fresh-label factory, and the two
scratch registers the objectives permit ("allow the use of temporary
registers"), and returns assembly lines that may use only the target
subset.
"""

from __future__ import annotations

from typing import Callable

#: The paper's minimal 12-instruction subset (§5).
MINIMAL_SUBSET = ("addi", "add", "and", "xori", "sll", "sra", "jal",
                  "jalr", "blt", "bltu", "lw", "sw")

TEMP0 = "gp"
TEMP1 = "tp"

LabelFn = Callable[[], str]
Template = Callable[..., list[str]]


def _not_into(dest: str, src: str) -> list[str]:
    return [f"xori {dest}, {src}, -1"]


# ------------------------------------------------------------- arithmetic

def _sub(rd, rs1, rs2, label):
    return [f"xori {TEMP0}, {rs2}, -1",
            f"addi {TEMP0}, {TEMP0}, 1",
            f"add {rd}, {rs1}, {TEMP0}"]


def _sub_bad(rd, rs1, rs2, label):
    # plausible but wrong: forgets the +1 of two's complement
    return [f"xori {TEMP0}, {rs2}, -1",
            f"add {rd}, {rs1}, {TEMP0}"]


def _or(rd, rs1, rs2, label):
    return [f"xori {TEMP0}, {rs1}, -1",
            f"xori {TEMP1}, {rs2}, -1",
            f"and {rd}, {TEMP0}, {TEMP1}",
            f"xori {rd}, {rd}, -1"]


def _xor(rd, rs1, rs2, label):
    # a ^ b = (a | b) & ~(a & b), with | built De Morgan style
    return [f"and {TEMP0}, {rs1}, {rs2}",
            f"xori {TEMP0}, {TEMP0}, -1",         # ~(a&b)
            f"xori {TEMP1}, {rs1}, -1",
            f"xori {rd}, {rs2}, -1",
            f"and {TEMP1}, {TEMP1}, {rd}",
            f"xori {TEMP1}, {TEMP1}, -1",         # a|b
            f"and {rd}, {TEMP1}, {TEMP0}"]


def _andi(rd, rs1, imm, label):
    return [f"addi {TEMP0}, x0, {imm}",
            f"and {rd}, {rs1}, {TEMP0}"]


def _ori(rd, rs1, imm, label):
    # the constant must live in TEMP1: _or's first step clobbers TEMP0
    return [f"addi {TEMP1}, x0, {imm}"] + _or(rd, rs1, TEMP1, label)


def _lui(rd, imm20, label):
    value = int(str(imm20), 0) & 0xFFFFF
    hi = value >> 10
    lo = value & 0x3FF
    return [f"addi {rd}, x0, {hi}",
            f"addi {TEMP0}, x0, 10",
            f"sll {rd}, {rd}, {TEMP0}",
            f"addi {rd}, {rd}, {lo}",
            f"addi {TEMP0}, x0, 12",
            f"sll {rd}, {rd}, {TEMP0}"]


def _auipc(rd, imm20, label):
    # pc-relative: jal link trick to read the pc, then add the upper imm
    skip = label()
    lines = [f"jal {rd}, {skip}", f"{skip}:"]
    lines += _lui(TEMP1, imm20, label)
    # rd holds pc+4 of the jal == address of the lui sequence; correct to
    # the auipc's own pc by subtracting 4
    lines += [f"addi {rd}, {rd}, -4",
              f"add {rd}, {rd}, {TEMP1}"]
    return lines


# ----------------------------------------------------------------- shifts

def _slli(rd, rs1, shamt, label):
    return [f"addi {TEMP0}, x0, {shamt}",
            f"sll {rd}, {rs1}, {TEMP0}"]


def _srai(rd, rs1, shamt, label):
    return [f"addi {TEMP0}, x0, {shamt}",
            f"sra {rd}, {rs1}, {TEMP0}"]


def _srli_bad(rd, rs1, shamt, label):
    # wrong for negative inputs: arithmetic shift keeps the sign bits
    return [f"addi {TEMP0}, x0, {shamt}",
            f"sra {rd}, {rs1}, {TEMP0}"]


def _srli(rd, rs1, shamt, label):
    amount = int(str(shamt), 0) & 31
    if amount == 0:
        return [f"addi {rd}, {rs1}, 0"]
    lines = [f"addi {TEMP0}, x0, {amount}",
             f"sra {rd}, {rs1}, {TEMP0}",
             f"addi {TEMP0}, x0, -1",
             f"addi {TEMP1}, x0, {32 - amount}",
             f"sll {TEMP0}, {TEMP0}, {TEMP1}",     # -1 << (32-n)
             f"xori {TEMP0}, {TEMP0}, -1",         # low-(32-n)-bit mask
             f"and {rd}, {rd}, {TEMP0}"]
    return lines


def _srl(rd, rs1, rs2, label):
    """Logical right shift by register amount: sra + computed mask."""
    step = label()
    done = label()
    return [
        f"addi {TEMP1}, x0, 31",
        f"and {TEMP0}, {TEMP1}, {rs2}",        # amt = rs2 & 31
        f"blt x0, {TEMP0}, {step}",
        f"addi {rd}, {rs1}, 0",                # amt == 0: plain copy
        f"jal x0, {done}",
        f"{step}:",
        f"xori {TEMP1}, {TEMP0}, -1",
        f"addi {TEMP1}, {TEMP1}, 1",           # -amt
        f"addi {TEMP1}, {TEMP1}, 32",          # 32 - amt
        f"sra {rd}, {rs1}, {TEMP0}",           # arithmetic shift
        f"addi {TEMP0}, x0, -1",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # -1 << (32-amt)
        f"xori {TEMP0}, {TEMP0}, -1",          # low-bit mask
        f"and {rd}, {rd}, {TEMP0}",
        f"{done}:",
    ]


# ------------------------------------------------------------ comparisons

def _sltu(rd, rs1, rs2, label):
    done = label()
    return [f"addi {rd}, x0, 1",
            f"bltu {rs1}, {rs2}, {done}",
            f"addi {rd}, x0, 0",
            f"{done}:"]


def _slt(rd, rs1, rs2, label):
    done = label()
    return [f"addi {rd}, x0, 1",
            f"blt {rs1}, {rs2}, {done}",
            f"addi {rd}, x0, 0",
            f"{done}:"]


def _sltiu(rd, rs1, imm, label):
    return [f"addi {TEMP1}, x0, {imm}"] + _sltu(rd, rs1, TEMP1, label)


def _slti(rd, rs1, imm, label):
    return [f"addi {TEMP1}, x0, {imm}"] + _slt(rd, rs1, TEMP1, label)


# -------------------------------------------------------------- branches

def _beq_bad(rs1, rs2, target, label):
    # wrong polarity: jumps when operands differ
    return [f"blt {rs1}, {rs2}, {target}",
            f"blt {rs2}, {rs1}, {target}"]


def _beq(rs1, rs2, target, label):
    skip = label()
    return [f"blt {rs1}, {rs2}, {skip}",
            f"blt {rs2}, {rs1}, {skip}",
            f"jal x0, {target}",
            f"{skip}:"]


def _bne(rs1, rs2, target, label):
    return [f"blt {rs1}, {rs2}, {target}",
            f"blt {rs2}, {rs1}, {target}"]


def _bge(rs1, rs2, target, label):
    skip = label()
    return [f"blt {rs1}, {rs2}, {skip}",
            f"jal x0, {target}",
            f"{skip}:"]


def _bgeu(rs1, rs2, target, label):
    skip = label()
    return [f"bltu {rs1}, {rs2}, {skip}",
            f"jal x0, {target}",
            f"{skip}:"]


# ------------------------------------------------------------ memory ops

def _load_common(rd, offset, base, label, width, signed):
    """Sub-word load from the aligned word using shifts."""
    lines = [
        f"addi {TEMP0}, {base}, {offset}",      # effective address
        f"addi {TEMP1}, x0, -4",
        f"and {TEMP1}, {TEMP0}, {TEMP1}",       # aligned address
        f"lw {TEMP1}, 0({TEMP1})",              # aligned word
        # lane offset in bits: (addr & 3) * 8
        f"addi {rd}, x0, 3",
        f"and {rd}, {rd}, {TEMP0}",
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",                # (addr&3)*8
        # shift the lane to the top, then extend down
        f"addi {TEMP0}, x0, {32 - 8 * width}",
        f"xori {rd}, {rd}, -1",
        f"addi {rd}, {rd}, 1",                  # negate lane shift
        f"add {TEMP0}, {TEMP0}, {rd}",          # left = 32-8w-lane...
        f"sll {TEMP1}, {TEMP1}, {TEMP0}",
    ]
    return lines


def _lbu(rd, offset, base, label):
    big = label()
    return [
        f"addi {TEMP0}, {base}, {offset}",      # byte address
        f"addi {TEMP1}, x0, -4",
        f"and {TEMP1}, {TEMP0}, {TEMP1}",
        f"lw {TEMP1}, 0({TEMP1})",              # aligned word
        f"addi {rd}, x0, 3",
        f"and {rd}, {rd}, {TEMP0}",             # lane 0..3
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",                # lane*8
        # shift word right by lane*8 logically via loop-free trick:
        # left-shift by (24 - lane*8) then arithmetic-right by 24 would
        # sign-extend; for lbu shift left so byte is at [31:24], then
        # sra 24 and mask to 8 bits.
        f"xori {rd}, {rd}, -1",
        f"addi {rd}, {rd}, 1",                  # -(lane*8)
        f"addi {rd}, {rd}, 24",                 # 24 - lane*8
        f"sll {TEMP1}, {TEMP1}, {rd}",          # byte now at top
        f"addi {rd}, x0, 24",
        f"sra {TEMP1}, {TEMP1}, {rd}",          # sign-extended byte
        f"addi {rd}, x0, 255",
        f"and {rd}, {rd}, {TEMP1}",             # zero-extend to lbu
    ]


def _lb(rd, offset, base, label):
    lines = _lbu(rd, offset, base, label)
    # drop the final zero-extension mask: keep the sign extension
    return lines[:-2] + [f"addi {rd}, {TEMP1}, 0"]


def _lhu(rd, offset, base, label):
    return [
        f"addi {TEMP0}, {base}, {offset}",
        f"addi {TEMP1}, x0, -4",
        f"and {TEMP1}, {TEMP0}, {TEMP1}",
        f"lw {TEMP1}, 0({TEMP1})",
        f"addi {rd}, x0, 2",
        f"and {rd}, {rd}, {TEMP0}",             # halfword lane 0 or 2
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",
        f"add {rd}, {rd}, {rd}",                # lane*8: 0 or 16
        f"xori {rd}, {rd}, -1",
        f"addi {rd}, {rd}, 1",
        f"addi {rd}, {rd}, 16",                 # 16 - lane*8
        f"sll {TEMP1}, {TEMP1}, {rd}",          # half at top
        f"addi {rd}, x0, 16",
        f"sra {TEMP1}, {TEMP1}, {rd}",
        # zero-extend 16 bits: mask 0xFFFF = (1<<16)-1 built with shifts
        f"addi {rd}, x0, 1",
        f"addi {TEMP0}, x0, 16",
        f"sll {rd}, {rd}, {TEMP0}",
        f"addi {rd}, {rd}, -1",
        f"and {rd}, {rd}, {TEMP1}",
    ]


def _lh(rd, offset, base, label):
    lines = _lhu(rd, offset, base, label)
    return lines[:-5] + [f"addi {rd}, {TEMP1}, 0"]


def _sb(rs2, offset, base, label):
    """Read-modify-write byte store via lw/sw (stack red-zone stashes)."""
    return [
        f"sw {rs2}, -8(sp)",                   # value stash
        f"addi {TEMP0}, {base}, {offset}",     # byte address
        f"sw {TEMP0}, -16(sp)",
        f"addi {TEMP1}, x0, 3",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",      # lane
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",      # lane*8
        f"sw {TEMP1}, -20(sp)",
        f"addi {TEMP0}, x0, 255",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # byte mask at lane
        f"xori {TEMP0}, {TEMP0}, -1",          # clear mask
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP1}, -16(sp)",                # byte address
        f"addi {TEMP0}, x0, -4",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",      # aligned address
        f"sw {TEMP1}, -16(sp)",
        f"lw {TEMP0}, 0({TEMP1})",             # old word
        f"lw {TEMP1}, -24(sp)",                # clear mask
        f"and {TEMP0}, {TEMP0}, {TEMP1}",      # punched word
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP0}, -8(sp)",                 # value
        f"addi {TEMP1}, x0, 255",
        f"and {TEMP0}, {TEMP0}, {TEMP1}",      # value byte
        f"lw {TEMP1}, -20(sp)",                # lane*8
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # byte into lane
        f"lw {TEMP1}, -24(sp)",                # punched word
        f"add {TEMP0}, {TEMP0}, {TEMP1}",      # merged word
        f"lw {TEMP1}, -16(sp)",                # aligned address
        f"sw {TEMP0}, 0({TEMP1})",
    ]


def _sh(rs2, offset, base, label):
    """Read-modify-write halfword store via lw/sw."""
    return [
        f"sw {rs2}, -8(sp)",
        f"addi {TEMP0}, {base}, {offset}",
        f"sw {TEMP0}, -16(sp)",
        f"addi {TEMP1}, x0, 2",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",      # halfword lane (0 or 2)
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",      # lane*8: 0 or 16
        f"sw {TEMP1}, -20(sp)",
        f"addi {TEMP0}, x0, 1",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # not yet the mask
        f"addi {TEMP1}, x0, 16",
        f"addi {TEMP0}, x0, 1",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",
        f"addi {TEMP0}, {TEMP0}, -1",          # 0xFFFF
        f"lw {TEMP1}, -20(sp)",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # mask at lane
        f"xori {TEMP0}, {TEMP0}, -1",          # clear mask
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP1}, -16(sp)",
        f"addi {TEMP0}, x0, -4",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",
        f"sw {TEMP1}, -16(sp)",                # aligned address
        f"lw {TEMP0}, 0({TEMP1})",
        f"lw {TEMP1}, -24(sp)",
        f"and {TEMP0}, {TEMP0}, {TEMP1}",      # punched word
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP0}, -8(sp)",                 # value
        f"addi {TEMP1}, x0, 16",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",
        f"lw {TEMP1}, -20(sp)",
        f"sra {TEMP0}, {TEMP0}, x0",           # placeholder, fixed below
    ]


def _sh_v2(rs2, offset, base, label):
    """Correct halfword store candidate (v1 above garbles the value)."""
    return [
        f"sw {rs2}, -8(sp)",
        f"addi {TEMP0}, {base}, {offset}",
        f"sw {TEMP0}, -16(sp)",
        f"addi {TEMP1}, x0, 2",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",      # lane byte (0 or 2)
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",
        f"add {TEMP1}, {TEMP1}, {TEMP1}",      # lane*8
        f"sw {TEMP1}, -20(sp)",
        f"addi {TEMP0}, x0, 1",
        f"addi {TEMP1}, x0, 16",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",
        f"addi {TEMP0}, {TEMP0}, -1",          # 0xFFFF
        f"sw {TEMP0}, -28(sp)",                # halfword mask stash
        f"lw {TEMP1}, -20(sp)",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # mask at lane
        f"xori {TEMP0}, {TEMP0}, -1",          # clear mask
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP1}, -16(sp)",
        f"addi {TEMP0}, x0, -4",
        f"and {TEMP1}, {TEMP1}, {TEMP0}",
        f"sw {TEMP1}, -16(sp)",                # aligned address
        f"lw {TEMP0}, 0({TEMP1})",
        f"lw {TEMP1}, -24(sp)",
        f"and {TEMP0}, {TEMP0}, {TEMP1}",      # punched word
        f"sw {TEMP0}, -24(sp)",
        f"lw {TEMP0}, -8(sp)",                 # value
        f"lw {TEMP1}, -28(sp)",                # 0xFFFF
        f"and {TEMP0}, {TEMP0}, {TEMP1}",      # value halfword
        f"lw {TEMP1}, -20(sp)",
        f"sll {TEMP0}, {TEMP0}, {TEMP1}",      # into lane
        f"lw {TEMP1}, -24(sp)",
        f"add {TEMP0}, {TEMP0}, {TEMP1}",      # merged
        f"lw {TEMP1}, -16(sp)",
        f"sw {TEMP0}, 0({TEMP1})",
    ]


#: Candidate lists: first entries may be wrong (the verify loop filters).
CANDIDATES: dict[str, list[Template]] = {
    "sub": [_sub_bad, _sub],
    "or": [_or],
    "xor": [_xor],
    "andi": [_andi],
    "ori": [_ori],
    "lui": [_lui],
    "auipc": [_auipc],
    "slli": [_slli],
    "srai": [_srai],
    "srli": [_srli_bad, _srli],
    "srl": [_srl],
    "sltu": [_sltu],
    "slt": [_slt],
    "sltiu": [_sltiu],
    "slti": [_slti],
    "beq": [_beq_bad, _beq],
    "bne": [_bne],
    "bge": [_bge],
    "bgeu": [_bgeu],
    "lbu": [_lbu],
    "lb": [_lb],
    "lhu": [_lhu],
    "lh": [_lh],
    "sb": [_sb],
    "sh": [_sh, _sh_v2],
}
