"""Code retargeting for long-lasting extreme-edge applications (§5)."""

from .rewriter import AssemblyRewriter, RetargetResult, retarget_assembly
from .synthesizer import (
    MAX_ATTEMPTS,
    RetargetError,
    SynthesisReport,
    VerifiedMacro,
    synthesize_macro,
    synthesize_macros,
)
from .templates import MINIMAL_SUBSET

__all__ = [
    "AssemblyRewriter", "MAX_ATTEMPTS", "MINIMAL_SUBSET", "RetargetError",
    "RetargetResult", "SynthesisReport", "VerifiedMacro",
    "retarget_assembly", "synthesize_macro", "synthesize_macros",
]
