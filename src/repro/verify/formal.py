"""Formal-lite property verification of instruction hardware blocks —
the SymbiYosys/SVA analog of Figure 4, step 4.

Each block is checked against a set of assertions derived from the ISA
specification:

  * **semantic equivalence** — over a bounded operand lattice (the cross
    product of corner values), every declared output matches the spec; this
    is the software analog of bounded model checking a purely combinational
    property,
  * **interface invariants** — decode fields appear unmodified on the RF
    address ports, write strobes are one-lane-coherent, ``next_pc`` honours
    instruction alignment, and non-writing formats expose no write port.

Violations are collected (not raised) so a campaign over the library can
report everything at once, like an SBY run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.bits import to_u32
from ..isa.encoding import Instruction, encode
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, STORES
from ..isa.spec import SpecError, step
from ..rtl.ir import Module
from ..rtl.sim import RtlSim

#: Operand lattice for the bounded-exhaustive sweep (kept small: the sweep
#: is quadratic in lattice size for two-source instructions).
LATTICE = (0x0000_0000, 0x0000_0001, 0xFFFF_FFFF, 0x7FFF_FFFF,
           0x8000_0000, 0x5555_5555, 0x0000_001F, 0xFFFF_FFE0)

_IMM_LATTICE = {"default": (0, 1, -1, 2047, -2048),
                "shift": (0, 1, 31),
                "mem": (0, 4, -4, 2040),
                "branch": (8, -8, 4092, -4096),
                "jal": (8, -8, 1048572, -1048576),
                "upper": (0, 0x7FFFF000 - 0x8000_0000, 0x12345000)}


@dataclass
class FormalReport:
    mnemonic: str
    states_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def proven(self) -> bool:
        return self.states_checked > 0 and not self.violations


def _imm_space(mnemonic: str) -> tuple[int, ...]:
    d = BY_MNEMONIC[mnemonic]
    if d.is_shift_imm:
        return _IMM_LATTICE["shift"]
    if mnemonic in STORES or d.opcode == 0b0000011 or mnemonic == "jalr":
        return _IMM_LATTICE["mem"]
    if mnemonic in BRANCHES:
        return _IMM_LATTICE["branch"]
    if mnemonic == "jal":
        return _IMM_LATTICE["jal"]
    if d.fmt is Format.U:
        return tuple(v if v < 0x8000_0000 else v - 0x1_0000_0000
                     for v in (0, 0x7FFFF000, 0xFFFFF000))
    if d.fmt is Format.I:
        return _IMM_LATTICE["default"]
    return (0,)


def check_block(block: Module) -> FormalReport:
    """Bounded-exhaustive property check of one block against the spec."""
    mnemonic = str(block.meta.get("mnemonic", block.name))
    d = BY_MNEMONIC[mnemonic]
    report = FormalReport(mnemonic=mnemonic)
    sim = RtlSim(block)
    reads_rs1 = "rs1_data" in block.ports
    reads_rs2 = "rs2_data" in block.ports
    pc = 0x0000_1000

    rs1_space = LATTICE if reads_rs1 else (0,)
    rs2_space = LATTICE if reads_rs2 else (0,)
    if "dmem_rdata" in block.ports:
        mem_space = (0x1234_5678, 0x8000_00FF)
    elif "mepc" in block.ports:
        # The trap-return block's one data input; rides the ``mem`` slot.
        mem_space = (0x0000_0400, 0x7FFF_FFFC, 0xFFFF_FFFD)
    else:
        mem_space = (0,)

    for imm in _imm_space(mnemonic):
        for rs1_val in rs1_space:
            for rs2_val in rs2_space:
                for mem in mem_space:
                    _check_state(block, sim, d, mnemonic, pc, imm,
                                 rs1_val, rs2_val, mem, report)
    return report


def _check_state(block, sim, d, mnemonic, pc, imm, rs1_val, rs2_val, mem,
                 report) -> None:
    # Loads need an address whose aligned word we can model; pin rs1 for
    # memory operations to a valid base plus the lattice value's low bits.
    if mnemonic in STORES or d.opcode == 0b0000011:
        width = {"sb": 1, "sh": 2, "sw": 4, "lb": 1, "lbu": 1,
                 "lh": 2, "lhu": 2, "lw": 4}[mnemonic]
        rs1_val = 0x0001_0000 + (rs1_val % 4 // width) * width
    if mnemonic == "jalr":
        rs1_val = to_u32(0x0000_2000 + (rs1_val & 1))

    instr = Instruction(mnemonic, rd=5 if d.fmt in (Format.R, Format.I,
                                                    Format.U, Format.J)
                        else 0,
                        rs1=3, rs2=4, imm=imm)
    try:
        word = encode(instr, num_regs=16)
    except Exception:
        return

    def load(addr, width, signed):
        from ..isa.bits import sign_extend
        offset = addr & 0x3
        raw = (mem >> (8 * offset)) & ((1 << (8 * width)) - 1)
        return to_u32(sign_extend(raw, 8 * width)) if signed else raw

    try:
        expected = step(instr, pc, rs1_val, rs2_val, load,
                        csr=(lambda addr: mem) if mnemonic == "mret"
                        else None)
    except SpecError:
        return  # misaligned targets are outside the assertion envelope

    inputs = {"pc": pc, "insn": word}
    if "rs1_data" in block.ports:
        inputs["rs1_data"] = to_u32(rs1_val)
    if "rs2_data" in block.ports:
        inputs["rs2_data"] = to_u32(rs2_val)
    if "dmem_rdata" in block.ports:
        inputs["dmem_rdata"] = mem
    if "mepc" in block.ports:
        inputs["mepc"] = to_u32(mem)
    sim.set_inputs(**inputs)
    sim.eval_comb()
    report.states_checked += 1

    def violate(prop: str, detail: str) -> None:
        report.violations.append(
            f"{mnemonic}[{prop}] imm={imm} rs1={rs1_val:#x} "
            f"rs2={rs2_val:#x}: {detail}")

    # A1: next_pc matches the spec and stays word aligned.
    got_pc = sim.get("next_pc")
    if got_pc != expected.next_pc:
        violate("A1-next-pc", f"{got_pc:#x} != {expected.next_pc:#x}")
    if got_pc & 0x3:
        violate("A1-alignment", f"next_pc {got_pc:#x} misaligned")

    # A2: decode transparency on the register address ports.
    if "rs1_addr" in block.ports and sim.get("rs1_addr") != instr.rs1:
        violate("A2-rs1-addr", str(sim.get("rs1_addr")))
    if "rs2_addr" in block.ports and sim.get("rs2_addr") != instr.rs2:
        violate("A2-rs2-addr", str(sim.get("rs2_addr")))

    # A3: writeback value (when architecturally visible).
    if expected.rd is not None:
        if "rdest_data" not in block.ports:
            violate("A3-missing-port", "spec writes rd")
        elif sim.get("rdest_data") != expected.rd_data:
            violate("A3-rd-data",
                    f"{sim.get('rdest_data'):#x} != {expected.rd_data:#x}")

    # A4: store strobes are coherent with the effective address.
    if "dmem_wstrb" in block.ports:
        wstrb = sim.get("dmem_wstrb")
        if expected.mem_write is None:
            if wstrb:
                violate("A4-spurious-store", f"wstrb={wstrb:#06b}")
        else:
            if bin(wstrb).count("1") != expected.mem_write.width:
                violate("A4-strobe-width", f"wstrb={wstrb:#06b}")
            addr = sim.get("dmem_addr")
            if addr != expected.mem_write.addr:
                violate("A4-store-addr",
                        f"{addr:#x} != {expected.mem_write.addr:#x}")

    # A5: non-writing formats must not expose a write-enable.
    if d.fmt in (Format.B, Format.S) and "rdest_we" in block.ports:
        violate("A5-format", "branch/store block exposes rdest_we")


def check_library(blocks: list[Module]) -> dict[str, FormalReport]:
    """Run the formal campaign over a list of blocks."""
    return {str(b.meta.get("mnemonic", b.name)): check_block(b)
            for b in blocks}
