"""RISCOF-analog architectural compliance flow (§3.4.2).

RISCOF runs a suite of architectural test programs on the DUT, which dumps
a *signature* (a designated memory region of results) that is compared
against a reference model (Spike).  Here:

  * the DUT is the generated RISSP executed by the RTL evaluator,
  * the reference is the golden ISS,
  * the test programs are generated per instruction group: each applies the
    instruction to corner operands and stores every result to the signature
    region.

``run_compliance`` returns a report listing any signature divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..isa.assembler import assemble
from ..isa.bits import to_s32
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, LOADS, STORES
from ..isa.program import Program
from ..rtl.core_sim import RisspSim
from ..rtl.ir import Module
from ..sim.golden import GoldenSim

SIGNATURE_WORDS = 64

#: Operand pairs exercised by generated compliance tests.
_PAIRS = ((0, 0), (1, 2), (0xFFFFFFFF, 1), (0x7FFFFFFF, 1),
          (0x80000000, 0xFFFFFFFF), (0x55555555, 0xAAAAAAAA),
          (123456789, 987654321), (31, 3))


def _li(reg: str, value: int) -> str:
    return f"    li {reg}, {to_s32(value)}"


def compliance_program(mnemonic: str) -> str:
    """Generate an assembly compliance test for one instruction.

    The program computes a series of results with the instruction under
    test and stores each to the signature region; control instructions are
    tested through observable side effects (link values, taken/not-taken
    paths writing distinct markers).
    """
    d = BY_MNEMONIC[mnemonic]
    lines = [".data", "signature:", f"    .space {4 * SIGNATURE_WORDS}",
             "testdata:", "    .word 0x89ABCDEF, 0x01234567, "
             "0x80000001, 0xFF7F80FF",
             ".text", "main:", "    la a5, signature"]
    slot = 0

    def store_result(reg: str = "a0") -> None:
        nonlocal slot
        lines.append(f"    sw {reg}, {4 * slot}(a5)")
        slot += 1

    if d.fmt is Format.R:
        for a, b in _PAIRS:
            lines.append(_li("a1", a))
            lines.append(_li("a2", b))
            lines.append(f"    {mnemonic} a0, a1, a2")
            store_result()
    elif d.is_shift_imm:
        for a, _ in _PAIRS:
            for shamt in (0, 1, 15, 31):
                lines.append(_li("a1", a))
                lines.append(f"    {mnemonic} a0, a1, {shamt}")
                store_result()
    elif mnemonic in LOADS:
        lines.append("    la a1, testdata")
        width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mnemonic]
        for offset in range(0, 16, width):
            lines.append(f"    {mnemonic} a0, {offset}(a1)")
            store_result()
    elif mnemonic in STORES:
        width = {"sb": 1, "sh": 2, "sw": 4}[mnemonic]
        for index, (value, _) in enumerate(_PAIRS[:4]):
            lines.append(_li("a0", value))
            offset = 16 + index * 4
            for lane in range(0, 4, width):
                lines.append(f"    {mnemonic} a0, {offset + lane}(a5)")
        slot = SIGNATURE_WORDS  # stores fill the signature directly
    elif mnemonic in BRANCHES:
        for index, (a, b) in enumerate(_PAIRS):
            taken = f"tk{index}"
            done = f"dn{index}"
            lines.append(_li("a1", a))
            lines.append(_li("a2", b))
            lines.append(f"    {mnemonic} a1, a2, {taken}")
            lines.append(_li("a0", 0x0BAD))
            lines.append(f"    j {done}")
            lines.append(f"{taken}:")
            lines.append(_li("a0", 0x0600D))
            lines.append(f"{done}:")
            store_result()
    elif mnemonic == "jal":
        lines += ["    jal a0, jt0", "jt0:"]
        store_result()
        lines += ["    jal a1, jt1", "jt1:"]
        store_result("a1")
    elif mnemonic == "jalr":
        lines += ["    la a1, jr0", "    jalr a0, a1, 0", "jr0:"]
        store_result()
        lines += ["    la a1, jr1", "    jalr a2, a1, 5", "jr1:",
                  "    nop", "    nop"]
        store_result("a2")
    elif d.fmt is Format.I:
        for a, _ in _PAIRS:
            for imm in (0, 1, -1, 2047, -2048):
                lines.append(_li("a1", a))
                lines.append(f"    {mnemonic} a0, a1, {imm}")
                store_result()
    elif d.fmt is Format.U:
        for field20 in (0, 1, 0x80000, 0xFFFFF, 0x12345):
            lines.append(f"    {mnemonic} a0, {field20}")
            store_result()
    else:
        lines.append(f"    {mnemonic}" if mnemonic == "fence" else "    nop")
        lines.append(_li("a0", 0x1))
        store_result()
    lines.append("    ret")
    return "\n".join(lines) + "\n"


@dataclass
class ComplianceReport:
    mnemonics: list[str]
    mismatches: list[str] = field(default_factory=list)
    tests_run: int = 0

    @property
    def compliant(self) -> bool:
        return self.tests_run > 0 and not self.mismatches


@lru_cache(maxsize=None)
def _compliance_binary(mnemonic: str) -> Program:
    """Assemble the compliance test for ``mnemonic`` once per process.

    The generated source is deterministic and no simulator mutates a
    :class:`Program` (memories copy the image at construction), so the
    linked binary is shared across every core that tests ``mnemonic``.
    """
    return assemble(compliance_program(mnemonic))


@lru_cache(maxsize=None)
def _reference_signature(mnemonic: str) -> bytes:
    """Golden-reference signature for one compliance program, memoized.

    The reference depends only on the (deterministic) program, never on
    the core under test, so the golden run happens once per process — the
    same sharing the compliance binaries already had.  Before this, the
    flow re-simulated the reference for every RISSP it verified.
    """
    program = _compliance_binary(mnemonic)
    ref = GoldenSim(program)
    ref.run(max_instructions=100_000)
    return _signature(ref.memory, program)


def _signature(memory, program: Program) -> bytes:
    base = program.symbol("signature")
    return memory.read_blob(base, 4 * SIGNATURE_WORDS)


def run_compliance(core: Module,
                   mnemonics: list[str] | None = None) -> ComplianceReport:
    """Run generated compliance tests for every instruction in the subset
    that has a self-contained test (needs lw/sw/jal/addi/lui in the subset
    for scaffolding — always true for real applications)."""
    subset = list(core.meta.get("mnemonics", []))
    targets = mnemonics or subset
    # Instructions the generated test programs themselves rely on (li/la/
    # j/ret expansions plus the signature stores).  Note ``beq`` is NOT
    # here: no generated program branches as scaffolding, and all-C
    # firmware subsets (PR 5) legitimately arrive without it.
    scaffolding = {"lw", "sw", "jal", "jalr", "addi", "lui"}
    report = ComplianceReport(mnemonics=list(targets))
    for mnemonic in targets:
        # System instructions have no self-contained signature test: the
        # trap path is covered by cosimulation and the RVFI checker.
        if mnemonic in ("ecall", "ebreak", "mret", "wfi") \
                or mnemonic.startswith("csrr"):
            continue
        needed = scaffolding | {mnemonic}
        if not needed.issubset(set(subset) | {"ecall"}):
            continue
        program = _compliance_binary(mnemonic)
        dut = RisspSim(core, program)
        dut.run(max_instructions=100_000)
        report.tests_run += 1
        dut_sig = _signature(dut.memory, program)
        ref_sig = _reference_signature(mnemonic)
        if dut_sig != ref_sig:
            for index in range(SIGNATURE_WORDS):
                a = dut_sig[4 * index:4 * index + 4]
                b = ref_sig[4 * index:4 * index + 4]
                if a != b:
                    report.mismatches.append(
                        f"{mnemonic}: signature[{index}] dut="
                        f"{int.from_bytes(a, 'little'):#x} ref="
                        f"{int.from_bytes(b, 'little'):#x}")
                    break
    return report
