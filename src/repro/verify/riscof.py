"""RISCOF-analog architectural compliance flow (§3.4.2).

RISCOF runs a suite of architectural test programs on the DUT, which dumps
a *signature* (a designated memory region of results) that is compared
against a reference model (Spike).  Here:

  * the DUT is the generated RISSP executed by the RTL evaluator,
  * the reference is the golden ISS,
  * the test programs are generated per instruction group: each applies the
    instruction to corner operands and stores every result to the signature
    region.

``run_compliance`` returns a report listing any signature divergence.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache

from ..isa.assembler import assemble
from ..isa.bits import to_s32
from ..obs import telemetry as _obs
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, LOADS, STORES
from ..isa.program import Program
from ..rtl.core_sim import RisspSim
from ..rtl.ir import Module
from ..sim.golden import GoldenSim

SIGNATURE_WORDS = 64

#: Operand pairs exercised by generated compliance tests.
_PAIRS = ((0, 0), (1, 2), (0xFFFFFFFF, 1), (0x7FFFFFFF, 1),
          (0x80000000, 0xFFFFFFFF), (0x55555555, 0xAAAAAAAA),
          (123456789, 987654321), (31, 3))


def _li(reg: str, value: int) -> str:
    return f"    li {reg}, {to_s32(value)}"


def compliance_program(mnemonic: str) -> str:
    """Generate an assembly compliance test for one instruction.

    The program computes a series of results with the instruction under
    test and stores each to the signature region; control instructions are
    tested through observable side effects (link values, taken/not-taken
    paths writing distinct markers).
    """
    d = BY_MNEMONIC[mnemonic]
    lines = [".data", "signature:", f"    .space {4 * SIGNATURE_WORDS}",
             "testdata:", "    .word 0x89ABCDEF, 0x01234567, "
             "0x80000001, 0xFF7F80FF",
             ".text", "main:", "    la a5, signature"]
    slot = 0

    def store_result(reg: str = "a0") -> None:
        nonlocal slot
        lines.append(f"    sw {reg}, {4 * slot}(a5)")
        slot += 1

    if d.fmt is Format.R:
        for a, b in _PAIRS:
            lines.append(_li("a1", a))
            lines.append(_li("a2", b))
            lines.append(f"    {mnemonic} a0, a1, a2")
            store_result()
    elif d.is_shift_imm:
        for a, _ in _PAIRS:
            for shamt in (0, 1, 15, 31):
                lines.append(_li("a1", a))
                lines.append(f"    {mnemonic} a0, a1, {shamt}")
                store_result()
    elif mnemonic in LOADS:
        lines.append("    la a1, testdata")
        width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mnemonic]
        for offset in range(0, 16, width):
            lines.append(f"    {mnemonic} a0, {offset}(a1)")
            store_result()
    elif mnemonic in STORES:
        width = {"sb": 1, "sh": 2, "sw": 4}[mnemonic]
        for index, (value, _) in enumerate(_PAIRS[:4]):
            lines.append(_li("a0", value))
            offset = 16 + index * 4
            for lane in range(0, 4, width):
                lines.append(f"    {mnemonic} a0, {offset + lane}(a5)")
        slot = SIGNATURE_WORDS  # stores fill the signature directly
    elif mnemonic in BRANCHES:
        for index, (a, b) in enumerate(_PAIRS):
            taken = f"tk{index}"
            done = f"dn{index}"
            lines.append(_li("a1", a))
            lines.append(_li("a2", b))
            lines.append(f"    {mnemonic} a1, a2, {taken}")
            lines.append(_li("a0", 0x0BAD))
            lines.append(f"    j {done}")
            lines.append(f"{taken}:")
            lines.append(_li("a0", 0x0600D))
            lines.append(f"{done}:")
            store_result()
    elif mnemonic == "jal":
        lines += ["    jal a0, jt0", "jt0:"]
        store_result()
        lines += ["    jal a1, jt1", "jt1:"]
        store_result("a1")
    elif mnemonic == "jalr":
        lines += ["    la a1, jr0", "    jalr a0, a1, 0", "jr0:"]
        store_result()
        lines += ["    la a1, jr1", "    jalr a2, a1, 5", "jr1:",
                  "    nop", "    nop"]
        store_result("a2")
    elif d.fmt is Format.I:
        for a, _ in _PAIRS:
            for imm in (0, 1, -1, 2047, -2048):
                lines.append(_li("a1", a))
                lines.append(f"    {mnemonic} a0, a1, {imm}")
                store_result()
    elif d.fmt is Format.U:
        for field20 in (0, 1, 0x80000, 0xFFFFF, 0x12345):
            lines.append(f"    {mnemonic} a0, {field20}")
            store_result()
    else:
        lines.append(f"    {mnemonic}" if mnemonic == "fence" else "    nop")
        lines.append(_li("a0", 0x1))
        store_result()
    lines.append("    ret")
    return "\n".join(lines) + "\n"


@dataclass
class ComplianceReport:
    mnemonics: list[str]
    mismatches: list[str] = field(default_factory=list)
    tests_run: int = 0

    @property
    def compliant(self) -> bool:
        return self.tests_run > 0 and not self.mismatches


@lru_cache(maxsize=None)
def _compliance_binary(mnemonic: str) -> Program:
    """Assemble the compliance test for ``mnemonic`` once per process.

    The generated source is deterministic and no simulator mutates a
    :class:`Program` (memories copy the image at construction), so the
    linked binary is shared across every core that tests ``mnemonic``.
    """
    return assemble(compliance_program(mnemonic))


def _signature_cache_dir() -> str | None:
    """Shared on-disk signature cache root: ``$REPRO_CACHE_DIR``, or
    disabled when unset (the in-process memo below always applies)."""
    return os.environ.get("REPRO_CACHE_DIR") or None


def _program_digest(program: Program) -> str:
    """Content digest of a linked image — the disk-cache key component
    that makes a stale entry impossible: any change to the generated
    compliance program (or the assembler) changes the key."""
    blob = hashlib.sha256()
    blob.update(program.text_bytes())
    blob.update(bytes(program.data_bytes))
    blob.update(repr((program.text_base, program.data_base,
                      program.entry)).encode())
    return blob.hexdigest()[:16]


def _cached_signature_path(mnemonic: str,
                           cache_dir: str | None) -> pathlib.Path | None:
    if cache_dir is None:
        return None
    digest = _program_digest(_compliance_binary(mnemonic))
    return pathlib.Path(cache_dir) / f"riscof-sig-{mnemonic}-{digest}.bin"


def _reference_signature(mnemonic: str) -> bytes:
    """Golden-reference signature for one compliance program, memoized.

    The reference depends only on the (deterministic) program, never on
    the core under test, so the golden run happens once per process — the
    same sharing the compliance binaries already had.  The in-process
    memo is keyed by ``(mnemonic, resolved cache dir)``, so changing
    ``$REPRO_CACHE_DIR`` mid-process takes effect on the next call
    instead of silently reusing the old cache decision.

    With ``$REPRO_CACHE_DIR`` set the signature is additionally shared
    *across* processes, which is what makes a sharded compliance campaign
    cheap: the cache key is ``(mnemonic, program content digest)`` — two
    workers can never interleave entries for different programs under one
    key — and a worker that finds the entry skips the golden run
    entirely.  Writes are atomic (temp file in the same directory +
    ``os.replace``), so a reader sees either nothing or one complete
    signature, never a torn write; racing writers both produce the same
    bytes and the last rename wins.  A short or missing entry is treated
    as absent and recomputed.

    Telemetry (when a :mod:`repro.obs` session is active) counts every
    lookup here and classifies the resolution tier: an lru memo hit is
    detected from the memo's miss count not moving, a disk hit or full
    golden recompute is counted inside the memo body.
    """
    active = _obs._ACTIVE
    if active is None:
        return _reference_signature_memo(mnemonic, _signature_cache_dir())
    active.counters["riscof.sig_lookup"] += 1
    misses_before = _reference_signature_memo.cache_info().misses
    signature = _reference_signature_memo(mnemonic, _signature_cache_dir())
    if _reference_signature_memo.cache_info().misses == misses_before:
        active.counters["riscof.sig_memo_hit"] += 1
    return signature


@lru_cache(maxsize=None)
def _reference_signature_memo(mnemonic: str,
                              cache_dir: str | None) -> bytes:
    expected = 4 * SIGNATURE_WORDS
    path = _cached_signature_path(mnemonic, cache_dir)
    if path is not None:
        try:
            cached = path.read_bytes()
        except OSError:
            cached = b""
        if len(cached) == expected:
            if _obs._ACTIVE is not None:
                _obs._ACTIVE.counters["riscof.sig_disk_hit"] += 1
            return cached
    if _obs._ACTIVE is not None:
        _obs._ACTIVE.counters["riscof.sig_recompute"] += 1
    program = _compliance_binary(mnemonic)
    ref = GoldenSim(program)
    ref.run(max_instructions=100_000)
    signature = _signature(ref.memory, program)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".")
        try:
            try:
                os.write(fd, signature)
            finally:
                os.close(fd)
            os.replace(tmp_name, path)
        finally:
            # A failed write or replace must not leak the temp file into
            # the shared cache dir (after a successful replace the name
            # is gone and this is a no-op).
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    return signature


def _signature(memory, program: Program) -> bytes:
    base = program.symbol("signature")
    return memory.read_blob(base, 4 * SIGNATURE_WORDS)


def compliance_targets(subset: list[str],
                       mnemonics: list[str] | None = None) -> list[str]:
    """The mnemonics :func:`run_compliance` will actually test — a pure
    function of the subset, so a farm front-end can shard the exact same
    target list the serial loop walks.

    Filters out system instructions (no self-contained signature test:
    the trap path is covered by cosimulation and the RVFI checker) and
    targets whose test scaffolding the subset cannot execute.  The
    scaffolding set is what the generated programs rely on (li/la/j/ret
    expansions plus the signature stores); note ``beq`` is NOT in it: no
    generated program branches as scaffolding, and all-C firmware subsets
    (PR 5) legitimately arrive without it.
    """
    scaffolding = {"lw", "sw", "jal", "jalr", "addi", "lui"}
    available = set(subset) | {"ecall"}
    targets = []
    for mnemonic in (mnemonics or subset):
        if mnemonic in ("ecall", "ebreak", "mret", "wfi") \
                or mnemonic.startswith("csrr"):
            continue
        if not (scaffolding | {mnemonic}).issubset(available):
            continue
        targets.append(mnemonic)
    return targets


def check_compliance_mnemonic(core: Module, mnemonic: str) -> list[str]:
    """Signature-compare one compliance program on one core.

    Returns the mismatch strings for this mnemonic (at most one — the
    first diverging signature word, same convention as always).  This is
    the unit of work a compliance shard executes; it touches no state
    beyond the per-process/ per-``$REPRO_CACHE_DIR`` reference memos.
    """
    program = _compliance_binary(mnemonic)
    dut = RisspSim(core, program)
    dut.run(max_instructions=100_000)
    dut_sig = _signature(dut.memory, program)
    ref_sig = _reference_signature(mnemonic)
    if dut_sig == ref_sig:
        return []
    for index in range(SIGNATURE_WORDS):
        a = dut_sig[4 * index:4 * index + 4]
        b = ref_sig[4 * index:4 * index + 4]
        if a != b:
            return [f"{mnemonic}: signature[{index}] dut="
                    f"{int.from_bytes(a, 'little'):#x} ref="
                    f"{int.from_bytes(b, 'little'):#x}"]
    return []  # pragma: no cover - unequal blobs differ at some word


def run_compliance(core: Module,
                   mnemonics: list[str] | None = None,
                   workers: int = 1,
                   shards: int = 0) -> ComplianceReport:
    """Run generated compliance tests for every instruction in the subset
    that has a self-contained test (needs lw/sw/jal/addi/lui in the subset
    for scaffolding — always true for real applications).

    ``workers > 1`` shards the target list across a process pool via the
    simulation farm (``shards`` task groups; 0 = one per worker); the
    merged report is bit-identical to the serial walk — same target
    order, same mismatch strings — because shard results are merged in
    target order, not completion order.  Requires a core rebuildable from
    its subset (every stitched RISSP qualifies).
    """
    subset = list(core.meta.get("mnemonics", []))
    targets = compliance_targets(subset, mnemonics)
    report = ComplianceReport(mnemonics=list(mnemonics or subset))
    if workers > 1 and len(targets) > 1:
        from ..farm.campaigns import sharded_compliance_mismatches
        mismatches = sharded_compliance_mismatches(
            core, targets, workers=workers, shards=shards)
        report.tests_run = len(targets)
        report.mismatches.extend(mismatches)
        return report
    for mnemonic in targets:
        report.tests_run += 1
        report.mismatches.extend(check_compliance_mnemonic(core, mnemonic))
    return report
