"""RVFI trace checking — the riscv-formal analog (§3.4.2).

riscv-formal attaches to a core through the RISC-V Formal Interface and
checks, per retired instruction: correct execution against the ISA spec,
register-file consistency, and PC chaining.  The same three families of
checks run here over :class:`repro.sim.tracing.RvfiRecord` streams emitted
by either simulator:

  * **insn checks** — re-execute each retired instruction with the spec and
    compare ``pc_wdata``, ``rd_addr``/``rd_wdata`` and store effects,
  * **reg checks** — maintain a shadow register file from retired writes
    and require every ``rs*_rdata`` to match it,
  * **pc checks** — ``pc_rdata`` of instruction *n+1* must equal
    ``pc_wdata`` of instruction *n*, and ``order`` must be gapless.

Machine-mode extension (PR 3, multi-source in PR 5): the checker follows
the riscv-formal ``rvfi_trap``/``rvfi_intr`` conventions — a trapping
instruction retires with no architectural side effects and ``pc_wdata``
pointing at the handler; the first instruction of an interrupt handler
carries ``intr``, holding the *arbitrated exception code* of the source
that won (7 = machine timer, 16 = sensor data-ready), and is exempt from
the pc chain.  CSR state is verified through a *shadow CSR file* that
mirrors the shadow register file: values it has observed (via Zicsr
writes or trap entries) are checked exactly, values it has not yet
observed are learned from the trace — so a corrupted ``mepc``/``mtvec``/
Zicsr data path is caught as soon as the state flows back through an
``mret``, a trap entry or a CSR read.  The Zicsr read-only rule is
pinned too: a row where a write to a read-only CSR (``mip``) retired
without trapping is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..isa.bits import sign_extend, to_u32
from ..isa.csrs import (
    CAUSE_BREAKPOINT,
    CAUSE_ECALL_M,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_INTERRUPT,
    INTERRUPT_SOURCES,
    MCAUSE,
    MEPC,
    MIP,
    MSTATUS,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MTVAL,
    MTVEC,
)
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import CSR_OPS
from ..isa.spec import SpecError, step
from ..sim.csr import CsrError, READ_ONLY_CSRS, warl_mask
from ..sim.tracing import RvfiRecord

#: Exception codes an interrupt row's ``intr`` column may legally carry
#: (the arbitrated cause, see :data:`repro.isa.csrs.INTERRUPT_SOURCES`).
_INTR_CODES = frozenset(cause & 0x3F for _, cause in INTERRUPT_SOURCES)

_CSR_MNEMONICS = set(CSR_OPS)
_SYSTEM_MNEMONICS = _CSR_MNEMONICS | {"mret", "wfi"}


@dataclass
class RvfiCheckReport:
    records_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.records_checked > 0 and not self.errors


def _trap_cause(insn: int) -> int:
    """Cause code a trap row's instruction word implies."""
    try:
        mnemonic = decode(insn).mnemonic
    except DecodeError:
        return CAUSE_ILLEGAL_INSTRUCTION
    if mnemonic == "ecall":
        return CAUSE_ECALL_M
    if mnemonic == "ebreak":
        return CAUSE_BREAKPOINT
    return CAUSE_ILLEGAL_INSTRUCTION


class _ShadowCsrs:
    """Learn-then-check model of the M-mode CSR state (mip excluded —
    MTIP is wired from the timer and not reconstructible from a trace)."""

    def __init__(self):
        self.values: dict[int, int] = {}

    def known(self, addr: int) -> bool:
        return addr in self.values

    def write(self, addr: int, value: int) -> None:
        if addr == MIP:
            return
        mask = warl_mask(addr)
        old = self.values.get(addr, 0)
        self.values[addr] = (old & ~mask) | (to_u32(value) & mask)

    def stack_mie(self) -> None:
        if MSTATUS in self.values:
            mie = self.values[MSTATUS] & MSTATUS_MIE
            self.values[MSTATUS] = (self.values[MSTATUS]
                                    & ~(MSTATUS_MIE | MSTATUS_MPIE)) \
                | (MSTATUS_MPIE if mie else 0)

    def unstack_mie(self) -> None:
        if MSTATUS in self.values:
            mpie = self.values[MSTATUS] & MSTATUS_MPIE
            self.values[MSTATUS] = (self.values[MSTATUS] & ~MSTATUS_MIE) \
                | MSTATUS_MPIE | (MSTATUS_MIE if mpie else 0)

    def trap_entry(self, epc: int, cause: int, tval: int) -> None:
        self.stack_mie()
        self.values[MEPC] = to_u32(epc) & ~0x3
        self.values[MCAUSE] = to_u32(cause)
        self.values[MTVAL] = to_u32(tval)


def check_trace(trace: Sequence[RvfiRecord],
                num_regs: int = 16,
                initial_regs: dict[int, int] | None = None,
                max_errors: int = 25) -> RvfiCheckReport:
    """Validate a retirement trace against the executable spec.

    ``trace`` is any sequence of :class:`RvfiRecord` — a plain list or the
    columnar :class:`~repro.sim.tracing.RvfiTrace`, which materializes
    records lazily while iterating here.
    """
    report = RvfiCheckReport()
    shadow: dict[int, int] = dict(initial_regs or {})
    csrs = _ShadowCsrs()
    prev_pc_wdata: int | None = None
    prev_order: int | None = None

    for record in trace:
        if len(report.errors) >= max_errors:
            break
        report.records_checked += 1
        where = f"order={record.order} pc={record.pc_rdata:#x}"

        # --- pc checks -------------------------------------------------
        if prev_order is not None and record.order != prev_order + 1:
            report.errors.append(f"{where}: order gap after {prev_order}")
        prev_order = record.order
        if record.intr:
            # Interrupt entry redirected the pc between retirements; the
            # handler address replaces the chain, and the interrupted pc
            # became mepc.  The intr column carries the arbitrated
            # exception code (mcause low bits) of the source that won.
            if record.intr not in _INTR_CODES:
                report.errors.append(
                    f"{where}: intr carries unknown interrupt code "
                    f"{record.intr}")
            if csrs.known(MTVEC) \
                    and record.pc_rdata != csrs.values[MTVEC] & ~0x3:
                report.errors.append(
                    f"{where}: interrupt entered at {record.pc_rdata:#x}, "
                    f"mtvec is {csrs.values[MTVEC]:#x}")
            if prev_pc_wdata is not None:
                # Full trap-entry model: stacks MIE and resets MTVAL too.
                csrs.trap_entry(prev_pc_wdata,
                                CAUSE_INTERRUPT | record.intr, 0)
        elif prev_pc_wdata is not None and record.pc_rdata != prev_pc_wdata:
            report.errors.append(
                f"{where}: pc_rdata != previous pc_wdata "
                f"{prev_pc_wdata:#x}")
        prev_pc_wdata = record.pc_wdata

        # --- trap rows ---------------------------------------------------
        if record.trap:
            if csrs.known(MTVEC) \
                    and record.pc_wdata != csrs.values[MTVEC] & ~0x3:
                report.errors.append(
                    f"{where}: trap redirected to {record.pc_wdata:#x}, "
                    f"mtvec is {csrs.values[MTVEC]:#x}")
            if record.rd_addr or record.mem_wmask:
                report.errors.append(
                    f"{where}: trapping instruction has side effects")
            cause = _trap_cause(record.insn)
            csrs.trap_entry(record.pc_rdata, cause,
                            record.insn
                            if cause == CAUSE_ILLEGAL_INSTRUCTION else 0)
            continue

        # --- reg checks --------------------------------------------------
        try:
            instr = decode(record.insn)
        except DecodeError as exc:
            report.errors.append(f"{where}: undecodable insn: {exc}")
            continue
        d = instr.definition
        uses_rs1 = d.fmt.value in ("R", "I", "S", "B") \
            or (d.fmt.value == "CSR" and not d.csr_uimm)
        uses_rs2 = d.fmt.value in ("R", "S", "B")
        if uses_rs1 and record.rs1_addr in shadow:
            want = shadow[record.rs1_addr] if record.rs1_addr else 0
            if record.rs1_rdata != want:
                report.errors.append(
                    f"{where}: rs1 x{record.rs1_addr} read "
                    f"{record.rs1_rdata:#x}, shadow {want:#x}")
        if uses_rs2 and record.rs2_addr in shadow:
            want = shadow[record.rs2_addr] if record.rs2_addr else 0
            if record.rs2_rdata != want:
                report.errors.append(
                    f"{where}: rs2 x{record.rs2_addr} read "
                    f"{record.rs2_rdata:#x}, shadow {want:#x}")

        # --- insn checks -------------------------------------------------
        def load(addr: int, width: int, signed: bool) -> int:
            # Model the load from the record's own memory view.
            offset = (addr - (record.mem_addr & ~0x3)) & 0x3 \
                if record.mem_rmask else addr & 0x3
            raw = record.mem_rdata
            if width == 4:
                value = raw
            else:
                value = (raw >> (8 * offset)) & ((1 << (8 * width)) - 1) \
                    if record.mem_rmask == 0b1111 else raw
            if signed and width < 4:
                value = to_u32(sign_extend(value, 8 * width))
            return value

        csr_known = True
        is_system = instr.mnemonic in _SYSTEM_MNEMONICS
        if is_system:
            if instr.mnemonic in _CSR_MNEMONICS:
                source_addr = instr.imm & 0xFFF
            else:
                source_addr = MEPC
            csr_known = csrs.known(source_addr)

        def read_csr(addr: int) -> int:
            # Shadow-known values are checked exactly; unobserved ones are
            # learned from the record itself (rd for Zicsr reads, the
            # redirect target for mret) and verified self-consistently.
            if csrs.known(addr):
                return csrs.values[addr]
            if instr.mnemonic in _CSR_MNEMONICS and record.rd_addr:
                return record.rd_wdata
            if instr.mnemonic == "mret":
                return record.pc_wdata
            return 0

        try:
            expected = step(instr, record.pc_rdata, record.rs1_rdata,
                            record.rs2_rdata,
                            load if record.mem_rmask else None,
                            read_csr if is_system else None)
        except (SpecError, CsrError) as exc:
            report.errors.append(f"{where}: spec refusal: {exc}")
            continue
        if record.pc_wdata != expected.next_pc:
            report.errors.append(
                f"{where}: pc_wdata {record.pc_wdata:#x} != spec "
                f"{expected.next_pc:#x}")
        want_rd = expected.rd or 0
        if record.rd_addr != want_rd:
            report.errors.append(
                f"{where}: rd_addr {record.rd_addr} != spec {want_rd}")
        elif want_rd and csr_known and record.rd_wdata != expected.rd_data:
            report.errors.append(
                f"{where}: rd_wdata {record.rd_wdata:#x} != spec "
                f"{expected.rd_data:#x}")
        if expected.mem_write is not None:
            mw = expected.mem_write
            if not record.mem_wmask:
                report.errors.append(f"{where}: missing store effect")
            else:
                if record.mem_addr != mw.addr:
                    report.errors.append(
                        f"{where}: store addr {record.mem_addr:#x} != "
                        f"{mw.addr:#x}")
                if record.mem_wdata != mw.data:
                    report.errors.append(
                        f"{where}: store data {record.mem_wdata:#x} != "
                        f"{mw.data:#x}")
        elif record.mem_wmask:
            report.errors.append(f"{where}: spurious store effect")

        if expected.csr_write is not None:
            write_addr, write_value = expected.csr_write
            if write_addr in READ_ONLY_CSRS:
                # Zicsr rule the PR 5 audit pinned: a *write* to a
                # read-only CSR must raise illegal instruction — it can
                # never appear as a plain retirement.  (Pure-read forms
                # produce no csr_write and are exempt.)
                report.errors.append(
                    f"{where}: {instr.mnemonic} wrote read-only CSR "
                    f"{write_addr:#x} without trapping")
            # The written value is only trustworthy when the old value was
            # observable: shadow-known, read out through rd, or irrelevant
            # (csrrw/csrrwi overwrite unconditionally).  A blind
            # read-modify-write (csrrs/csrrc with rd=x0 on an unobserved
            # CSR) must *invalidate* the shadow, not learn a guess.
            old_observable = csr_known or record.rd_addr \
                or instr.mnemonic in ("csrrw", "csrrwi")
            try:
                if old_observable:
                    csrs.write(write_addr, write_value)
                else:
                    csrs.values.pop(write_addr, None)
            except CsrError:
                pass    # real sims trap these; a trace row cannot carry one
        if expected.is_mret:
            csrs.unstack_mie()

        if want_rd:
            shadow[want_rd] = record.rd_wdata if not csr_known \
                else expected.rd_data

    return report
