"""RVFI trace checking — the riscv-formal analog (§3.4.2).

riscv-formal attaches to a core through the RISC-V Formal Interface and
checks, per retired instruction: correct execution against the ISA spec,
register-file consistency, and PC chaining.  The same three families of
checks run here over :class:`repro.sim.tracing.RvfiRecord` streams emitted
by either simulator:

  * **insn checks** — re-execute each retired instruction with the spec and
    compare ``pc_wdata``, ``rd_addr``/``rd_wdata`` and store effects,
  * **reg checks** — maintain a shadow register file from retired writes
    and require every ``rs*_rdata`` to match it,
  * **pc checks** — ``pc_rdata`` of instruction *n+1* must equal
    ``pc_wdata`` of instruction *n*, and ``order`` must be gapless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..isa.bits import sign_extend, to_u32
from ..isa.encoding import DecodeError, decode
from ..isa.spec import SpecError, step
from ..sim.tracing import RvfiRecord


@dataclass
class RvfiCheckReport:
    records_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.records_checked > 0 and not self.errors


def check_trace(trace: Sequence[RvfiRecord],
                num_regs: int = 16,
                initial_regs: dict[int, int] | None = None,
                max_errors: int = 25) -> RvfiCheckReport:
    """Validate a retirement trace against the executable spec.

    ``trace`` is any sequence of :class:`RvfiRecord` — a plain list or the
    columnar :class:`~repro.sim.tracing.RvfiTrace`, which materializes
    records lazily while iterating here.
    """
    report = RvfiCheckReport()
    shadow: dict[int, int] = dict(initial_regs or {})
    prev_pc_wdata: int | None = None
    prev_order: int | None = None

    for record in trace:
        if len(report.errors) >= max_errors:
            break
        report.records_checked += 1
        where = f"order={record.order} pc={record.pc_rdata:#x}"

        # --- pc checks -------------------------------------------------
        if prev_order is not None and record.order != prev_order + 1:
            report.errors.append(f"{where}: order gap after {prev_order}")
        prev_order = record.order
        if prev_pc_wdata is not None and record.pc_rdata != prev_pc_wdata:
            report.errors.append(
                f"{where}: pc_rdata != previous pc_wdata "
                f"{prev_pc_wdata:#x}")
        prev_pc_wdata = record.pc_wdata

        # --- reg checks --------------------------------------------------
        try:
            instr = decode(record.insn)
        except DecodeError as exc:
            report.errors.append(f"{where}: undecodable insn: {exc}")
            continue
        d = instr.definition
        uses_rs1 = d.fmt.value in ("R", "I", "S", "B")
        uses_rs2 = d.fmt.value in ("R", "S", "B")
        if uses_rs1 and record.rs1_addr in shadow:
            want = shadow[record.rs1_addr] if record.rs1_addr else 0
            if record.rs1_rdata != want:
                report.errors.append(
                    f"{where}: rs1 x{record.rs1_addr} read "
                    f"{record.rs1_rdata:#x}, shadow {want:#x}")
        if uses_rs2 and record.rs2_addr in shadow:
            want = shadow[record.rs2_addr] if record.rs2_addr else 0
            if record.rs2_rdata != want:
                report.errors.append(
                    f"{where}: rs2 x{record.rs2_addr} read "
                    f"{record.rs2_rdata:#x}, shadow {want:#x}")

        # --- insn checks -------------------------------------------------
        def load(addr: int, width: int, signed: bool) -> int:
            # Model the load from the record's own memory view.
            offset = (addr - (record.mem_addr & ~0x3)) & 0x3 \
                if record.mem_rmask else addr & 0x3
            raw = record.mem_rdata
            if width == 4:
                value = raw
            else:
                value = (raw >> (8 * offset)) & ((1 << (8 * width)) - 1) \
                    if record.mem_rmask == 0b1111 else raw
            if signed and width < 4:
                value = to_u32(sign_extend(value, 8 * width))
            return value

        try:
            expected = step(instr, record.pc_rdata, record.rs1_rdata,
                            record.rs2_rdata,
                            load if record.mem_rmask else None)
        except SpecError as exc:
            report.errors.append(f"{where}: spec refusal: {exc}")
            continue
        if record.pc_wdata != expected.next_pc:
            report.errors.append(
                f"{where}: pc_wdata {record.pc_wdata:#x} != spec "
                f"{expected.next_pc:#x}")
        want_rd = expected.rd or 0
        if record.rd_addr != want_rd:
            report.errors.append(
                f"{where}: rd_addr {record.rd_addr} != spec {want_rd}")
        elif want_rd and record.rd_wdata != expected.rd_data:
            report.errors.append(
                f"{where}: rd_wdata {record.rd_wdata:#x} != spec "
                f"{expected.rd_data:#x}")
        if expected.mem_write is not None:
            mw = expected.mem_write
            if not record.mem_wmask:
                report.errors.append(f"{where}: missing store effect")
            else:
                if record.mem_addr != mw.addr:
                    report.errors.append(
                        f"{where}: store addr {record.mem_addr:#x} != "
                        f"{mw.addr:#x}")
                if record.mem_wdata != mw.data:
                    report.errors.append(
                        f"{where}: store data {record.mem_wdata:#x} != "
                        f"{mw.data:#x}")
        elif record.mem_wmask:
            report.errors.append(f"{where}: spurious store effect")

        if want_rd:
            shadow[want_rd] = expected.rd_data

    return report
