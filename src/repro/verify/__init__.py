"""Verification substrate: arch tests, testbenches, mutation, formal,
RISCOF-style compliance, RVFI trace checking."""

from .arch_tests import CORNER_VALUES, TestVector, all_vectors, vectors_for
from .formal import FormalReport, check_block, check_library
from .fuzz import (
    FUZZ_BASE_SEED,
    derive_seed,
    fuzz_chunk_seeds,
    random_program,
    random_trap_program,
)
from .mutation import (
    Mutation,
    MutationReport,
    cosim_verdict,
    enumerate_mutations,
    mutant_verdict_row,
    rtl_mutant_kill_matrix,
    run_mutation_campaign,
)
from .riscof import (
    ComplianceReport,
    SIGNATURE_WORDS,
    check_compliance_mnemonic,
    compliance_program,
    compliance_targets,
    run_compliance,
)
from .rvfi import RvfiCheckReport, check_trace
from .testbench import TestbenchResult, block_verifier, run_testbench

__all__ = [
    "CORNER_VALUES", "ComplianceReport", "FUZZ_BASE_SEED", "FormalReport",
    "Mutation", "MutationReport", "RvfiCheckReport", "SIGNATURE_WORDS",
    "TestVector", "TestbenchResult", "all_vectors", "block_verifier",
    "check_block", "check_compliance_mnemonic", "check_library",
    "check_trace", "compliance_program", "compliance_targets",
    "cosim_verdict", "derive_seed", "enumerate_mutations",
    "fuzz_chunk_seeds", "mutant_verdict_row", "random_program",
    "random_trap_program", "rtl_mutant_kill_matrix", "run_compliance",
    "run_mutation_campaign", "run_testbench", "vectors_for",
]
