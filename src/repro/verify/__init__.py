"""Verification substrate: arch tests, testbenches, mutation, formal,
RISCOF-style compliance, RVFI trace checking."""

from .arch_tests import CORNER_VALUES, TestVector, all_vectors, vectors_for
from .formal import FormalReport, check_block, check_library
from .mutation import (
    Mutation,
    MutationReport,
    enumerate_mutations,
    run_mutation_campaign,
)
from .riscof import ComplianceReport, SIGNATURE_WORDS, compliance_program, run_compliance
from .rvfi import RvfiCheckReport, check_trace
from .testbench import TestbenchResult, block_verifier, run_testbench

__all__ = [
    "CORNER_VALUES", "ComplianceReport", "FormalReport", "Mutation",
    "MutationReport", "RvfiCheckReport", "SIGNATURE_WORDS", "TestVector",
    "TestbenchResult", "all_vectors", "block_verifier", "check_block",
    "check_library", "check_trace", "compliance_program",
    "enumerate_mutations", "run_compliance", "run_mutation_campaign",
    "run_testbench", "vectors_for",
]
