"""Custom per-block testbenches (Figure 4, step 2).

A block testbench drives the instruction hardware block's RTL with the
architecture test vectors and compares every declared output against the
executable spec.  The function :func:`block_verifier` has the signature the
pre-verified library expects, so ``library.verify(block_verifier)`` runs the
whole Step-0 functional-verification campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.spec import Effects
from ..rtl.ir import Module
from ..rtl.sim import RtlSim
from .arch_tests import TestVector, vectors_for

_WSTRB_TO_WIDTH = {0b0001: 1, 0b0010: 1, 0b0100: 1, 0b1000: 1,
                   0b0011: 2, 0b1100: 2, 0b1111: 4}


@dataclass
class TestbenchResult:
    mnemonic: str
    vectors_run: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.vectors_run > 0 and not self.failures


def _drive(sim: RtlSim, block: Module, vector: TestVector) -> None:
    inputs = {"pc": vector.pc, "insn": vector.insn_word}
    if "rs1_data" in block.ports:
        inputs["rs1_data"] = vector.rs1_val
    if "rs2_data" in block.ports:
        inputs["rs2_data"] = vector.rs2_val
    if "dmem_rdata" in block.ports:
        inputs["dmem_rdata"] = vector.mem_word
    if "mepc" in block.ports:
        # Trap-return block: the mepc CSR register value rides the
        # vector's mem_word slot (see arch_tests.vectors_for).
        inputs["mepc"] = vector.mem_word
    sim.set_inputs(**inputs)
    sim.eval_comb()


def _check(sim: RtlSim, block: Module, vector: TestVector,
           result: TestbenchResult) -> None:
    expected: Effects = vector.expected

    def fail(message: str) -> None:
        result.failures.append(
            f"{vector.instr.mnemonic} pc={vector.pc:#x} "
            f"rs1={vector.rs1_val:#x} rs2={vector.rs2_val:#x} "
            f"imm={vector.instr.imm}: {message}")

    got_pc = sim.get("next_pc")
    if got_pc != expected.next_pc:
        fail(f"next_pc {got_pc:#x} != {expected.next_pc:#x}")

    # Register-file address decode is part of the Table 2 port contract.
    if "rs1_addr" in block.ports and sim.get("rs1_addr") != vector.instr.rs1:
        fail(f"rs1_addr {sim.get('rs1_addr')} != {vector.instr.rs1}")
    if "rs2_addr" in block.ports and sim.get("rs2_addr") != vector.instr.rs2:
        fail(f"rs2_addr {sim.get('rs2_addr')} != {vector.instr.rs2}")
    if "dmem_re" in block.ports:
        if not sim.get("dmem_re"):
            fail("load block must assert dmem_re")
        want_addr = (vector.rs1_val + vector.instr.imm) & 0xFFFF_FFFF
        if sim.get("dmem_addr") != want_addr:
            fail(f"dmem_addr {sim.get('dmem_addr'):#x} != {want_addr:#x}")

    if "rdest_we" in block.ports:
        # Blocks always assert we; the x0-canonicalisation happens in the
        # register file, so compare against the *raw* rd semantics.
        raw_rd = vector.instr.rd
        got_addr = sim.get("rdest_addr")
        if got_addr != raw_rd:
            fail(f"rdest_addr {got_addr} != {raw_rd}")
        if expected.rd is not None or raw_rd == 0:
            want = expected.rd_data
            if want is None:
                # write to x0: value is architecturally ignored; recompute
                # what a non-x0 destination would have received.
                from .arch_tests import _expected
                from ..isa.encoding import Instruction
                shadow = Instruction(vector.instr.mnemonic, rd=5,
                                     rs1=vector.instr.rs1,
                                     rs2=vector.instr.rs2,
                                     imm=vector.instr.imm)
                want = _expected(shadow, vector.pc, vector.rs1_val,
                                 vector.rs2_val, vector.mem_word).rd_data
            got_data = sim.get("rdest_data")
            if got_data != want:
                fail(f"rdest_data {got_data:#x} != {want:#x}")
    elif expected.rd is not None:
        fail("spec writes a register but block has no rdest port")

    if expected.mem_write is not None:
        mw = expected.mem_write
        if "dmem_wstrb" not in block.ports:
            fail("spec stores but block has no store port")
            return
        wstrb = sim.get("dmem_wstrb")
        width = _WSTRB_TO_WIDTH.get(wstrb)
        if width != mw.width:
            fail(f"wstrb {wstrb:#06b} width {width} != {mw.width}")
            return
        addr = sim.get("dmem_addr")
        if addr != mw.addr:
            fail(f"dmem_addr {addr:#x} != {mw.addr:#x}")
        offset = (wstrb & -wstrb).bit_length() - 1
        if (addr & 0x3) != offset:
            fail(f"wstrb offset {offset} inconsistent with addr {addr:#x}")
        wdata = sim.get("dmem_wdata")
        lane = (wdata >> (8 * offset)) & ((1 << (8 * mw.width)) - 1)
        if lane != mw.data:
            fail(f"store lane data {lane:#x} != {mw.data:#x}")
    elif "dmem_wstrb" in block.ports and sim.get("dmem_wstrb"):
        fail("unexpected store strobe")

    if "halt" in block.ports:
        if not sim.get("halt") and expected.halt:
            fail("halt not asserted")
    elif expected.halt:
        fail("spec halts but block has no halt port")


def run_testbench(block: Module, vectors: list[TestVector] | None = None
                  ) -> TestbenchResult:
    """Run the block testbench; returns a pass/fail report."""
    mnemonic = str(block.meta.get("mnemonic", block.name))
    if vectors is None:
        vectors = vectors_for(mnemonic)
    result = TestbenchResult(mnemonic=mnemonic)
    sim = RtlSim(block)
    for vector in vectors:
        _drive(sim, block, vector)
        _check(sim, block, vector, result)
        result.vectors_run += 1
    return result


def block_verifier(block: Module) -> tuple[bool, dict[str, object]]:
    """Library-compatible verifier: functional testbench over SIG vectors."""
    result = run_testbench(block)
    return result.passed, {
        "vectors": result.vectors_run,
        "failures": list(result.failures[:10]),
    }
