"""Randomized differential-fuzz program generators and chunk seeding.

PR 4 introduced the randomized program generators inside
``tests/test_rtl_fused_diff.py``; PR 6 promotes them here so the
multi-process simulation farm can regenerate the *same* program from a
seed on the worker side of a process boundary (a seed is a far smaller
task description than a linked binary, and it doubles as provenance:
every farm failure reports its ``(task-id, seed)`` pair).

Chunk seeding contract: a campaign is parameterized by one *base seed*
and a chunk count; chunk ``i`` fuzzes :func:`derive_seed`\\ ``(base, i)``.
The derivation is a fixed integer mix (splitmix64 — no Python ``hash``,
which is salted per process), so a sharded run across any number of
workers reproduces the serial run bit-for-bit, and re-running any single
chunk in isolation reproduces exactly that chunk.
"""

from __future__ import annotations

import random

_MASK64 = (1 << 64) - 1

#: Default base seed of the differential fuzz campaigns (tests and the
#: ``repro`` CLI share it, so a CLI repro of a test failure fuzzes the
#: very same programs).
FUZZ_BASE_SEED = 0x5EED_C0DE


def derive_seed(base_seed: int, index: int) -> int:
    """Per-chunk seed ``index`` of the campaign seeded ``base_seed``.

    splitmix64 of ``base_seed + index`` — deterministic across processes
    and Python versions, well-mixed so neighbouring chunks share no
    low-bit structure.
    """
    z = (base_seed + index * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def fuzz_chunk_seeds(base_seed: int = FUZZ_BASE_SEED,
                     count: int = 8) -> tuple[int, ...]:
    """The per-chunk seed stream of one campaign, in chunk order."""
    return tuple(derive_seed(base_seed, index) for index in range(count))


def seeded_rng(seed: int) -> random.Random:
    """A ``random.Random`` whose stream is a pure function of ``seed``.

    The one sanctioned way generators (fuzz programs, scenario
    descriptions) draw randomness: always from an explicit splitmix64-
    derived seed, never from global ``random`` state — so any artifact
    regenerates bit-identically from its reported seed on any worker.
    """
    return random.Random(seed)


# ------------------------------------------------------------ generators

_OPS_RRR = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
            "slt", "sltu"]
_OPS_RRI = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_OPS_SHI = ["slli", "srli", "srai"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = {"sw": 4, "sh": 2, "sb": 1}
_REGS = ["t0", "t1", "t2", "a2", "a3", "a4", "a5", "s0", "s1"]


def random_program(seed: int) -> str:
    """A random halting program: ALU soup + memory round-trips + a
    counted loop, accumulating a checksum into a0."""
    rng = random.Random(seed)
    lines = [".text", "main:", "    li a0, 0", "    li a1, 0",
             "    li gp, 0x8000"]
    for reg in _REGS:
        lines.append(f"    li {reg}, {rng.randrange(-2048, 2048)}")
    lines.append(f"    li tp, {rng.randrange(3, 7)}")   # loop counter
    lines.append("loop:")
    for index in range(rng.randrange(10, 25)):
        roll = rng.randrange(10)
        rd = rng.choice(_REGS)
        rs1 = rng.choice(_REGS)
        rs2 = rng.choice(_REGS)
        if roll < 4:
            lines.append(f"    {rng.choice(_OPS_RRR)} {rd}, {rs1}, {rs2}")
        elif roll < 6:
            lines.append(f"    {rng.choice(_OPS_RRI)} {rd}, {rs1}, "
                         f"{rng.randrange(-2048, 2048)}")
        elif roll < 7:
            lines.append(f"    {rng.choice(_OPS_SHI)} {rd}, {rs1}, "
                         f"{rng.randrange(32)}")
        elif roll < 8:
            offset = 4 * rng.randrange(8)
            mnemonic = rng.choice(list(_STORES))
            lines.append(f"    {mnemonic} {rs1}, {offset}(gp)")
        else:
            offset = 4 * rng.randrange(8)
            lines.append(f"    {rng.choice(_LOADS)} {rd}, {offset}(gp)")
        lines.append(f"    add a0, a0, {rd}")
        if roll == 9 and index % 3 == 0:
            lines.append(f"    beq {rs1}, {rs2}, skip{seed}_{index}")
            lines.append("    addi a0, a0, 1")
            lines.append(f"skip{seed}_{index}:")
    lines += ["    addi tp, tp, -1", "    bne tp, zero, loop", "    ret"]
    return "\n".join(lines) + "\n"


def random_trap_program(seed: int) -> str:
    """Random compute burst wrapped in trap plumbing: install a handler,
    bounce through ecall a few times, read CSRs back, then halt."""
    rng = random.Random(seed)
    body = []
    for _ in range(rng.randrange(4, 10)):
        body.append(f"    {rng.choice(_OPS_RRI)} "
                    f"{rng.choice(_REGS)}, {rng.choice(_REGS)}, "
                    f"{rng.randrange(-512, 512)}")
    bounces = rng.randrange(2, 5)
    return "\n".join([
        ".text", "main:",
        "    la t0, handler",
        "    csrw mtvec, t0",
        "    li a0, 0",
        f"    li tp, {bounces}",
        "again:"] + body + [
        "    ecall",                      # hardware trap entry
        "    csrr a2, mepc",
        "    add a0, a0, a2",
        "    csrr a3, mcause",
        "    add a0, a0, a3",
        "    addi tp, tp, -1",
        "    bne tp, zero, again",
        "    csrw mtvec, x0",             # restore halt convention
        "    ret",
        "handler:",
        "    csrr a4, mepc",
        "    addi a4, a4, 4",
        "    csrw mepc, a4",
        "    addi a0, a0, 100",
        "    mret",
    ]) + "\n"
