"""Per-instruction architecture test vectors (RISC-V Arch Test SIG analog).

The paper extracts the per-instruction test cases from the RISC-V
Foundation Architecture Test Suite and replays them through custom
testbenches (Figure 4, step 2).  This module generates the same class of
directed vectors — operand corner values, walking patterns, boundary
immediates — with expected results computed from the *independent*
executable spec (:mod:`repro.isa.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.bits import to_u32
from ..isa.encoding import Instruction, encode
from ..isa.instructions import BRANCHES, BY_MNEMONIC, Format, LOADS, STORES
from ..isa.spec import Effects, step

#: Corner operand values exercised for every data input (SIG-style).
CORNER_VALUES = (
    0x0000_0000, 0x0000_0001, 0x0000_0002, 0xFFFF_FFFF, 0xFFFF_FFFE,
    0x7FFF_FFFF, 0x8000_0000, 0x8000_0001, 0x5555_5555, 0xAAAA_AAAA,
    0x0000_FFFF, 0xFFFF_0000, 0x0000_0010, 0x8000_0000 >> 3,
)

#: Immediate corners for 12-bit signed formats.
IMM12_CORNERS = (0, 1, -1, 2, -2, 16, -16, 2047, -2048, 1365, -1366)

#: Shift amounts for the shift group.
SHAMT_CORNERS = (0, 1, 4, 15, 16, 30, 31)

#: 20-bit upper-immediate corners (already shifted into bits 31:12).
IMM20_CORNERS = (0x0000_0000, 0x0000_1000, 0x7FFFF000, 0x80000000,
                 0xFFFFF000, 0x12345000)

_TEST_PC = 0x0000_0400
_MEM_BASE = 0x0001_0000


@dataclass(frozen=True)
class TestVector:
    """One directed test case for one instruction."""

    instr: Instruction
    insn_word: int
    pc: int
    rs1_val: int
    rs2_val: int
    mem_word: int          # aligned word returned by dmem for loads
    expected: Effects


def _lcg(seed: int):
    """Deterministic pseudo-random 32-bit stream (no global random state)."""
    state = seed & 0xFFFF_FFFF
    while True:
        state = (1103515245 * state + 12345) & 0xFFFF_FFFF
        yield state


def _expected(instr: Instruction, pc: int, rs1: int, rs2: int,
              mem_word: int) -> Effects:
    def load(addr: int, width: int, signed: bool) -> int:
        from ..isa.bits import sign_extend
        offset = addr & 0x3
        raw = (mem_word >> (8 * offset)) & ((1 << (8 * width)) - 1)
        if signed:
            return to_u32(sign_extend(raw, 8 * width))
        return raw

    # mret's only data input is the mepc CSR register; vectors carry the
    # driven value in ``mem_word`` (see the mret branch of vectors_for).
    return step(instr, pc, rs1, rs2, load, csr=lambda addr: mem_word)


def vectors_for(mnemonic: str, extra_random: int = 32) -> list[TestVector]:
    """Directed + pseudo-random vectors for one instruction."""
    d = BY_MNEMONIC[mnemonic]
    rng = _lcg(0xC0FFEE ^ hash(mnemonic) & 0xFFFF)
    out: list[TestVector] = []

    def emit(rd: int, rs1: int, rs2: int, imm: int,
             rs1_val: int, rs2_val: int, mem_word: int = 0,
             pc: int = _TEST_PC) -> None:
        instr = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        word = encode(instr, num_regs=16)
        expected = _expected(instr, pc, rs1_val, rs2_val, mem_word)
        out.append(TestVector(instr, word, pc, to_u32(rs1_val),
                              to_u32(rs2_val), to_u32(mem_word), expected))

    def random_val() -> int:
        return next(rng)

    if d.fmt is Format.R:
        for a in CORNER_VALUES:
            for b in (0, 1, 0xFFFF_FFFF, 0x8000_0000, 31, 32, a):
                emit(rd=5, rs1=3, rs2=4, imm=0, rs1_val=a, rs2_val=b)
        emit(rd=0, rs1=3, rs2=4, imm=0, rs1_val=7, rs2_val=9)   # x0 sink
        emit(rd=5, rs1=6, rs2=6, imm=0, rs1_val=13, rs2_val=13)  # rs1 == rs2
        for _ in range(extra_random):
            emit(rd=7, rs1=2, rs2=9, imm=0,
                 rs1_val=random_val(), rs2_val=random_val())
    elif d.is_shift_imm:
        for a in CORNER_VALUES:
            for shamt in SHAMT_CORNERS:
                emit(rd=5, rs1=3, rs2=0, imm=shamt, rs1_val=a, rs2_val=0)
    elif d.fmt is Format.I and mnemonic in LOADS:
        width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mnemonic]
        for mem in (0x0089_AB7F, 0x8000_0001, 0xFF7F_80FF, 0x1234_5678):
            for offset in range(0, 4, width):
                emit(rd=5, rs1=3, rs2=0, imm=offset,
                     rs1_val=_MEM_BASE, rs2_val=0, mem_word=mem)
            for imm in (-4 * width, 4 * width, 0):
                emit(rd=5, rs1=3, rs2=0, imm=imm,
                     rs1_val=_MEM_BASE + 64, rs2_val=0, mem_word=mem)
    elif mnemonic in STORES:
        width = {"sb": 1, "sh": 2, "sw": 4}[mnemonic]
        for val in CORNER_VALUES:
            for offset in range(0, 4, width):
                emit(rd=0, rs1=3, rs2=4, imm=offset,
                     rs1_val=_MEM_BASE, rs2_val=val)
    elif mnemonic == "jalr":
        # Targets must be 32-bit aligned after the architectural bit-0
        # clear; the odd-base case checks that clear explicitly.
        for base in (_MEM_BASE, 0x0000_0404, 0x0000_2000):
            for imm in (0, 4, -4, 2044, -2048):
                emit(rd=1, rs1=3, rs2=0, imm=imm, rs1_val=base, rs2_val=0)
        emit(rd=1, rs1=3, rs2=0, imm=3, rs1_val=0x2001, rs2_val=0)
        emit(rd=0, rs1=3, rs2=0, imm=0, rs1_val=0x2000, rs2_val=0)
    elif d.fmt is Format.I:
        for a in CORNER_VALUES:
            for imm in IMM12_CORNERS:
                emit(rd=5, rs1=3, rs2=0, imm=imm, rs1_val=a, rs2_val=0)
        for _ in range(extra_random):
            emit(rd=5, rs1=3, rs2=0, imm=next(rng) % 4095 - 2048,
                 rs1_val=random_val(), rs2_val=0)
    elif mnemonic in BRANCHES:
        pairs = [(a, b) for a in (0, 1, 0xFFFF_FFFF, 0x7FFF_FFFF,
                                  0x8000_0000, 5)
                 for b in (0, 1, 0xFFFF_FFFF, 0x7FFF_FFFF, 0x8000_0000, 5)]
        for a, b in pairs:
            for imm in (8, -8, 4092, -4096):
                emit(rd=0, rs1=3, rs2=4, imm=imm, rs1_val=a, rs2_val=b)
    elif d.fmt is Format.U:
        for imm in IMM20_CORNERS:
            from ..isa.bits import sign_extend
            emit(rd=5, rs1=0, rs2=0, imm=sign_extend(imm, 32),
                 rs1_val=0, rs2_val=0)
            emit(rd=5, rs1=0, rs2=0, imm=sign_extend(imm, 32),
                 rs1_val=0, rs2_val=0, pc=0x0000_0FFC)
    elif mnemonic == "jal":
        for imm in (8, -8, 1048572, -1048576, 4):
            emit(rd=1, rs1=0, rs2=0, imm=imm, rs1_val=0, rs2_val=0)
        emit(rd=0, rs1=0, rs2=0, imm=16, rs1_val=0, rs2_val=0)
    elif mnemonic == "mret":
        # Trap return: the mepc CSR register is the block's one data
        # input, carried in the vector's mem_word slot.
        for target in (0, 0x400, 0x7FFC, 0xFFFF_FFFC, 0x0001_2344):
            emit(rd=0, rs1=0, rs2=0, imm=0, rs1_val=0, rs2_val=0,
                 mem_word=target)
    else:  # fence / ecall / ebreak (+ harness-emulated csr*/wfi)
        emit(rd=0, rs1=0, rs2=0, imm=0, rs1_val=0, rs2_val=0)
    return out


def all_vectors() -> dict[str, list[TestVector]]:
    """Vectors for every instruction in the catalog."""
    return {d.mnemonic: vectors_for(d.mnemonic)
            for d in BY_MNEMONIC.values()}
