"""Mutation coverage of block testbenches — the MCY (mutation cover with
Yosys) analog of Figure 4, step 3.

MCY's question is *"can this testbench actually catch bugs?"*: it mutates
the design, filters out mutations that provably cannot change behaviour,
and requires the testbench to fail on the rest.  We do the same at gate
level: the block is lowered to its netlist, single-gate mutations are
applied (gate-type flips, input swaps, stuck-at faults), mutations that no
probe vector can distinguish are classed *equivalent* (our stand-in for
MCY's formal filter), and every distinguishable mutant must be killed by
the architecture-test vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.ir import Binary, Const, Expr, Module, Mux, Not, Op
from ..synth.lower import LoweredDesign, lower_module
from ..synth.netlist import Gate, GateType, Netlist
from ..synth.netsim import NetSim
from .arch_tests import TestVector, vectors_for

#: Gate-type substitutions applied as mutations.
_TYPE_FLIPS = {
    GateType.AND2: (GateType.OR2, GateType.XOR2),
    GateType.OR2: (GateType.AND2, GateType.XOR2),
    GateType.XOR2: (GateType.OR2, GateType.AND2),
    GateType.NOT: (),
}


@dataclass(frozen=True)
class Mutation:
    """A single-gate fault: replace ``node``'s gate with ``replacement``."""

    node: int
    replacement: Gate
    description: str


@dataclass
class MutationReport:
    mnemonic: str
    total: int = 0
    killed: int = 0
    equivalent: int = 0
    survivors: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        effective = self.total - self.equivalent
        return self.killed / effective if effective else 1.0


def enumerate_mutations(netlist: Netlist, limit: int = 120) -> list[Mutation]:
    """Deterministically pick up to ``limit`` single-gate mutations."""
    candidates: list[Mutation] = []
    for node in sorted(netlist.gates):
        gate = netlist.gates[node]
        if gate.kind in (GateType.CONST0, GateType.CONST1, GateType.INPUT,
                         GateType.DFF):
            continue
        for new_kind in _TYPE_FLIPS.get(gate.kind, ()):
            candidates.append(Mutation(
                node, Gate(new_kind, gate.inputs),
                f"node {node}: {gate.kind.value} -> {new_kind.value}"))
        if gate.kind is GateType.MUX2:
            sel, a, b = gate.inputs
            candidates.append(Mutation(
                node, Gate(GateType.MUX2, (sel, b, a)),
                f"node {node}: mux arm swap"))
        candidates.append(Mutation(node, Gate(GateType.CONST0, ()),
                                   f"node {node}: stuck-at-0"))
        candidates.append(Mutation(node, Gate(GateType.CONST1, ()),
                                   f"node {node}: stuck-at-1"))
    if len(candidates) <= limit:
        return candidates
    stride = len(candidates) / limit
    return [candidates[int(i * stride)] for i in range(limit)]


# --------------------------------------------------------------------------
# RTL-level mutations
#
# The gate-level campaign above asks whether the *block testbenches* catch
# faults.  The RTL-level set below asks the same of the whole-program
# verification flows (cosimulation, compliance) now that they ride the
# compiled evaluator backend: a fast path that silently stopped propagating
# faults would show up here as a surviving mutant.

#: Word-operator substitutions applied as RTL mutations.  Every pair keeps
#: the expression width unchanged, so mutants still pass Module.check().
_RTL_OP_FLIPS = {
    Op.ADD: Op.SUB, Op.SUB: Op.ADD,
    Op.AND: Op.OR, Op.OR: Op.XOR, Op.XOR: Op.AND,
    Op.EQ: Op.NE, Op.NE: Op.EQ,
    Op.ULT: Op.UGE, Op.UGE: Op.ULT,
    Op.SLT: Op.SGE, Op.SGE: Op.SLT,
    Op.SHL: Op.LSHR, Op.LSHR: Op.ASHR, Op.ASHR: Op.LSHR,
}


@dataclass(frozen=True)
class RtlMutation:
    """A single-site fault in one assign: drive ``signal`` with ``mutated``."""

    signal: str
    mutated: Expr
    description: str


def _expr_mutants(expr: Expr):
    """Yield (mutated_subtree, description) for every supported site."""
    if isinstance(expr, Binary):
        flip = _RTL_OP_FLIPS.get(expr.op)
        if flip is not None:
            yield (Binary(flip, expr.a, expr.b),
                   f"{expr.op.value}->{flip.value}")
        for mutated, description in _expr_mutants(expr.a):
            yield Binary(expr.op, mutated, expr.b), description
        for mutated, description in _expr_mutants(expr.b):
            yield Binary(expr.op, expr.a, mutated), description
    elif isinstance(expr, Mux):
        yield Mux(expr.sel, expr.b, expr.a), "mux arm swap"
        yield Mux(Not(expr.sel), expr.a, expr.b), "mux select inverted"
        for mutated, description in _expr_mutants(expr.a):
            yield Mux(expr.sel, mutated, expr.b), description
        for mutated, description in _expr_mutants(expr.b):
            yield Mux(expr.sel, expr.a, mutated), description
    elif isinstance(expr, Not):
        yield expr.a, "inverter dropped"


def enumerate_rtl_mutations(module: Module, limit: int = 24,
                            signals: list[str] | None = None
                            ) -> list[RtlMutation]:
    """Deterministically pick up to ``limit`` single-site RTL mutations.

    ``signals`` restricts mutation to the named assigns (e.g. the
    architecturally observable datapath); by default every assign is a
    candidate.  Mutants preserve widths and cannot introduce combinational
    loops, so they always build into a runnable :class:`RtlSim`.
    """
    targets = signals if signals is not None else sorted(module.assigns)
    candidates: list[RtlMutation] = []
    for name in targets:
        expr = module.assigns[name]
        candidates.append(RtlMutation(
            name, Const(0, expr.width), f"{name}: stuck-at-0"))
        candidates.append(RtlMutation(
            name, Const((1 << expr.width) - 1, expr.width),
            f"{name}: stuck-at-1"))
        for site, (mutated, description) in enumerate(_expr_mutants(expr)):
            candidates.append(RtlMutation(
                name, mutated, f"{name}[site {site}]: {description}"))
    if len(candidates) <= limit:
        return candidates
    stride = len(candidates) / limit
    return [candidates[int(i * stride)] for i in range(limit)]


def cosim_verdict(core: Module, program, backend: str | None = None,
                  max_instructions: int = 2_000,
                  soc: "object | None" = None) -> str | None:
    """Cosimulation outcome of one core as a comparable verdict.

    ``None`` means the lock-step run matched the golden reference through
    the halting instruction; any string is a kill — either the first
    diverging RVFI field (``"mismatch:<field>"``) or a simulator refusal
    (``"refused:<ExceptionName>"``).  Used to assert that every evaluator
    backend reaches the *same* verdict on the same mutant, and by the
    simulation farm as the comparable (picklable) result of one cosim
    task.  ``soc`` attaches a :class:`~repro.soc.SocSpec` platform, as in
    :func:`~repro.rtl.core_sim.cosimulate`.
    """
    from ..rtl.core_sim import cosimulate
    from ..sim.decoded import SimulationError
    from ..sim.memory import MemoryError_

    try:
        mismatch = cosimulate(core, program,
                              max_instructions=max_instructions,
                              backend=backend, soc=soc)
    except (SimulationError, MemoryError_) as exc:
        return f"refused:{type(exc).__name__}"
    if mismatch is None:
        return None
    return f"mismatch:{mismatch.field}"


def mutant_verdict_row(core: Module, program, index: int, limit: int,
                       backends, max_instructions: int = 2_000
                       ) -> tuple[str, dict[str, str | None]]:
    """One kill-matrix row: mutant ``index`` of the deterministic
    enumeration, judged under every backend.

    The mutant is addressed by *position* in
    :func:`enumerate_rtl_mutations`\\ ``(core, limit)`` — a pure function
    of the core's structure — so a farm worker that rebuilt the core from
    its subset description computes exactly the row the serial loop
    would.  Returns ``(description, {backend: verdict})``.
    """
    mutation = enumerate_rtl_mutations(core, limit=limit)[index]
    mutant = apply_rtl_mutation(core, mutation)
    return mutation.description, {
        backend: cosim_verdict(mutant, program, backend, max_instructions)
        for backend in backends}


def rtl_mutant_kill_matrix(core: Module, program, backends,
                           limit: int = 24,
                           max_instructions: int = 2_000,
                           workers: int = 1
                           ) -> dict[str, dict[str, str | None]]:
    """Verdict of every enumerated RTL mutant under every backend.

    Returns ``{mutant description: {backend: verdict}}`` over the same
    deterministic mutant set :func:`enumerate_rtl_mutations` hands the
    mutation tests, so a fast path that silently weakens (or accidentally
    "improves") verification shows up as an unequal matrix row.

    ``workers > 1`` fans the mutants out across a process pool (one task
    per mutant) via the simulation farm; rows are merged in enumeration
    order, so the matrix — keys, key order, every verdict — is
    bit-identical to the serial loop for any worker count.  Requires a
    core rebuildable from its subset (every stitched RISSP qualifies).
    """
    mutations = enumerate_rtl_mutations(core, limit=limit)
    if workers > 1 and len(mutations) > 1:
        from ..farm.campaigns import sharded_mutant_kill_matrix
        return sharded_mutant_kill_matrix(
            core, program, backends, limit=limit,
            max_instructions=max_instructions, workers=workers)
    matrix: dict[str, dict[str, str | None]] = {}
    for mutation in mutations:
        mutant = apply_rtl_mutation(core, mutation)
        matrix[mutation.description] = {
            backend: cosim_verdict(mutant, program, backend,
                                   max_instructions)
            for backend in backends}
    return matrix


def apply_rtl_mutation(module: Module, mutation: RtlMutation) -> Module:
    """A structurally fresh copy of ``module`` with one assign mutated.

    The copy shares (immutable) expression nodes with the original but has
    its own assign/register tables, so the original module — and any
    compiled-code cache entry keyed on it — is untouched.
    """
    import copy

    mutant = copy.copy(module)
    mutant.assigns = dict(module.assigns)
    mutant.assigns[mutation.signal] = mutation.mutated
    return mutant


def _vector_inputs(block: Module, vector: TestVector) -> dict[str, int]:
    words = {"pc": vector.pc, "insn": vector.insn_word,
             "rs1_data": vector.rs1_val, "rs2_data": vector.rs2_val,
             "dmem_rdata": vector.mem_word}
    bits: dict[str, int] = {}
    for port in block.inputs():
        value = words.get(port.name, 0)
        for index in range(port.width):
            bits[f"{port.name}[{index}]"] = (value >> index) & 1
    return bits


def _outputs_for(netlist: Netlist, inputs: dict[str, int]) -> tuple:
    sim = NetSim(netlist)
    out = sim.eval_comb(inputs)
    return tuple(sorted(out.items()))


def run_mutation_campaign(block: Module,
                          design: LoweredDesign | None = None,
                          limit: int = 120) -> MutationReport:
    """Measure whether the block's testbench kills injected faults."""
    mnemonic = str(block.meta.get("mnemonic", block.name))
    if design is None:
        design = lower_module(block)
    netlist = design.netlist
    vectors = vectors_for(mnemonic)
    probes = [_vector_inputs(block, v) for v in vectors]
    golden = [_outputs_for(netlist, p) for p in probes]

    report = MutationReport(mnemonic=mnemonic)
    mutations = enumerate_mutations(netlist, limit=limit)
    report.total = len(mutations)
    for mutation in mutations:
        original = netlist.gates[mutation.node]
        netlist.gates[mutation.node] = mutation.replacement
        try:
            killed = False
            distinguishable = False
            for probe, want in zip(probes, golden):
                got = _outputs_for(netlist, probe)
                if got != want:
                    distinguishable = True
                    killed = True   # the testbench compares these outputs
                    break
            if not distinguishable:
                report.equivalent += 1
            elif killed:
                report.killed += 1
            else:  # pragma: no cover - killed iff distinguishable here
                report.survivors.append(mutation.description)
        finally:
            netlist.gates[mutation.node] = original
    return report
