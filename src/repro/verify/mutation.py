"""Mutation coverage of block testbenches — the MCY (mutation cover with
Yosys) analog of Figure 4, step 3.

MCY's question is *"can this testbench actually catch bugs?"*: it mutates
the design, filters out mutations that provably cannot change behaviour,
and requires the testbench to fail on the rest.  We do the same at gate
level: the block is lowered to its netlist, single-gate mutations are
applied (gate-type flips, input swaps, stuck-at faults), mutations that no
probe vector can distinguish are classed *equivalent* (our stand-in for
MCY's formal filter), and every distinguishable mutant must be killed by
the architecture-test vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.ir import Module
from ..synth.lower import LoweredDesign, lower_module
from ..synth.netlist import Gate, GateType, Netlist
from ..synth.netsim import NetSim
from .arch_tests import TestVector, vectors_for

#: Gate-type substitutions applied as mutations.
_TYPE_FLIPS = {
    GateType.AND2: (GateType.OR2, GateType.XOR2),
    GateType.OR2: (GateType.AND2, GateType.XOR2),
    GateType.XOR2: (GateType.OR2, GateType.AND2),
    GateType.NOT: (),
}


@dataclass(frozen=True)
class Mutation:
    """A single-gate fault: replace ``node``'s gate with ``replacement``."""

    node: int
    replacement: Gate
    description: str


@dataclass
class MutationReport:
    mnemonic: str
    total: int = 0
    killed: int = 0
    equivalent: int = 0
    survivors: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        effective = self.total - self.equivalent
        return self.killed / effective if effective else 1.0


def enumerate_mutations(netlist: Netlist, limit: int = 120) -> list[Mutation]:
    """Deterministically pick up to ``limit`` single-gate mutations."""
    candidates: list[Mutation] = []
    for node in sorted(netlist.gates):
        gate = netlist.gates[node]
        if gate.kind in (GateType.CONST0, GateType.CONST1, GateType.INPUT,
                         GateType.DFF):
            continue
        for new_kind in _TYPE_FLIPS.get(gate.kind, ()):
            candidates.append(Mutation(
                node, Gate(new_kind, gate.inputs),
                f"node {node}: {gate.kind.value} -> {new_kind.value}"))
        if gate.kind is GateType.MUX2:
            sel, a, b = gate.inputs
            candidates.append(Mutation(
                node, Gate(GateType.MUX2, (sel, b, a)),
                f"node {node}: mux arm swap"))
        candidates.append(Mutation(node, Gate(GateType.CONST0, ()),
                                   f"node {node}: stuck-at-0"))
        candidates.append(Mutation(node, Gate(GateType.CONST1, ()),
                                   f"node {node}: stuck-at-1"))
    if len(candidates) <= limit:
        return candidates
    stride = len(candidates) / limit
    return [candidates[int(i * stride)] for i in range(limit)]


def _vector_inputs(block: Module, vector: TestVector) -> dict[str, int]:
    words = {"pc": vector.pc, "insn": vector.insn_word,
             "rs1_data": vector.rs1_val, "rs2_data": vector.rs2_val,
             "dmem_rdata": vector.mem_word}
    bits: dict[str, int] = {}
    for port in block.inputs():
        value = words.get(port.name, 0)
        for index in range(port.width):
            bits[f"{port.name}[{index}]"] = (value >> index) & 1
    return bits


def _outputs_for(netlist: Netlist, inputs: dict[str, int]) -> tuple:
    sim = NetSim(netlist)
    out = sim.eval_comb(inputs)
    return tuple(sorted(out.items()))


def run_mutation_campaign(block: Module,
                          design: LoweredDesign | None = None,
                          limit: int = 120) -> MutationReport:
    """Measure whether the block's testbench kills injected faults."""
    mnemonic = str(block.meta.get("mnemonic", block.name))
    if design is None:
        design = lower_module(block)
    netlist = design.netlist
    vectors = vectors_for(mnemonic)
    probes = [_vector_inputs(block, v) for v in vectors]
    golden = [_outputs_for(netlist, p) for p in probes]

    report = MutationReport(mnemonic=mnemonic)
    mutations = enumerate_mutations(netlist, limit=limit)
    report.total = len(mutations)
    for mutation in mutations:
        original = netlist.gates[mutation.node]
        netlist.gates[mutation.node] = mutation.replacement
        try:
            killed = False
            distinguishable = False
            for probe, want in zip(probes, golden):
                got = _outputs_for(netlist, probe)
                if got != want:
                    distinguishable = True
                    killed = True   # the testbench compares these outputs
                    break
            if not distinguishable:
                report.equivalent += 1
            elif killed:
                report.killed += 1
            else:  # pragma: no cover - killed iff distinguishable here
                report.survivors.append(mutation.description)
        finally:
            netlist.gates[mutation.node] = original
    return report
