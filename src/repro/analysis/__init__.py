"""Static-analysis subsystem: RTL lint, generated-source audit, contracts.

Three analyzers, one finding currency (:class:`Finding`), one waiver table
(:data:`WAIVERS`), one schema-validated ``--lint-out`` artifact:

* :mod:`repro.analysis.rtl_lint` — structural lint over ``rtl.ir`` DAGs
  (RTL001..RTL007), plus the :func:`structural_facts` derivation that
  ``build_rissp`` / ``core_fusable`` consume at build time;
* :mod:`repro.analysis.gen_audit` — hot-loop purity audit of the Python
  sources ``compile_module`` / ``compile_core`` / ``compile_fleet`` emit
  (GEN001..GEN006);
* :mod:`repro.analysis.contracts` — registry/picklability/merge-path
  contracts over the package tree itself (CON001..CON005).

The subset-lattice sweep is farm-sharded via ``repro.farm.LintTask`` /
``repro.farm.lint_campaign`` and surfaced as the ``lint`` CLI stage.
"""

from .contracts import lint_contracts
from .findings import (ANALYZERS, Finding, LINT_KIND, LINT_SCHEMA, WAIVERS,
                       Waiver, apply_waivers, build_lint_report,
                       dedup_findings, validate_lint_report,
                       write_lint_report)
from .gen_audit import audit_compiled, audit_source
from .rtl_lint import StructuralFacts, lint_module, structural_facts

__all__ = [
    "ANALYZERS", "Finding", "LINT_KIND", "LINT_SCHEMA", "StructuralFacts",
    "WAIVERS", "Waiver", "apply_waivers", "audit_compiled", "audit_source",
    "build_lint_report", "dedup_findings", "lint_contracts", "lint_module",
    "structural_facts", "validate_lint_report", "write_lint_report",
]
