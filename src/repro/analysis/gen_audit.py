"""Auditor for the Python sources the RTL compilers generate.

``compile_module`` / ``compile_core`` / ``compile_fleet`` emit Python that
the simulators ``exec`` and then run millions of times; PR 4/7/8 kept those
sources fast and deterministic by *convention* (locals-only hot loop, no
telemetry inside, every exit classified).  This module turns the convention
into machine-checked invariants by parsing the generated source with
:mod:`ast`:

=======  ==================================================================
GEN001   foreign global: a ``Name`` load in a generated function that is
         neither a parameter, a local, a module-level binding of the
         generated source, a whitelisted exec-namespace binding, nor a
         safe builtin
GEN002   impure reference: ``telemetry`` / ``random`` / ``time`` /
         ``print`` / ``open`` / ``eval`` / ``exec`` / ``globals`` etc.
GEN003   comb-settle locality: an ``env[...]`` store inside the fused hot
         loop outside a suite that re-enters the slow path (a call to a
         ctx-bound callback) — steady-state cycles must touch locals only
GEN004   unclassified loop exit: a ``break`` in the hot loop neither
         guarded by nor preceded by an exit-cause flag assignment
         (``halted`` / ``stop``)
GEN005   missing required shape: expected function or hot loop absent
GEN006   import statement inside generated source
=======  ==================================================================

Findings carry ``location = "<label>:<function>:<line>"`` so a dirtied
template points at the exact generated line.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from .findings import Finding

#: Functions each codegen path must define, and which of them own a hot loop.
REQUIRED_FUNCTIONS: dict[str, tuple[str, ...]] = {
    "module": ("eval_comb", "tick"),
    "core": ("decode_comb", "run_cycles"),
    "fleet": ("run_fleet",),
}
HOT_FUNCTIONS: dict[str, tuple[str, ...]] = {
    "module": (),
    "core": ("run_cycles",),
    "fleet": ("run_fleet",),
}

#: Names whose mere mention marks a generated source impure.
IMPURE_NAMES: frozenset[str] = frozenset({
    "telemetry", "random", "time", "print", "open", "input",
    "globals", "locals", "vars", "eval", "exec", "compile",
    "__import__", "os", "sys",
})

#: Builtins the generated sources may legitimately reach for.
SAFE_BUILTINS: frozenset[str] = frozenset({
    "int", "len", "range", "format", "isinstance", "bytes", "bytearray",
    "min", "max", "list", "tuple", "dict", "set", "enumerate", "zip",
})

#: Exit-cause flags a hot-loop ``break`` must be tied to (GEN004).
EXIT_FLAGS: frozenset[str] = frozenset({"halted", "stop"})


def audit_source(source: str, kind: str,
                 allowed_globals: Iterable[str] = (),
                 label: str | None = None) -> list[Finding]:
    """All findings for one generated source of the given codegen
    ``kind`` (``"module"`` / ``"core"`` / ``"fleet"``)."""
    if kind not in REQUIRED_FUNCTIONS:
        raise ValueError(f"unknown codegen kind {kind!r}")
    label = label or kind
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding("gen", "GEN005", f"{label}:<module>:{error.lineno}",
                        f"generated source does not parse: {error.msg}")]

    module_names = _module_level_names(tree)
    allowed = frozenset(allowed_globals) | module_names | SAFE_BUILTINS
    functions = {node.name: node for node in tree.body
                 if isinstance(node, ast.FunctionDef)}

    for name in REQUIRED_FUNCTIONS[kind]:
        if name not in functions:
            findings.append(Finding(
                "gen", "GEN005", f"{label}:{name}:0",
                f"required generated function {name}() is missing"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            findings.append(Finding(
                "gen", "GEN006", f"{label}:<module>:{node.lineno}",
                "import statement inside generated source"))

    for name, func in sorted(functions.items()):
        findings.extend(_audit_function(func, label, allowed))

    for name in HOT_FUNCTIONS[kind]:
        func = functions.get(name)
        if func is None:
            continue
        loops = [node for node in ast.walk(func)
                 if isinstance(node, ast.While)]
        if not loops:
            findings.append(Finding(
                "gen", "GEN005", f"{label}:{name}:{func.lineno}",
                "hot function has no cycle loop"))
            continue
        ctx_bound = _ctx_bound_names(func)
        for loop in loops:
            findings.extend(
                _audit_hot_loop(loop, label, name, ctx_bound))
    return sorted(set(findings))


def audit_compiled(compiled: object, kind: str,
                   label: str | None = None) -> list[Finding]:
    """Audit a compiled artifact (``CompiledModule`` / ``CompiledCore`` /
    ``CompiledFleet``), whitelisting exactly its exec-namespace bindings."""
    namespace = getattr(compiled, "namespace", None) or {}
    allowed = tuple(name for name in namespace if name != "__builtins__")
    return audit_source(getattr(compiled, "source"), kind, allowed, label)


# ---------------------------------------------------------------- helpers


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _local_names(func: ast.FunctionDef) -> frozenset[str]:
    args = func.args
    names = {a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return frozenset(names)


def _audit_function(func: ast.FunctionDef, label: str,
                    allowed: frozenset[str]) -> list[Finding]:
    findings: list[Finding] = []
    local = _local_names(func)
    for node in ast.walk(func):
        if not isinstance(node, ast.Name):
            continue
        name = node.id
        if name in IMPURE_NAMES:
            findings.append(Finding(
                "gen", "GEN002", f"{label}:{func.name}:{node.lineno}",
                f"impure reference {name!r} in generated code"))
        elif isinstance(node.ctx, ast.Load) \
                and name not in local and name not in allowed:
            findings.append(Finding(
                "gen", "GEN001", f"{label}:{func.name}:{node.lineno}",
                f"foreign global {name!r}: not a local, not a module "
                f"binding, not in the exec-namespace whitelist"))
    return findings


def _ctx_bound_names(func: ast.FunctionDef) -> frozenset[str]:
    """Locals unpacked from the ``ctx`` dict at the function head — the
    slow-path callbacks whose calls legitimise an env write (GEN003)."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Subscript) \
                and isinstance(node.value.value, ast.Name) \
                and node.value.value.id == "ctx":
            names.add(node.targets[0].id)
    return frozenset(names)


def _stores_to_env(stmt: ast.stmt) -> list[ast.Subscript]:
    out = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "env":
            out.append(node)
    return out


def _calls_ctx_callback(stmt: ast.stmt, ctx_bound: frozenset[str]) -> bool:
    return any(isinstance(node, ast.Call)
               and isinstance(node.func, ast.Name)
               and node.func.id in ctx_bound
               for node in ast.walk(stmt))


def _names_in(node: ast.expr) -> set[str]:
    return {leaf.id for leaf in ast.walk(node)
            if isinstance(leaf, ast.Name)}


def _audit_hot_loop(loop: ast.While, label: str, func_name: str,
                    ctx_bound: frozenset[str]) -> list[Finding]:
    """GEN003 (env-store locality) + GEN004 (classified breaks) for one
    hot loop, suite by suite."""
    findings: list[Finding] = []

    def visit_suite(suite: Sequence[ast.stmt],
                    guard_names: set[str]) -> None:
        # A suite that re-enters the slow path may restore env state; any
        # other suite inside the loop must stay locals-only (GEN003).
        reentry = any(_calls_ctx_callback(stmt, ctx_bound)
                      for stmt in suite)
        flagged = set(guard_names)
        for stmt in suite:
            if not reentry:
                for store in _stores_to_env(stmt):
                    findings.append(Finding(
                        "gen", "GEN003",
                        f"{label}:{func_name}:{store.lineno}",
                        "env[...] store inside the hot loop outside a "
                        "slow-path re-entry suite (steady-state cycles "
                        "must be locals-only)"))
            if isinstance(stmt, ast.Break):
                if not flagged & EXIT_FLAGS:
                    findings.append(Finding(
                        "gen", "GEN004",
                        f"{label}:{func_name}:{stmt.lineno}",
                        "break without an exit cause: not guarded by and "
                        "not preceded by a halted/stop flag assignment"))
            for target in _assigned_names(stmt):
                flagged.add(target)
            for child_suite, extra_guard in _child_suites(stmt):
                visit_suite(child_suite, flagged | extra_guard)

    visit_suite(loop.body, set())
    return findings


def _assigned_names(stmt: ast.stmt) -> set[str]:
    if isinstance(stmt, ast.Assign):
        return {t.id for t in stmt.targets if isinstance(t, ast.Name)}
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        return {stmt.target.id}
    return set()


def _child_suites(stmt: ast.stmt
                  ) -> Iterator[tuple[list[ast.stmt], set[str]]]:
    """(suite, names-guarding-it) pairs for one statement's nested suites.

    Nested ``while``/``for`` bodies are *not* descended into here — a
    nested loop is audited as its own hot loop by the caller."""
    if isinstance(stmt, ast.If):
        guard = _names_in(stmt.test)
        yield stmt.body, guard
        yield stmt.orelse, guard
    elif isinstance(stmt, ast.Try):
        yield stmt.body, set()
        for handler in stmt.handlers:
            yield handler.body, set()
        yield stmt.orelse, set()
        yield stmt.finalbody, set()
    elif isinstance(stmt, ast.With):
        yield stmt.body, set()
