"""Repo-contract linter: AST cross-checks over ``src/repro`` itself.

The farm/telemetry/scenario layers rest on three conventions that nothing
enforced until now:

* the telemetry counter registry (``obs.COUNTERS``) and the coverage bin
  registry (``scenario.coverage.BINS``) are *closed*: every ``bump()`` /
  ``counters[...]`` / ``hit()`` literal must name a registered entry, and
  every registered entry must have a reachable usage site;
* farm task dataclasses are picklable **by construction** — no callable,
  lambda or module-typed fields that would die (or worse, silently
  rebind) on the way to a worker process;
* merge paths that fold worker results back together are deterministic —
  no wall-clock, no unseeded randomness, no iteration over bare ``set``s
  feeding merged output.

=======  ==================================================================
CON001   counter literal not in ``obs.COUNTERS``
CON002   ``obs.COUNTERS`` entry with no usage site (literal or f-string
         family prefix)
CON003   coverage-bin mismatch: ``hit()`` literal not in ``BINS``, or a
         ``BINS`` entry no literal / prefix ever reaches
CON004   farm task dataclass field unpicklable by construction
CON005   nondeterminism source inside a merge path
=======  ==================================================================

Findings carry ``location = "<file-relative-to-root>:<line>"``.  The
registries and the scan root are injectable so the seeded-defect suite can
point the linter at a synthetic tree.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Sequence

from .findings import Finding

#: Type names that make a dataclass field unpicklable by construction.
_UNPICKLABLE_TYPES = frozenset({
    "Callable", "FunctionType", "LambdaType", "ModuleType",
})

#: ``time`` attributes that read the wall clock.
_CLOCK_ATTRS = frozenset({"time", "time_ns", "perf_counter",
                          "perf_counter_ns", "monotonic", "monotonic_ns"})

#: Module-level ``random.<fn>`` calls draw from the shared unseeded RNG.
_GLOBAL_RANDOM_ATTRS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "getrandbits", "uniform",
})


def default_root() -> pathlib.Path:
    """The shipped package tree (``src/repro``)."""
    return pathlib.Path(__file__).resolve().parents[1]


def lint_contracts(root: str | pathlib.Path | None = None,
                   counters: Sequence[str] | None = None,
                   bins: Sequence[str] | None = None) -> list[Finding]:
    """All contract findings for the package tree under ``root``."""
    base = pathlib.Path(root) if root is not None else default_root()
    if counters is None:
        from ..obs import COUNTERS as counters  # type: ignore[no-redef]
    if bins is None:
        from ..scenario.coverage import BINS as bins  # type: ignore[no-redef]

    findings: list[Finding] = []
    counter_literals: set[str] = set()
    bin_literals: set[str] = set()
    prefixes: set[str] = set()

    files = sorted(base.rglob("*.py"))
    for path in files:
        rel = path.relative_to(base).as_posix()
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as error:
            findings.append(Finding(
                "contract", "CON005", f"{rel}:{error.lineno}",
                f"file does not parse: {error.msg}"))
            continue
        findings.extend(_scan_registry_usage(
            tree, rel, counters, bins,
            counter_literals, bin_literals, prefixes))
        if rel.startswith("farm/"):
            findings.extend(_scan_task_dataclasses(tree, rel))
        if rel.startswith(("farm/", "scenario/")):
            findings.extend(_scan_merge_paths(tree, rel))

    registry_loc = f"{base.name}:COUNTERS"
    for name in counters:
        if name not in counter_literals and \
                not any(name.startswith(p) for p in prefixes):
            findings.append(Finding(
                "contract", "CON002", registry_loc,
                f"counter {name!r} is registered but never bumped "
                f"(no literal usage site, no f-string family prefix)"))
    bins_loc = f"{base.name}:BINS"
    for name in bins:
        if name not in bin_literals and \
                not any(name.startswith(p) for p in prefixes):
            findings.append(Finding(
                "contract", "CON003", bins_loc,
                f"coverage bin {name!r} is registered but no hit() "
                f"literal or family prefix ever reaches it"))
    return sorted(set(findings))


# --------------------------------------------------- registry usage sites


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _arg_str_literals(node: ast.expr) -> list[str]:
    """Every full string literal an argument expression can evaluate to.

    Covers the conditional idiom ``cov.hit("a" if x else "b")`` by
    descending only into positions the expression can *return* — IfExp
    branches (never the test, whose comparison constants are not bin
    names) and ``or``-chain operands.  F-strings are skipped; those earn
    family-*prefix* credit, not literal credit.
    """
    out: list[str] = []
    stack: list[ast.expr] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Constant) and isinstance(cur.value, str):
            out.append(cur.value)
        elif isinstance(cur, ast.IfExp):
            stack.extend((cur.body, cur.orelse))
        elif isinstance(cur, ast.BoolOp) and isinstance(cur.op, ast.Or):
            stack.extend(cur.values)
    return sorted(out)


def _joined_prefix(node: ast.expr) -> str | None:
    """Leading constant prefix of an f-string (family usage credit)."""
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str) \
                and head.value:
            return head.value
    return None


def _scan_registry_usage(tree: ast.Module, rel: str,
                         counters: Sequence[str], bins: Sequence[str],
                         counter_literals: set[str], bin_literals: set[str],
                         prefixes: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    counter_set = set(counters)
    bin_set = set(bins)
    for node in ast.walk(tree):
        prefix = _joined_prefix(node) if isinstance(node, ast.JoinedStr) \
            else None
        if prefix:
            prefixes.add(prefix)
        if isinstance(node, ast.Subscript):
            value = node.value
            is_counters = (isinstance(value, ast.Attribute)
                           and value.attr == "counters") or \
                          (isinstance(value, ast.Name)
                           and value.id == "counters")
            if not is_counters:
                continue
            literal = _const_str(node.slice)
            if literal is None:
                continue
            counter_literals.add(literal)
            if literal not in counter_set:
                findings.append(Finding(
                    "contract", "CON001", f"{rel}:{node.lineno}",
                    f"counter literal {literal!r} not in obs.COUNTERS"))
        elif isinstance(node, ast.Call):
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if attr == "bump" and node.args:
                for literal in _arg_str_literals(node.args[0]):
                    counter_literals.add(literal)
                    if literal not in counter_set:
                        findings.append(Finding(
                            "contract", "CON001", f"{rel}:{node.lineno}",
                            f"bump() literal {literal!r} not in "
                            f"obs.COUNTERS"))
            elif attr == "hit" and node.args:
                for literal in _arg_str_literals(node.args[0]):
                    bin_literals.add(literal)
                    if literal not in bin_set:
                        findings.append(Finding(
                            "contract", "CON003", f"{rel}:{node.lineno}",
                            f"hit() literal {literal!r} not in "
                            f"coverage BINS"))
            elif attr == "family_bins" and node.args:
                literal = _const_str(node.args[0])
                if literal is not None:
                    prefixes.add(literal)
    return findings


# ----------------------------------------------- farm task picklability


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _scan_task_dataclasses(tree: ast.Module, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or \
                not _is_dataclass_decorated(node):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            bad = sorted(
                leaf.id if isinstance(leaf, ast.Name) else leaf.attr
                for leaf in ast.walk(stmt.annotation)
                if (isinstance(leaf, ast.Name)
                    and leaf.id in _UNPICKLABLE_TYPES)
                or (isinstance(leaf, ast.Attribute)
                    and leaf.attr in _UNPICKLABLE_TYPES))
            if bad:
                findings.append(Finding(
                    "contract", "CON004", f"{rel}:{stmt.lineno}",
                    f"farm task dataclass {node.name} field annotated "
                    f"{'/'.join(bad)}: not picklable by construction"))
            if stmt.value is not None and any(
                    isinstance(leaf, ast.Lambda)
                    for leaf in ast.walk(stmt.value)):
                findings.append(Finding(
                    "contract", "CON004", f"{rel}:{stmt.lineno}",
                    f"farm task dataclass {node.name} field has a lambda "
                    f"default: not picklable by construction"))
    return findings


# ----------------------------------------------------- merge determinism


def _scan_merge_paths(tree: ast.Module, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        # Hard nondeterminism sources are banned anywhere in farm/scenario.
        if isinstance(node, ast.Attribute) and node.attr == "urandom":
            findings.append(Finding(
                "contract", "CON005", f"{rel}:{node.lineno}",
                "os.urandom in a farm/scenario module"))
        elif isinstance(node, ast.Attribute) and node.attr == "SystemRandom":
            findings.append(Finding(
                "contract", "CON005", f"{rel}:{node.lineno}",
                "random.SystemRandom in a farm/scenario module"))
        if not isinstance(node, ast.FunctionDef) or "merge" not in node.name:
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Attribute) and \
                    isinstance(inner.value, ast.Name):
                if inner.value.id == "time" and inner.attr in _CLOCK_ATTRS:
                    findings.append(Finding(
                        "contract", "CON005", f"{rel}:{inner.lineno}",
                        f"wall clock (time.{inner.attr}) inside merge "
                        f"path {node.name}()"))
                elif inner.value.id == "random" and \
                        inner.attr in _GLOBAL_RANDOM_ATTRS:
                    findings.append(Finding(
                        "contract", "CON005", f"{rel}:{inner.lineno}",
                        f"unseeded random.{inner.attr} inside merge "
                        f"path {node.name}()"))
            elif isinstance(inner, ast.Call) and \
                    isinstance(inner.func, ast.Name) and \
                    inner.func.id == "Random" and not inner.args:
                findings.append(Finding(
                    "contract", "CON005", f"{rel}:{inner.lineno}",
                    f"unseeded Random() inside merge path {node.name}()"))
            elif isinstance(inner, ast.For) and (
                    isinstance(inner.iter, ast.Set) or
                    (isinstance(inner.iter, ast.Call)
                     and isinstance(inner.iter.func, ast.Name)
                     and inner.iter.func.id == "set")):
                findings.append(Finding(
                    "contract", "CON005", f"{rel}:{inner.lineno}",
                    f"iteration over a bare set inside merge path "
                    f"{node.name}(): order feeds merged results"))
    return findings
