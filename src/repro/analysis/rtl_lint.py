"""RTL structural lint over :mod:`repro.rtl.ir` modules.

Rule taxonomy (all findings carry ``location = "module:signal"``):

=======  ==================================================================
RTL001   combinational loop — unlike ``topo_order``'s bare failure, the
         finding reports the full cycle path ``a -> b -> ... -> a``
RTL002   multiply-driven signal (comb assign vs register vs regfile
         storage/read-return vs input port)
RTL003   silent width truncation: a non-constant shift amount wider than
         needed to index the shifted operand — amounts >= the operand
         width quietly truncate the result to zero
RTL004   dead signal: a wire or register no consumer ever reads
         (self-references through a register's own next/enable hold path
         do not count as consumption)
RTL005   unreachable logic: a ``Mux`` arm behind a constant select, or an
         AND with a constant-zero operand (the term is always zero)
RTL006   unconnected input port: declared but never read by any logic
RTL007   undriven wire or output port
=======  ==================================================================

:func:`structural_facts` derives the cycle/driver/undriven facts exactly
once; ``build_rissp`` consumes the same facts for its build-time gate and
hands them to ``core_fusable`` so the fuse check does not re-derive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..rtl.ir import (Binary, Const, Expr, Module, Mux, Op, SHIFT_OPS,
                      expr_signals)
from .findings import Finding

#: Driver kinds, in reporting order.
_DRIVER_KINDS = ("assign", "register", "regfile-storage", "regfile-read",
                 "input")


@dataclass
class StructuralFacts:
    """Single-derivation structural facts about one module.

    ``order`` is the combinational topological order (empty when ``cycle``
    is non-empty); ``drivers`` maps every driven signal to its driver
    kinds; ``conflicts``/``undriven`` are the error-class facts that both
    the build-time gate and :func:`lint_module` report from.
    """

    module: str
    order: tuple[str, ...] = ()
    cycle: tuple[str, ...] = ()
    drivers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    conflicts: tuple[tuple[str, tuple[str, ...]], ...] = ()
    undriven: tuple[str, ...] = ()

    @property
    def comb_driven(self) -> frozenset[str]:
        """Names with a combinational assign driver (what ``core_fusable``
        consumes instead of re-probing ``module.assigns``)."""
        return frozenset(name for name, kinds in self.drivers.items()
                         if "assign" in kinds)

    def error_findings(self) -> list[Finding]:
        """The error-class findings (RTL001/RTL002/RTL007) — the subset a
        structurally bad core fails the build with."""
        out: list[Finding] = []
        if self.cycle:
            out.append(Finding(
                "rtl", "RTL001", f"{self.module}:{self.cycle[0]}",
                "combinational loop: " + " -> ".join(self.cycle)))
        for name, kinds in self.conflicts:
            out.append(Finding(
                "rtl", "RTL002", f"{self.module}:{name}",
                "signal driven by " + " and ".join(kinds)))
        for name in self.undriven:
            out.append(Finding(
                "rtl", "RTL007", f"{self.module}:{name}",
                "wire or output port has no driver"))
        return out


def structural_facts(module: Module) -> StructuralFacts:
    """Derive drivers, conflicts, undriven signals and the combinational
    order (or the cycle path) in one deterministic pass."""
    drivers: dict[str, list[str]] = {}

    def drive(name: str, kind: str) -> None:
        drivers.setdefault(name, []).append(kind)

    for name in module.assigns:
        drive(name, "assign")
    for name in module.registers:
        drive(name, "register")
    regfile_driven: set[str] = set()
    if module.regfile is not None:
        for name in module.regfile.storage_signals:
            drive(name, "regfile-storage")
            regfile_driven.add(name)
        for _, data in module.regfile.read_ports:
            if data not in module.assigns:
                drive(data, "regfile-read")
                regfile_driven.add(data)
    for port in module.inputs():
        drive(port.name, "input")

    conflicts = tuple(
        (name, tuple(sorted(kinds, key=_DRIVER_KINDS.index)))
        for name, kinds in sorted(drivers.items()) if len(kinds) > 1)

    undriven = tuple(
        [port.name for port in module.outputs()
         if port.name not in module.assigns] +
        [wire for wire in module.wires
         if wire not in module.assigns and wire not in regfile_driven])

    order, cycle = _comb_order(module)
    return StructuralFacts(
        module=module.name,
        order=order,
        cycle=cycle,
        drivers={name: tuple(kinds) for name, kinds in drivers.items()},
        conflicts=conflicts,
        undriven=undriven,
    )


def _comb_order(module: Module) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(topo order, ()) on an acyclic module; ((), cycle path) otherwise.

    Deterministic: visits signals and dependencies in sorted order, so the
    reported cycle path is stable across runs and worker counts.
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 0=unvisited, 1=visiting, 2=done
    path: list[str] = []
    cycle: list[str] = []

    def visit(name: str) -> None:
        if cycle or name not in module.assigns:
            return
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            start = path.index(name)
            cycle.extend(path[start:] + [name])
            return
        state[name] = 1
        path.append(name)
        for dep in sorted(expr_signals(module.assigns[name])):
            visit(dep)
            if cycle:
                return
        path.pop()
        state[name] = 2
        order.append(name)

    for name in sorted(module.assigns):
        visit(name)
        if cycle:
            return (), tuple(cycle)
    return tuple(order), ()


# ------------------------------------------------------------ expression walk


def _iter_nodes(expr: Expr) -> Iterator[Expr]:
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Binary):
            stack.extend((node.a, node.b))
        elif isinstance(node, Mux):
            stack.extend((node.sel, node.a, node.b))
        elif hasattr(node, "parts"):
            stack.extend(node.parts)  # Cat
        elif hasattr(node, "a"):
            stack.append(node.a)  # Not / Slice / Ext
        # Const / Sig are leaves


def _owned_exprs(module: Module) -> Iterator[tuple[str, Expr]]:
    """Every expression in the module, tagged with its owning signal."""
    for name in sorted(module.assigns):
        yield name, module.assigns[name]
    for name in sorted(module.registers):
        reg = module.registers[name]
        if reg.next is not None:
            yield name, reg.next
        if reg.enable is not None:
            yield name, reg.enable


def _shift_amount_bits(operand_width: int) -> int:
    """Bits needed to express every useful shift amount (0..width-1)."""
    return max(1, (operand_width - 1).bit_length())


def lint_module(module: Module,
                facts: StructuralFacts | None = None) -> list[Finding]:
    """All RTL findings for one module (error class + style class)."""
    if facts is None:
        facts = structural_facts(module)
    findings = facts.error_findings()
    loc = f"{module.name}:"

    # ---- consumption map (RTL004 dead signals / RTL006 unused inputs).
    # A signal is consumed when some *other* signal's logic reads it, or
    # the regfile primitive or an output port depends on it; a register
    # referenced only by its own next/enable hold path is still dead.
    consumed: set[str] = set()
    for owner, expr in _owned_exprs(module):
        consumed.update(name for name in expr_signals(expr) if name != owner)
    if module.regfile is not None:
        for addr, _ in module.regfile.read_ports:
            consumed.add(addr)
        if module.regfile.write_port is not None:
            consumed.update(module.regfile.write_port)

    for name in sorted(module.wires):
        if name not in consumed:
            findings.append(Finding(
                "rtl", "RTL004", loc + name,
                "dead wire: no signal, register or regfile port reads it"))
    for name in sorted(module.registers):
        if name not in consumed:
            findings.append(Finding(
                "rtl", "RTL004", loc + name,
                "dead register: written every cycle but never read "
                "outside its own hold path"))
    for port in module.inputs():
        if port.name not in consumed:
            findings.append(Finding(
                "rtl", "RTL006", loc + port.name,
                "input port declared but never read"))

    # ---- expression-level rules (RTL003 / RTL005).
    for owner, root in _owned_exprs(module):
        for node in _iter_nodes(root):
            if isinstance(node, Binary) and node.op in SHIFT_OPS \
                    and not isinstance(node.b, Const):
                needed = _shift_amount_bits(node.a.width)
                if node.b.width > needed:
                    findings.append(Finding(
                        "rtl", "RTL003", loc + owner,
                        f"{node.op.value} amount is {node.b.width} bits "
                        f"but {needed} suffice for a {node.a.width}-bit "
                        f"operand; amounts >= {node.a.width} silently "
                        f"truncate the result to zero"))
            elif isinstance(node, Mux) and isinstance(node.sel, Const):
                dead_arm = "false (b)" if node.sel.value else "true (a)"
                findings.append(Finding(
                    "rtl", "RTL005", loc + owner,
                    f"mux select is constant {node.sel.value}; the "
                    f"{dead_arm} arm is unreachable"))
            elif isinstance(node, Binary) and node.op is Op.AND and (
                    (isinstance(node.a, Const) and node.a.value == 0) or
                    (isinstance(node.b, Const) and node.b.value == 0)):
                findings.append(Finding(
                    "rtl", "RTL005", loc + owner,
                    "AND with a constant-zero operand: the term is "
                    "always zero"))
    return sorted(set(findings))
