"""Finding records, the waiver allowlist, and the ``--lint-out`` report.

Every analyzer in :mod:`repro.analysis` reports through one currency: the
:class:`Finding` — a frozen ``(analyzer, rule, location, detail)`` record.
Findings are *stable*: :func:`dedup_findings` sorts and deduplicates them,
so a sharded lattice sweep merged in task order is bit-identical at any
worker count, and two runs over the same tree produce the same artifact
byte-for-byte (modulo host provenance).

Deliberate structural choices in the shipped RTL are not silently special-
cased inside the analyzers; they are *waived* here, in one inline allowlist
(:data:`WAIVERS`) where every entry carries a reason string.  The clean-tree
gate asserts zero findings *after* waivers, so a new finding class anywhere
in the tree either gets fixed or gets an auditable entry in this table.

The ``--lint-out`` artifact follows the repo's validate-then-write idiom
(``obs.write_manifest`` / ``scenario.write_report``): :func:`write_lint_report`
refuses to emit a document that fails :func:`validate_lint_report`.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Analyzer names, in report order.
ANALYZERS: tuple[str, ...] = ("rtl", "gen", "contract")

#: Rule-id prefix per analyzer (every rule id is ``<prefix><3 digits>``).
_RULE_PREFIX = {"rtl": "RTL", "gen": "GEN", "contract": "CON"}


@dataclass(frozen=True, order=True)
class Finding:
    """One deduplicated static-analysis finding.

    ``location`` is analyzer-specific but always ``<container>:<signal>``
    shaped — ``module:signal`` for RTL, ``source:function[:line]`` for the
    generated-source auditor, ``file:line`` for the contract linter — so
    waiver globs have a uniform surface to match against.
    """

    analyzer: str
    rule: str
    location: str
    detail: str

    def to_doc(self) -> dict[str, str]:
        return {"analyzer": self.analyzer, "rule": self.rule,
                "location": self.location, "detail": self.detail}


def dedup_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Sorted, exact-duplicate-free finding list (the merge operation for
    sharded sweeps — associative, commutative, idempotent)."""
    return sorted(set(findings))


# ---------------------------------------------------------------- waivers


@dataclass(frozen=True)
class Waiver:
    """One allowlist entry: ``rule`` + globs over the finding location.

    ``location_glob`` matches the full ``Finding.location`` with
    :func:`fnmatch.fnmatchcase`; the mandatory ``reason`` is carried into
    the report so a waiver is never silent.
    """

    rule: str
    location_glob: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return finding.rule == self.rule and \
            fnmatch.fnmatchcase(finding.location, self.location_glob)


#: The shipped tree's deliberate structural choices (satellite: "fix or
#: waive with a reason").  Kept small on purpose — anything that *can* be
#: fixed without perturbing an externally checked contract is fixed in the
#: RTL instead (see PR 10 in CHANGES.md).
WAIVERS: tuple[Waiver, ...] = (
    Waiver("RTL006", "*:pc",
           "block port contract: every instruction block takes pc/insn "
           "even when its datapath ignores them (uniform stitching)"),
    Waiver("RTL006", "*:insn",
           "block port contract: every instruction block takes pc/insn "
           "even when its datapath ignores them (uniform stitching)"),
    Waiver("RTL004", "*:mcause",
           "architectural CSR state: written by the trap unit, read by the "
           "harness/firmware via the emulated csrr path, not by core logic"),
    Waiver("RTL004", "*:mepc",
           "architectural CSR state: consumed by mret's next_pc when the "
           "subset includes mret; otherwise harness-visible trap context"),
    Waiver("RTL006", "rissp*:dmem_rdata",
           "fused harness interface: every stitched RISSP exposes the full "
           "dmem port set (core_fusable contract) even when the subset has "
           "no loads to read it"),
)


def apply_waivers(
    findings: Iterable[Finding],
    waivers: Sequence[Waiver] = WAIVERS,
) -> tuple[list[Finding], list[tuple[Finding, Waiver]]]:
    """Split findings into (kept, waived-with-reason), both stably sorted."""
    kept: list[Finding] = []
    waived: list[tuple[Finding, Waiver]] = []
    for finding in dedup_findings(findings):
        for waiver in waivers:
            if waiver.matches(finding):
                waived.append((finding, waiver))
                break
        else:
            kept.append(finding)
    return kept, waived


# ---------------------------------------------------------- lint report

LINT_SCHEMA = 1
LINT_KIND = "repro-lint-report"


def build_lint_report(result: dict, config: dict | None = None) -> dict:
    """The schema-validated ``--lint-out`` document (see
    :func:`validate_lint_report` for the contract)."""
    from ..obs.manifest import host_provenance

    kept: list[Finding] = dedup_findings(result["findings"])
    waived: list[tuple[Finding, Waiver]] = sorted(
        result.get("waived", ()), key=lambda pair: pair[0])
    counts = {name: 0 for name in ANALYZERS}
    for finding in kept:
        # Unknown analyzers still land in counts — the validator then
        # rejects the document, which is the refusal contract.
        counts[finding.analyzer] = counts.get(finding.analyzer, 0) + 1
    return {
        "schema": LINT_SCHEMA,
        "kind": LINT_KIND,
        "host": host_provenance(),
        "config": dict(config or {}),
        "targets": dict(result.get("targets", {})),
        "counts": counts,
        "findings": [finding.to_doc() for finding in kept],
        "waived": [dict(finding.to_doc(), reason=waiver.reason)
                   for finding, waiver in waived],
    }


def validate_lint_report(document: object) -> list[str]:
    """Structural validation; returns human-readable problems (empty =
    valid).  The writer refuses to emit a document that fails this."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["report must be an object"]
    if document.get("schema") != LINT_SCHEMA:
        errors.append(f"schema must be {LINT_SCHEMA}")
    if document.get("kind") != LINT_KIND:
        errors.append(f"kind must be {LINT_KIND!r}")
    targets = document.get("targets")
    if not isinstance(targets, dict) or \
            not all(isinstance(v, int) and v >= 0 for v in targets.values()):
        errors.append("targets must map target kinds to non-negative counts")
    rows = document.get("findings")
    if not isinstance(rows, list):
        errors.append("findings must be a list")
        rows = []
    keys = ("analyzer", "rule", "location", "detail")
    seen: list[tuple[str, ...]] = []
    for index, row in enumerate(rows):
        if not isinstance(row, dict) or sorted(row) != sorted(keys):
            errors.append(f"findings[{index}] must carry exactly "
                          f"analyzer/rule/location/detail")
            continue
        if row["analyzer"] not in ANALYZERS:
            errors.append(f"findings[{index}]: unknown analyzer "
                          f"{row['analyzer']!r}")
        elif not row["rule"].startswith(_RULE_PREFIX[row["analyzer"]]):
            errors.append(f"findings[{index}]: rule {row['rule']!r} does "
                          f"not belong to analyzer {row['analyzer']!r}")
        seen.append(tuple(row[k] for k in keys))
    if seen != sorted(set(seen)):
        errors.append("findings must be sorted and deduplicated")
    counts = document.get("counts")
    if not isinstance(counts, dict) or list(counts) != list(ANALYZERS):
        errors.append("counts must carry exactly the analyzer registry, "
                      "in order")
    elif not errors:
        actual = {name: 0 for name in ANALYZERS}
        for row in rows:
            actual[row["analyzer"]] += 1
        if counts != actual:
            errors.append("counts must agree with the finding list")
    waived = document.get("waived")
    if not isinstance(waived, list):
        errors.append("waived must be a list")
    else:
        for index, row in enumerate(waived):
            if not isinstance(row, dict) or "reason" not in row \
                    or not row.get("reason"):
                errors.append(f"waived[{index}] must carry a non-empty "
                              f"reason string")
    return errors


def write_lint_report(path: str | pathlib.Path, result: dict,
                      config: dict | None = None) -> pathlib.Path:
    """Validate-then-write the lint artifact (refuses to emit a malformed
    document, mirroring ``obs.write_manifest``)."""
    document = build_lint_report(result, config)
    errors = validate_lint_report(document)
    if errors:
        raise ValueError("refusing to write invalid lint report: "
                         + "; ".join(errors))
    out = pathlib.Path(path)
    if out.parent != pathlib.Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2) + "\n")
    return out
