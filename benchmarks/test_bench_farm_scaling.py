"""Simulation-farm scaling: mutant-kill-matrix wall-clock vs worker count.

PR 6 tentpole measurement.  The farm shards the embarrassingly parallel
campaigns (every mutant costs a fresh structural mutation + backend
compile + cosim run), so wall-clock should scale with worker count — and
the merged matrix must stay bit-identical while it does, which
:func:`repro.farm.farm_scaling_metrics` asserts before reporting any
timing.

The >=2x speedup gate only fires on hosts with >=4 CPUs (the CI runners);
on smaller hosts the pool cannot beat the serial loop, so the benchmark
still records the artifact — absolute ratios are only meaningful within
one host fingerprint — but does not gate.
"""

import os

from repro.farm import farm_scaling_metrics

WORKER_COUNTS = (1, 2, 4)


def test_bench_farm_scaling(benchmark, bench_artifact):
    metrics = benchmark.pedantic(
        lambda: farm_scaling_metrics(worker_counts=WORKER_COUNTS),
        rounds=1, iterations=1)
    print("\n=== simulation farm scaling "
          f"(mutant kill matrix, {metrics['mutants']} mutants, "
          f"{metrics['cpu_count']} CPUs) ===")
    serial = metrics["wallclock_sec"]["workers_1"]
    for workers in WORKER_COUNTS:
        seconds = metrics["wallclock_sec"][f"workers_{workers}"]
        print(f"workers={workers}: {seconds:6.2f}s "
              f"({serial / seconds:4.2f}x)")
    bench_artifact("farm_scaling", metrics)
    assert metrics["mutants"] > 0
    for workers in WORKER_COUNTS[1:]:
        assert metrics[f"speedup_workers_{workers}"] > 0
    if (os.cpu_count() or 1) >= 4:
        assert metrics["speedup_workers_4"] >= 2.0, (
            f"farm speedup regressed on a {os.cpu_count()}-CPU host: "
            f"{metrics['speedup_workers_4']:.2f}x < 2x at 4 workers")
