"""Per-workload CPI on the golden ISS and the Serv timing model.

Feeds the ``BENCH_workload_cpi.json`` artifact CI uploads per run, so the
dynamic-cost trajectory of the workload registry (compute kernels *and*
the PR 3 event-driven SoC firmware) is tracked across PRs alongside the
raw simulator throughput numbers.

CPI semantics: the generated RISSPs are single-cycle (CPI 1.0 == the
golden ISS numbers); Serv is the paper's bit-serial baseline at CPI ~32
plus memory/redirect penalties — exactly the Figure 9 comparison axis.
"""

from repro.sim import GoldenSim, ServSim
from repro.workloads import SOC_NAMES, WORKLOADS

#: Representative compute kernels (cheap to run) + every SoC firmware.
_COMPUTE = ("crc32", "statemate", "armpit", "xgboost", "af_detect")

_LIMIT = 3_000_000


def _program_and_spec(name):
    from repro.workloads import build_program
    workload = WORKLOADS[name]
    return build_program(workload), workload.soc_spec


def test_bench_workload_cpi(benchmark, bench_artifact):
    def report():
        rows = {}
        for name in _COMPUTE + SOC_NAMES:
            program, spec = _program_and_spec(name)
            golden = GoldenSim(program, soc=spec).run(_LIMIT)
            serv = ServSim(program, soc=spec).run(_LIMIT)
            assert golden.halted_by in ("ecall", "poweroff"), name
            assert serv.instructions == golden.instructions, name
            rows[name] = {
                "category": WORKLOADS[name].category,
                "instructions": golden.instructions,
                "rissp_cpi": golden.cpi,
                "serv_cpi": serv.cpi,
            }
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n=== Per-workload CPI (golden single-cycle vs Serv) ===")
    for name, row in rows.items():
        print(f"{name:15s} {row['instructions']:9d} instr   "
              f"rissp {row['rissp_cpi']:.2f}   serv {row['serv_cpi']:.2f}")
    bench_artifact("workload_cpi", rows)
    for name, row in rows.items():
        assert row["rissp_cpi"] == 1.0, name
        assert 30.0 <= row["serv_cpi"] <= 36.0, (name, row["serv_cpi"])
