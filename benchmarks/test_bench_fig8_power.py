"""Figure 8: average power (static + dynamic) across the sweep."""

from repro.core.metrics import saving
from repro.data import paper


def test_bench_fig8_power(benchmark, rissp_reports, rv32e_report,
                          serv_report):
    def power_table():
        return {name: rep.avg_power_mw
                for name, rep in rissp_reports.items()}

    table = benchmark.pedantic(power_table, rounds=1, iterations=1)
    base = rv32e_report.avg_power_mw
    print("\n=== Figure 8: average power (mW) ===")
    savings = {}
    for name in sorted(table):
        savings[name] = saving(table[name], base)
        print(f"{name:<16} {table[name]:>7.3f} mW   saving "
              f"{savings[name]:5.1f}%")
    print(f"{'RISSP-RV32E':<16} {base:>7.3f} mW")
    print(f"{'Serv':<16} {serv_report.avg_power_mw:>7.3f} mW")
    ratio = (serv_report.power_at_fmax.total_mw
             / rv32e_report.power_at_fmax.total_mw)
    print(f"saving range {min(savings.values()):.0f}%-"
          f"{max(savings.values()):.0f}% (paper "
          f"{paper.POWER_SAVING_RANGE_PCT}); Serv/RV32E@fmax {ratio:.2f} "
          f"(paper {paper.SERV_POWER_VS_RV32E})")
    assert all(s > 0 for s in savings.values())
    assert serv_report.avg_power_mw > base          # Serv burns more
    assert 1.2 < ratio < 1.6
