"""Table 2: the port contract of each instruction hardware block type."""

from repro.isa import INSTRUCTIONS
from repro.rtl import build_block


def test_bench_table2_blocks(benchmark):
    def build_all():
        return {d.mnemonic: build_block(d.mnemonic) for d in INSTRUCTIONS}

    blocks = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print("\n=== Table 2: instruction hardware block port contracts ===")
    by_type = {}
    for name, block in blocks.items():
        by_type.setdefault(block.meta["block_type"], []).append(name)
    for block_type, names in sorted(by_type.items()):
        sample = blocks[sorted(names)[0]]
        ports = ", ".join(f"{p.name}[{p.width}]{'<' if p.direction == 'in' else '>'}"
                          for p in sample.ports.values())
        print(f"{block_type:<8} ({len(names):2d} instrs): {ports}")
    assert len(blocks) == 40
