"""Batched fleet throughput: thousands of cores stepped per fused pass.

PR 7 tentpole measurement.  A fleet campaign used to pay the full
per-instance fixed costs N times — RisspSim construction (module check,
environment setup) plus per-quantum fused-loop entry/exit with a
combinational re-settle.  :class:`~repro.rtl.fleet.FleetSim` batches the
loop-carried state of every lane into per-instance arrays and advances
the whole fleet inside one generated pass, sharing one per-word decode
cache across all lanes.

Gate: >= 1k instances stepped in one campaign, aggregate cycles/sec at
least **3x** the single-core fused backend constructed and run in a
Python loop over the same instances — and, before any timing,
sampled-instance bit-identity (full RVFI columns) against single-core
fused, asserted inside :func:`repro.farm.fleet_throughput_metrics`
itself: a speedup over wrong results is not a speedup.
"""

from repro.farm import fleet_throughput_metrics

INSTANCES = 1024
SPEEDUP_GATE = 3.0


def test_bench_fleet_throughput(benchmark, bench_artifact):
    metrics = benchmark.pedantic(
        lambda: fleet_throughput_metrics(instances=INSTANCES),
        rounds=1, iterations=1)
    print(f"\n=== batched fleet throughput ({metrics['instances']} "
          f"instances, {metrics['retirements']} retirements, "
          f"{metrics['equivalence_sampled_lanes']} lanes "
          f"equivalence-sampled) ===")
    print(f"fleet  : {metrics['fleet_cycles_per_sec']:12,.0f} cycles/sec "
          f"({metrics['wallclock_sec']['fleet_batched']:.2f}s)")
    print(f"single : {metrics['single_cycles_per_sec']:12,.0f} cycles/sec "
          f"({metrics['single_sampled_instances']} sampled instances)")
    print(f"speedup: {metrics['speedup_vs_single']:.2f}x")
    bench_artifact("fleet_throughput", metrics)
    assert metrics["instances"] >= 1000
    assert metrics["retirements"] > 0
    assert metrics["equivalence_sampled_lanes"] > 0
    assert metrics["speedup_vs_single"] >= SPEEDUP_GATE, (
        f"batched fleet regressed: "
        f"{metrics['speedup_vs_single']:.2f}x < {SPEEDUP_GATE}x over "
        f"single-core fused")
