"""Figure 5: codesize and distinct instructions per app x {-O0..-Oz}."""

from repro.compiler import OPT_LEVELS
from repro.core.profile import summarize
from repro.data import paper


def test_bench_fig5_profile(benchmark, sweeps):
    def report():
        return summarize(sweeps)

    stats = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n=== Figure 5: codesize (KB) / #distinct per flag ===")
    header = f"{'application':<16}" + "".join(
        f"{lvl + ' KB':>9}{'#d':>4}" for lvl in OPT_LEVELS)
    print(header)
    for name, sweep in sorted(sweeps.items()):
        row = f"{name:<16}"
        for lvl in OPT_LEVELS:
            row += f"{sweep.codesize_kb(lvl):>9.2f}{sweep.distinct(lvl):>4}"
        print(row)
    print("\nper-flag averages (paper: O0=2027 O1=1149 O2=1207 O3=1586 "
          "Oz=1018 static instrs; avg distinct ~19):")
    for lvl in OPT_LEVELS:
        s = stats[lvl]
        print(f"  {lvl}: avg_static={s['avg_static_instructions']:7.1f} "
              f"avg_distinct={s['avg_distinct']:5.2f} "
              f"range=[{s['min_distinct']},{s['max_distinct']}] "
              f"isa_usage={100 * s['avg_isa_fraction']:.0f}%")
    lo, hi = paper.DISTINCT_RANGE
    for lvl in OPT_LEVELS:
        assert lo <= stats[lvl]["min_distinct"] + 4          # loose band
        assert stats[lvl]["max_distinct"] <= hi
    assert stats["O0"]["avg_static_instructions"] > \
        2 * stats["O2"]["avg_static_instructions"]
    assert stats["Oz"]["avg_static_instructions"] <= \
        stats["O1"]["avg_static_instructions"] + 1
