"""Table 3: distinct-instruction lists at -O2, vs the paper's lists."""

from repro.data import paper


def _jaccard(a, b):
    a, b = set(a), set(b)
    return len(a & b) / len(a | b)


def test_bench_table3_subsets(benchmark, sweeps):
    def collect():
        return {name: sweeps[name].profiles["O2"].mnemonics
                for name in sweeps}

    subsets = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\n=== Table 3: distinct instructions per application (-O2) ===")
    sims = []
    for name in sorted(subsets):
        ours = subsets[name]
        ref = paper.TABLE3_SUBSETS.get(name, ())
        sim = _jaccard(ours, ref) if ref else 0.0
        sims.append(sim)
        print(f"{name:<16} n={len(ours):2d} (paper {len(ref):2d}, "
              f"jaccard {sim:.2f})  [{', '.join(ours)}]")
    avg = sum(sims) / len(sims)
    print(f"\naverage Jaccard similarity vs Table 3: {avg:.2f}")
    assert avg > 0.5, "subsets should resemble the paper's Table 3"
